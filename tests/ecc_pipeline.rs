//! Integration tests for the reliability pipeline (Figures 3(b)/10):
//! codec ↔ injector ↔ surrogate ↔ proxy model, across crates.

use accuracy_lab::{
    data::gaussian_blobs,
    mlp::{Mlp, MlpConfig, QuantMlp},
    storage::stored_accuracy,
    surrogate,
};
use cambricon_llm_repro::prelude::*;
use outlier_ecc::protected_flip_rate;

#[test]
fn fig10_curve_orderings() {
    // At every BER the with-ECC curve dominates; both decay; ECC keeps
    // ≥85% of base at 2e-4 (the paper's 92–95% claim, with slack).
    let codec = PageCodec::paper();
    let task = surrogate::tasks()[0]; // HellaSwag
    let mut prev_no = f64::INFINITY;
    let mut prev_ecc = f64::INFINITY;
    for ber in [1e-5, 1e-4, 2e-4, 8e-4, 2e-3] {
        let no = surrogate::accuracy_at(&codec, &task, ber, false, 5);
        let ecc = surrogate::accuracy_at(&codec, &task, ber, true, 5);
        assert!(ecc >= no - 1.0, "ber {ber}: {ecc} vs {no}");
        assert!(no <= prev_no + 1.0 && ecc <= prev_ecc + 1.0);
        prev_no = no;
        prev_ecc = ecc;
    }
    let keep = surrogate::accuracy_at(&codec, &task, 2e-4, true, 5) / task.base_acc;
    assert!(keep > 0.85, "{keep}");
}

#[test]
fn protection_capability_multiplier() {
    // Paper: the ECC provides ~2.3× protection capability — the BER at
    // which accuracy collapses moves right by >2×. Find the collapse
    // BER (accuracy below 70% of base) for both arms.
    let codec = PageCodec::paper();
    let task = surrogate::tasks()[0];
    let collapse = |with_ecc: bool| -> f64 {
        for ber in [
            1e-5, 2e-5, 4e-5, 8e-5, 1.6e-4, 3.2e-4, 6.4e-4, 1.28e-3, 2.56e-3, 5.12e-3,
        ] {
            let a = surrogate::accuracy_at(&codec, &task, ber, with_ecc, 9);
            if a < 0.7 * task.base_acc {
                return ber;
            }
        }
        1e-2
    };
    let without = collapse(false);
    let with = collapse(true);
    assert!(
        with / without >= 2.0,
        "protection {:.1}x (collapse {without:.1e} → {with:.1e})",
        with / without
    );
}

#[test]
fn paper_fprot_formula_matches_monte_carlo() {
    // f_prot = 3x² for N=2: verify the analytic formula against a
    // direct Monte-Carlo of the majority vote.
    use sim_core::SplitMix64;
    let x = 0.05; // exaggerated per-bit rate for measurable statistics
    let mut rng = SplitMix64::new(99);
    let trials = 200_000;
    let mut flipped = 0u64;
    for _ in 0..trials {
        // Three copies of a bit; each flips with probability x.
        let a = rng.chance(x) as u8;
        let b = rng.chance(x) as u8;
        let c = rng.chance(x) as u8;
        if a + b + c >= 2 {
            flipped += 1;
        }
    }
    let measured = flipped as f64 / trials as f64;
    let analytic = protected_flip_rate(2, x);
    assert!(
        (measured - analytic).abs() / analytic < 0.08,
        "measured {measured}, analytic {analytic}"
    );
}

#[test]
fn trained_model_survives_aged_flash_with_ecc() {
    // End-to-end: a real trained classifier through the paper codec.
    let cfg = MlpConfig::default();
    let train = gaussian_blobs(2000, cfg.input, cfg.classes, 0.6, 11);
    let test = gaussian_blobs(600, cfg.input, cfg.classes, 0.6, 22);
    let q = QuantMlp::quantize(&Mlp::train(cfg, &train));
    let codec = PageCodec {
        elems: 4096,
        protect_fraction: 0.01,
        value_copies: 2,
        spare_bytes: 512,
    };
    let clean = q.accuracy(&test);
    let r = stored_accuracy(&q, &test, &codec, 1e-3, 3, true);
    // At BER 1e-3 with ECC, the model stays close to clean accuracy.
    assert!(
        r.accuracy > clean - 0.08,
        "clean {clean} vs stored {}",
        r.accuracy
    );
}

#[test]
fn ecc_payload_fits_every_paper_page() {
    // The codec must fit the spare area for all plausible page sizes.
    for (elems, spare) in [(16384usize, 1664usize), (8192, 832), (4096, 448)] {
        let c = PageCodec {
            elems,
            protect_fraction: 0.01,
            value_copies: 2,
            spare_bytes: spare,
        };
        c.validate().unwrap_or_else(|e| panic!("{elems}: {e}"));
    }
}

#[test]
fn decode_stats_round_trip_into_serve_side_reliability() {
    // Satellite: the bit-exact codec's observed damage folds into the
    // same ledger the serving engine's fault injection fills, so a
    // measured ECC trial and an event-loop run report through one type.
    use sim_core::SplitMix64;
    let codec = PageCodec::paper();
    let weights: Vec<i8> = (0..16384)
        .map(|i| {
            if i % 97 == 0 {
                110
            } else {
                (i % 23) as i8 - 11
            }
        })
        .collect();
    let mut rel = ReliabilitySummary::default();
    let mut trials = 0u64;
    let mut rng = SplitMix64::new(0xECC);
    // Push the BER well past the knee so the decoder demonstrably works.
    for seed in 0..6u64 {
        let mut page = codec.encode(&weights);
        BitFlipModel::new(4e-3, rng.next_u64() ^ seed).corrupt_page(&mut page);
        let (_, stats) = codec.decode_with_stats(&page);
        rel.absorb_decode_stats(&stats);
        trials += stats.outliers_repaired as u64
            + stats.addresses_corrected as u64
            + stats.entries_discarded as u64;
    }
    assert!(trials > 0, "no corrector action at 20x the knee BER");
    assert_eq!(rel.corrected_pages + rel.uncorrectable_events, trials);
    assert!(
        rel.corrected_pages > 0,
        "majority vote never repaired anything"
    );
    // The serve-side counters the event loops fill stay untouched.
    assert_eq!(rel.page_rereads, 0);
    assert_eq!(rel.total_sheds(), 0);
}

#[test]
fn ecc_threshold_constant_cannot_drift() {
    // One constant, two crates: the fault model's default correction
    // threshold IS the codec crate's knee — not a copied literal.
    assert_eq!(
        FaultConfig::default().correctable_rber,
        outlier_ecc::CORRECTABLE_RBER
    );
    // And the knee itself is where the paper's Figure 10 puts it.
    assert_eq!(outlier_ecc::CORRECTABLE_RBER, 2e-4);
    // The analytic page-fail curve agrees: negligible failure below the
    // knee, certain failure far above it.
    let page_bits = 16 * 1024 * 8;
    let below = cambricon_llm::page_fail_prob(
        outlier_ecc::CORRECTABLE_RBER / 4.0,
        page_bits,
        outlier_ecc::CORRECTABLE_RBER,
    );
    let above = cambricon_llm::page_fail_prob(
        outlier_ecc::CORRECTABLE_RBER * 4.0,
        page_bits,
        outlier_ecc::CORRECTABLE_RBER,
    );
    assert!(below < 1e-6, "{below}");
    assert!(above > 0.999, "{above}");
}

#[test]
fn severity_measured_not_assumed() {
    // The ECC benefit in the figures comes from the measured codec, not
    // a constant: severity with ECC must be multiples lower at 2e-4.
    let codec = PageCodec::paper();
    let no = surrogate::severity_at(&codec, 2e-4, false, 3);
    let yes = surrogate::severity_at(&codec, 2e-4, true, 3);
    assert!(no / yes > 3.0, "gain {}", no / yes);
}
