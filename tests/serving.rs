//! Integration tests for the multi-request serving engine: determinism
//! across runs, and consistency with the single-request simulator.

use cambricon_llm_repro::prelude::*;
use proptest::prelude::*;

fn arb_model() -> impl proptest::Strategy<Value = llm_workload::ModelSpec> {
    prop_oneof![
        Just(zoo::opt_6_7b()),
        Just(zoo::opt_13b()),
        Just(zoo::llama2_7b()),
    ]
}

#[test]
fn same_trace_same_report() {
    // Bit-for-bit determinism: the same arrival trace under the same
    // policy yields an identical report, including the virtual-time
    // makespan and every per-request timestamp.
    let shape = RequestShape::new(500, 3);
    let trace = ArrivalTrace::poisson(1.0, 5, shape, 77);
    let engine = ServeEngine::new(SystemConfig::cambricon_m(), zoo::opt_6_7b());
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
        let a = engine.run(&trace, policy);
        let b = engine.run(&trace, policy);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tokens_served, b.tokens_served);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.p50_token_latency_s, b.p50_token_latency_s);
        assert_eq!(a.p99_token_latency_s, b.p99_token_latency_s);
        assert_eq!(a.traffic, b.traffic);
    }
}

#[test]
fn poisson_trace_regenerates_identically() {
    // The trace itself is deterministic in its seed, so two engines fed
    // freshly generated traces agree too.
    let shape = RequestShape::new(400, 2);
    let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
    let a = engine.run(
        &ArrivalTrace::poisson(2.0, 4, shape, 5),
        SchedulePolicy::RoundRobin,
    );
    let b = engine.run(
        &ArrivalTrace::poisson(2.0, 4, shape, 5),
        SchedulePolicy::RoundRobin,
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.requests, b.requests);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At one in-flight request the serving engine serializes every op,
    /// so its aggregate tokens/s must match `System::decode_speed` —
    /// the single-request simulator — up to the context growth the
    /// serving path models (decode_speed holds seq_len fixed while the
    /// engine advances it per token, so allow a tight band).
    #[test]
    fn single_stream_throughput_matches_decode_speed(
        model in arb_model(),
        prompt in 200usize..1500,
        tokens in 1usize..6,
    ) {
        let cfg = SystemConfig::cambricon_s();
        let engine = ServeEngine::new(cfg, model.clone());
        let shape = RequestShape::new(prompt, tokens);
        let rep = engine.run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::Fcfs,
        );

        // Exact check: makespan equals the sum of per-token simulator
        // latencies at the same growing contexts.
        let mut sys = System::new(cfg);
        let mut expected_s = 0.0;
        for i in 0..tokens {
            expected_s += sys.decode_token(&model, prompt + i).total.as_secs_f64();
        }
        let got_s = rep.makespan.as_secs_f64();
        prop_assert!((got_s - expected_s).abs() / expected_s < 1e-12,
            "serve {got_s} vs serial {expected_s}");

        // Band check against the fixed-context headline number.
        let speed = System::new(cfg).decode_speed(&model, prompt);
        let ratio = rep.tokens_per_sec / speed;
        prop_assert!((0.97..1.03).contains(&ratio),
            "serve {} tok/s vs decode_speed {} (ratio {ratio})",
            rep.tokens_per_sec, speed);
    }

    /// Fleet conservation: every request in the trace is served, token
    /// counts add up, and per-request reports are self-consistent.
    #[test]
    fn serve_conserves_requests_and_tokens(
        clients in 1usize..5,
        per_client in 1usize..3,
        tokens in 1usize..4,
    ) {
        let shape = RequestShape::new(300, tokens);
        let trace = ArrivalTrace::closed_loop(clients, per_client, shape);
        let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
        let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
        prop_assert_eq!(rep.requests_served, clients * per_client);
        prop_assert_eq!(rep.tokens_served, (clients * per_client * tokens) as u64);
        for r in &rep.requests {
            prop_assert!(r.arrived <= r.started);
            prop_assert!(r.started < r.first_token);
            prop_assert!(r.first_token <= r.finished);
            prop_assert_eq!(r.tokens, tokens);
        }
    }
}
