//! Integration tests for the multi-request serving engine: determinism
//! across runs, consistency with the single-request simulator, and
//! golden reports pinning the optimized hot path to the original
//! engine's output bit for bit.

use cambricon_llm_repro::prelude::*;
use proptest::prelude::*;
use sim_core::SimTime;

/// Golden values for the 70B serving scenarios, captured from the
/// pre-optimization engine (PR 1's per-token `decode_step` + linear
/// ready-list scan + `sim_core::EventQueue`). The op-stream/cost-cache
/// rewrite must reproduce every field exactly — same virtual
/// timestamps, same utilizations, same traffic, same cache accounting —
/// proving the optimization changed no simulated semantics.
mod golden {
    /// (makespan ps, tokens/s, p50 s, p99 s, mean s, flash util,
    ///  npu util, gemv hits, gemv misses,
    ///  per-request (id, arrived, started, first_token, finished) ps).
    pub struct Scenario {
        pub makespan_ps: u64,
        pub tokens_per_sec: f64,
        pub p50_s: f64,
        pub p99_s: f64,
        pub mean_s: f64,
        pub queue_mean_s: f64,
        pub queue_max_s: f64,
        pub flash_util: f64,
        pub npu_util: f64,
        pub gemv_hits: u64,
        pub gemv_misses: u64,
        pub dram_bytes: u64,
        pub npu_ops: u64,
        pub requests: &'static [(usize, u64, u64, u64, u64)],
    }

    /// `closed_loop(4, 2, RequestShape::new(1000, 3))`, FCFS.
    pub const CLOSED_FCFS: Scenario = Scenario {
        makespan_ps: 5_762_218_396_000,
        tokens_per_sec: 4.165062541999493,
        p50_s: 0.383882944,
        p99_s: 2.250187812,
        mean_s: 0.8137854537,
        queue_mean_s: 7.590000000000001e-7,
        queue_max_s: 3.036e-6,
        flash_util: 0.9983870830014961,
        npu_util: 0.02101132440312316,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 3_943_956_480,
        npu_ops: 257_219_887_104,
        requests: &[
            (0, 0, 0, 382_997_332_000, 1_150_131_284_000),
            (1, 0, 1_012_000, 637_969_892_000, 1_609_240_932_000),
            (2, 0, 2_024_000, 1_717_341_220_000, 2_484_263_748_000),
            (3, 0, 3_036_000, 2_250_187_812_000, 3_110_205_172_000),
            (
                4,
                1_150_131_284_000,
                1_150_131_284_000,
                3_119_408_324_000,
                3_886_374_116_000,
            ),
            (
                5,
                1_609_240_932_000,
                1_609_240_932_000,
                3_748_719_460_000,
                4_572_565_588_000,
            ),
            (
                6,
                2_484_263_748_000,
                2_484_263_748_000,
                4_523_915_252_000,
                5_309_692_788_800,
            ),
            (
                7,
                3_110_205_172_000,
                3_110_205_172_000,
                5_210_293_508_800,
                5_762_218_396_000,
            ),
        ],
    };

    /// Same trace, round-robin.
    pub const CLOSED_RR: Scenario = Scenario {
        makespan_ps: 5_752_925_428_000,
        tokens_per_sec: 4.171790561231658,
        p50_s: 0.958820736,
        p99_s: 0.9591197,
        mean_s: 0.9584665193333333,
        queue_mean_s: 7.590000000000001e-7,
        queue_max_s: 3.036e-6,
        flash_util: 0.999999824089498,
        npu_util: 0.0210452649726229,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 3_943_956_480,
        npu_ops: 257_219_887_104,
        requests: &[
            (0, 0, 0, 952_976_372_000, 2_870_617_844_000),
            (1, 0, 1_012_000, 957_303_188_000, 2_874_944_660_000),
            (2, 0, 2_024_000, 958_233_076_000, 2_875_874_548_000),
            (3, 0, 3_036_000, 959_119_700_000, 2_876_761_172_000),
            (
                4,
                2_870_617_844_000,
                2_870_617_844_000,
                3_829_438_580_000,
                5_747_080_052_000,
            ),
            (
                5,
                2_874_944_660_000,
                2_874_944_660_000,
                3_833_765_396_000,
                5_751_152_180_000,
            ),
            (
                6,
                2_875_874_548_000,
                2_875_874_548_000,
                3_834_695_284_000,
                5_752_038_804_000,
            ),
            (
                7,
                2_876_761_172_000,
                2_876_761_172_000,
                3_835_581_908_000,
                5_752_925_428_000,
            ),
        ],
    };

    /// `poisson(8.0, 6, RequestShape::new(640, 4), 2024)`, FCFS.
    pub const OPEN_FCFS: Scenario = Scenario {
        makespan_ps: 5_761_656_395_200,
        tokens_per_sec: 4.165468808586755,
        p50_s: 0.376861296,
        p99_s: 4.411633940382,
        mean_s: 0.8825800922482082,
        queue_mean_s: 0.0,
        queue_max_s: 0.0,
        flash_util: 0.9984844672085488,
        npu_util: 0.014400475541915739,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 2_530_344_960,
        npu_ops: 234_602_102_784,
        requests: &[
            (
                0,
                121_861_045_766,
                121_861_045_766,
                490_397_401_766,
                1_620_349_513_766,
            ),
            (
                1,
                134_647_243_088,
                134_647_243_088,
                793_133_673_766,
                2_278_532_585_766,
            ),
            (
                2,
                178_977_612_372,
                178_977_612_372,
                2_279_419_209_766,
                3_408_739_385_766,
            ),
            (
                3,
                194_416_296_435,
                194_416_296_435,
                2_937_147_161_766,
                4_269_302_153_766,
            ),
            (
                4,
                416_336_576_794,
                416_336_576_794,
                4_067_809_081_766,
                5_284_544_345_766,
            ),
            (
                5,
                516_824_437_384,
                516_824_437_384,
                4_928_458_377_766,
                5_883_517_440_966,
            ),
        ],
    };

    /// Same trace, round-robin.
    pub const OPEN_RR: Scenario = Scenario {
        makespan_ps: 5_753_401_736_000,
        tokens_per_sec: 4.171445190386754,
        p50_s: 1.438231104,
        p99_s: 1.438231104,
        mean_s: 1.3678293714482084,
        queue_mean_s: 0.0,
        queue_max_s: 0.0,
        flash_util: 0.9999170369075718,
        npu_util: 0.01442113653924757,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 2_530_344_960,
        npu_ops: 234_602_102_784,
        requests: &[
            (
                0,
                121_861_045_766,
                121_861_045_766,
                1_247_990_617_766,
                5_562_683_929_766,
            ),
            (
                1,
                134_647_243_088,
                134_647_243_088,
                1_332_463_897_766,
                5_634_620_377_766,
            ),
            (
                2,
                178_977_612_372,
                178_977_612_372,
                1_463_563_017_766,
                5_723_173_017_766,
            ),
            (
                3,
                194_416_296_435,
                194_416_296_435,
                1_498_424_905_766,
                5_741_673_081_766,
            ),
            (
                4,
                416_336_576_794,
                416_336_576_794,
                1_832_362_473_766,
                5_853_554_937_766,
            ),
            (
                5,
                516_824_437_384,
                516_824_437_384,
                1_954_337_737_766,
                5_875_262_781_766,
            ),
        ],
    };
}

fn assert_matches_golden(rep: &ServeReport, g: &golden::Scenario) {
    assert_eq!(rep.makespan, SimTime::from_picos(g.makespan_ps));
    assert_eq!(rep.requests_served, g.requests.len());
    assert_eq!(rep.tokens_per_sec, g.tokens_per_sec);
    assert_eq!(rep.p50_token_latency_s, g.p50_s);
    assert_eq!(rep.p99_token_latency_s, g.p99_s);
    assert_eq!(rep.mean_token_latency_s, g.mean_s);
    assert_eq!(rep.queueing_delay_s.mean(), Some(g.queue_mean_s));
    assert_eq!(rep.queueing_delay_s.max(), Some(g.queue_max_s));
    assert_eq!(rep.flash_utilization, g.flash_util);
    assert_eq!(rep.npu_utilization, g.npu_util);
    assert_eq!(rep.gemv_cache_hits, g.gemv_hits);
    assert_eq!(rep.gemv_cache_misses, g.gemv_misses);
    assert_eq!(rep.traffic.dram_bytes, g.dram_bytes);
    assert_eq!(rep.traffic.npu_ops, g.npu_ops);
    assert_eq!(rep.requests.len(), g.requests.len());
    for (got, &(id, arrived, started, first, finished)) in rep.requests.iter().zip(g.requests) {
        assert_eq!(got.id, id);
        assert_eq!(got.arrived, SimTime::from_picos(arrived), "req {id}");
        assert_eq!(got.started, SimTime::from_picos(started), "req {id}");
        assert_eq!(got.first_token, SimTime::from_picos(first), "req {id}");
        assert_eq!(got.finished, SimTime::from_picos(finished), "req {id}");
    }
    // The traffic invariant behind the scenario: all Llama2-70B weights
    // stream from NAND once per token.
    assert_eq!(rep.traffic.nand_array_bytes, 1_649_116_446_720);
}

#[test]
fn golden_70b_closed_loop_reports_are_unchanged() {
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let trace = ArrivalTrace::closed_loop(4, 2, RequestShape::new(1000, 3));
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::Fcfs),
        &golden::CLOSED_FCFS,
    );
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::RoundRobin),
        &golden::CLOSED_RR,
    );
}

#[test]
fn golden_70b_open_trace_reports_are_unchanged() {
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let trace = ArrivalTrace::poisson(8.0, 6, RequestShape::new(640, 4), 2024);
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::Fcfs),
        &golden::OPEN_FCFS,
    );
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::RoundRobin),
        &golden::OPEN_RR,
    );
}

#[test]
fn op_cost_cache_stats_surface_in_reports() {
    // The memo's effectiveness is visible in every serving report:
    // hits + misses partition the dispatched ops exactly, and misses
    // stay near the distinct-shape count.
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let trace = ArrivalTrace::closed_loop(4, 2, RequestShape::new(1000, 3));
    let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
    let ops_per_token = 80 * 15 + 2; // Llama2-70B plan length
    assert_eq!(
        rep.op_cost_cache_hits + rep.op_cost_cache_misses,
        rep.tokens_served * ops_per_token
    );
    assert!(
        rep.op_cost_cache_misses < 40,
        "{}",
        rep.op_cost_cache_misses
    );
    assert!(rep.summary().contains("op-cost cache"));
}

fn arb_model() -> impl proptest::Strategy<Value = llm_workload::ModelSpec> {
    prop_oneof![
        Just(zoo::opt_6_7b()),
        Just(zoo::opt_13b()),
        Just(zoo::llama2_7b()),
    ]
}

#[test]
fn same_trace_same_report() {
    // Bit-for-bit determinism: the same arrival trace under the same
    // policy yields an identical report, including the virtual-time
    // makespan and every per-request timestamp.
    let shape = RequestShape::new(500, 3);
    let trace = ArrivalTrace::poisson(1.0, 5, shape, 77);
    let engine = ServeEngine::new(SystemConfig::cambricon_m(), zoo::opt_6_7b());
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
        let a = engine.run(&trace, policy);
        let b = engine.run(&trace, policy);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tokens_served, b.tokens_served);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.p50_token_latency_s, b.p50_token_latency_s);
        assert_eq!(a.p99_token_latency_s, b.p99_token_latency_s);
        assert_eq!(a.traffic, b.traffic);
    }
}

#[test]
fn poisson_trace_regenerates_identically() {
    // The trace itself is deterministic in its seed, so two engines fed
    // freshly generated traces agree too.
    let shape = RequestShape::new(400, 2);
    let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
    let a = engine.run(
        &ArrivalTrace::poisson(2.0, 4, shape, 5),
        SchedulePolicy::RoundRobin,
    );
    let b = engine.run(
        &ArrivalTrace::poisson(2.0, 4, shape, 5),
        SchedulePolicy::RoundRobin,
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.requests, b.requests);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At one in-flight request the serving engine serializes every op,
    /// so its aggregate tokens/s must match `System::decode_speed` —
    /// the single-request simulator — up to the context growth the
    /// serving path models (decode_speed holds seq_len fixed while the
    /// engine advances it per token, so allow a tight band).
    #[test]
    fn single_stream_throughput_matches_decode_speed(
        model in arb_model(),
        prompt in 200usize..1500,
        tokens in 1usize..6,
    ) {
        let cfg = SystemConfig::cambricon_s();
        let engine = ServeEngine::new(cfg, model.clone());
        let shape = RequestShape::new(prompt, tokens);
        let rep = engine.run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::Fcfs,
        );

        // Exact check: makespan equals the sum of per-token simulator
        // latencies at the same growing contexts.
        let mut sys = System::new(cfg);
        let mut expected_s = 0.0;
        for i in 0..tokens {
            expected_s += sys.decode_token(&model, prompt + i).total.as_secs_f64();
        }
        let got_s = rep.makespan.as_secs_f64();
        prop_assert!((got_s - expected_s).abs() / expected_s < 1e-12,
            "serve {got_s} vs serial {expected_s}");

        // Band check against the fixed-context headline number.
        let speed = System::new(cfg).decode_speed(&model, prompt);
        let ratio = rep.tokens_per_sec / speed;
        prop_assert!((0.97..1.03).contains(&ratio),
            "serve {} tok/s vs decode_speed {} (ratio {ratio})",
            rep.tokens_per_sec, speed);
    }

    /// Fleet conservation: every request in the trace is served, token
    /// counts add up, and per-request reports are self-consistent.
    #[test]
    fn serve_conserves_requests_and_tokens(
        clients in 1usize..5,
        per_client in 1usize..3,
        tokens in 1usize..4,
    ) {
        let shape = RequestShape::new(300, tokens);
        let trace = ArrivalTrace::closed_loop(clients, per_client, shape);
        let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
        let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
        prop_assert_eq!(rep.requests_served, clients * per_client);
        prop_assert_eq!(rep.tokens_served, (clients * per_client * tokens) as u64);
        for r in &rep.requests {
            prop_assert!(r.arrived <= r.started);
            prop_assert!(r.started < r.first_token);
            prop_assert!(r.first_token <= r.finished);
            prop_assert_eq!(r.tokens, tokens);
        }
    }
}
