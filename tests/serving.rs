//! Integration tests for the multi-request serving engine: determinism
//! across runs, consistency with the single-request simulator, and
//! golden reports pinning the optimized hot path to the original
//! engine's output bit for bit.

use cambricon_llm_repro::prelude::*;
use proptest::prelude::*;
use sim_core::SimTime;

/// Golden values for the 70B serving scenarios, captured from the
/// pre-optimization engine (PR 1's per-token `decode_step` + linear
/// ready-list scan + `sim_core::EventQueue`). The op-stream/cost-cache
/// rewrite must reproduce every field exactly — same virtual
/// timestamps, same utilizations, same traffic, same cache accounting —
/// proving the optimization changed no simulated semantics.
mod golden {
    /// (makespan ps, tokens/s, p50 s, p99 s, mean s, flash util,
    ///  npu util, gemv hits, gemv misses,
    ///  per-request (id, arrived, started, first_token, finished) ps).
    pub struct Scenario {
        pub makespan_ps: u64,
        pub tokens_per_sec: f64,
        pub p50_s: f64,
        pub p99_s: f64,
        pub mean_s: f64,
        pub queue_mean_s: f64,
        pub queue_max_s: f64,
        pub flash_util: f64,
        pub npu_util: f64,
        pub gemv_hits: u64,
        pub gemv_misses: u64,
        pub dram_bytes: u64,
        pub npu_ops: u64,
        pub requests: &'static [(usize, u64, u64, u64, u64)],
    }

    /// `closed_loop(4, 2, RequestShape::new(1000, 3))`, FCFS.
    pub const CLOSED_FCFS: Scenario = Scenario {
        makespan_ps: 5_762_218_396_000,
        tokens_per_sec: 4.165062541999493,
        p50_s: 0.383882944,
        p99_s: 2.250187812,
        mean_s: 0.8137854537,
        queue_mean_s: 7.590000000000001e-7,
        queue_max_s: 3.036e-6,
        flash_util: 0.9983870830014961,
        npu_util: 0.02101132440312316,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 3_943_956_480,
        npu_ops: 257_219_887_104,
        requests: &[
            (0, 0, 0, 382_997_332_000, 1_150_131_284_000),
            (1, 0, 1_012_000, 637_969_892_000, 1_609_240_932_000),
            (2, 0, 2_024_000, 1_717_341_220_000, 2_484_263_748_000),
            (3, 0, 3_036_000, 2_250_187_812_000, 3_110_205_172_000),
            (
                4,
                1_150_131_284_000,
                1_150_131_284_000,
                3_119_408_324_000,
                3_886_374_116_000,
            ),
            (
                5,
                1_609_240_932_000,
                1_609_240_932_000,
                3_748_719_460_000,
                4_572_565_588_000,
            ),
            (
                6,
                2_484_263_748_000,
                2_484_263_748_000,
                4_523_915_252_000,
                5_309_692_788_800,
            ),
            (
                7,
                3_110_205_172_000,
                3_110_205_172_000,
                5_210_293_508_800,
                5_762_218_396_000,
            ),
        ],
    };

    /// Same trace, round-robin.
    pub const CLOSED_RR: Scenario = Scenario {
        makespan_ps: 5_752_925_428_000,
        tokens_per_sec: 4.171790561231658,
        p50_s: 0.958820736,
        p99_s: 0.9591197,
        mean_s: 0.9584665193333333,
        queue_mean_s: 7.590000000000001e-7,
        queue_max_s: 3.036e-6,
        flash_util: 0.999999824089498,
        npu_util: 0.0210452649726229,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 3_943_956_480,
        npu_ops: 257_219_887_104,
        requests: &[
            (0, 0, 0, 952_976_372_000, 2_870_617_844_000),
            (1, 0, 1_012_000, 957_303_188_000, 2_874_944_660_000),
            (2, 0, 2_024_000, 958_233_076_000, 2_875_874_548_000),
            (3, 0, 3_036_000, 959_119_700_000, 2_876_761_172_000),
            (
                4,
                2_870_617_844_000,
                2_870_617_844_000,
                3_829_438_580_000,
                5_747_080_052_000,
            ),
            (
                5,
                2_874_944_660_000,
                2_874_944_660_000,
                3_833_765_396_000,
                5_751_152_180_000,
            ),
            (
                6,
                2_875_874_548_000,
                2_875_874_548_000,
                3_834_695_284_000,
                5_752_038_804_000,
            ),
            (
                7,
                2_876_761_172_000,
                2_876_761_172_000,
                3_835_581_908_000,
                5_752_925_428_000,
            ),
        ],
    };

    /// `poisson(8.0, 6, RequestShape::new(640, 4), 2024)`, FCFS.
    pub const OPEN_FCFS: Scenario = Scenario {
        makespan_ps: 5_761_656_395_200,
        tokens_per_sec: 4.165468808586755,
        p50_s: 0.376861296,
        p99_s: 4.411633940382,
        mean_s: 0.8825800922482082,
        queue_mean_s: 0.0,
        queue_max_s: 0.0,
        flash_util: 0.9984844672085488,
        npu_util: 0.014400475541915739,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 2_530_344_960,
        npu_ops: 234_602_102_784,
        requests: &[
            (
                0,
                121_861_045_766,
                121_861_045_766,
                490_397_401_766,
                1_620_349_513_766,
            ),
            (
                1,
                134_647_243_088,
                134_647_243_088,
                793_133_673_766,
                2_278_532_585_766,
            ),
            (
                2,
                178_977_612_372,
                178_977_612_372,
                2_279_419_209_766,
                3_408_739_385_766,
            ),
            (
                3,
                194_416_296_435,
                194_416_296_435,
                2_937_147_161_766,
                4_269_302_153_766,
            ),
            (
                4,
                416_336_576_794,
                416_336_576_794,
                4_067_809_081_766,
                5_284_544_345_766,
            ),
            (
                5,
                516_824_437_384,
                516_824_437_384,
                4_928_458_377_766,
                5_883_517_440_966,
            ),
        ],
    };

    /// Same trace, round-robin.
    pub const OPEN_RR: Scenario = Scenario {
        makespan_ps: 5_753_401_736_000,
        tokens_per_sec: 4.171445190386754,
        p50_s: 1.438231104,
        p99_s: 1.438231104,
        mean_s: 1.3678293714482084,
        queue_mean_s: 0.0,
        queue_max_s: 0.0,
        flash_util: 0.9999170369075718,
        npu_util: 0.01442113653924757,
        gemv_hits: 13459,
        gemv_misses: 5,
        dram_bytes: 2_530_344_960,
        npu_ops: 234_602_102_784,
        requests: &[
            (
                0,
                121_861_045_766,
                121_861_045_766,
                1_247_990_617_766,
                5_562_683_929_766,
            ),
            (
                1,
                134_647_243_088,
                134_647_243_088,
                1_332_463_897_766,
                5_634_620_377_766,
            ),
            (
                2,
                178_977_612_372,
                178_977_612_372,
                1_463_563_017_766,
                5_723_173_017_766,
            ),
            (
                3,
                194_416_296_435,
                194_416_296_435,
                1_498_424_905_766,
                5_741_673_081_766,
            ),
            (
                4,
                416_336_576_794,
                416_336_576_794,
                1_832_362_473_766,
                5_853_554_937_766,
            ),
            (
                5,
                516_824_437_384,
                516_824_437_384,
                1_954_337_737_766,
                5_875_262_781_766,
            ),
        ],
    };
}

/// Golden values for `ContinuousBatch { max_batch: 4 }` on the same
/// two 70B scenarios, captured at the policy's introduction. These pin
/// the batched scheduler's semantics — lockstep plan walks, one weight
/// stream per step, boundary admission — bit for bit, the same way the
/// FCFS/RR goldens pin the interleaving engine.
mod golden_batched {
    pub struct Scenario {
        pub makespan_ps: u64,
        pub tokens_per_sec: f64,
        pub p50_s: f64,
        pub p99_s: f64,
        pub mean_s: f64,
        pub queue_mean_s: f64,
        pub queue_max_s: f64,
        pub flash_util: f64,
        pub npu_util: f64,
        pub gemv_hits: u64,
        pub gemv_misses: u64,
        pub dram_bytes: u64,
        pub npu_ops: u64,
        /// NAND weight traffic: `makespan_tokens / batch` weight
        /// streams, not one per request-token — the amortization the
        /// policy exists for.
        pub nand_bytes: u64,
        pub mean_occupancy: f64,
        pub peak_occupancy: usize,
        pub requests: &'static [(usize, u64, u64, u64, u64)],
    }

    /// `closed_loop(4, 2, RequestShape::new(1000, 3))`, batch 4.
    pub const CLOSED: Scenario = Scenario {
        makespan_ps: 2_017_847_520_000,
        tokens_per_sec: 11.89386202977319,
        p50_s: 0.33630792,
        p99_s: 0.336325584,
        mean_s: 0.33630792000000004,
        queue_mean_s: 0.0,
        queue_max_s: 0.0,
        flash_util: 0.9399995099728844,
        npu_util: 0.060000490027115626,
        gemv_hits: 3361,
        gemv_misses: 5,
        dram_bytes: 3_943_956_480,
        npu_ops: 257_219_887_104,
        nand_bytes: 412_279_111_680,
        mean_occupancy: 4.0,
        peak_occupancy: 4,
        requests: &[
            (0, 0, 0, 336_290_256_000, 1_008_923_760_000),
            (1, 0, 0, 336_290_256_000, 1_008_923_760_000),
            (2, 0, 0, 336_290_256_000, 1_008_923_760_000),
            (3, 0, 0, 336_290_256_000, 1_008_923_760_000),
            (
                4,
                1_008_923_760_000,
                1_008_923_760_000,
                1_345_214_016_000,
                2_017_847_520_000,
            ),
            (
                5,
                1_008_923_760_000,
                1_008_923_760_000,
                1_345_214_016_000,
                2_017_847_520_000,
            ),
            (
                6,
                1_008_923_760_000,
                1_008_923_760_000,
                1_345_214_016_000,
                2_017_847_520_000,
            ),
            (
                7,
                1_008_923_760_000,
                1_008_923_760_000,
                1_345_214_016_000,
                2_017_847_520_000,
            ),
        ],
    };

    /// `poisson(8.0, 6, RequestShape::new(640, 4), 2024)`, batch 4.
    pub const OPEN: Scenario = Scenario {
        makespan_ps: 2_546_013_632_000,
        tokens_per_sec: 9.426500981122791,
        p50_s: 0.329953296,
        p99_s: 1.414633692382,
        mean_s: 0.41412235478154164,
        queue_mean_s: 0.44892868979283335,
        queue_max_s: 1.168023124382,
        flash_util: 0.9674115680461526,
        npu_util: 0.032588431953847447,
        gemv_hits: 5044,
        gemv_misses: 5,
        dram_bytes: 2_530_344_960,
        npu_ops: 234_602_102_784,
        nand_bytes: 618_418_667_520,
        mean_occupancy: 2.845768099956505,
        peak_occupancy: 4,
        requests: &[
            (
                0,
                121_861_045_766,
                121_861_045_766,
                365_016_713_766,
                1_354_876_601_766,
            ),
            (
                1,
                134_647_243_088,
                365_016_713_766,
                694_952_345_766,
                1_684_847_561_766,
            ),
            (
                2,
                178_977_612_372,
                365_016_713_766,
                694_952_345_766,
                1_684_847_561_766,
            ),
            (
                3,
                194_416_296_435,
                365_016_713_766,
                694_952_345_766,
                1_684_847_561_766,
            ),
            (
                4,
                416_336_576_794,
                1_354_876_601_766,
                1_684_847_561_766,
                2_424_705_761_766,
            ),
            (
                5,
                516_824_437_384,
                1_684_847_561_766,
                1_931_458_129_766,
                2_667_874_677_766,
            ),
        ],
    };
}

/// Golden values for the prefill-enabled serving engine
/// (`PrefillMode::Modeled`), captured at the feature's introduction:
/// the 70B closed loop under FCFS, where every request's prompt runs a
/// prefill stage (NPU GeMMs overlapped with the one-shot weight stream
/// at the effective read bandwidth) that holds both resources. TTFT is
/// arrival-relative and dominated by prefill — a 1000-token 70B prompt
/// is compute-bound on the 2-TOPS NPU — which is exactly the honesty
/// this mode exists for.
mod golden_prefill {
    /// `closed_loop(4, 2, RequestShape::new(1000, 3))`, FCFS, prefill
    /// modeled. Per-request tuples are
    /// `(id, arrived, started, prefill_end, first_token_at, finished)`
    /// in picoseconds.
    pub const MAKESPAN_PS: u64 = 563_602_635_767_200;
    pub const TOKENS_PER_SEC: f64 = 0.042583193329694374;
    pub const TTFT_P50_S: f64 = 211.3290565384;
    pub const TTFT_P99_S: f64 = 281.1701112624;
    pub const TTFT_MEAN_S: f64 = 228.2773156993;
    pub const DECODE_TTFT_MEAN_S: f64 = 79.641982779;
    pub const PREFILL_BUSY_S: f64 = 557.840388;
    pub const QUEUE_MEAN_S: f64 = 78.90528442029999;
    pub const FLASH_UTIL: f64 = 0.9999834575805571;
    pub const NPU_UTIL: f64 = 0.9899908631202177;
    /// 8 requests × one 70B weight-set stream each, on top of the
    /// decode NAND traffic.
    pub const NAND_BYTES: u64 = 2_198_821_928_960;
    pub const DRAM_BYTES: u64 = 660_614_676_480;
    pub const REQUESTS: &[(usize, u64, u64, u64, u64, u64)] = &[
        (
            0,
            0,
            0,
            69_730_048_500_000,
            279_303_191_332_000,
            280_070_325_284_000,
        ),
        (
            1,
            0,
            69_730_048_500_000,
            139_460_097_000_000,
            279_558_163_892_000,
            280_529_434_932_000,
        ),
        (
            2,
            0,
            139_460_097_000_000,
            209_190_145_500_000,
            280_637_535_220_000,
            281_404_187_198_400,
        ),
        (
            3,
            0,
            209_190_145_500_000,
            278_920_194_000_000,
            281_170_111_262_400,
            491_220_231_870_400,
        ),
        (
            4,
            280_070_325_284_000,
            281_404_441_886_400,
            351_134_490_386_400,
            491_230_117_454_400,
            491_997_039_982_400,
        ),
        (
            5,
            280_529_434_932_000,
            351_134_490_386_400,
            420_864_538_886_400,
            491_858_491_470_400,
            492_681_896_152_000,
        ),
        (
            6,
            281_404_187_198_400,
            420_864_538_886_400,
            490_594_587_386_400,
            492_634_383_368_000,
            563_150_110_160_000,
        ),
        (
            7,
            491_220_231_870_400,
            492_682_692_488_000,
            562_412_740_988_000,
            563_050_710_880_000,
            563_602_635_767_200,
        ),
    ];
}

fn assert_matches_golden_batched(rep: &ServeReport, g: &golden_batched::Scenario) {
    assert_eq!(rep.makespan, SimTime::from_picos(g.makespan_ps));
    assert_eq!(rep.tokens_per_sec, g.tokens_per_sec);
    assert_eq!(rep.p50_token_latency_s, g.p50_s);
    assert_eq!(rep.p99_token_latency_s, g.p99_s);
    assert_eq!(rep.mean_token_latency_s, g.mean_s);
    assert_eq!(rep.queueing_delay_s.mean(), Some(g.queue_mean_s));
    assert_eq!(rep.queueing_delay_s.max(), Some(g.queue_max_s));
    assert_eq!(rep.flash_utilization, g.flash_util);
    assert_eq!(rep.npu_utilization, g.npu_util);
    assert_eq!(rep.gemv_cache_hits, g.gemv_hits);
    assert_eq!(rep.gemv_cache_misses, g.gemv_misses);
    assert_eq!(rep.traffic.dram_bytes, g.dram_bytes);
    assert_eq!(rep.traffic.npu_ops, g.npu_ops);
    assert_eq!(rep.traffic.nand_array_bytes, g.nand_bytes);
    assert_eq!(rep.mean_batch_occupancy, g.mean_occupancy);
    assert_eq!(rep.peak_batch_occupancy, g.peak_occupancy);
    assert_eq!(rep.kv_rejections, 0);
    assert_eq!(rep.requests.len(), g.requests.len());
    for (got, &(id, arrived, started, first, finished)) in rep.requests.iter().zip(g.requests) {
        assert_eq!(got.id, id);
        assert_eq!(got.arrived, SimTime::from_picos(arrived), "req {id}");
        assert_eq!(got.started, SimTime::from_picos(started), "req {id}");
        assert_eq!(got.first_token_at, SimTime::from_picos(first), "req {id}");
        assert_eq!(got.finished, SimTime::from_picos(finished), "req {id}");
    }
}

fn assert_matches_golden(rep: &ServeReport, g: &golden::Scenario) {
    assert_eq!(rep.makespan, SimTime::from_picos(g.makespan_ps));
    assert_eq!(rep.requests_served, g.requests.len());
    assert_eq!(rep.tokens_per_sec, g.tokens_per_sec);
    assert_eq!(rep.p50_token_latency_s, g.p50_s);
    assert_eq!(rep.p99_token_latency_s, g.p99_s);
    assert_eq!(rep.mean_token_latency_s, g.mean_s);
    assert_eq!(rep.queueing_delay_s.mean(), Some(g.queue_mean_s));
    assert_eq!(rep.queueing_delay_s.max(), Some(g.queue_max_s));
    assert_eq!(rep.flash_utilization, g.flash_util);
    assert_eq!(rep.npu_utilization, g.npu_util);
    assert_eq!(rep.gemv_cache_hits, g.gemv_hits);
    assert_eq!(rep.gemv_cache_misses, g.gemv_misses);
    assert_eq!(rep.traffic.dram_bytes, g.dram_bytes);
    assert_eq!(rep.traffic.npu_ops, g.npu_ops);
    assert_eq!(rep.requests.len(), g.requests.len());
    for (got, &(id, arrived, started, first, finished)) in rep.requests.iter().zip(g.requests) {
        assert_eq!(got.id, id);
        assert_eq!(got.arrived, SimTime::from_picos(arrived), "req {id}");
        assert_eq!(got.started, SimTime::from_picos(started), "req {id}");
        assert_eq!(got.first_token_at, SimTime::from_picos(first), "req {id}");
        assert_eq!(got.finished, SimTime::from_picos(finished), "req {id}");
    }
    // The traffic invariant behind the scenario: all Llama2-70B weights
    // stream from NAND once per token.
    assert_eq!(rep.traffic.nand_array_bytes, 1_649_116_446_720);
}

#[test]
fn golden_70b_closed_loop_reports_are_unchanged() {
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let trace = ArrivalTrace::closed_loop(4, 2, RequestShape::new(1000, 3));
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::Fcfs),
        &golden::CLOSED_FCFS,
    );
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::RoundRobin),
        &golden::CLOSED_RR,
    );
}

#[test]
fn golden_70b_open_trace_reports_are_unchanged() {
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let trace = ArrivalTrace::poisson(8.0, 6, RequestShape::new(640, 4), 2024);
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::Fcfs),
        &golden::OPEN_FCFS,
    );
    assert_matches_golden(
        &engine.run(&trace, SchedulePolicy::RoundRobin),
        &golden::OPEN_RR,
    );
}

#[test]
fn golden_70b_continuous_batch_reports_are_pinned() {
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let policy = SchedulePolicy::ContinuousBatch { max_batch: 4 };
    assert_matches_golden_batched(
        &engine.run(
            &ArrivalTrace::closed_loop(4, 2, RequestShape::new(1000, 3)),
            policy,
        ),
        &golden_batched::CLOSED,
    );
    assert_matches_golden_batched(
        &engine.run(
            &ArrivalTrace::poisson(8.0, 6, RequestShape::new(640, 4), 2024),
            policy,
        ),
        &golden_batched::OPEN,
    );
}

#[test]
fn golden_70b_prefill_closed_loop_report_is_pinned() {
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b())
        .with_prefill(PrefillMode::Modeled);
    let trace = ArrivalTrace::closed_loop(4, 2, RequestShape::new(1000, 3));
    let rep = engine.run(&trace, SchedulePolicy::Fcfs);
    assert_eq!(rep.prefill, PrefillMode::Modeled);
    assert_eq!(
        rep.makespan,
        SimTime::from_picos(golden_prefill::MAKESPAN_PS)
    );
    assert_eq!(rep.tokens_per_sec, golden_prefill::TOKENS_PER_SEC);
    assert_eq!(rep.ttft_p50_s, golden_prefill::TTFT_P50_S);
    assert_eq!(rep.ttft_p99_s, golden_prefill::TTFT_P99_S);
    assert_eq!(rep.ttft_mean_s, golden_prefill::TTFT_MEAN_S);
    assert_eq!(
        rep.decode_ttft_s.mean(),
        Some(golden_prefill::DECODE_TTFT_MEAN_S)
    );
    assert_eq!(rep.prefill_busy_s, golden_prefill::PREFILL_BUSY_S);
    assert_eq!(
        rep.queueing_delay_s.mean(),
        Some(golden_prefill::QUEUE_MEAN_S)
    );
    assert_eq!(rep.flash_utilization, golden_prefill::FLASH_UTIL);
    assert_eq!(rep.npu_utilization, golden_prefill::NPU_UTIL);
    assert_eq!(rep.traffic.nand_array_bytes, golden_prefill::NAND_BYTES);
    assert_eq!(rep.traffic.dram_bytes, golden_prefill::DRAM_BYTES);
    assert_eq!(rep.requests.len(), golden_prefill::REQUESTS.len());
    for (got, &(id, arrived, started, prefill_end, first, finished)) in
        rep.requests.iter().zip(golden_prefill::REQUESTS)
    {
        assert_eq!(got.id, id);
        assert_eq!(got.arrived, SimTime::from_picos(arrived), "req {id}");
        assert_eq!(got.started, SimTime::from_picos(started), "req {id}");
        assert_eq!(
            got.prefill_end,
            SimTime::from_picos(prefill_end),
            "req {id}"
        );
        assert_eq!(got.first_token_at, SimTime::from_picos(first), "req {id}");
        assert_eq!(got.finished, SimTime::from_picos(finished), "req {id}");
    }
}

#[test]
fn ttft_percentiles_span_queue_wait_and_prefill_under_every_policy() {
    // The acceptance criterion made executable: with prefill modeled, a
    // burst of long-prompt requests pays its prefills in the reported
    // TTFT percentiles under all three policies — every request's TTFT
    // is at least its own prefill time, and the fleet's percentiles sit
    // strictly above the decode-only run's.
    let cfg = SystemConfig::cambricon_s();
    let model = zoo::opt_6_7b();
    let trace = ArrivalTrace::burst(3, RequestShape::new(800, 2));
    let standalone = cambricon_llm::prefill(&cfg, &model, 800).unwrap();
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 3 },
    ] {
        let on = ServeEngine::new(cfg, model.clone())
            .with_prefill(PrefillMode::Modeled)
            .run(&trace, policy);
        let off = ServeEngine::new(cfg, model.clone()).run(&trace, policy);
        assert_eq!(on.requests_served, 3, "{policy:?}");
        for r in &on.requests {
            // State-machine ordering: arrival ≤ start ≤ prefill end ≤
            // first token, and the prefill stage is real work.
            assert!(r.arrived <= r.started, "{policy:?}");
            assert!(r.started <= r.prefill_end, "{policy:?}");
            assert!(r.prefill_end <= r.first_token_at, "{policy:?}");
            assert!(
                r.prefill_time() >= standalone.total,
                "{policy:?}: prefill {} below the standalone model {}",
                r.prefill_time(),
                standalone.total
            );
            assert!(r.ttft() >= r.prefill_time() + r.decode_ttft(), "{policy:?}");
        }
        assert!(
            on.ttft_p50_s > off.ttft_p50_s && on.ttft_p99_s > off.ttft_p99_s,
            "{policy:?}: prefill did not surface in TTFT percentiles"
        );
        assert!(on.prefill_busy_s > 0.0, "{policy:?}");
        assert_eq!(off.prefill_busy_s, 0.0, "{policy:?}");
        // The serving engine charges exactly the standalone phase per
        // request (three requests, one bucket).
        assert!(
            (on.prefill_busy_s - 3.0 * standalone.total.as_secs_f64()).abs() < 1e-9,
            "{policy:?}"
        );
    }
}

#[test]
fn empty_prompts_are_admitted_without_prefill_under_every_policy() {
    // Satellite pin: a zero-length prompt is a legal decode-only
    // request (the standalone model returns a typed error; the engine
    // simply skips the phase) — served under every policy, with and
    // without prefill modeling, no panic, no prefill time booked.
    let trace = ArrivalTrace::burst(2, RequestShape::new(0, 2));
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 2 },
    ] {
        for mode in [PrefillMode::Off, PrefillMode::Modeled] {
            let rep = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
                .with_prefill(mode)
                .run(&trace, policy);
            assert_eq!(rep.requests_served, 2, "{policy:?} {mode:?}");
            assert_eq!(rep.tokens_served, 4, "{policy:?} {mode:?}");
            assert_eq!(rep.prefill_busy_s, 0.0, "{policy:?} {mode:?}");
            for r in &rep.requests {
                assert_eq!(r.prefill_time(), SimTime::ZERO);
                assert_eq!(r.ttft(), r.queueing_delay() + r.decode_ttft());
            }
        }
    }
}

#[test]
fn ttft_is_monotone_in_prompt_length_on_an_idle_engine() {
    // Longer prompts stream the same weights but compute more, and the
    // first decode token prices attention over a longer context — so
    // on an otherwise-idle engine TTFT never decreases with prompt
    // length.
    let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
        .with_prefill(PrefillMode::Modeled);
    let mut last = 0.0;
    for prompt in [0usize, 1, 16, 128, 1024, 4096] {
        let rep = engine.run(
            &ArrivalTrace::burst(1, RequestShape::new(prompt, 1)),
            SchedulePolicy::Fcfs,
        );
        assert!(
            rep.ttft_mean_s >= last,
            "prompt {prompt}: ttft {} < {last}",
            rep.ttft_mean_s
        );
        last = rep.ttft_mean_s;
    }
}

#[test]
fn continuous_batching_beats_fcfs_on_70b_closed_loop() {
    // The tentpole acceptance: at batch >= 4 the batched scheduler
    // sustains strictly higher simulated throughput than FCFS on the
    // 70B scenario, because each batch step streams the 70B weights
    // once for the whole batch instead of once per request-token.
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    for clients in [4usize, 8] {
        let trace = ArrivalTrace::closed_loop(clients, 1, RequestShape::new(1000, 3));
        let fcfs = engine.run(&trace, SchedulePolicy::Fcfs);
        let batched = engine.run(
            &trace,
            SchedulePolicy::ContinuousBatch { max_batch: clients },
        );
        assert!(
            batched.tokens_per_sec > fcfs.tokens_per_sec,
            "batch {clients}: {} <= {}",
            batched.tokens_per_sec,
            fcfs.tokens_per_sec
        );
        // The win is bounded by the in-flash compute ceiling (~2.9x on
        // this hardware — the cores are sized to match the read rate at
        // batch 1), and the whole-batch weight stream shows up in the
        // traffic ledger.
        assert!(batched.tokens_per_sec > 2.0 * fcfs.tokens_per_sec);
        assert!(batched.tokens_per_sec < 4.0 * fcfs.tokens_per_sec);
        assert_eq!(
            batched.traffic.nand_array_bytes * clients as u64,
            fcfs.traffic.nand_array_bytes
        );
        assert_eq!(batched.peak_batch_occupancy, clients);
    }
}

#[test]
fn op_cost_cache_stats_surface_in_reports() {
    // The memo's effectiveness is visible in every serving report:
    // hits + misses partition the dispatched ops exactly, and misses
    // stay near the distinct-shape count.
    let engine = ServeEngine::new(SystemConfig::cambricon_l(), zoo::llama2_70b());
    let trace = ArrivalTrace::closed_loop(4, 2, RequestShape::new(1000, 3));
    let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
    let ops_per_token = 80 * 15 + 2; // Llama2-70B plan length
    assert_eq!(
        rep.op_cost_cache_hits + rep.op_cost_cache_misses,
        rep.tokens_served * ops_per_token
    );
    assert!(
        rep.op_cost_cache_misses < 40,
        "{}",
        rep.op_cost_cache_misses
    );
    assert!(rep.summary().contains("op-cost cache"));
}

fn arb_model() -> impl proptest::Strategy<Value = llm_workload::ModelSpec> {
    prop_oneof![
        Just(zoo::opt_6_7b()),
        Just(zoo::opt_13b()),
        Just(zoo::llama2_7b()),
    ]
}

#[test]
fn same_trace_same_report() {
    // Bit-for-bit determinism: the same arrival trace under the same
    // policy yields an identical report, including the virtual-time
    // makespan and every per-request timestamp.
    let shape = RequestShape::new(500, 3);
    let trace = ArrivalTrace::poisson(1.0, 5, shape, 77);
    let engine = ServeEngine::new(SystemConfig::cambricon_m(), zoo::opt_6_7b());
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
        let a = engine.run(&trace, policy);
        let b = engine.run(&trace, policy);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.tokens_served, b.tokens_served);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.p50_token_latency_s, b.p50_token_latency_s);
        assert_eq!(a.p99_token_latency_s, b.p99_token_latency_s);
        assert_eq!(a.traffic, b.traffic);
    }
}

#[test]
fn poisson_trace_regenerates_identically() {
    // The trace itself is deterministic in its seed, so two engines fed
    // freshly generated traces agree too.
    let shape = RequestShape::new(400, 2);
    let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
    let a = engine.run(
        &ArrivalTrace::poisson(2.0, 4, shape, 5),
        SchedulePolicy::RoundRobin,
    );
    let b = engine.run(
        &ArrivalTrace::poisson(2.0, 4, shape, 5),
        SchedulePolicy::RoundRobin,
    );
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.requests, b.requests);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// At one in-flight request the serving engine serializes every op,
    /// so its aggregate tokens/s must match `System::decode_speed` —
    /// the single-request simulator — up to the context growth the
    /// serving path models (decode_speed holds seq_len fixed while the
    /// engine advances it per token, so allow a tight band).
    #[test]
    fn single_stream_throughput_matches_decode_speed(
        model in arb_model(),
        prompt in 200usize..1500,
        tokens in 1usize..6,
    ) {
        let cfg = SystemConfig::cambricon_s();
        let engine = ServeEngine::new(cfg, model.clone());
        let shape = RequestShape::new(prompt, tokens);
        let rep = engine.run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::Fcfs,
        );

        // Exact check: makespan equals the sum of per-token simulator
        // latencies at the same growing contexts.
        let mut sys = System::new(cfg);
        let mut expected_s = 0.0;
        for i in 0..tokens {
            expected_s += sys.decode_token(&model, prompt + i).total.as_secs_f64();
        }
        let got_s = rep.makespan.as_secs_f64();
        prop_assert!((got_s - expected_s).abs() / expected_s < 1e-12,
            "serve {got_s} vs serial {expected_s}");

        // Band check against the fixed-context headline number.
        let speed = System::new(cfg).decode_speed(&model, prompt);
        let ratio = rep.tokens_per_sec / speed;
        prop_assert!((0.97..1.03).contains(&ratio),
            "serve {} tok/s vs decode_speed {} (ratio {ratio})",
            rep.tokens_per_sec, speed);
    }

    /// Fleet conservation: every request in the trace is served, token
    /// counts add up, and per-request reports are self-consistent.
    #[test]
    fn serve_conserves_requests_and_tokens(
        clients in 1usize..5,
        per_client in 1usize..3,
        tokens in 1usize..4,
    ) {
        let shape = RequestShape::new(300, tokens);
        let trace = ArrivalTrace::closed_loop(clients, per_client, shape);
        let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
        let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
        prop_assert_eq!(rep.requests_served, clients * per_client);
        prop_assert_eq!(rep.tokens_served, (clients * per_client * tokens) as u64);
        for r in &rep.requests {
            prop_assert!(r.arrived <= r.started);
            prop_assert!(r.started < r.first_token_at);
            prop_assert!(r.first_token_at <= r.finished);
            prop_assert_eq!(r.tokens, tokens);
        }
    }

    /// Continuous batching never degrades token latency: under an
    /// identical trace, the fleet's per-token decode latencies are no
    /// worse in aggregate than the FCFS baseline — lockstep steps trade
    /// a few percent on the very first request (it shares its step with
    /// the batch instead of owning the device) for an amortized weight
    /// stream that every other token rides, and at one in-flight
    /// request the two schedules are tick-identical.
    #[test]
    fn batched_token_latencies_never_worse_than_fcfs(
        model in arb_model(),
        n in 1usize..6,
        prompt in 100usize..2000,
        tokens in 1usize..5,
    ) {
        let engine = ServeEngine::new(SystemConfig::cambricon_s(), model);
        let trace = ArrivalTrace::burst(n, RequestShape::new(prompt, tokens));
        let fcfs = engine.run(&trace, SchedulePolicy::Fcfs);
        let batched = engine.run(&trace, SchedulePolicy::ContinuousBatch { max_batch: n });
        prop_assert_eq!(batched.tokens_served, fcfs.tokens_served);
        // Mean is the guaranteed metric. The p99 tail is *not*: when
        // KV reservations force the batch to run in waves, a late
        // wave's first token carries its whole pending wait (counted
        // from arrival, same clock as FCFS) as one large sample, which
        // can exceed FCFS's tail even though every other token is far
        // faster — tail latency traded for throughput, visibly.
        prop_assert!(
            batched.mean_token_latency_s <= fcfs.mean_token_latency_s * (1.0 + 1e-12),
            "batched mean {} > fcfs mean {} (n={n})",
            batched.mean_token_latency_s, fcfs.mean_token_latency_s
        );
        // At one in-flight request the schedules are identical.
        if n == 1 {
            prop_assert_eq!(batched.makespan, fcfs.makespan);
            prop_assert_eq!(batched.p99_token_latency_s, fcfs.p99_token_latency_s);
        }
    }

    /// No report field is ever NaN or infinite, across every policy,
    /// prefill mode and trace shape — including the degenerate empty
    /// trace, whose zero-duration makespan must divide out to 0.0
    /// everywhere.
    #[test]
    fn report_fields_are_always_finite(
        n in 0usize..4,
        prompt in 1usize..1200,
        tokens in 1usize..4,
        policy_ix in 0usize..3,
        max_batch in 1usize..4,
        prefill_ix in 0usize..2,
    ) {
        let policy = [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch },
        ][policy_ix];
        let mode = [PrefillMode::Off, PrefillMode::Modeled][prefill_ix];
        let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_prefill(mode);
        let rep = engine.run(
            &ArrivalTrace::burst(n, RequestShape::new(prompt, tokens)),
            policy,
        );
        for (name, v) in [
            ("tokens_per_sec", rep.tokens_per_sec),
            ("p50", rep.p50_token_latency_s),
            ("p99", rep.p99_token_latency_s),
            ("mean", rep.mean_token_latency_s),
            ("ttft_p50", rep.ttft_p50_s),
            ("ttft_p99", rep.ttft_p99_s),
            ("ttft_mean", rep.ttft_mean_s),
            ("decode_ttft_mean", rep.decode_ttft_s.mean().unwrap_or(0.0)),
            ("prefill_busy", rep.prefill_busy_s),
            ("queue_mean", rep.queueing_delay_s.mean().unwrap_or(0.0)),
            ("queue_max", rep.queueing_delay_s.max().unwrap_or(0.0)),
            ("flash_util", rep.flash_utilization),
            ("npu_util", rep.npu_utilization),
            ("occupancy", rep.mean_batch_occupancy),
        ] {
            prop_assert!(v.is_finite(), "{} = {} not finite ({:?}, n={})", name, v, policy, n);
            prop_assert!(v >= 0.0, "{} = {} negative", name, v);
        }
        // The summary renders without panicking even for empty runs.
        prop_assert!(!rep.summary().contains("NaN"));
    }

    /// Satellite: wiring prefill in can only delay first tokens. For
    /// an arbitrary `(model, quant, trace)` under every policy, each
    /// request's arrival-relative TTFT with `PrefillMode::Modeled` is
    /// at least the TTFT the decode-only engine reports for the same
    /// request — and, within the prefill run, at least its own
    /// decode-only component.
    #[test]
    fn ttft_with_prefill_never_beats_decode_only(
        model in arb_model(),
        quant_ix in 0usize..2,
        n in 1usize..4,
        prompt in 0usize..1500,
        tokens in 1usize..4,
        policy_ix in 0usize..3,
    ) {
        let quant = [Quant::W8A8, Quant::W4A16][quant_ix];
        let policy = [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        ][policy_ix];
        let cfg = SystemConfig::cambricon_s().with_quant(quant);
        let trace = ArrivalTrace::poisson(2.0, n, RequestShape::new(prompt, tokens), 7);
        let on = ServeEngine::new(cfg, model.clone())
            .with_prefill(PrefillMode::Modeled)
            .run(&trace, policy);
        let off = ServeEngine::new(cfg, model).run(&trace, policy);
        prop_assert_eq!(on.requests_served, off.requests_served);
        // Completion order may differ between the runs; match by id.
        let mut on_reqs = on.requests.clone();
        let mut off_reqs = off.requests.clone();
        on_reqs.sort_by_key(|r| r.id);
        off_reqs.sort_by_key(|r| r.id);
        for (a, b) in on_reqs.iter().zip(&off_reqs) {
            prop_assert_eq!(a.id, b.id);
            prop_assert!(
                a.ttft() >= b.ttft(),
                "req {}: ttft {} with prefill beats decode-only {} ({:?})",
                a.id, a.ttft(), b.ttft(), policy
            );
            prop_assert!(a.ttft() >= a.decode_ttft());
            prop_assert!(a.prefill_end <= a.first_token_at);
        }
    }

    /// Satellite: on an otherwise-idle engine, TTFT is monotone in the
    /// prompt length — more prompt means more prefill compute and a
    /// longer first-token context, never less.
    #[test]
    fn ttft_monotone_in_prompt_length(
        model in arb_model(),
        base in 0usize..2000,
        extra in 1usize..2000,
    ) {
        let engine = ServeEngine::new(SystemConfig::cambricon_s(), model)
            .with_prefill(PrefillMode::Modeled);
        let ttft = |p: usize| {
            engine
                .run(
                    &ArrivalTrace::burst(1, RequestShape::new(p, 1)),
                    SchedulePolicy::Fcfs,
                )
                .ttft_mean_s
        };
        let short = ttft(base);
        let long = ttft(base + extra);
        prop_assert!(
            long >= short,
            "ttft({}) = {} < ttft({}) = {}",
            base + extra, long, base, short
        );
    }
}
