//! Property-based integration tests (proptest) over the core invariants.

use cambricon_llm_repro::prelude::*;
use flash_sim::{ChannelEngine, ChannelWorkload, EngineConfig};
use outlier_ecc::measure;
use proptest::prelude::*;
use tiling::{plan_gemv, AlphaInputs, Strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every GeMV plan covers its matrix exactly, for arbitrary sizes.
    #[test]
    fn plan_always_covers_matrix(
        rows in 1usize..40_000,
        cols in 1usize..40_000,
        strat in prop_oneof![
            Just(Strategy::HardwareAware),
            Just(Strategy::FlashOnly),
            Just(Strategy::NpuOnly)
        ],
    ) {
        let inp = AlphaInputs::paper(Topology::cambricon_s());
        let plan = plan_gemv(&inp, rows, cols, strat, None);
        prop_assert_eq!(plan.flash_params + plan.npu_params,
            rows as u64 * cols as u64);
        prop_assert!(plan.alpha_achieved >= 0.0 && plan.alpha_achieved <= 1.0);
        // NPU pages must hold the NPU share.
        let pp = 16 * 1024u64;
        prop_assert!(plan.read_pages_total as u64 * pp >= plan.npu_params);
    }

    /// The flash engine always terminates, moves exactly the requested
    /// bytes, and reports utilization in [0, 1].
    #[test]
    fn engine_conservation(
        rc in 0usize..40,
        reads in 0usize..60,
        input_bytes in 16u64..2048,
        result_bytes in 8u64..256,
    ) {
        let cfg = EngineConfig::paper(Topology::cambricon_s());
        let wl = ChannelWorkload {
            rc_rounds: rc,
            rc_input_bytes: input_bytes,
            rc_result_bytes_per_core: result_bytes,
            ops_per_page: 32768,
            read_pages: reads,
        };
        let rep = ChannelEngine::new(cfg, wl).run();
        prop_assert_eq!(rep.rc_rounds_done, rc);
        prop_assert_eq!(rep.read_pages_done, reads);
        prop_assert_eq!(rep.read_bytes, reads as u64 * 16 * 1024);
        prop_assert_eq!(rep.control_bytes, wl.control_bytes(4));
        prop_assert!(rep.utilization >= 0.0 && rep.utilization <= 1.0);
        prop_assert!(rep.finish >= rep.bus_busy);
    }

    /// More work never finishes meaningfully earlier. Event-driven
    /// schedulers exhibit Graham-style anomalies: extra read chunks can
    /// re-order bus arbitration and shift the last control transfer by
    /// a fraction of a percent, so the bound allows 2% slack — while
    /// bus busy time (real work) must be strictly monotone.
    #[test]
    fn engine_monotone_in_reads(rc in 1usize..25, reads in 0usize..40) {
        let cfg = EngineConfig::paper(Topology::cambricon_s());
        let mk = |r: usize| ChannelWorkload {
            rc_rounds: rc,
            rc_input_bytes: 256,
            rc_result_bytes_per_core: 64,
            ops_per_page: 32768,
            read_pages: r,
        };
        let a = ChannelEngine::new(cfg, mk(reads)).run();
        let b = ChannelEngine::new(cfg, mk(reads + 8)).run();
        prop_assert!(
            b.finish.as_picos() as f64 >= a.finish.as_picos() as f64 * 0.98,
            "{} vs {}", b.finish, a.finish
        );
        prop_assert!(b.bus_busy > a.bus_busy);
    }

    /// ECC round-trip is the identity on uncorrupted pages, for random
    /// weight content.
    #[test]
    fn ecc_clean_roundtrip(seed in 0u64..5000) {
        let codec = PageCodec {
            elems: 4096,
            protect_fraction: 0.01,
            value_copies: 2,
            spare_bytes: 512,
        };
        let weights = accuracy_lab::surrogate::llm_like_page(4096, seed);
        let page = codec.encode(&weights);
        let decoded = codec.decode(&page);
        prop_assert_eq!(&decoded, &weights);
        let r = measure(&weights, &decoded, &codec);
        prop_assert_eq!(r.changed, 0);
    }

    /// Under any single data-byte corruption the decoder never *worsens*
    /// an outlier and never leaves a value above the threshold
    /// unprotected.
    #[test]
    fn ecc_single_corruption_invariants(
        seed in 0u64..2000,
        victim in 0usize..4096,
        flip_bit in 0u32..8,
    ) {
        let codec = PageCodec {
            elems: 4096,
            protect_fraction: 0.01,
            value_copies: 2,
            spare_bytes: 512,
        };
        let weights = accuracy_lab::surrogate::llm_like_page(4096, seed);
        let mut page = codec.encode(&weights);
        page.data[victim] = (page.data[victim] as u8 ^ (1 << flip_bit)) as i8;
        let decoded = codec.decode(&page);
        // Everything except possibly the victim is untouched.
        for i in 0..4096 {
            if i != victim {
                prop_assert_eq!(decoded[i], weights[i], "collateral at {}", i);
            }
        }
        // The victim is either restored, unchanged-but-small, or clamped
        // to zero — never a *new* large magnitude.
        let out = decoded[victim];
        let orig_mag = weights[victim].unsigned_abs();
        let out_mag = out.unsigned_abs();
        prop_assert!(
            out == weights[victim] || out == 0 || out_mag <= orig_mag.max(127 - 1),
        );
    }

    /// Decode latency decreases (speed increases) monotonically with
    /// channel count, arbitrary small topologies.
    #[test]
    fn speed_monotone_in_channels(ch_exp in 0u32..5) {
        let ch = 1usize << ch_exp;
        let a = System::new(SystemConfig::custom(ch, 2))
            .decode_speed(&zoo::opt_6_7b(), 200);
        let b = System::new(SystemConfig::custom(ch * 2, 2))
            .decode_speed(&zoo::opt_6_7b(), 200);
        prop_assert!(b > a, "{} ch {} vs {} ch {}", ch, a, ch * 2, b);
    }

    /// KV cache sizing is exactly linear and quant-consistent.
    #[test]
    fn kv_cache_linearity(seq in 1usize..4000) {
        let m = zoo::llama2_70b();
        let one = llm_workload::kv::kv_cache_bytes(&m, Quant::W8A8, 1);
        let n = llm_workload::kv::kv_cache_bytes(&m, Quant::W8A8, seq);
        prop_assert_eq!(n, one * seq as u64);
        let w4 = llm_workload::kv::kv_cache_bytes(&m, Quant::W4A16, seq);
        prop_assert_eq!(w4, 2 * n);
    }
}
