//! Integration tests for the Monte Carlo serving harness: thread-count
//! determinism, seed hygiene, and estimator consistency.
//!
//! The harness's contract is that an aggregated [`MonteCarloReport`] —
//! per-seed [`ServeReport`]s included, cache counters and all — is a
//! pure function of `(engine, policy, root seed, trace_fn)`. Thread
//! count is a wall-clock knob only. These tests pin that across every
//! scheduling policy and prefill mode, forcing worker counts explicitly
//! because `available_parallelism()` may be 1 on a constrained runner.

use cambricon_llm_repro::prelude::*;
use sim_core::SplitMix64;

fn engine(prefill: PrefillMode) -> ServeEngine {
    ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b()).with_prefill(prefill)
}

fn shape() -> RequestShape {
    RequestShape::new(96, 6)
}

fn trace(seed: u64) -> ArrivalTrace {
    ArrivalTrace::poisson(120.0, 5, shape(), seed)
}

#[test]
fn report_identical_across_thread_counts_all_policies_and_prefill_modes() {
    let policies = [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 4 },
    ];
    let modes = [PrefillMode::Off, PrefillMode::Modeled];
    for policy in policies {
        for mode in modes {
            let eng = engine(mode);
            let run = |threads: usize| {
                MonteCarlo::new(6, 0xABCDE)
                    .with_threads(threads)
                    .run(&eng, policy, trace)
            };
            let single = run(1);
            for threads in [2, 4, 8] {
                let multi = run(threads);
                assert_eq!(
                    single, multi,
                    "{policy:?}/{mode:?}: report differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn per_seed_reports_match_standalone_runs_modulo_cache_counters() {
    // Each seeded run inside the batch must be the run you'd get from
    // `ServeEngine::run` on that seed's trace — the shared warm system
    // changes how much pricing work happens, never what is simulated.
    let eng = engine(PrefillMode::Modeled);
    let policy = SchedulePolicy::ContinuousBatch { max_batch: 4 };
    let mc = MonteCarlo::new(4, 99).with_threads(2);
    let rep = mc.run(&eng, policy, trace);
    for (seed, inside) in SplitMix64::split_seeds(99, 4).iter().zip(&rep.per_seed) {
        let standalone = eng.run(&trace(*seed), policy);
        assert_eq!(standalone.makespan, inside.makespan);
        assert_eq!(standalone.tokens_served, inside.tokens_served);
        assert_eq!(standalone.requests, inside.requests);
        assert_eq!(standalone.traffic, inside.traffic);
        assert_eq!(standalone.mean_batch_occupancy, inside.mean_batch_occupancy);
    }
}

#[test]
fn seed_hygiene_distinct_streams_and_exact_reproduction() {
    // Distinct derived seeds must yield genuinely different arrival
    // processes (different makespans), and the same root must
    // reproduce the whole batch exactly.
    let eng = engine(PrefillMode::Off);
    let a = MonteCarlo::new(5, 7).run(&eng, SchedulePolicy::Fcfs, trace);
    let b = MonteCarlo::new(5, 7).run(&eng, SchedulePolicy::Fcfs, trace);
    assert_eq!(a, b, "same root seed must reproduce the batch bit for bit");

    let mut makespans: Vec<_> = a.per_seed.iter().map(|r| r.makespan).collect();
    makespans.sort_unstable();
    makespans.dedup();
    assert!(
        makespans.len() > 1,
        "derived seeds produced identical traces — stream splitting is broken"
    );

    let c = MonteCarlo::new(5, 8).run(&eng, SchedulePolicy::Fcfs, trace);
    assert_ne!(
        a.seeds, c.seeds,
        "different roots must derive different seeds"
    );
}

#[test]
fn fault_injected_batches_identical_across_worker_counts() {
    // Acceptance: with fault injection on, per-request fault streams
    // fork from the engine's root seed at push order — never from
    // thread-local state — so a Monte Carlo batch is bit-identical at
    // 1, 2, 4, and 8 workers, reliability counters included.
    use flash_sim::FlashAge;
    let fc = FaultConfig::aged(FlashAge::worn_out());
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::ContinuousBatch { max_batch: 4 },
    ] {
        let eng = engine(PrefillMode::Modeled).with_faults(FaultMode::Injected(fc));
        let run = |threads: usize| {
            MonteCarlo::new(6, 0xFA117)
                .with_threads(threads)
                .run(&eng, policy, trace)
        };
        let single = run(1);
        assert!(
            single.page_rereads.mean > 0.0,
            "{policy:?}: worn chip produced no rereads"
        );
        assert!(single.summary().contains("reliability:"));
        for threads in [2, 4, 8] {
            assert_eq!(
                single,
                run(threads),
                "{policy:?}: fault-injected batch differs at {threads} workers"
            );
        }
    }
}

#[test]
fn single_seed_batch_pins_zero_width_estimates() {
    // Satellite: n = 1 is a degenerate but legal batch — every
    // Estimate must report stddev 0 and ci95 0 (not NaN from an n-1
    // division), for the serving metrics and the reliability metrics.
    use flash_sim::FlashAge;
    let eng = engine(PrefillMode::Modeled)
        .with_faults(FaultMode::Injected(FaultConfig::aged(FlashAge::worn_out())));
    let rep = MonteCarlo::new(1, 42).run(&eng, SchedulePolicy::Fcfs, trace);
    for (name, est) in [
        ("throughput", &rep.throughput),
        ("ttft_p50", &rep.ttft_p50_s),
        ("ttft_p99", &rep.ttft_p99_s),
        ("latency_p50", &rep.token_latency_p50_s),
        ("latency_p99", &rep.token_latency_p99_s),
        ("latency_mean", &rep.token_latency_mean_s),
        ("occupancy", &rep.batch_occupancy),
        ("kv_rejections", &rep.kv_rejections),
        ("page_rereads", &rep.page_rereads),
        ("uncorrectable", &rep.uncorrectable_events),
        ("sheds", &rep.deadline_sheds),
        ("goodput", &rep.goodput_tps),
    ] {
        assert_eq!(est.n, 1, "{name}");
        assert_eq!(est.stddev, 0.0, "{name}: nonzero stddev from one sample");
        assert_eq!(est.ci95, 0.0, "{name}: nonzero ci95 from one sample");
        assert!(est.mean.is_finite(), "{name}");
    }
    assert_eq!(rep.per_seed.len(), 1);
}

#[test]
fn estimates_aggregate_the_per_seed_reports() {
    let eng = engine(PrefillMode::Off);
    let rep = MonteCarlo::new(8, 3).run(&eng, SchedulePolicy::RoundRobin, trace);
    assert_eq!(rep.per_seed.len(), 8);
    assert_eq!(rep.throughput.n, 8);
    let mean: f64 = rep.per_seed.iter().map(|r| r.tokens_per_sec).sum::<f64>() / 8.0;
    assert!((rep.throughput.mean - mean).abs() < 1e-9);
    assert!(rep.throughput.ci95 >= 0.0);
    assert_eq!(
        rep.tokens_served,
        rep.per_seed.iter().map(|r| r.tokens_served).sum::<u64>()
    );
    // Non-batched policy: occupancy is identically zero, so the spread
    // collapses too.
    assert_eq!(rep.batch_occupancy.mean, 0.0);
    assert_eq!(rep.batch_occupancy.stddev, 0.0);
    assert!(!rep.summary().is_empty());
}
