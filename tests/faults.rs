//! Integration tests for fault-injected serving: the `FaultMode::Off`
//! no-op guarantee, fault-on latency dominance, deterministic replay,
//! deadline shedding, and graceful degradation under wear.

use cambricon_llm_repro::prelude::*;
use flash_sim::FlashAge;
use proptest::prelude::*;
use sim_core::SimTime;

fn engine(prefill: PrefillMode) -> ServeEngine {
    ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b()).with_prefill(prefill)
}

fn policies() -> [SchedulePolicy; 3] {
    [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 4 },
    ]
}

fn trace(seed: u64) -> ArrivalTrace {
    ArrivalTrace::poisson(120.0, 5, RequestShape::new(96, 6), seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `FaultMode::Off` is a true no-op: the report — latencies,
    /// counters, per-request timelines, traffic ledger — equals a build
    /// that never heard of faults, field for field.
    #[test]
    fn fault_mode_off_is_bit_identical_to_no_faults(seed in 0u64..1000) {
        for policy in policies() {
            for mode in [PrefillMode::Off, PrefillMode::Modeled] {
                let plain = engine(mode).run(&trace(seed), policy);
                let off = engine(mode)
                    .with_faults(FaultMode::Off)
                    .run(&trace(seed), policy);
                prop_assert_eq!(&plain, &off, "{:?}/{:?}", policy, mode);
            }
        }
    }

    /// Fault injection only ever adds flash time: with no deadlines
    /// configured (so the request population is identical), every
    /// latency percentile under faults dominates the fault-free run.
    #[test]
    fn fault_on_latencies_dominate_fault_off(seed in 0u64..1000) {
        let fc = FaultConfig::aged(FlashAge::worn_out());
        for policy in policies() {
            for mode in [PrefillMode::Off, PrefillMode::Modeled] {
                let base = engine(mode).run(&trace(seed), policy);
                let faulted = engine(mode)
                    .with_faults(FaultMode::Injected(fc))
                    .run(&trace(seed), policy);
                prop_assert_eq!(base.requests_served, faulted.requests_served);
                prop_assert!(faulted.ttft_p50_s >= base.ttft_p50_s);
                prop_assert!(faulted.ttft_p99_s >= base.ttft_p99_s);
                prop_assert!(faulted.p50_token_latency_s >= base.p50_token_latency_s);
                prop_assert!(faulted.p99_token_latency_s >= base.p99_token_latency_s);
                prop_assert!(faulted.makespan >= base.makespan);
                prop_assert!(faulted.reliability.page_rereads > 0,
                    "worn chip produced no rereads under {:?}/{:?}", policy, mode);
            }
        }
    }
}

#[test]
fn fault_runs_replay_exactly() {
    // Same engine, same trace, same fault seed → bit-identical reports,
    // reliability counters included.
    let fc = FaultConfig::aged(FlashAge::worn_out());
    for policy in policies() {
        let run = || {
            engine(PrefillMode::Modeled)
                .with_faults(FaultMode::Injected(fc))
                .run(&trace(7), policy)
        };
        assert_eq!(run(), run(), "{policy:?}");
    }
}

#[test]
fn deadline_sheds_are_counted_and_distinct_from_kv_rejections() {
    // A worn chip plus a tight total-latency deadline: requests shed
    // mid-decode land in the reliability ledger, not in `kv_rejections`
    // (admission-time capacity) and not among completed requests.
    let fc = FaultConfig::aged(FlashAge::worn_out())
        .with_deadlines(None, Some(SimTime::from_secs_f64(2.0)));
    for policy in policies() {
        let eng = engine(PrefillMode::Modeled).with_faults(FaultMode::Injected(fc));
        let rep = eng.run(&trace(3), policy);
        let rel = &rep.reliability;
        assert!(
            rel.total_sheds() > 0,
            "{policy:?}: worn chip met a 2 s deadline"
        );
        assert_eq!(rel.total_sheds(), rel.ttft_timeouts + rel.deadline_sheds);
        // Sheds never masquerade as KV rejections or completions.
        assert_eq!(rep.kv_rejections, 0, "{policy:?}");
        assert_eq!(rep.requests.len(), rep.requests_served, "{policy:?}");
        assert!(
            rep.requests_served + rel.total_sheds() as usize <= 5 + rel.total_sheds() as usize,
            "{policy:?}"
        );
        // Goodput only counts deadline-meeting completions.
        assert!(rel.goodput_requests as usize <= rep.requests_served);
        assert!(rel.goodput_tokens <= rep.tokens_served);
        assert!(rel.deadline_goodput_tps <= rep.tokens_per_sec);
    }
}

#[test]
fn ttft_deadline_sheds_before_total_deadline() {
    // With only a TTFT deadline configured, every shed is a TTFT
    // timeout; with only a total deadline, none are.
    let worn = FlashAge::worn_out();
    let ttft_only = FaultConfig::aged(worn).with_deadlines(Some(SimTime::from_secs_f64(1.0)), None);
    let total_only =
        FaultConfig::aged(worn).with_deadlines(None, Some(SimTime::from_secs_f64(2.0)));
    let eng = |fc| engine(PrefillMode::Modeled).with_faults(FaultMode::Injected(fc));
    let a = eng(ttft_only).run(&trace(5), SchedulePolicy::Fcfs);
    assert!(a.reliability.ttft_timeouts > 0);
    assert_eq!(a.reliability.deadline_sheds, 0);
    let b = eng(total_only).run(&trace(5), SchedulePolicy::Fcfs);
    assert_eq!(b.reliability.ttft_timeouts, 0);
}

#[test]
fn wear_degrades_gracefully_not_catastrophically() {
    // Fresh → worn: throughput decreases monotonically in wear, but
    // even the worn chip still serves every request (no crash, no
    // starvation) — the graceful-degradation contract.
    let ages = [
        FlashAge::fresh(),
        FlashAge {
            pe_cycles: 1500,
            retention_days: 180.0,
        },
        FlashAge::worn_out(),
    ];
    let mut last_tps = f64::INFINITY;
    for age in ages {
        let eng =
            engine(PrefillMode::Modeled).with_faults(FaultMode::Injected(FaultConfig::aged(age)));
        let rep = eng.run(&trace(11), SchedulePolicy::ContinuousBatch { max_batch: 4 });
        assert_eq!(rep.requests_served, 5, "wear must not drop requests");
        assert!(
            rep.tokens_per_sec <= last_tps,
            "throughput rose with wear: {} > {last_tps}",
            rep.tokens_per_sec
        );
        last_tps = rep.tokens_per_sec;
    }
}

#[test]
fn uncorrectable_events_derate_bandwidth() {
    // A worn chip accumulates uncorrectable reads; each marks a chip
    // degraded and the report exposes the lost bandwidth fraction.
    let eng = engine(PrefillMode::Off)
        .with_faults(FaultMode::Injected(FaultConfig::aged(FlashAge::worn_out())));
    let rel = eng.run(&trace(13), SchedulePolicy::Fcfs).reliability;
    assert!(rel.uncorrectable_events > 0);
    assert!(rel.degraded_chips > 0);
    assert!(rel.degraded_bandwidth_fraction > 0.0 && rel.degraded_bandwidth_fraction < 1.0);
    assert!(rel.fault_extra_flash_s > 0.0);
}

#[test]
fn wear_trajectory_finds_the_slo_cliff() {
    // The wear-trajectory driver: replay traffic day after day, feeding
    // read volume back into the age, until goodput drops below the SLO.
    // A fresh chip starts above the SLO and the driver reports a finite
    // day count for the violation.
    let cfg = SystemConfig::cambricon_s();
    let model = zoo::opt_6_7b();
    let tr = trace(17);
    let base = FaultConfig::default().with_deadlines(None, Some(SimTime::from_secs_f64(20.0)));
    let fresh = ServeEngine::new(cfg, model.clone())
        .with_prefill(PrefillMode::Modeled)
        .with_faults(FaultMode::Injected(base));
    let healthy_tps = fresh
        .run(&tr, SchedulePolicy::Fcfs)
        .reliability
        .deadline_goodput_tps;
    assert!(healthy_tps > 0.0);
    let wt = WearTrajectory {
        start: FlashAge::fresh(),
        days_per_step: 60.0,
        max_days: 3650.0,
        traffic_scale: 2000.0,
        bytes_per_pe: 1 << 30,
        slo_goodput_tps: healthy_tps * 0.5,
        base,
    };
    let rep = wt.run(cfg, &model, PrefillMode::Modeled, &tr, SchedulePolicy::Fcfs);
    assert!(!rep.points.is_empty());
    assert!(rep.points[0].goodput_tps >= wt.slo_goodput_tps);
    let days = rep
        .days_until_slo
        .expect("2000x-amplified traffic never wore the chip out within ten years");
    assert!(days > 0.0 && days <= wt.max_days);
    // RBER grows monotonically along the trajectory.
    for w in rep.points.windows(2) {
        assert!(w[1].rber >= w[0].rber);
    }
    assert!(!rep.summary().is_empty());
}
