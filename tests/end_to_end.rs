//! Cross-crate integration tests: the paper's headline claims.

use cambricon_llm_repro::prelude::*;

const SEQ: usize = 1000;

#[test]
fn headline_70b_speed_on_cambricon_l() {
    // Abstract: "on-device inference of 70B LLMs at a speed of
    // 3.44 token/s".
    let mut sys = System::new(SystemConfig::cambricon_l());
    let speed = sys.decode_speed(&zoo::llama2_70b(), SEQ);
    assert!((2.4..5.0).contains(&speed), "{speed:.2} tok/s");
}

#[test]
fn headline_7b_speed_on_cambricon_l() {
    // Abstract: "7B LLMs at a speed of 36.34 token/s".
    let mut sys = System::new(SystemConfig::cambricon_l());
    let speed = sys.decode_speed(&zoo::opt_6_7b(), SEQ);
    assert!((24.0..48.0).contains(&speed), "{speed:.2} tok/s");
}

#[test]
fn headline_speedup_over_flash_offloading() {
    // Abstract: "over 22× to 45× faster than existing flash-offloading
    // technologies" (Cam-L vs FlexGen-SSD).
    let mut l = System::new(SystemConfig::cambricon_l());
    for model in zoo::opt_family() {
        let ours = l.decode_speed(&model, SEQ);
        let ssd = FlexGen::ssd().decode_speed(&model, SEQ).unwrap();
        let speedup = ours / ssd;
        assert!(
            (15.0..60.0).contains(&speedup),
            "{}: {speedup:.1}x",
            model.name
        );
    }
}

#[test]
fn cam_m_comparable_to_flexgen_dram() {
    // §VIII-A: "Cambricon-LLM-M achieved a speed comparable to
    // Flexgen-DRAM across various tasks".
    let mut m = System::new(SystemConfig::cambricon_m());
    for model in zoo::opt_family() {
        let ours = m.decode_speed(&model, SEQ);
        let dram = FlexGen::dram().decode_speed(&model, SEQ).unwrap();
        let ratio = ours / dram;
        assert!((1.0..8.0).contains(&ratio), "{}: {ratio:.2}", model.name);
    }
}

#[test]
fn cam_s_beats_flexgen_ssd_on_opt67() {
    // §VIII-A's prose says "8.9×", but Figure 9(a)'s own bars
    // (3.56 vs 0.8 tok/s) give 4.45× — we test against the figure.
    let mut s = System::new(SystemConfig::cambricon_s());
    let ours = s.decode_speed(&zoo::opt_6_7b(), SEQ);
    let ssd = FlexGen::ssd().decode_speed(&zoo::opt_6_7b(), SEQ).unwrap();
    let x = ours / ssd;
    assert!((3.2..7.0).contains(&x), "{x:.1}x");
}

#[test]
fn system_ordering_s_m_l() {
    for model in [zoo::opt_6_7b(), zoo::llama2_70b()] {
        let mut s = System::new(SystemConfig::cambricon_s());
        let mut m = System::new(SystemConfig::cambricon_m());
        let mut l = System::new(SystemConfig::cambricon_l());
        let (a, b, c) = (
            s.decode_speed(&model, SEQ),
            m.decode_speed(&model, SEQ),
            l.decode_speed(&model, SEQ),
        );
        assert!(a < b && b < c, "{}: {a:.2} {b:.2} {c:.2}", model.name);
    }
}

#[test]
fn mlc_llm_oom_above_7b_but_beats_cam_s_on_7b() {
    // Figure 9(b): MLC-LLM (4-bit) reaches 7.58 tok/s on Llama2-7B —
    // faster than Cam-S at 8-bit — but OOMs on 13B/70B, which
    // Cambricon-LLM serves fine.
    let mlc7 = MlcLlm::default().decode_speed(&zoo::llama2_7b()).unwrap();
    let mut s = System::new(SystemConfig::cambricon_s());
    let cam7 = s.decode_speed(&zoo::llama2_7b(), SEQ);
    assert!(mlc7 > cam7, "{mlc7} vs {cam7}");
    assert!(MlcLlm::default().decode_speed(&zoo::llama2_70b()).is_err());
    let mut l = System::new(SystemConfig::cambricon_l());
    assert!(l.decode_speed(&zoo::llama2_70b(), SEQ) > 1.0);
}

#[test]
fn w4a16_matches_mlc_on_7b() {
    // §VIII-A: "employing 4-bit quantization in Cambricon-LLM-S as well
    // could improve the inference speed to match the MLC-LLM".
    let mut s4 = System::new(SystemConfig::cambricon_s().with_quant(Quant::W4A16));
    let cam = s4.decode_speed(&zoo::llama2_7b(), SEQ);
    let mlc = MlcLlm::default().decode_speed(&zoo::llama2_7b()).unwrap();
    assert!(cam / mlc > 0.6, "{cam:.2} vs {mlc:.2}");
}

#[test]
fn interactive_threshold_for_70b() {
    // Intro: real-time interactive applications need 3–10 tok/s; the
    // whole point is that Cam-L clears it for 70B.
    let mut l = System::new(SystemConfig::cambricon_l());
    assert!(l.decode_speed(&zoo::llama2_70b(), SEQ) >= 3.0);
    // ...and flash offloading is ~50× short of it.
    assert!(FlexGen::ssd().decode_speed(&zoo::opt_66b(), SEQ).unwrap() < 0.3);
}

#[test]
fn fig16_transfer_reduction_band() {
    // Figure 16(a): Cam-S moves 9.7×–11.6× less data than FlexGen-SSD.
    let mut s = System::new(SystemConfig::cambricon_s());
    for model in [zoo::opt_6_7b(), zoo::opt_30b()] {
        let rep = s.decode_token(&model, SEQ);
        let cam = rep.traffic.transferred_bytes() as f64;
        let flex = (3 * model.weight_bytes(8) + rep.traffic.dram_bytes) as f64;
        let reduction = flex / cam;
        assert!(
            (6.0..14.0).contains(&reduction),
            "{}: {reduction:.1}",
            model.name
        );
    }
}

#[test]
fn energy_ratio_band() {
    // Figure 16(b): Cam-S uses ~67% of FlexGen-SSD's per-token energy.
    let em = EnergyModel::calibrated();
    let mut s = System::new(SystemConfig::cambricon_s());
    let model = zoo::opt_13b();
    let rep = s.decode_token(&model, SEQ);
    let cam = em.cambricon_token_j(&rep.traffic);
    let flex = em.flexgen_ssd_token_j(
        model.weight_bytes(8),
        rep.traffic.dram_bytes,
        2 * model.param_count(),
    );
    let ratio = cam / flex;
    assert!((0.4..0.9).contains(&ratio), "{ratio:.2}");
}
