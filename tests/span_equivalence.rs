//! Span fast-forwarding ≡ per-token stepping, bit for bit.
//!
//! The coalesced span path ([`SpanMode::Coalesced`], the default) is a
//! pure wall-clock optimization: every simulated quantity — virtual
//! timestamps, per-token latency samples, busy time, traffic bytes,
//! cache accounting — is integer arithmetic regrouped, so whole
//! [`ServeReport`]s must compare equal to the per-op reference
//! ([`SpanMode::PerOp`]) under every policy, both prefill modes, and
//! arbitrary traces. Forced-tiny spans (`max_span` 1 and 2) exercise
//! the boundary edge cases: single-token spans, spans cut short by
//! arrivals (the `k = 0` per-op fallback), and closed-loop respawns
//! that make an arrival and a completion simultaneous.

use cambricon_llm_repro::prelude::*;
use llm_workload::RequestArrival;
use proptest::prelude::*;
use sim_core::SimTime;

fn arb_model() -> impl proptest::Strategy<Value = llm_workload::ModelSpec> {
    prop_oneof![
        Just(zoo::opt_6_7b()),
        Just(zoo::opt_13b()),
        Just(zoo::llama2_7b()),
    ]
}

/// The span caps under test: unbounded (the default), plus tiny forced
/// spans that stress the boundary logic.
const SPAN_MODES: [SpanMode; 3] = [
    SpanMode::Coalesced {
        max_span: usize::MAX,
    },
    SpanMode::Coalesced { max_span: 1 },
    SpanMode::Coalesced { max_span: 2 },
];

fn engines(
    model: &llm_workload::ModelSpec,
    prefill: PrefillMode,
    mode: SpanMode,
) -> (ServeEngine, ServeEngine) {
    let cfg = SystemConfig::cambricon_s();
    let reference = ServeEngine::new(cfg, model.clone())
        .with_prefill(prefill)
        .with_span_mode(SpanMode::PerOp);
    let coalesced = ServeEngine::new(cfg, model.clone())
        .with_prefill(prefill)
        .with_span_mode(mode);
    (reference, coalesced)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: for arbitrary traces, every policy and
    /// both prefill modes, the coalesced report equals the per-op
    /// report field for field (`ServeReport: PartialEq` covers every
    /// field, per-request timestamps included).
    #[test]
    fn coalesced_reports_equal_per_op_reports(
        model in arb_model(),
        trace_ix in 0usize..3,
        clients in 1usize..4,
        per_client in 1usize..3,
        prompt in 0usize..1200,
        tokens in 1usize..6,
        rate_tenths in 1u64..80,
        seed in 0u64..1000,
        max_batch in 1usize..4,
        span_ix in 0usize..3,
    ) {
        let shape = RequestShape::new(prompt, tokens);
        let trace = match trace_ix {
            // Closed loop: respawns make arrivals and completions
            // simultaneous at token boundaries.
            0 => ArrivalTrace::closed_loop(clients, per_client, shape),
            // Burst: simultaneous arrivals contend immediately.
            1 => ArrivalTrace::burst(clients * per_client, shape),
            // Poisson: arrivals land at arbitrary mid-token instants.
            _ => ArrivalTrace::poisson(
                rate_tenths as f64 / 10.0,
                clients * per_client,
                shape,
                seed,
            ),
        };
        let mode = SPAN_MODES[span_ix];
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch },
        ] {
            for prefill in [PrefillMode::Off, PrefillMode::Modeled] {
                let (reference, coalesced) = engines(&model, prefill, mode);
                let a = reference.run(&trace, policy);
                let b = coalesced.run(&trace, policy);
                prop_assert_eq!(
                    a,
                    b,
                    "span mode {:?} diverged from per-op under {:?}/{:?}",
                    mode,
                    policy,
                    prefill
                );
            }
        }
    }
}

#[test]
fn arrival_exactly_on_a_token_boundary_is_bit_exact() {
    // The sharpest span edge: an arrival landing exactly on a token
    // boundary (not just near it). Probe a per-op run for a true
    // boundary timestamp, then replay a trace with an arrival pinned
    // to that instant under every policy and span mode.
    let shape = RequestShape::new(300, 4);
    let probe = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
        .with_span_mode(SpanMode::PerOp)
        .run(&ArrivalTrace::burst(1, shape), SchedulePolicy::Fcfs);
    let boundary = probe.requests[0].first_token_at;
    assert!(boundary > SimTime::ZERO);
    let trace = ArrivalTrace::Open(vec![
        RequestArrival {
            at: SimTime::ZERO,
            shape,
        },
        RequestArrival {
            at: boundary,
            shape: RequestShape::new(200, 2),
        },
    ]);
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 2 },
    ] {
        let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::PerOp)
            .run(&trace, policy);
        for mode in SPAN_MODES {
            let coalesced = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
                .with_span_mode(mode)
                .run(&trace, policy);
            assert_eq!(reference, coalesced, "{policy:?} {mode:?}");
        }
    }
}

#[test]
fn long_decode_spans_compress_events_not_results() {
    // The regime the optimization exists for: few scheduling
    // boundaries, many tokens between them. A 2-client closed loop at
    // 96 tokens coalesces nearly everything; results stay identical.
    let trace = ArrivalTrace::closed_loop(2, 1, RequestShape::new(500, 96));
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::ContinuousBatch { max_batch: 2 },
    ] {
        let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::PerOp)
            .run(&trace, policy);
        let coalesced =
            ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b()).run(&trace, policy);
        assert_eq!(reference, coalesced, "{policy:?}");
        assert_eq!(coalesced.tokens_served, 192);
    }
}

#[test]
fn kv_blocked_pending_requests_stay_bit_exact_over_long_spans() {
    // Requests reserving ~3000 KV tokens of the ~7.6k allocation run
    // two at a time while the rest sit pending, blocked on capacity —
    // the regime where spans must keep coalescing (a blocked head can
    // only be admitted at a completion, which is always a span end)
    // yet still retire the waves in the per-op order.
    let shape = RequestShape::new(2990, 40);
    let trace = ArrivalTrace::burst(4, shape);
    let policy = SchedulePolicy::ContinuousBatch { max_batch: 4 };
    let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
        .with_span_mode(SpanMode::PerOp)
        .run(&trace, policy);
    assert_eq!(reference.peak_batch_occupancy, 2);
    for mode in SPAN_MODES {
        let coalesced = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(mode)
            .run(&trace, policy);
        assert_eq!(reference, coalesced, "{mode:?}");
    }
}

#[test]
fn span_cap_of_zero_tokens_panics_at_configuration() {
    let result = std::panic::catch_unwind(|| {
        ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::Coalesced { max_span: 0 })
    });
    assert!(result.is_err(), "max_span: 0 must be rejected");
}
