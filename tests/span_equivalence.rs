//! Span fast-forwarding ≡ per-token stepping, bit for bit.
//!
//! The coalesced span path ([`SpanMode::Coalesced`], the default) is a
//! pure wall-clock optimization: every simulated quantity — virtual
//! timestamps, per-token latency samples, busy time, traffic bytes,
//! cache accounting — is integer arithmetic regrouped, so whole
//! [`ServeReport`]s must compare equal to the per-op reference
//! ([`SpanMode::PerOp`]) under every policy, both prefill modes, and
//! arbitrary traces. Forced-tiny spans (`max_span` 1 and 2) exercise
//! the boundary edge cases: single-token spans, spans cut short by
//! arrivals (the `k = 0` per-op fallback), and closed-loop respawns
//! that make an arrival and a completion simultaneous.
//!
//! The same contract covers the **interleaved replay loop** — active
//! whenever coalescing is on and several decodes overlap (the
//! overloaded regime, where solo spans never fire): the overload
//! matrix below pins FCFS and round-robin at 2–16 clients, both
//! prefill modes, and fault injection on and off to whole-report
//! equality, plus an arrival landing exactly on a mid-run token
//! boundary while decodes overlap.

use cambricon_llm_repro::prelude::*;
use flash_sim::FlashAge;
use llm_workload::RequestArrival;
use proptest::prelude::*;
use sim_core::SimTime;

fn arb_model() -> impl proptest::Strategy<Value = llm_workload::ModelSpec> {
    prop_oneof![
        Just(zoo::opt_6_7b()),
        Just(zoo::opt_13b()),
        Just(zoo::llama2_7b()),
    ]
}

/// The span caps under test: unbounded (the default), plus tiny forced
/// spans that stress the boundary logic.
const SPAN_MODES: [SpanMode; 3] = [
    SpanMode::Coalesced {
        max_span: usize::MAX,
    },
    SpanMode::Coalesced { max_span: 1 },
    SpanMode::Coalesced { max_span: 2 },
];

fn engines(
    model: &llm_workload::ModelSpec,
    prefill: PrefillMode,
    mode: SpanMode,
) -> (ServeEngine, ServeEngine) {
    let cfg = SystemConfig::cambricon_s();
    let reference = ServeEngine::new(cfg, model.clone())
        .with_prefill(prefill)
        .with_span_mode(SpanMode::PerOp);
    let coalesced = ServeEngine::new(cfg, model.clone())
        .with_prefill(prefill)
        .with_span_mode(mode);
    (reference, coalesced)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: for arbitrary traces, every policy and
    /// both prefill modes, the coalesced report equals the per-op
    /// report field for field (`ServeReport: PartialEq` covers every
    /// field, per-request timestamps included).
    #[test]
    fn coalesced_reports_equal_per_op_reports(
        model in arb_model(),
        trace_ix in 0usize..3,
        clients in 1usize..4,
        per_client in 1usize..3,
        prompt in 0usize..1200,
        tokens in 1usize..6,
        rate_tenths in 1u64..80,
        seed in 0u64..1000,
        max_batch in 1usize..4,
        span_ix in 0usize..3,
    ) {
        let shape = RequestShape::new(prompt, tokens);
        let trace = match trace_ix {
            // Closed loop: respawns make arrivals and completions
            // simultaneous at token boundaries.
            0 => ArrivalTrace::closed_loop(clients, per_client, shape),
            // Burst: simultaneous arrivals contend immediately.
            1 => ArrivalTrace::burst(clients * per_client, shape),
            // Poisson: arrivals land at arbitrary mid-token instants.
            _ => ArrivalTrace::poisson(
                rate_tenths as f64 / 10.0,
                clients * per_client,
                shape,
                seed,
            ),
        };
        let mode = SPAN_MODES[span_ix];
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch },
        ] {
            for prefill in [PrefillMode::Off, PrefillMode::Modeled] {
                let (reference, coalesced) = engines(&model, prefill, mode);
                let a = reference.run(&trace, policy);
                let b = coalesced.run(&trace, policy);
                prop_assert_eq!(
                    a,
                    b,
                    "span mode {:?} diverged from per-op under {:?}/{:?}",
                    mode,
                    policy,
                    prefill
                );
            }
        }
    }
}

#[test]
fn arrival_exactly_on_a_token_boundary_is_bit_exact() {
    // The sharpest span edge: an arrival landing exactly on a token
    // boundary (not just near it). Probe a per-op run for a true
    // boundary timestamp, then replay a trace with an arrival pinned
    // to that instant under every policy and span mode.
    let shape = RequestShape::new(300, 4);
    let probe = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
        .with_span_mode(SpanMode::PerOp)
        .run(&ArrivalTrace::burst(1, shape), SchedulePolicy::Fcfs);
    let boundary = probe.requests[0].first_token_at;
    assert!(boundary > SimTime::ZERO);
    let trace = ArrivalTrace::Open(vec![
        RequestArrival {
            at: SimTime::ZERO,
            shape,
        },
        RequestArrival {
            at: boundary,
            shape: RequestShape::new(200, 2),
        },
    ]);
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 2 },
    ] {
        let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::PerOp)
            .run(&trace, policy);
        for mode in SPAN_MODES {
            let coalesced = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
                .with_span_mode(mode)
                .run(&trace, policy);
            assert_eq!(reference, coalesced, "{policy:?} {mode:?}");
        }
    }
}

#[test]
fn long_decode_spans_compress_events_not_results() {
    // The regime the optimization exists for: few scheduling
    // boundaries, many tokens between them. A 2-client closed loop at
    // 96 tokens coalesces nearly everything; results stay identical.
    let trace = ArrivalTrace::closed_loop(2, 1, RequestShape::new(500, 96));
    for policy in [
        SchedulePolicy::Fcfs,
        SchedulePolicy::ContinuousBatch { max_batch: 2 },
    ] {
        let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::PerOp)
            .run(&trace, policy);
        let coalesced =
            ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b()).run(&trace, policy);
        assert_eq!(reference, coalesced, "{policy:?}");
        assert_eq!(coalesced.tokens_served, 192);
    }
}

#[test]
fn kv_blocked_pending_requests_stay_bit_exact_over_long_spans() {
    // Requests reserving ~3000 KV tokens of the ~7.6k allocation run
    // two at a time while the rest sit pending, blocked on capacity —
    // the regime where spans must keep coalescing (a blocked head can
    // only be admitted at a completion, which is always a span end)
    // yet still retire the waves in the per-op order.
    let shape = RequestShape::new(2990, 40);
    let trace = ArrivalTrace::burst(4, shape);
    let policy = SchedulePolicy::ContinuousBatch { max_batch: 4 };
    let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
        .with_span_mode(SpanMode::PerOp)
        .run(&trace, policy);
    assert_eq!(reference.peak_batch_occupancy, 2);
    for mode in SPAN_MODES {
        let coalesced = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(mode)
            .run(&trace, policy);
        assert_eq!(reference, coalesced, "{mode:?}");
    }
}

#[test]
fn interleaved_replay_is_bit_exact_across_the_overload_matrix() {
    // The multi-request steady state the interleaved replay loop
    // serves: 2–16 overlapping decodes, where solo spans never fire
    // and every op completion is a scheduling event. Whole-report
    // equality against the per-op reference across FCFS and
    // round-robin, both prefill modes, fault injection on and off,
    // and every span cap (tiny caps stress replay entry/exit, since
    // the replay loop runs whenever coalescing is on at all). The odd
    // client count exercises rotation order that never realigns with
    // the plan's class runs.
    let model = zoo::opt_6_7b();
    let cfg = SystemConfig::cambricon_s();
    for clients in [2usize, 9, 16] {
        let trace = ArrivalTrace::closed_loop(clients, 1, RequestShape::new(200, 8));
        for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
            for prefill in [PrefillMode::Off, PrefillMode::Modeled] {
                for faulty in [false, true] {
                    let mk = |mode| {
                        let engine = ServeEngine::new(cfg, model.clone())
                            .with_prefill(prefill)
                            .with_span_mode(mode);
                        if faulty {
                            engine.with_faults(FaultMode::Injected(FaultConfig::aged(
                                FlashAge::worn_out(),
                            )))
                        } else {
                            engine
                        }
                    };
                    let reference = mk(SpanMode::PerOp).run(&trace, policy);
                    for mode in SPAN_MODES {
                        let replayed = mk(mode).run(&trace, policy);
                        assert_eq!(
                            reference, replayed,
                            "{clients} clients {policy:?} {prefill:?} faults={faulty} {mode:?}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn admission_boundary_exactly_under_overlapping_decodes_is_bit_exact() {
    // The interleaved-regime sibling of the boundary pin above: with
    // several decodes in flight, probe a real token boundary from a
    // per-op run, then pin an extra arrival to exactly that instant.
    // The replay loop must hand control back at (not after) the tied
    // boundary so the admission pass sees the newcomer in the same
    // order the per-op loop would.
    let shape = RequestShape::new(250, 6);
    let probe_trace = ArrivalTrace::burst(3, shape);
    for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
        let probe = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::PerOp)
            .run(&probe_trace, policy);
        // A mid-run boundary: the last client's first token lands while
        // the other decodes are still in flight.
        let boundary = probe
            .requests
            .iter()
            .map(|r| r.first_token_at)
            .max()
            .expect("probe served requests");
        assert!(boundary > SimTime::ZERO);
        let mut arrivals: Vec<RequestArrival> = (0..3)
            .map(|_| RequestArrival {
                at: SimTime::ZERO,
                shape,
            })
            .collect();
        arrivals.push(RequestArrival {
            at: boundary,
            shape: RequestShape::new(100, 3),
        });
        let trace = ArrivalTrace::Open(arrivals);
        let reference = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::PerOp)
            .run(&trace, policy);
        for mode in SPAN_MODES {
            let replayed = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
                .with_span_mode(mode)
                .run(&trace, policy);
            assert_eq!(reference, replayed, "{policy:?} {mode:?}");
        }
    }
}

#[test]
fn span_cap_of_zero_tokens_panics_at_configuration() {
    let result = std::panic::catch_unwind(|| {
        ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
            .with_span_mode(SpanMode::Coalesced { max_span: 0 })
    });
    assert!(result.is_err(), "max_span: 0 must be rejected");
}
