//! Integration tests for the ablation studies (Figures 12–15).

use cambricon_llm_repro::prelude::*;

const SEQ: usize = 1000;

fn speed(cfg: SystemConfig, model: &llm_workload::ModelSpec) -> f64 {
    System::new(cfg).decode_speed(model, SEQ)
}

#[test]
fn fig12_slicing_speedup_band() {
    // Paper: 1.6×–1.8× from read-request slicing. Accept a generous
    // band around it — the baseline controller model is approximate.
    for model in [zoo::opt_6_7b(), zoo::opt_30b(), zoo::llama2_7b()] {
        let with = speed(SystemConfig::cambricon_s(), &model);
        let without = speed(SystemConfig::cambricon_s().without_read_slice(), &model);
        let gain = with / without;
        assert!((1.2..2.3).contains(&gain), "{}: {gain:.2}", model.name);
    }
}

#[test]
fn fig12_utilization_drops_without_slicing() {
    let model = zoo::opt_13b();
    let a = System::new(SystemConfig::cambricon_s()).decode_token(&model, SEQ);
    let b = System::new(SystemConfig::cambricon_s().without_read_slice()).decode_token(&model, SEQ);
    assert!(a.channel_utilization > 0.6, "{}", a.channel_utilization);
    assert!(
        b.channel_utilization < a.channel_utilization - 0.15,
        "{} vs {}",
        b.channel_utilization,
        a.channel_utilization
    );
}

#[test]
fn fig13_optimal_tile_wins() {
    // Paper: 256×2048 beats 128×4096 by ~17.5% and 4096×128 by ~24.7%
    // on average (Cam-S).
    let shapes = [
        TileShape {
            h_req: 128,
            w_req: 4096,
        },
        TileShape {
            h_req: 4096,
            w_req: 128,
        },
    ];
    for model in [zoo::opt_6_7b(), zoo::llama2_7b()] {
        let ours = speed(SystemConfig::cambricon_s(), &model);
        for ts in shapes {
            let alt = speed(SystemConfig::cambricon_s().with_tile(ts), &model);
            assert!(
                ours >= alt * 0.99,
                "{}: ours {ours:.2} vs {}x{} {alt:.2}",
                model.name,
                ts.h_req,
                ts.w_req
            );
        }
    }
}

#[test]
fn fig14_tiling_speedup_band() {
    // Paper: hardware-aware tiling accelerates 1.3×–1.4×.
    for model in [zoo::opt_6_7b(), zoo::opt_66b(), zoo::llama2_13b()] {
        let with = speed(SystemConfig::cambricon_s(), &model);
        let without = speed(
            SystemConfig::cambricon_s().with_strategy(Strategy::FlashOnly),
            &model,
        );
        let gain = with / without;
        assert!((1.1..1.8).contains(&gain), "{}: {gain:.2}", model.name);
    }
}

#[test]
fn fig14_flash_only_utilization_is_a_few_percent() {
    let model = zoo::opt_6_7b();
    let rep = System::new(SystemConfig::cambricon_s().with_strategy(Strategy::FlashOnly))
        .decode_token(&model, SEQ);
    assert!(
        rep.channel_utilization < 0.08,
        "{}",
        rep.channel_utilization
    );
}

#[test]
fn fig15_chip_scaling_saturates() {
    // Paper: speed grows with chips/channel then flattens — the weights
    // can no longer be spread across all cores and extra chips idle.
    let model = zoo::opt_6_7b();
    let speeds: Vec<f64> = [1usize, 2, 4, 8, 16, 32, 64, 128]
        .iter()
        .map(|&chips| speed(SystemConfig::custom(8, chips), &model))
        .collect();
    // Monotone non-decreasing (within noise)...
    for w in speeds.windows(2) {
        assert!(w[1] >= w[0] * 0.95, "{speeds:?}");
    }
    // ...early doublings scale strongly, the last doubling weakly.
    let early = speeds[1] / speeds[0]; // 1→2 chips
    let late = speeds[7] / speeds[6]; // 64→128 chips
    assert!(early > 1.4, "early {early:.2} {speeds:?}");
    assert!(late < 1.4, "late {late:.2} {speeds:?}");
    assert!(late < early, "late {late:.2} vs early {early:.2}");
}

#[test]
fn fig15_channel_scaling_is_steady() {
    // Paper: performance steadily increases with channel count.
    let model = zoo::opt_6_7b();
    let speeds: Vec<f64> = [1usize, 2, 4, 8, 16, 32]
        .iter()
        .map(|&ch| speed(SystemConfig::custom(ch, 4), &model))
        .collect();
    for w in speeds.windows(2) {
        assert!(w[1] > w[0] * 1.3, "{speeds:?}");
    }
}

#[test]
fn fig15_channel_utilization_declines_with_chips() {
    // Paper Figure 15(c): utilization noticeably decreases when too
    // many chips share a channel (more on-die compute → less weight
    // shipping).
    let model = zoo::opt_6_7b();
    let few = System::new(SystemConfig::custom(8, 2)).decode_token(&model, SEQ);
    let many = System::new(SystemConfig::custom(8, 64)).decode_token(&model, SEQ);
    assert!(
        many.channel_utilization < few.channel_utilization,
        "{} vs {}",
        many.channel_utilization,
        few.channel_utilization
    );
}

#[test]
fn fig11_w4a16_gains_larger_for_larger_models() {
    // Paper §VIII-B: "larger performance improvements occur in larger
    // LLMs".
    let gain = |model: &llm_workload::ModelSpec| {
        let w8 = speed(SystemConfig::cambricon_l(), model);
        let w4 = speed(SystemConfig::cambricon_l().with_quant(Quant::W4A16), model);
        w4 / w8
    };
    let small = gain(&zoo::opt_6_7b());
    let large = gain(&zoo::opt_66b());
    assert!(large > small, "small {small:.2} vs large {large:.2}");
}
