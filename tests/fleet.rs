//! Fleet-scale serving invariants: the single-replica fleet golden
//! (router + interconnect at zero cost must reproduce `ServeEngine`
//! bit for bit), worker-count independence of the merged report, and a
//! proptest pinning the cluster aggregates to the deterministic
//! replica-major merge of the per-replica reports.

use cambricon_llm_repro::prelude::*;
use flash_sim::FlashAge;
use proptest::prelude::*;
use sim_core::{Samples, SimTime};

fn device(prefill: PrefillMode) -> DeviceEngine {
    DeviceEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b()).with_prefill(prefill)
}

fn poisson(rate: f64, n: usize, seed: u64) -> ArrivalTrace {
    ArrivalTrace::poisson(rate, n, RequestShape::new(128, 4), seed)
}

/// A one-replica fleet with a free interconnect and cold per-replica
/// systems is the identity wrapper: every field of its single replica
/// report — virtual timestamps, utilizations, traffic, cache counters —
/// must equal `ServeEngine::run` on the same trace, for every schedule
/// policy and prefill mode. Pins the admission/trace-feeding move from
/// the device loop up to the scheduler boundary as a pure refactor.
#[test]
fn one_replica_fleet_reproduces_serve_engine_bit_for_bit() {
    let policies = [
        SchedulePolicy::Fcfs,
        SchedulePolicy::RoundRobin,
        SchedulePolicy::ContinuousBatch { max_batch: 4 },
    ];
    let trace = poisson(30.0, 10, 42);
    for prefill in [PrefillMode::Off, PrefillMode::Modeled] {
        for policy in policies {
            let solo = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
                .with_prefill(prefill)
                .run(&trace, policy);
            let fleet = FleetEngine::new(device(prefill), 1)
                .with_cold_systems()
                .run(&trace, policy);
            assert_eq!(
                fleet.per_replica[0], solo,
                "fleet wrapper drifted from ServeEngine ({policy:?}, {prefill:?})"
            );
            assert_eq!(fleet.requests_served, solo.requests_served);
            assert_eq!(fleet.tokens_served, solo.tokens_served);
            assert_eq!(fleet.load_imbalance, 1.0);
        }
    }
}

/// Warm-system sharing (the default) may only change cache accounting:
/// every simulated timestamp, utilization, and traffic number must
/// match the cold-system run exactly — the same trade `MonteCarlo`
/// makes when sharing one pre-warmed system across seeds.
#[test]
fn warm_sharing_changes_only_cache_counters() {
    let trace = poisson(40.0, 12, 7);
    let policy = SchedulePolicy::Fcfs;
    let warm = FleetEngine::new(device(PrefillMode::Off), 2).run(&trace, policy);
    let cold = FleetEngine::new(device(PrefillMode::Off), 2)
        .with_cold_systems()
        .run(&trace, policy);
    for (w, c) in warm.per_replica.iter().zip(&cold.per_replica) {
        assert_eq!(
            w.requests, c.requests,
            "timestamps drifted under warm sharing"
        );
        assert_eq!(w.makespan, c.makespan);
        assert_eq!(w.tokens_served, c.tokens_served);
        assert_eq!(w.traffic, c.traffic);
        assert_eq!(w.flash_utilization, c.flash_utilization);
        assert_eq!(w.npu_utilization, c.npu_utilization);
    }
    assert_eq!(warm.makespan, cold.makespan);
    assert_eq!(warm.ttft_p99_s, cold.ttft_p99_s);
    assert_eq!(warm.tokens_per_sec, cold.tokens_per_sec);
}

/// The merged report is bit-identical at any worker-thread count —
/// replica runs are independent between router boundaries and the
/// merge reads them positionally, so threading only trades wall-clock.
/// Faults are on so the per-replica seed derivation is exercised too.
#[test]
fn fleet_report_is_bit_identical_at_any_thread_count() {
    let trace = poisson(60.0, 16, 99);
    let policy = SchedulePolicy::RoundRobin;
    let faults = FaultMode::Injected(FaultConfig::aged(FlashAge::worn_out()));
    let run = |threads: usize| {
        FleetEngine::new(device(PrefillMode::Off).with_faults(faults), 4)
            .with_router(RouterPolicy::LeastLoaded)
            .with_interconnect(Interconnect::symmetric(SimTime::from_micros(20)))
            .with_threads(threads)
            .run(&trace, policy)
    };
    let one = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            run(threads),
            one,
            "report drifted at {threads} worker threads"
        );
    }
}

/// Distinct replicas must draw from distinct fault streams: with
/// faults injected, at least two replicas of a routed fleet should
/// disagree on reread counts or timings (split seeds, not clones).
/// Mid-life wear keeps the per-window ECC failure probability strictly
/// inside (0, 1) — at `worn_out()` it saturates and the reread cascade
/// goes deterministic, which would hide a shared stream.
#[test]
fn fault_streams_differ_across_replicas() {
    let trace = ArrivalTrace::poisson(80.0, 24, RequestShape::new(512, 8), 5);
    let mid_life = FlashAge {
        pe_cycles: 1_200,
        retention_days: 60.0,
    };
    let engine =
        device(PrefillMode::Off).with_faults(FaultMode::Injected(FaultConfig::aged(mid_life)));
    let fleet = FleetEngine::new(engine, 2).run(&trace, SchedulePolicy::Fcfs);
    let a = &fleet.per_replica[0].reliability;
    let b = &fleet.per_replica[1].reliability;
    assert_ne!(
        (a.page_rereads, a.fault_extra_flash_s.to_bits()),
        (b.page_rereads, b.fault_extra_flash_s.to_bits()),
        "replicas replayed the same fault stream"
    );
}

/// Recomputes the replica-major merge of a [`FleetReport`] from its
/// `per_replica` reports, in the exact operation order the engine
/// uses, so equality is bit-for-bit.
fn remerge(report: &FleetReport) -> (usize, u64, u64, SimTime, f64, [f64; 5], f64) {
    let round_trip = report.interconnect.dispatch_hop + report.interconnect.response_hop;
    let mut ttft = Samples::new();
    let mut token_latency = Samples::new();
    let mut first_arrival: Option<SimTime> = None;
    let mut last_response = SimTime::ZERO;
    for rep in &report.per_replica {
        for r in &rep.requests {
            ttft.push((r.ttft() + round_trip).as_secs_f64());
            token_latency.push(r.mean_token_latency().as_secs_f64());
            let at_cluster = r.arrived.saturating_sub(report.interconnect.dispatch_hop);
            first_arrival = Some(first_arrival.map_or(at_cluster, |f| f.min(at_cluster)));
            last_response = last_response.max(r.finished + report.interconnect.response_hop);
        }
    }
    let makespan = first_arrival.map_or(SimTime::ZERO, |f| last_response.saturating_sub(f));
    let horizon = makespan.as_secs_f64();
    let requests: usize = report.per_replica.iter().map(|r| r.requests_served).sum();
    let tokens: u64 = report.per_replica.iter().map(|r| r.tokens_served).sum();
    let goodput: u64 = report
        .per_replica
        .iter()
        .map(|r| r.reliability.goodput_tokens)
        .sum();
    let peak = report
        .per_replica
        .iter()
        .map(|r| r.tokens_served)
        .max()
        .unwrap_or(0);
    let mean = tokens as f64 / report.replicas as f64;
    let imbalance = if mean > 0.0 { peak as f64 / mean } else { 1.0 };
    (
        requests,
        tokens,
        goodput,
        makespan,
        if horizon > 0.0 {
            tokens as f64 / horizon
        } else {
            0.0
        },
        [
            ttft.percentile(50.0).unwrap_or(0.0),
            ttft.percentile(99.0).unwrap_or(0.0),
            ttft.mean().unwrap_or(0.0),
            token_latency.percentile(50.0).unwrap_or(0.0),
            token_latency.percentile(99.0).unwrap_or(0.0),
        ],
        imbalance,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cluster aggregates are a pure function of the per-replica
    /// reports: recomputing the merge must reproduce every aggregate
    /// exactly, for any replica count, router policy, and hop cost.
    #[test]
    fn cluster_aggregates_equal_replica_merge(
        seed in 0u64..1_000,
        n in 4usize..14,
        replicas in 1usize..5,
        router_pick in 0usize..3,
        hop_us in 0u64..100,
    ) {
        let router = match router_pick {
            0 => RouterPolicy::RoundRobin,
            1 => RouterPolicy::LeastLoaded,
            _ => RouterPolicy::SessionAffinity { sessions: 3 },
        };
        let trace = poisson(50.0, n, seed);
        let report = FleetEngine::new(device(PrefillMode::Off), replicas)
            .with_router(router)
            .with_interconnect(Interconnect::symmetric(SimTime::from_micros(hop_us)))
            .run(&trace, SchedulePolicy::Fcfs);

        let (requests, tokens, goodput, makespan, tps, latencies, imbalance) =
            remerge(&report);
        prop_assert_eq!(report.requests_served, requests);
        prop_assert_eq!(report.requests_served, n);
        prop_assert_eq!(report.tokens_served, tokens);
        prop_assert_eq!(report.goodput_tokens, goodput);
        prop_assert_eq!(report.makespan, makespan);
        prop_assert_eq!(report.tokens_per_sec, tps);
        prop_assert_eq!(report.ttft_p50_s, latencies[0]);
        prop_assert_eq!(report.ttft_p99_s, latencies[1]);
        prop_assert_eq!(report.ttft_mean_s, latencies[2]);
        prop_assert_eq!(report.token_latency_p50_s, latencies[3]);
        prop_assert_eq!(report.token_latency_p99_s, latencies[4]);
        prop_assert_eq!(report.load_imbalance, imbalance);
    }
}
