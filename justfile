# Developer entry points; `just --list` shows this menu.

# Build everything in release mode.
build:
    cargo build --release

# The tier-1 verify: release build plus the full test suite.
test: build
    cargo test -q

# Criterion smoke benches (vendored harness: fixed-iteration timings).
bench:
    cargo bench -p bench

# Serving hot-path benchmark: measures simulated-tokens-per-wall-second
# on the 70B serving scenario — round-robin, batched, prefill-enabled,
# the long-decode coalesced variant (span fast-forwarding vs the
# per-op reference loop), the Monte Carlo batch (32 seeded traces
# on one pre-warmed pricing system, aggregate tokens/wall-sec), the
# overloaded-device ladder (2/8/16 clients x FCFS/round-robin, per-op
# reference vs interleaved replay, asserted report-equal), a
# per-stage profile of the 16-client rung, the fault-injected
# reliability variant (goodput-vs-wear ladder plus the wear-trajectory
# days-until-SLO figure at a 1-year age anchor), and the fleet replica
# ladder (one heavy Poisson trace routed across 1..4 device replicas,
# aggregate tokens/wall-sec per rung plus a router-policy
# comparison) — and records the perf trajectory in BENCH_serving.json
# (compare against the committed numbers before and after touching the
# serve/system hot path).
perf:
    cargo run --release -p bench --bin serve_throughput -- --profile --faults 365 --fleet 4

# Regenerate every paper table/figure ("full" for full-resolution sweeps).
repro target="all":
    cargo run --release -p bench --bin repro -- {{target}}

# Format + lint exactly as CI runs them.
lint:
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings
    just simlint

# The determinism lint: self-test the rule corpus, then lint the tree
# (see README "Determinism lint" for the D1–D5 rule catalog).
simlint:
    cargo run --release -p simlint -- --fixtures
    cargo run --release -p simlint

# Auto-format the workspace.
fmt:
    cargo fmt
