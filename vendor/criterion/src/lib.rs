//! A minimal, **offline** shim of the [`criterion`] bench harness.
//!
//! The build environment has no registry access, so the real criterion
//! cannot be vendored. This shim keeps the workspace's `benches/`
//! targets compiling and *running* — each benchmark body executes a
//! small fixed number of iterations and reports wall time per
//! iteration. It is a smoke harness, not a statistics engine: no
//! warm-up, outlier rejection, or HTML reports.
//!
//! Supported surface: `Criterion`, `benchmark_group` (with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`
//! / `finish`), `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! [`criterion`]: https://docs.rs/criterion

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark. Smoke-level on purpose: `cargo test`
/// runs bench targets too, and simulator benches are not cheap.
const ITERS: u32 = 3;

/// The bench context handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), None, &mut f);
        self
    }
}

/// A group of related benchmarks sharing throughput/config settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always smoke-runs.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.throughput, &mut f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        let label = format!("{}/{}", self.name, id.0);
        // Wall-clock measurement is the shim's purpose.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        f(&mut b, input);
        report(
            &label,
            start.elapsed().as_secs_f64(),
            b.iters,
            self.throughput,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Runs `f` a fixed number of times, preventing the result from
    /// being optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            std::hint::black_box(f());
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, tp: Option<Throughput>, f: &mut F) {
    let mut b = Bencher::default();
    // Wall-clock measurement is the shim's purpose.
    #[allow(clippy::disallowed_methods)]
    let start = Instant::now();
    f(&mut b);
    report(label, start.elapsed().as_secs_f64(), b.iters, tp);
}

fn report(label: &str, total_s: f64, iters: u32, tp: Option<Throughput>) {
    let per_iter = if iters > 0 {
        total_s / iters as f64
    } else {
        total_s
    };
    match tp {
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => println!(
            "  {label}: {:.3} ms/iter ({:.1} MiB/s)",
            per_iter * 1e3,
            n as f64 / per_iter / (1 << 20) as f64
        ),
        Some(Throughput::Elements(n)) if per_iter > 0.0 => println!(
            "  {label}: {:.3} ms/iter ({:.0} elem/s)",
            per_iter * 1e3,
            n as f64 / per_iter
        ),
        _ => println!("  {label}: {:.3} ms/iter", per_iter * 1e3),
    }
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Throughput basis for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Declares a group of benchmark functions. Mirrors criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
