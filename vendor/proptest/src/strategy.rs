//! Strategies: deterministic uniform samplers over value domains.

use std::ops::Range;

/// SplitMix64 — the same generator `sim_core::SplitMix64` pins, small
/// enough to duplicate here so this shim stays dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test
        // input generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values for one property-test argument.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// A strategy producing one constant value. Mirrors `proptest::prelude::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

/// Full-domain sampling for a type. Mirrors `proptest::prelude::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types [`any`] can sample over their whole domain.
pub trait ArbitraryValue {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Boxes a strategy for use in [`Union`]; used by `prop_oneof!`.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Uniform choice among strategies with a common value type.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("options", &self.options.len())
            .finish()
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}
