//! A minimal, **offline** shim of the [`proptest`] crate.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the real proptest cannot be vendored. This crate
//! re-implements exactly the API surface the workspace's property tests
//! use, with *deterministic* uniform sampling instead of shrinking and
//! adaptive generation:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0u64..100`), [`any`], [`Just`], [`prop_oneof!`],
//!   and [`collection::vec`].
//!
//! Each test runs `cases` iterations with inputs drawn from a SplitMix64
//! stream seeded from the test's name, so runs are reproducible across
//! machines and invocations. No shrinking is performed: a failing case
//! panics with the ordinary assertion message.
//!
//! [`proptest`]: https://docs.rs/proptest

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, Just, Strategy, TestRng};

/// Runner configuration: how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// FNV-1a over the test name: a stable per-test base seed.
#[doc(hidden)]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Picks uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}
