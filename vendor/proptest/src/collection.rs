//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::{Strategy, TestRng};
use std::ops::Range;

/// A length domain for [`vec`]: either a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
