//! Flash timing parameters and the paper's closed-form timing equations.
//!
//! Table II fixes the paper's parameters: `tR = 30 µs` page array read,
//! a 1000 MT/s 8-bit channel bus (1 GB/s per channel), 16 KB pages.
//! §V-B derives per-request execution times (`trc`, `tr`) and the
//! channel-utilization rate of read-compute requests (`raterc`); those
//! formulas live here so the analytic model and the discrete-event
//! simulator can be cross-checked against each other.

use crate::topology::Topology;
use sim_core::{transfer_time, SimTime};

/// Timing parameters of the flash device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Page array read time (`tR`).
    pub t_r: SimTime,
    /// Data-register → cache-register move time (`tDBSY`-class).
    pub t_move: SimTime,
    /// Page program time (writes happen only at model-load time).
    pub t_prog: SimTime,
    /// Block erase time.
    pub t_erase: SimTime,
    /// Channel bus bandwidth in bytes/second.
    pub channel_bytes_per_sec: u64,
    /// Fixed command/address/DMA-setup overhead added to every bus
    /// transaction (command cycles on the NAND interface).
    pub t_cmd: SimTime,
}

impl Timing {
    /// The paper's Table II timing: tR = 30 µs, 1000 MT/s × 8-bit bus.
    pub fn paper() -> Self {
        Timing {
            t_r: SimTime::from_micros(30),
            t_move: SimTime::from_micros(2),
            t_prog: SimTime::from_micros(600),
            t_erase: SimTime::from_millis(5),
            channel_bytes_per_sec: 1_000_000_000,
            t_cmd: SimTime::from_nanos(300),
        }
    }

    /// Bus time to move `bytes` (excluding command overhead).
    pub fn xfer(&self, bytes: u64) -> SimTime {
        transfer_time(bytes, self.channel_bytes_per_sec)
    }

    /// Bus occupancy for one transaction of `bytes` including command
    /// overhead.
    pub fn bus_occupancy(&self, bytes: u64) -> SimTime {
        self.t_cmd + self.xfer(bytes)
    }
}

/// Compute-core parameters (Figure 4(b): PEs + buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Multiply-accumulate units in the core.
    pub macs: usize,
    /// Core clock in Hz.
    pub freq_hz: u64,
    /// Input-vector buffer capacity in bytes.
    pub input_buf_bytes: usize,
    /// Output-vector buffer capacity in bytes (bounds result backlog).
    pub output_buf_bytes: usize,
}

impl CoreParams {
    /// The paper's core: ~2 MACs are sufficient to keep up with a 16 KB /
    /// 30 µs array read (§IV-B computes 1.6 GOPS for tR = 20 µs); we use
    /// 2 MACs at 0.8 GHz = 3.2 GOPS so compute never throttles the read
    /// pipeline, matching the paper's "computing power must match the
    /// read speed" design rule. Buffers total 2 KB (Table IV).
    pub fn paper() -> Self {
        CoreParams {
            macs: 2,
            freq_hz: 800_000_000,
            input_buf_bytes: 1024,
            output_buf_bytes: 1024,
        }
    }

    /// Sustained throughput in ops/second (1 MAC = 2 ops).
    pub fn ops_per_sec(&self) -> u64 {
        2 * self.macs as u64 * self.freq_hz
    }

    /// Time to run `ops` arithmetic operations.
    pub fn compute_time(&self, ops: u64) -> SimTime {
        transfer_time(ops, self.ops_per_sec())
    }
}

/// The paper's §V-B closed-form request-time model, parameterized by a
/// tile shape. All byte quantities are per the W8A8 default unless the
/// caller scales them.
#[derive(Debug, Clone, Copy)]
pub struct RequestModel {
    /// Tile height (result-vector length), elements.
    pub h_req: usize,
    /// Tile width (input-vector length), elements.
    pub w_req: usize,
    /// Bytes per activation element.
    pub act_bytes: usize,
}

impl RequestModel {
    /// `trc`: execution time of one read-compute request — the array read
    /// plus the input slice transfer on this channel (paper Eq. for trc).
    pub fn t_rc(&self, topo: &Topology, timing: &Timing) -> SimTime {
        let input_bytes = (self.w_req / topo.channels * self.act_bytes) as u64;
        timing.t_r + timing.xfer(input_bytes)
    }

    /// `raterc`: fraction of channel bandwidth consumed by the control
    /// traffic (input + result vectors) of a read-compute request
    /// (paper Eq. for raterc).
    pub fn rate_rc(&self, topo: &Topology, timing: &Timing) -> f64 {
        let bytes = (self.h_req + self.w_req / topo.channels) as f64 * self.act_bytes as f64;
        let window = timing.t_r.as_secs_f64() * timing.channel_bytes_per_sec as f64;
        bytes / window
    }

    /// `tr`: effective service time of one plain read request (a page to
    /// the NPU) given the bandwidth left over by read-compute traffic
    /// (paper Eq. for tr).
    pub fn t_r_read(&self, topo: &Topology, timing: &Timing) -> SimTime {
        let leftover = (1.0 - self.rate_rc(topo, timing)).max(1e-9);
        let secs = topo.page_bytes as f64 / (leftover * timing.channel_bytes_per_sec as f64);
        SimTime::from_secs_f64(secs)
    }

    /// `α`: the proportion of GeMV work assigned to the flash compute
    /// cores so that flash and NPU finish simultaneously.
    ///
    /// The paper prints `α = tr / (tr + trc)`; dimensional analysis (and
    /// reproducing the paper's own end-to-end numbers) requires `trc` to
    /// be the *per-page amortized* read-compute time — each request
    /// retires `ccorenum` pages per channel concurrently — i.e.
    /// `α = tr / (tr + trc / ccorenum)`. We implement the balanced form
    /// and cross-check it against the discrete-event simulator in tests.
    pub fn alpha(&self, topo: &Topology, timing: &Timing) -> f64 {
        let ccore = topo.compute_cores_per_channel() as f64;
        let tr = self.t_r_read(topo, timing).as_secs_f64();
        let trc = self.t_rc(topo, timing).as_secs_f64();
        (ccore * tr) / (ccore * tr + trc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_channel_bandwidth_is_1gbps() {
        let t = Timing::paper();
        // 16 KB page transfer = 16.384 us at 1 GB/s.
        assert_eq!(t.xfer(16 * 1024).as_nanos(), 16_384);
    }

    #[test]
    fn core_keeps_up_with_array_read() {
        // §IV-B design rule: compute for one page must finish within tR.
        let core = CoreParams::paper();
        let page_ops = 2 * 16 * 1024u64; // one MAC per INT8 weight
        assert!(core.compute_time(page_ops) <= Timing::paper().t_r);
    }

    #[test]
    fn paper_example_1_6_gops() {
        // §IV-B: 32K ops in 20 us needs 1.6 GOPS ≈ two MACs.
        let need_ops_per_sec: f64 = 32_768.0 / 20e-6;
        assert!((need_ops_per_sec / 1e9 - 1.638).abs() < 0.01);
        assert!(CoreParams::paper().ops_per_sec() as f64 >= need_ops_per_sec);
    }

    fn s_model() -> (Topology, Timing, RequestModel) {
        let topo = Topology::cambricon_s();
        let timing = Timing::paper();
        // Optimal S tile: Hreq = √(4×16384) = 256, Wreq = 8×256 = 2048.
        let rm = RequestModel {
            h_req: 256,
            w_req: 2048,
            act_bytes: 1,
        };
        (topo, timing, rm)
    }

    #[test]
    fn rate_rc_is_under_6_percent() {
        // §IV-C: read-compute-only traffic keeps the channel ≤ 6% busy.
        let (topo, timing, rm) = s_model();
        let r = rm.rate_rc(&topo, &timing);
        assert!(r > 0.0 && r <= 0.06, "{r}");
    }

    #[test]
    fn t_rc_slightly_above_t_r() {
        let (topo, timing, rm) = s_model();
        let trc = rm.t_rc(&topo, &timing);
        assert!(trc > timing.t_r);
        assert!(trc < timing.t_r + SimTime::from_micros(1));
    }

    #[test]
    fn t_read_above_raw_page_transfer() {
        let (topo, timing, rm) = s_model();
        let tr = rm.t_r_read(&topo, &timing);
        assert!(tr >= timing.xfer(16 * 1024));
        assert!(tr < SimTime::from_micros(18));
    }

    #[test]
    fn alpha_balances_flash_and_npu() {
        let (topo, timing, rm) = s_model();
        let a = rm.alpha(&topo, &timing);
        assert!((0.0..=1.0).contains(&a));
        // For Cam-S the flash should take roughly two-thirds of the work.
        assert!((0.6..0.8).contains(&a), "{a}");
        // Check the balance property directly: time for flash share equals
        // time for NPU share (per channel, N pages of work).
        let n = 10_000.0;
        let ccore = topo.compute_cores_per_channel() as f64;
        let t_flash = a * n / ccore * rm.t_rc(&topo, &timing).as_secs_f64();
        let t_npu = (1.0 - a) * n * rm.t_r_read(&topo, &timing).as_secs_f64();
        assert!((t_flash - t_npu).abs() / t_flash < 1e-9);
    }

    #[test]
    fn bus_occupancy_includes_cmd_overhead() {
        let t = Timing::paper();
        assert_eq!(t.bus_occupancy(0), t.t_cmd);
        assert!(t.bus_occupancy(1024) > t.xfer(1024));
    }
}
