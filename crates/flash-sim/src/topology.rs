//! Flash device topology: channels, chips, dies, planes, pages.
//!
//! Mirrors the hierarchy of Figure 2 in the paper. In Cambricon-LLM every
//! die additionally carries one shared *Compute Core* (Figure 4(b)); the
//! core count is therefore derived as `dies × cores_per_die`.

use std::fmt;

/// Physical organization of the flash device.
///
/// # Examples
///
/// ```
/// use flash_sim::Topology;
///
/// let s = Topology::cambricon_s();
/// assert_eq!(s.channels, 8);
/// assert_eq!(s.compute_cores_per_channel(), 4); // 2 chips × 2 dies × 1 core
/// assert_eq!(s.total_compute_cores(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Independent channels, each with its own 8-bit bus.
    pub channels: usize,
    /// Chips per channel (sharing the channel bus).
    pub chips_per_channel: usize,
    /// Dies per chip.
    pub dies_per_chip: usize,
    /// Planes per die (2 in all paper configurations).
    pub planes_per_die: usize,
    /// Compute cores per die (1 shared core in the paper).
    pub cores_per_die: usize,
    /// Page size in bytes (16 KB in all paper configurations).
    pub page_bytes: usize,
    /// Spare (out-of-band) bytes per page available for ECC storage.
    pub spare_bytes_per_page: usize,
}

impl Topology {
    /// Cambricon-LLM-S: 8 channels × 2 chips (Table II).
    pub fn cambricon_s() -> Self {
        Topology {
            channels: 8,
            chips_per_channel: 2,
            ..Self::paper_common()
        }
    }

    /// Cambricon-LLM-M: 16 channels × 4 chips (Table II).
    pub fn cambricon_m() -> Self {
        Topology {
            channels: 16,
            chips_per_channel: 4,
            ..Self::paper_common()
        }
    }

    /// Cambricon-LLM-L: 32 channels × 8 chips (Table II).
    pub fn cambricon_l() -> Self {
        Topology {
            channels: 32,
            chips_per_channel: 8,
            ..Self::paper_common()
        }
    }

    /// The per-chip organization shared by all Table II configurations:
    /// 2 dies per chip, 2 planes and 1 compute core per die, 16 KB pages
    /// with 1664 B spare.
    fn paper_common() -> Self {
        Topology {
            channels: 1,
            chips_per_channel: 1,
            dies_per_chip: 2,
            planes_per_die: 2,
            cores_per_die: 1,
            page_bytes: 16 * 1024,
            spare_bytes_per_page: 1664,
        }
    }

    /// A custom topology for scalability sweeps (Figure 15); keeps the
    /// paper's per-chip organization.
    pub fn custom(channels: usize, chips_per_channel: usize) -> Self {
        Topology {
            channels,
            chips_per_channel,
            ..Self::paper_common()
        }
    }

    /// Dies on one channel.
    pub fn dies_per_channel(&self) -> usize {
        self.chips_per_channel * self.dies_per_chip
    }

    /// Compute cores attached to one channel (the paper's `ccorenum`).
    pub fn compute_cores_per_channel(&self) -> usize {
        self.dies_per_channel() * self.cores_per_die
    }

    /// Compute cores in the whole device.
    pub fn total_compute_cores(&self) -> usize {
        self.channels * self.compute_cores_per_channel()
    }

    /// Total dies in the device.
    pub fn total_dies(&self) -> usize {
        self.channels * self.dies_per_channel()
    }

    /// Validates the topology.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field (zero counts,
    /// non-power-of-two page size, or spare area too small for the
    /// paper's 722 B ECC payload).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0
            || self.chips_per_channel == 0
            || self.dies_per_chip == 0
            || self.planes_per_die == 0
            || self.cores_per_die == 0
        {
            return Err("topology has a zero-sized level".into());
        }
        if self.page_bytes == 0 || !self.page_bytes.is_power_of_two() {
            return Err(format!("page size {} not a power of two", self.page_bytes));
        }
        Ok(())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}ch x {}chip x {}die x {}plane, {}KB pages",
            self.channels,
            self.chips_per_channel,
            self.dies_per_chip,
            self.planes_per_die,
            self.page_bytes / 1024
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table_ii() {
        let s = Topology::cambricon_s();
        let m = Topology::cambricon_m();
        let l = Topology::cambricon_l();
        assert_eq!((s.channels, s.chips_per_channel), (8, 2));
        assert_eq!((m.channels, m.chips_per_channel), (16, 4));
        assert_eq!((l.channels, l.chips_per_channel), (32, 8));
        for t in [s, m, l] {
            assert_eq!(t.dies_per_chip, 2);
            assert_eq!(t.planes_per_die, 2);
            assert_eq!(t.cores_per_die, 1);
            assert_eq!(t.page_bytes, 16 * 1024);
            t.validate().unwrap();
        }
    }

    #[test]
    fn core_counts() {
        assert_eq!(Topology::cambricon_s().total_compute_cores(), 32);
        assert_eq!(Topology::cambricon_m().total_compute_cores(), 128);
        assert_eq!(Topology::cambricon_l().total_compute_cores(), 512);
    }

    #[test]
    fn custom_keeps_per_chip_shape() {
        let t = Topology::custom(4, 3);
        assert_eq!(t.dies_per_channel(), 6);
        assert_eq!(t.page_bytes, 16 * 1024);
    }

    #[test]
    fn validation_catches_bad_page_size() {
        let mut t = Topology::cambricon_s();
        t.page_bytes = 10_000;
        assert!(t.validate().is_err());
        t.page_bytes = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_levels() {
        let mut t = Topology::cambricon_s();
        t.channels = 0;
        assert!(t.validate().is_err());
    }

    #[test]
    fn display_is_informative() {
        let s = Topology::cambricon_s().to_string();
        assert!(s.contains("8ch"), "{s}");
        assert!(s.contains("16KB"), "{s}");
    }
}
