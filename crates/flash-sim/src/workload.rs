//! Per-channel workload descriptions submitted to the flash engine.
//!
//! The system layer (crate `cambricon-llm`) translates each weight-GeMV
//! into one [`ChannelWorkload`] per channel: a number of read-compute
//! *rounds* (every compute core on the channel retires one page-sized
//! atomic tile per round) plus a number of plain read pages destined for
//! the NPU (the hardware-aware-tiling remainder).

use crate::slice::SlicePolicy;

// `SlicePolicy` participates in `EngineConfig` below.

/// Work to execute on a single flash channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelWorkload {
    /// Read-compute rounds. Each round processes one page per compute
    /// core on this channel (one atomic tile per core).
    pub rc_rounds: usize,
    /// Input-vector bytes broadcast over the channel per round
    /// (`Wreq / channelnum × act_bytes`).
    pub rc_input_bytes: u64,
    /// Result-vector bytes returned per core per round
    /// (`Hreq / ccorenum × act_bytes`).
    pub rc_result_bytes_per_core: u64,
    /// Arithmetic operations per page of weights (2 ops per weight).
    pub ops_per_page: u64,
    /// Plain read pages to stream to the NPU over this channel.
    pub read_pages: usize,
}

impl ChannelWorkload {
    /// A workload with only read-compute traffic (the "without
    /// hardware-aware tiling" ablation of Figure 14 — flash does all
    /// GeMV work, nothing is offloaded to the NPU).
    pub fn rc_only(
        rc_rounds: usize,
        input_bytes: u64,
        result_bytes_per_core: u64,
        ops_per_page: u64,
    ) -> Self {
        ChannelWorkload {
            rc_rounds,
            rc_input_bytes: input_bytes,
            rc_result_bytes_per_core: result_bytes_per_core,
            ops_per_page,
            read_pages: 0,
        }
    }

    /// A workload with only plain reads (a conventional flash-offloading
    /// device with no on-die compute).
    pub fn read_only(read_pages: usize) -> Self {
        ChannelWorkload {
            rc_rounds: 0,
            rc_input_bytes: 0,
            rc_result_bytes_per_core: 0,
            ops_per_page: 0,
            read_pages,
        }
    }

    /// Whether there is nothing to do.
    pub fn is_empty(&self) -> bool {
        self.rc_rounds == 0 && self.read_pages == 0
    }

    /// Total control-transfer bytes (inputs broadcast + results) this
    /// workload will move over the channel, given `cores` per channel.
    pub fn control_bytes(&self, cores: usize) -> u64 {
        self.rc_rounds as u64 * (self.rc_input_bytes + self.rc_result_bytes_per_core * cores as u64)
    }

    /// Total plain-read bytes moved, given the page size.
    pub fn read_bytes(&self, page_bytes: usize) -> u64 {
        self.read_pages as u64 * page_bytes as u64
    }
}

/// Full engine configuration for one run.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Device topology.
    pub topology: crate::Topology,
    /// Timing parameters.
    pub timing: crate::Timing,
    /// Compute-core parameters.
    pub core: crate::CoreParams,
    /// Slice-control policy for plain reads.
    pub slice: SlicePolicy,
    /// How many rounds of input vectors may be in flight ahead of the
    /// oldest uncomputed round (double-buffering in the 2 KB core
    /// buffers → 2).
    pub input_prefetch: usize,
}

impl EngineConfig {
    /// Paper-default configuration on the given topology.
    pub fn paper(topology: crate::Topology) -> Self {
        EngineConfig {
            topology,
            timing: crate::Timing::paper(),
            core: crate::CoreParams::paper(),
            slice: SlicePolicy::default(),
            input_prefetch: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    #[test]
    fn byte_accounting() {
        let w = ChannelWorkload {
            rc_rounds: 10,
            rc_input_bytes: 256,
            rc_result_bytes_per_core: 64,
            ops_per_page: 32768,
            read_pages: 5,
        };
        assert_eq!(w.control_bytes(4), 10 * (256 + 64 * 4));
        assert_eq!(w.read_bytes(16384), 5 * 16384);
        assert!(!w.is_empty());
    }

    #[test]
    fn constructors() {
        assert_eq!(ChannelWorkload::read_only(3).rc_rounds, 0);
        assert_eq!(ChannelWorkload::rc_only(3, 1, 2, 4).read_pages, 0);
        assert!(ChannelWorkload::read_only(0).is_empty());
    }

    #[test]
    fn paper_config_defaults() {
        let cfg = EngineConfig::paper(Topology::cambricon_s());
        assert_eq!(cfg.input_prefetch, 2);
        assert!(cfg.slice.is_sliced());
    }
}
