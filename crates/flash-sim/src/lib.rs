//! # flash-sim — NAND flash device simulator with on-die compute
//!
//! A discrete-event model of the Cambricon-LLM flash chip (paper §IV):
//! the channel/chip/die/plane hierarchy of Figure 2, the per-die shared
//! Compute Core and register pipeline of Figure 4(b), the novel
//! *read-compute* request, and the Slice Control of §IV-C that interposes
//! sliced plain-read traffic in the channel bubbles.
//!
//! This plays the role SSDsim (extended with Read-Compute commands)
//! plays in the paper's evaluation.
//!
//! ## Example
//!
//! ```
//! use flash_sim::{ChannelWorkload, EngineConfig, FlashDevice, Topology};
//!
//! // Cambricon-LLM-S: 8 channels × 2 chips × 2 dies.
//! let dev = FlashDevice::new(EngineConfig::paper(Topology::cambricon_s()));
//! // 100 read-compute rounds (one 16 KB page per core per round) plus
//! // 170 plain-read pages streamed to the NPU per channel.
//! let rep = dev.run_uniform(ChannelWorkload {
//!     rc_rounds: 100,
//!     rc_input_bytes: 256,
//!     rc_result_bytes_per_core: 64,
//!     ops_per_page: 2 * 16 * 1024,
//!     read_pages: 170,
//! });
//! // Sliced reads ride in the read-compute bubbles: the run takes about
//! // 100 × tR = 3 ms rather than serializing.
//! assert!(rep.finish.as_secs_f64() < 3.6e-3);
//! assert!(rep.mean_utilization > 0.8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aging;
pub mod device;
pub mod engine;
pub mod provision;
pub mod report;
pub mod slice;
pub mod timing;
pub mod topology;
pub mod workload;

pub use aging::{BerModel, FlashAge};
pub use device::FlashDevice;
pub use engine::ChannelEngine;
pub use provision::{bulk_load, ProvisionReport};
pub use report::{ChannelReport, DeviceReport};
pub use slice::SlicePolicy;
pub use timing::{CoreParams, RequestModel, Timing};
pub use topology::Topology;
pub use workload::{ChannelWorkload, EngineConfig};
