//! The discrete-event flash channel engine.
//!
//! One [`ChannelEngine`] simulates a single flash channel with its chips,
//! dies, planes, registers, shared compute cores and the channel bus,
//! executing a [`ChannelWorkload`] (read-compute rounds + plain reads).
//! Channels in the device are symmetric and independent for the paper's
//! workloads, so [`FlashDevice`](crate::device::FlashDevice) runs one
//! engine per distinct per-channel workload.
//!
//! ## Pipeline model
//!
//! Per die (Figure 4(b)):
//!
//! * **Plane 0** feeds the read-compute stream: `array read (tR)` →
//!   `data register` → `move (t_move)` → `cache register` → compute core.
//! * **Plane 1** feeds plain reads to the NPU: `array read` → `data reg`
//!   → `move` → `cache register` → channel transfer (sliced or whole).
//! * The **compute core** (one per die, shared by the planes) consumes
//!   one cache-register page per round; it requires that round's input
//!   vector (broadcast over the channel) and a free output-buffer slot.
//!
//! The **channel bus** serves three transfer kinds: round input
//! broadcasts, per-core result vectors, and read-page data. Under
//! [`SlicePolicy::Sliced`] control transfers have priority and read data
//! moves in small chunks that fill the bubbles (§IV-C); under
//! [`SlicePolicy::Unsliced`] everything is served FIFO and a page
//! transfer is one monolithic bus transaction, reproducing the blocking
//! behaviour of Figure 6(b).

use crate::report::ChannelReport;
use crate::workload::{ChannelWorkload, EngineConfig};
use sim_core::{BusyTracker, EventQueue, SimTime};
use std::collections::VecDeque;

/// Events inside one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// A NAND array read finished on (die, plane-role).
    ArrayReadDone { die: usize, rc: bool },
    /// A data→cache register move finished on (die, plane-role).
    MoveDone { die: usize, rc: bool },
    /// The compute core of `die` finished a round.
    ComputeDone { die: usize },
    /// The current bus transaction completed.
    BusFree,
}

/// A bus transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Xfer {
    /// Input-vector broadcast for round `round`.
    RcInput { round: usize },
    /// Result vector of `die` (one per round per core).
    RcResult { die: usize },
    /// `bytes` of read-page data from `die`; `last` closes the page.
    ReadChunk { die: usize, bytes: u64, last: bool },
}

/// One plane's register pipeline over a fixed in-order page stream.
#[derive(Debug, Default, Clone)]
struct PlanePipe {
    /// Pages this stream must process.
    total: usize,
    /// Array reads started.
    started: usize,
    /// Page index currently being read from the array.
    reading: Option<usize>,
    /// Page index sitting in the data register.
    data_reg: Option<usize>,
    /// Page index moving from data to cache register.
    moving: Option<usize>,
    /// Page index held in the cache register.
    cache_reg: Option<usize>,
}

impl PlanePipe {
    fn new(total: usize) -> Self {
        PlanePipe {
            total,
            ..Default::default()
        }
    }
    fn exhausted(&self) -> bool {
        self.started == self.total
            && self.reading.is_none()
            && self.data_reg.is_none()
            && self.moving.is_none()
            && self.cache_reg.is_none()
    }
}

#[derive(Debug)]
struct DieState {
    /// Read-compute pipeline (plane 0).
    rc: PlanePipe,
    /// Plain-read pipeline (plane 1).
    rd: PlanePipe,
    /// Core busy with a round.
    core_busy: bool,
    /// Next round the core will execute.
    next_round: usize,
    /// Results sitting in the output buffer / in flight on the bus.
    pending_results: usize,
    /// A read-page transfer (possibly chunked) is in progress.
    rd_transfer_active: bool,
    /// Bytes of the active read page not yet queued on the bus.
    rd_bytes_left: u64,
    /// Plain-read pages fully delivered.
    rd_pages_done: usize,
}

/// Discrete-event simulator of a single flash channel.
#[derive(Debug)]
pub struct ChannelEngine {
    cfg: EngineConfig,
    wl: ChannelWorkload,
    q: EventQueue<Ev>,
    dies: Vec<DieState>,
    /// Input rounds whose broadcast transfer has been queued.
    inputs_queued: usize,
    /// Input rounds fully arrived at the cores.
    inputs_arrived: usize,
    /// Completed result transfers (rc retirement condition).
    results_done: usize,
    /// Bus state.
    bus_inflight: Option<(Xfer, SimTime)>, // (transfer, start time)
    control_q: VecDeque<Xfer>,
    fifo_q: VecDeque<Xfer>,
    read_rr: usize, // round-robin pointer over dies for sliced reads
    bus: BusyTracker,
    control_bytes: u64,
    read_bytes: u64,
    rc_finish: SimTime,
    read_finish: SimTime,
    out_slots: usize,
    t_compute: SimTime,
}

impl ChannelEngine {
    /// Creates an engine for one channel.
    ///
    /// # Panics
    ///
    /// Panics if the topology is invalid, `input_prefetch == 0`, or the
    /// output buffer cannot hold a single result vector.
    pub fn new(cfg: EngineConfig, wl: ChannelWorkload) -> Self {
        cfg.topology.validate().expect("invalid topology");
        assert!(cfg.input_prefetch >= 1, "input_prefetch must be >= 1");
        let dies_n = cfg.topology.dies_per_channel();
        let mut out_slots =
            match (cfg.core.output_buf_bytes as u64).checked_div(wl.rc_result_bytes_per_core) {
                None => usize::MAX,
                Some(slots) => {
                    assert!(
                        slots >= 1,
                        "output buffer {}B cannot hold one {}B result",
                        cfg.core.output_buf_bytes,
                        wl.rc_result_bytes_per_core
                    );
                    slots.min(64) as usize
                }
            };
        let mut cfg = cfg;
        if !cfg.slice.is_sliced() {
            // The unsliced baseline models the conventional controller of
            // Figure 6(b): command handling is single-buffered, so a
            // monolithic page transfer blocks the next round's input
            // broadcast and the pending result, stalling the compute
            // pipeline. The Slice Control exists precisely to remove
            // this serialization.
            cfg.input_prefetch = 1;
            out_slots = out_slots.min(1);
        }
        // Distribute plain-read pages round-robin over dies.
        let per_die_reads = |i: usize| {
            let base = wl.read_pages / dies_n;
            base + usize::from(i < wl.read_pages % dies_n)
        };
        let dies = (0..dies_n)
            .map(|i| DieState {
                rc: PlanePipe::new(wl.rc_rounds),
                rd: PlanePipe::new(per_die_reads(i)),
                core_busy: false,
                next_round: 0,
                pending_results: 0,
                rd_transfer_active: false,
                rd_bytes_left: 0,
                rd_pages_done: 0,
            })
            .collect();
        let t_compute = cfg.core.compute_time(wl.ops_per_page);
        ChannelEngine {
            cfg,
            wl,
            q: EventQueue::new(),
            dies,
            inputs_queued: 0,
            inputs_arrived: 0,
            results_done: 0,
            bus_inflight: None,
            control_q: VecDeque::new(),
            fifo_q: VecDeque::new(),
            read_rr: 0,
            bus: BusyTracker::new(),
            control_bytes: 0,
            read_bytes: 0,
            rc_finish: SimTime::ZERO,
            read_finish: SimTime::ZERO,
            out_slots,
            t_compute,
        }
    }

    /// Runs the workload to completion and reports.
    ///
    /// # Panics
    ///
    /// Panics on internal deadlock (a bug, not a user error).
    pub fn run(mut self) -> ChannelReport {
        self.try_advance();
        while let Some((t, ev)) = self.q.pop() {
            self.handle(t, ev);
            self.try_advance();
        }
        assert!(
            self.done(),
            "flash channel deadlocked: {}/{} rc results, {}/{} reads",
            self.results_done,
            self.total_results(),
            self.reads_done(),
            self.wl.read_pages
        );
        let finish = self.q.now();
        ChannelReport {
            finish,
            rc_finish: self.rc_finish,
            read_finish: self.read_finish,
            bus_busy: self.bus.busy_time(),
            utilization: self.bus.utilization(finish),
            control_bytes: self.control_bytes,
            read_bytes: self.read_bytes,
            rc_rounds_done: self.wl.rc_rounds,
            read_pages_done: self.reads_done(),
            events: self.q.total_popped(),
        }
    }

    fn total_results(&self) -> usize {
        self.wl.rc_rounds * self.dies.len()
    }

    fn reads_done(&self) -> usize {
        self.dies.iter().map(|d| d.rd_pages_done).sum()
    }

    fn done(&self) -> bool {
        self.results_done == self.total_results() && self.reads_done() == self.wl.read_pages
    }

    fn handle(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::ArrayReadDone { die, rc } => {
                let pipe = self.pipe_mut(die, rc);
                let page = pipe.reading.take().expect("array read done w/o read");
                debug_assert!(pipe.data_reg.is_none());
                pipe.data_reg = Some(page);
            }
            Ev::MoveDone { die, rc } => {
                let pipe = self.pipe_mut(die, rc);
                let page = pipe.moving.take().expect("move done w/o move");
                debug_assert!(pipe.cache_reg.is_none());
                pipe.cache_reg = Some(page);
            }
            Ev::ComputeDone { die } => {
                let d = &mut self.dies[die];
                d.core_busy = false;
                d.rc.cache_reg = None; // core consumed the page
                d.pending_results += 1;
                d.next_round += 1;
                self.enqueue(Xfer::RcResult { die });
            }
            Ev::BusFree => {
                let (xfer, start) = self.bus_inflight.take().expect("bus free w/o transfer");
                self.bus.add_interval(start, t);
                match xfer {
                    Xfer::RcInput { round } => {
                        debug_assert_eq!(round, self.inputs_arrived);
                        self.inputs_arrived += 1;
                        self.control_bytes += self.wl.rc_input_bytes;
                    }
                    Xfer::RcResult { die } => {
                        self.dies[die].pending_results -= 1;
                        self.results_done += 1;
                        self.control_bytes += self.wl.rc_result_bytes_per_core;
                        if self.results_done == self.total_results() {
                            self.rc_finish = t;
                        }
                    }
                    Xfer::ReadChunk { die, bytes, last } => {
                        self.read_bytes += bytes;
                        if last {
                            let d = &mut self.dies[die];
                            d.rd.cache_reg = None;
                            d.rd_transfer_active = false;
                            d.rd_pages_done += 1;
                            if self.reads_done() == self.wl.read_pages {
                                self.read_finish = t;
                            }
                        }
                    }
                }
            }
        }
    }

    fn pipe_mut(&mut self, die: usize, rc: bool) -> &mut PlanePipe {
        let d = &mut self.dies[die];
        if rc {
            &mut d.rc
        } else {
            &mut d.rd
        }
    }

    /// Fires every action whose preconditions now hold.
    fn try_advance(&mut self) {
        let now = self.q.now();
        // 1. Channel-level: queue input broadcasts within the prefetch window.
        let min_round = self
            .dies
            .iter()
            .map(|d| d.next_round)
            .min()
            .unwrap_or(usize::MAX);
        while self.inputs_queued < self.wl.rc_rounds
            && self.inputs_queued < min_round + self.cfg.input_prefetch
        {
            let round = self.inputs_queued;
            self.inputs_queued += 1;
            self.enqueue(Xfer::RcInput { round });
        }

        // 2. Per-die register pipelines and cores.
        let single_plane = self.cfg.topology.planes_per_die < 2;
        for die in 0..self.dies.len() {
            self.advance_pipe(die, true, now, false);
            // With one physical plane, plain reads wait for the rc stream.
            let rd_blocked = single_plane && !self.dies[die].rc.exhausted();
            self.advance_pipe(die, false, now, rd_blocked);
            self.maybe_start_compute(die, now);
            self.maybe_start_read_transfer(die);
        }

        // 3. Bus.
        self.maybe_start_bus(now);
    }

    fn advance_pipe(&mut self, die: usize, rc: bool, now: SimTime, blocked: bool) {
        if blocked {
            return;
        }
        let t_r = self.cfg.timing.t_r;
        let t_move = self.cfg.timing.t_move;
        let pipe = self.pipe_mut(die, rc);
        // Start the next array read if the data register will be free.
        if pipe.reading.is_none() && pipe.started < pipe.total && pipe.data_reg.is_none() {
            pipe.reading = Some(pipe.started);
            pipe.started += 1;
            self.q.schedule(now + t_r, Ev::ArrayReadDone { die, rc });
            // Re-borrow after scheduling.
        }
        let pipe = self.pipe_mut(die, rc);
        // Move data register → cache register when both sides are ready.
        if pipe.moving.is_none() && pipe.cache_reg.is_none() {
            if let Some(page) = pipe.data_reg.take() {
                pipe.moving = Some(page);
                self.q.schedule(now + t_move, Ev::MoveDone { die, rc });
            }
        }
    }

    fn maybe_start_compute(&mut self, die: usize, now: SimTime) {
        if self.wl.rc_rounds == 0 {
            return;
        }
        let arrived = self.inputs_arrived;
        let out_slots = self.out_slots;
        let t_compute = self.t_compute;
        let d = &mut self.dies[die];
        if d.core_busy || d.next_round >= self.wl.rc_rounds {
            return;
        }
        let input_ready = arrived > d.next_round;
        let page_ready = d.rc.cache_reg == Some(d.next_round);
        let slot_free = d.pending_results < out_slots;
        if input_ready && page_ready && slot_free {
            d.core_busy = true;
            self.q.schedule(now + t_compute, Ev::ComputeDone { die });
        }
    }

    fn maybe_start_read_transfer(&mut self, die: usize) {
        let d = &mut self.dies[die];
        if !d.rd_transfer_active && d.rd.cache_reg.is_some() {
            d.rd_transfer_active = true;
            d.rd_bytes_left = self.cfg.topology.page_bytes as u64;
            if !self.cfg.slice.is_sliced() {
                // FIFO mode: one monolithic page transaction.
                let bytes = d.rd_bytes_left;
                d.rd_bytes_left = 0;
                self.fifo_q.push_back(Xfer::ReadChunk {
                    die,
                    bytes,
                    last: true,
                });
            }
            // Sliced mode: chunks are pulled on demand by the bus.
        }
    }

    fn enqueue(&mut self, x: Xfer) {
        if self.cfg.slice.is_sliced() {
            self.control_q.push_back(x);
        } else {
            self.fifo_q.push_back(x);
        }
    }

    /// Picks the next bus transaction according to the arbitration policy.
    fn next_xfer(&mut self) -> Option<Xfer> {
        if self.cfg.slice.is_sliced() {
            if let Some(x) = self.control_q.pop_front() {
                return Some(x);
            }
            // Round-robin a read chunk from dies with active transfers.
            let n = self.dies.len();
            let chunk = self.cfg.slice.chunk_bytes(self.cfg.topology.page_bytes) as u64;
            for k in 0..n {
                let die = (self.read_rr + k) % n;
                let d = &mut self.dies[die];
                if d.rd_transfer_active && d.rd_bytes_left > 0 {
                    let bytes = chunk.min(d.rd_bytes_left);
                    d.rd_bytes_left -= bytes;
                    let last = d.rd_bytes_left == 0;
                    self.read_rr = (die + 1) % n;
                    return Some(Xfer::ReadChunk { die, bytes, last });
                }
            }
            None
        } else {
            self.fifo_q.pop_front()
        }
    }

    fn maybe_start_bus(&mut self, now: SimTime) {
        if self.bus_inflight.is_some() {
            return;
        }
        if let Some(x) = self.next_xfer() {
            // Result vectors are drained by the controller in streaming
            // mode (the Slice Control polls output buffers round-robin),
            // so they pay pure wire time; command/address cycles apply
            // to input broadcasts and read(-chunk) transactions.
            let dur = match x {
                Xfer::RcInput { .. } => self.cfg.timing.bus_occupancy(self.wl.rc_input_bytes),
                Xfer::RcResult { .. } => self.cfg.timing.xfer(self.wl.rc_result_bytes_per_core),
                Xfer::ReadChunk { bytes, .. } => self.cfg.timing.bus_occupancy(bytes),
            };
            self.bus_inflight = Some((x, now));
            self.q.schedule(now + dur, Ev::BusFree);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SlicePolicy, Timing, Topology};

    fn s_cfg() -> EngineConfig {
        EngineConfig::paper(Topology::cambricon_s())
    }

    /// Cam-S optimal-tile workload for one channel: 4 cores/channel,
    /// Hreq=256, Wreq=2048 → input 256 B/round, result 64 B/core.
    fn s_workload(rc_rounds: usize, read_pages: usize) -> ChannelWorkload {
        ChannelWorkload {
            rc_rounds,
            rc_input_bytes: 256,
            rc_result_bytes_per_core: 64,
            ops_per_page: 2 * 16 * 1024,
            read_pages,
        }
    }

    #[test]
    fn rc_only_steady_state_cadence_is_t_r() {
        // 100 rounds, 4 dies: steady state retires one round per tR.
        let rep = ChannelEngine::new(s_cfg(), s_workload(100, 0)).run();
        let t = rep.finish.as_secs_f64();
        let expected = 100.0 * 30e-6; // 3.0 ms
        assert!(
            (t - expected).abs() / expected < 0.1,
            "finish {t}, expected ~{expected}"
        );
        assert_eq!(rep.rc_rounds_done, 100);
    }

    #[test]
    fn rc_only_low_channel_utilization() {
        // §IV-C: with only read-compute requests the channel is ≤6% busy.
        let rep = ChannelEngine::new(s_cfg(), s_workload(200, 0)).run();
        // (the paper's ≤6% excludes per-transaction command overhead;
        // with t_cmd included the ceiling sits slightly higher)
        assert!(rep.utilization < 0.08, "{}", rep.utilization);
    }

    #[test]
    fn read_only_saturates_channel() {
        // 4 dies can supply ~2.1 GB/s but the bus moves 1 GB/s → the
        // channel should be nearly fully utilized and finish in about
        // pages × 16.4 µs (plus per-chunk command overhead).
        let rep = ChannelEngine::new(s_cfg(), ChannelWorkload::read_only(100)).run();
        assert!(rep.utilization > 0.9, "{}", rep.utilization);
        let per_page = rep.finish.as_secs_f64() / 100.0;
        assert!(per_page < 20e-6, "{per_page}");
        assert_eq!(rep.read_pages_done, 100);
        assert_eq!(rep.read_bytes, 100 * 16 * 1024);
    }

    #[test]
    fn mixed_workload_reads_ride_in_bubbles() {
        // Balanced mix: 100 rounds consume 400 pages in flash and take
        // ~3 ms; ~170 read pages fit in the leftover bandwidth in the
        // same window, so the finish time should stay near the rc-only
        // time instead of serializing.
        let rep = ChannelEngine::new(s_cfg(), s_workload(100, 170)).run();
        let t = rep.finish.as_secs_f64();
        assert!(t < 3.6e-3, "finish {t}");
        assert!(rep.utilization > 0.8, "{}", rep.utilization);
    }

    #[test]
    fn unsliced_is_slower_and_half_utilization() {
        // Figure 12: removing read-request slicing costs 1.6–1.8× speed
        // and drops channel usage to ~50%.
        let sliced = ChannelEngine::new(s_cfg(), s_workload(150, 255)).run();
        let mut cfg = s_cfg();
        cfg.slice = SlicePolicy::Unsliced;
        let unsliced = ChannelEngine::new(cfg, s_workload(150, 255)).run();
        let slowdown = unsliced.finish.as_secs_f64() / sliced.finish.as_secs_f64();
        assert!(slowdown > 1.2, "expected unsliced slowdown, got {slowdown}");
        assert!(
            unsliced.utilization < sliced.utilization,
            "unsliced {} vs sliced {}",
            unsliced.utilization,
            sliced.utilization
        );
    }

    #[test]
    fn empty_workload_finishes_at_zero() {
        let rep = ChannelEngine::new(s_cfg(), ChannelWorkload::read_only(0)).run();
        assert_eq!(rep.finish, SimTime::ZERO);
        assert_eq!(rep.events, 0);
    }

    #[test]
    fn single_round_completes() {
        let rep = ChannelEngine::new(s_cfg(), s_workload(1, 0)).run();
        // One round: input + tR + move + compute + result.
        let t = rep.finish.as_secs_f64();
        assert!(t > 30e-6 && t < 60e-6, "{t}");
    }

    #[test]
    fn byte_accounting_matches_workload() {
        let wl = s_workload(50, 30);
        let rep = ChannelEngine::new(s_cfg(), wl).run();
        assert_eq!(
            rep.control_bytes,
            wl.control_bytes(Topology::cambricon_s().compute_cores_per_channel())
        );
        assert_eq!(rep.read_bytes, wl.read_bytes(16 * 1024));
    }

    #[test]
    fn compute_bound_core_throttles_pipeline() {
        // A deliberately weak core (1 MAC @ 100 MHz → 0.2 GOPS) needs
        // 163.8 µs per page, so cadence is compute-bound, not tR-bound.
        let mut cfg = s_cfg();
        cfg.core.macs = 1;
        cfg.core.freq_hz = 100_000_000;
        let rep = ChannelEngine::new(cfg, s_workload(20, 0)).run();
        let per_round = rep.finish.as_secs_f64() / 20.0;
        assert!(per_round > 150e-6, "{per_round}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = ChannelEngine::new(s_cfg(), s_workload(37, 23)).run();
        let b = ChannelEngine::new(s_cfg(), s_workload(37, 23)).run();
        assert_eq!(a.finish, b.finish);
        assert_eq!(a.events, b.events);
        assert_eq!(a.bus_busy, b.bus_busy);
    }

    #[test]
    fn cam_s_channel_throughput_matches_analytic_model() {
        // Steady state, balanced mix: the channel should consume weights
        // at ≈ cores×page/tR (flash) + leftover-bandwidth (reads)
        // ≈ 2.18 + 0.9 GB/s ≈ 3.1 GB/s per channel.
        let rounds = 200;
        let reads = 360; // ≈ balanced NPU share
        let rep = ChannelEngine::new(s_cfg(), s_workload(rounds, reads)).run();
        let pages = (rounds * 4 + reads) as f64;
        let rate = pages * 16384.0 / rep.finish.as_secs_f64() / 1e9;
        assert!((2.6..3.6).contains(&rate), "rate {rate} GB/s");
    }

    #[test]
    fn timing_without_cmd_overhead_still_runs() {
        let mut cfg = s_cfg();
        cfg.timing = Timing {
            t_cmd: SimTime::ZERO,
            ..Timing::paper()
        };
        let rep = ChannelEngine::new(cfg, s_workload(10, 10)).run();
        assert_eq!(rep.rc_rounds_done, 10);
        assert_eq!(rep.read_pages_done, 10);
    }

    #[test]
    fn single_plane_serializes_reads_after_compute() {
        let mut cfg = s_cfg();
        cfg.topology.planes_per_die = 1;
        let two_plane = ChannelEngine::new(s_cfg(), s_workload(50, 80)).run();
        let one_plane = ChannelEngine::new(cfg, s_workload(50, 80)).run();
        assert!(one_plane.finish > two_plane.finish);
    }
}
