//! Slice Control (§IV-C).
//!
//! A plain read request moves a whole 16 KB page over the channel
//! (~16.4 µs at 1 GB/s). Left unsliced, such a transfer cannot fit in
//! the channel-occupancy bubbles between read-compute control transfers
//! and ends up blocking them (Figure 6(b)). The Slice Control segments
//! each page transfer into small slices that are interposed in the
//! bubbles (Figure 6(c)).
//!
//! In this simulator the policy also selects the channel arbitration
//! discipline, which is what the mechanism amounts to in hardware:
//!
//! * [`SlicePolicy::Sliced`] — read data moves in `slice_bytes` chunks
//!   and read-compute control transfers have priority over read slices,
//! * [`SlicePolicy::Unsliced`] — pages move as single transactions in
//!   FIFO order with control transfers (the Figure 6(b) baseline).

/// Slice-control policy for plain-read traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicePolicy {
    /// Page reads are segmented into `slice_bytes` chunks; control
    /// transfers take priority (the paper's mechanism).
    Sliced {
        /// Slice granularity in bytes.
        slice_bytes: usize,
    },
    /// Page reads occupy the channel as one monolithic transaction and
    /// all transfers are served FIFO.
    Unsliced,
}

impl Default for SlicePolicy {
    /// The paper's mechanism with a 2 KB slice.
    fn default() -> Self {
        SlicePolicy::Sliced { slice_bytes: 2048 }
    }
}

impl SlicePolicy {
    /// Whether slicing is enabled.
    pub fn is_sliced(&self) -> bool {
        matches!(self, SlicePolicy::Sliced { .. })
    }

    /// The chunk size a page transfer is divided into.
    pub fn chunk_bytes(&self, page_bytes: usize) -> usize {
        match *self {
            SlicePolicy::Sliced { slice_bytes } => slice_bytes.min(page_bytes).max(1),
            SlicePolicy::Unsliced => page_bytes,
        }
    }

    /// Number of chunks a page transfer becomes.
    pub fn chunks_per_page(&self, page_bytes: usize) -> usize {
        page_bytes.div_ceil(self.chunk_bytes(page_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sliced_2k() {
        let p = SlicePolicy::default();
        assert!(p.is_sliced());
        assert_eq!(p.chunk_bytes(16384), 2048);
        assert_eq!(p.chunks_per_page(16384), 8);
    }

    #[test]
    fn unsliced_is_one_chunk() {
        let p = SlicePolicy::Unsliced;
        assert_eq!(p.chunk_bytes(16384), 16384);
        assert_eq!(p.chunks_per_page(16384), 1);
    }

    #[test]
    fn oversized_slice_clamps_to_page() {
        let p = SlicePolicy::Sliced {
            slice_bytes: 1 << 20,
        };
        assert_eq!(p.chunk_bytes(16384), 16384);
        assert_eq!(p.chunks_per_page(16384), 1);
    }

    #[test]
    fn ragged_last_chunk_counts() {
        let p = SlicePolicy::Sliced { slice_bytes: 3000 };
        assert_eq!(p.chunks_per_page(16384), 6); // 5×3000 + 1384
    }
}
