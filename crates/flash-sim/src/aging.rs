//! NAND aging and retention error model.
//!
//! §III-C: retention errors dominate; a fresh 3D TLC chip reaches BER
//! ~1e-4 after hours of retention [Zhao'23], and past wear-out
//! (P/E cycling) the rate exceeds 1e-2 [Cai'13]. This module provides a
//! parametric BER model so reliability experiments can be phrased in
//! device age ("a two-year-old phone") instead of raw BERs. The model
//! follows the standard empirical form: RBER grows roughly linearly in
//! retention time and polynomially in P/E cycles.

/// A flash wear/retention state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashAge {
    /// Program/erase cycles endured by the block.
    pub pe_cycles: u32,
    /// Retention time since the last program, in days.
    pub retention_days: f64,
}

impl FlashAge {
    /// A freshly written, lightly used chip.
    pub fn fresh() -> Self {
        FlashAge {
            pe_cycles: 100,
            retention_days: 0.5,
        }
    }

    /// A heavily used consumer device near end of life (3K P/E for TLC).
    pub fn worn_out() -> Self {
        FlashAge {
            pe_cycles: 3000,
            retention_days: 365.0,
        }
    }

    /// Ages the block by `days` of retention plus the wear-equivalent of
    /// `read_bytes` of read traffic.
    ///
    /// Read disturb accumulates like fractional P/E cycling: every
    /// `bytes_per_pe` bytes read counts as one program/erase cycle
    /// [Cai'13]. This is the feedback edge of the wear-trajectory driver
    /// — each simulated day's flash read volume makes the next day's
    /// RBER worse. `bytes_per_pe == 0` means reads are wear-free.
    pub fn absorb_reads(&mut self, read_bytes: u64, bytes_per_pe: u64, days: f64) {
        self.retention_days += days;
        if let Some(cycles) = read_bytes.checked_div(bytes_per_pe) {
            self.pe_cycles = self
                .pe_cycles
                .saturating_add(cycles.min(u32::MAX as u64) as u32);
        }
    }
}

/// Parametric raw-bit-error-rate model.
///
/// `RBER(age) = base + k_ret · retention_days · (1 + pe/pe0)^e`
///
/// The constants are fitted to the paper's anchor points: ~1e-4 after
/// hours of retention on a fresh chip, >1e-2 for aged chips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BerModel {
    /// Error floor right after programming.
    pub base: f64,
    /// Retention growth per day at zero wear.
    pub k_ret_per_day: f64,
    /// P/E normalization constant.
    pub pe0: f64,
    /// Wear acceleration exponent.
    pub exponent: f64,
}

impl Default for BerModel {
    fn default() -> Self {
        BerModel {
            base: 2e-5,
            k_ret_per_day: 6e-4,
            pe0: 900.0,
            exponent: 2.0,
        }
    }
}

impl BerModel {
    /// Raw bit error rate for an age, clamped to [0, 0.5].
    pub fn rber(&self, age: &FlashAge) -> f64 {
        let wear = (1.0 + age.pe_cycles as f64 / self.pe0).powf(self.exponent);
        (self.base + self.k_ret_per_day * age.retention_days * wear / 365.0).min(0.5)
    }

    /// Days of retention until the BER crosses `limit` at a given wear
    /// level.
    ///
    /// Returns `None` when the question has no finite answer: the limit
    /// is already met or exceeded at day zero (`limit <= base`), or the
    /// model has no retention growth (`k_ret_per_day <= 0`, where the
    /// BER never moves and a naive division would manufacture an
    /// infinity). Never returns NaN or a non-finite day count.
    pub fn days_until(&self, pe_cycles: u32, limit: f64) -> Option<f64> {
        if limit <= self.base || self.k_ret_per_day <= 0.0 {
            return None;
        }
        let wear = (1.0 + pe_cycles as f64 / self.pe0).powf(self.exponent);
        let days = (limit - self.base) * 365.0 / (self.k_ret_per_day * wear);
        days.is_finite().then_some(days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_chip_near_1e4_after_hours() {
        // Paper anchor: "The bit error rate of a new 3D TLC NAND chip
        // can reach 1e-4 after hours of retention time" — our fresh
        // state lands in the 1e-5..1e-3 decade around it.
        let ber = BerModel::default().rber(&FlashAge::fresh());
        assert!((1e-5..1e-3).contains(&ber), "{ber}");
    }

    #[test]
    fn worn_chip_exceeds_1e2() {
        // Paper anchor: "as the flash ages ... the bit error rate can
        // rise to over 1e-2".
        let ber = BerModel::default().rber(&FlashAge::worn_out());
        assert!(ber > 1e-2, "{ber}");
    }

    #[test]
    fn rber_monotone_in_both_axes() {
        let m = BerModel::default();
        let mut last = 0.0;
        for days in [1.0, 10.0, 100.0, 365.0] {
            let b = m.rber(&FlashAge {
                pe_cycles: 500,
                retention_days: days,
            });
            assert!(b > last);
            last = b;
        }
        let mut last = 0.0;
        for pe in [0u32, 500, 1500, 3000] {
            let b = m.rber(&FlashAge {
                pe_cycles: pe,
                retention_days: 30.0,
            });
            assert!(b > last);
            last = b;
        }
    }

    #[test]
    fn rber_clamped_to_half() {
        let m = BerModel {
            k_ret_per_day: 1.0,
            ..BerModel::default()
        };
        let b = m.rber(&FlashAge {
            pe_cycles: 3000,
            retention_days: 10_000.0,
        });
        assert_eq!(b, 0.5);
    }

    #[test]
    fn days_until_inverts_rber() {
        let m = BerModel::default();
        let pe = 1000;
        let days = m.days_until(pe, 1e-3).unwrap();
        let check = m.rber(&FlashAge {
            pe_cycles: pe,
            retention_days: days,
        });
        assert!((check - 1e-3).abs() / 1e-3 < 0.01, "{check}");
        assert!(m.days_until(pe, 1e-6).is_none());
    }

    #[test]
    fn days_until_zero_growth_rate_is_none_not_infinite() {
        // A model with no retention growth never crosses any limit
        // above base; the old code divided by zero and returned
        // `Some(inf)`.
        let m = BerModel {
            k_ret_per_day: 0.0,
            ..BerModel::default()
        };
        assert_eq!(m.days_until(100, 1e-3), None);
        let neg = BerModel {
            k_ret_per_day: -1.0,
            ..BerModel::default()
        };
        assert_eq!(neg.days_until(100, 1e-3), None);
    }

    #[test]
    fn days_until_limit_at_or_below_base_is_none() {
        let m = BerModel::default();
        assert_eq!(m.days_until(0, m.base), None);
        assert_eq!(m.days_until(0, m.base / 2.0), None);
        assert_eq!(m.days_until(0, 0.0), None);
        assert_eq!(m.days_until(0, -1.0), None);
    }

    #[test]
    fn days_until_is_always_finite_when_some() {
        let m = BerModel::default();
        for pe in [0u32, 100, 3000, u32::MAX] {
            for limit in [1e-4, 1e-2, 0.5] {
                if let Some(d) = m.days_until(pe, limit) {
                    assert!(d.is_finite() && d > 0.0, "pe {pe} limit {limit}: {d}");
                }
            }
        }
    }

    #[test]
    fn absorb_reads_accumulates_wear_and_retention() {
        let mut age = FlashAge::fresh();
        let before = age;
        age.absorb_reads(10_000 * 4096, 4096, 2.5);
        assert_eq!(age.pe_cycles, before.pe_cycles + 10_000);
        assert_eq!(age.retention_days, before.retention_days + 2.5);
        // Wear-free reads still advance retention.
        let mut free = FlashAge::fresh();
        free.absorb_reads(u64::MAX, 0, 1.0);
        assert_eq!(free.pe_cycles, FlashAge::fresh().pe_cycles);
        assert_eq!(free.retention_days, FlashAge::fresh().retention_days + 1.0);
        // Saturates instead of overflowing.
        let mut old = FlashAge::worn_out();
        old.absorb_reads(u64::MAX, 1, 0.0);
        assert_eq!(old.pe_cycles, u32::MAX);
    }

    #[test]
    fn wear_shortens_safe_retention() {
        let m = BerModel::default();
        let fresh = m.days_until(100, 2e-4).unwrap();
        let worn = m.days_until(3000, 2e-4).unwrap();
        assert!(worn < fresh / 4.0, "fresh {fresh} worn {worn}");
    }
}
