//! Whole-device simulation.
//!
//! Channels are symmetric and independent in Cambricon-LLM's GeMV
//! workloads (each channel owns a column slice of every tile and its own
//! share of NPU-bound pages), so the device simulator runs one
//! [`ChannelEngine`] per *distinct* per-channel workload and replicates
//! the result across identical channels. This is exact, not an
//! approximation, and keeps full-model simulations fast.

use crate::engine::ChannelEngine;
use crate::report::{ChannelReport, DeviceReport};
use crate::workload::{ChannelWorkload, EngineConfig};
use sim_core::SimTime;

/// The flash device: a bundle of identical channels.
#[derive(Debug, Clone, Copy)]
pub struct FlashDevice {
    cfg: EngineConfig,
}

impl FlashDevice {
    /// Creates a device with the given engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the topology fails validation.
    pub fn new(cfg: EngineConfig) -> Self {
        cfg.topology.validate().expect("invalid topology");
        FlashDevice { cfg }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Runs the same workload on every channel (the common case: GeMV
    /// tiles are distributed evenly).
    pub fn run_uniform(&self, per_channel: ChannelWorkload) -> DeviceReport {
        let rep = if per_channel.is_empty() {
            ChannelReport::empty()
        } else {
            ChannelEngine::new(self.cfg, per_channel).run()
        };
        let pairs: Vec<(ChannelWorkload, ChannelReport)> =
            vec![(per_channel, rep); self.cfg.topology.channels];
        self.aggregate(&pairs)
    }

    /// Runs per-channel workloads (which may differ, e.g. remainder
    /// pages on the last channel). Identical workloads are simulated
    /// once and replicated.
    pub fn run_per_channel(&self, workloads: &[ChannelWorkload]) -> DeviceReport {
        assert_eq!(
            workloads.len(),
            self.cfg.topology.channels,
            "need one workload per channel"
        );
        let mut pairs: Vec<(ChannelWorkload, ChannelReport)> = Vec::with_capacity(workloads.len());
        let mut memo: Vec<(ChannelWorkload, ChannelReport)> = Vec::new();
        for wl in workloads {
            let rep = if let Some((_, rep)) = memo.iter().find(|(w, _)| w == wl) {
                *rep
            } else {
                let rep = if wl.is_empty() {
                    ChannelReport::empty()
                } else {
                    ChannelEngine::new(self.cfg, *wl).run()
                };
                memo.push((*wl, rep));
                rep
            };
            pairs.push((*wl, rep));
        }
        self.aggregate(&pairs)
    }

    fn aggregate(&self, pairs: &[(ChannelWorkload, ChannelReport)]) -> DeviceReport {
        let finish = pairs
            .iter()
            .map(|(_, r)| r.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        // Utilization is measured against the device finish time so idle
        // channels dilute the mean, matching how the paper reports
        // "channel usage".
        let mean_utilization = if pairs.is_empty() || finish == SimTime::ZERO {
            0.0
        } else {
            sim_core::sum_ordered(
                pairs
                    .iter()
                    .map(|(_, r)| r.bus_busy.as_picos() as f64 / finish.as_picos() as f64),
            ) / pairs.len() as f64
        };
        let cores = self.cfg.topology.compute_cores_per_channel() as u64;
        let page = self.cfg.topology.page_bytes as u64;
        let mut bytes_to_npu = 0;
        let mut bytes_from_npu = 0;
        let mut in_flash = 0;
        for (wl, r) in pairs {
            let rounds = r.rc_rounds_done as u64;
            bytes_to_npu += r.read_bytes + rounds * cores * wl.rc_result_bytes_per_core;
            bytes_from_npu += rounds * wl.rc_input_bytes;
            in_flash += rounds * cores * page;
        }
        DeviceReport {
            finish,
            mean_utilization,
            bytes_to_npu,
            bytes_from_npu,
            bytes_computed_in_flash: in_flash,
            channels: pairs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn wl(rc: usize, rd: usize) -> ChannelWorkload {
        ChannelWorkload {
            rc_rounds: rc,
            rc_input_bytes: 256,
            rc_result_bytes_per_core: 64,
            ops_per_page: 32768,
            read_pages: rd,
        }
    }

    #[test]
    fn uniform_run_replicates_channels() {
        let dev = FlashDevice::new(EngineConfig::paper(Topology::cambricon_s()));
        let rep = dev.run_uniform(wl(50, 40));
        assert_eq!(rep.channels, 8);
        assert!(rep.finish > SimTime::ZERO);
        assert!(rep.mean_utilization > 0.0 && rep.mean_utilization <= 1.0);
    }

    #[test]
    fn per_channel_heterogeneous() {
        let dev = FlashDevice::new(EngineConfig::paper(Topology::cambricon_s()));
        let mut wls = vec![wl(50, 40); 8];
        wls[7] = wl(50, 55); // remainder pages on the last channel
        let rep = dev.run_per_channel(&wls);
        let uni = dev.run_uniform(wl(50, 40));
        assert!(rep.finish >= uni.finish);
    }

    #[test]
    #[should_panic(expected = "one workload per channel")]
    fn wrong_channel_count_panics() {
        let dev = FlashDevice::new(EngineConfig::paper(Topology::cambricon_s()));
        dev.run_per_channel(&[wl(1, 1); 3]);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let dev = FlashDevice::new(EngineConfig::paper(Topology::cambricon_s()));
        let rep = dev.run_uniform(wl(10, 3));
        // 8 channels × 10 rounds × 4 cores × 16 KB computed in flash.
        assert_eq!(rep.bytes_computed_in_flash, 8 * 10 * 4 * 16384);
        // To NPU: read pages + result vectors.
        assert_eq!(rep.bytes_to_npu, 8 * (3 * 16384 + 10 * 4 * 64));
        // From NPU: input broadcasts.
        assert_eq!(rep.bytes_from_npu, 8 * 10 * 256);
        assert_eq!(rep.d2d_bytes(), rep.bytes_to_npu + rep.bytes_from_npu);
    }

    #[test]
    fn empty_device_run() {
        let dev = FlashDevice::new(EngineConfig::paper(Topology::cambricon_s()));
        let rep = dev.run_uniform(ChannelWorkload::read_only(0));
        assert_eq!(rep.finish, SimTime::ZERO);
        assert_eq!(rep.mean_utilization, 0.0);
    }
}
