//! Model provisioning: writing weights into the flash (extension).
//!
//! §III-B argues slow NAND writes are irrelevant for inference because
//! "edge-based LLM inference tasks ... solely involve reading weight
//! data from flash". This module quantifies the one-time cost that
//! argument hides: loading (or updating) a model image. Programming is
//! page-sized and 1–2 orders of magnitude slower than reading
//! (`t_prog`), but dies program in parallel while the channel streams
//! data in, so the device behaves like a pipeline whose bottleneck is
//! `min(channel bandwidth, dies × page/t_prog)` per channel.

use crate::timing::Timing;
use crate::topology::Topology;
use sim_core::SimTime;

/// Result of a bulk model-load estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProvisionReport {
    /// Bytes written.
    pub bytes: u64,
    /// Total load time.
    pub total: SimTime,
    /// Whether programming (true) or the channel (false) was the
    /// bottleneck.
    pub program_bound: bool,
    /// Effective write bandwidth achieved, bytes/second.
    pub effective_bytes_per_sec: f64,
    /// Blocks erased beforehand (block = 256 pages assumed).
    pub blocks_erased: u64,
}

/// Pages per erase block (typical 3D TLC geometry).
pub const PAGES_PER_BLOCK: u64 = 256;

/// Estimates the time to bulk-load `bytes` of model weights, erasing
/// the target blocks first and then streaming pages to all channels.
///
/// # Panics
///
/// Panics if the topology is invalid.
pub fn bulk_load(topo: &Topology, timing: &Timing, bytes: u64) -> ProvisionReport {
    topo.validate().expect("invalid topology");
    if bytes == 0 {
        return ProvisionReport {
            bytes: 0,
            total: SimTime::ZERO,
            program_bound: false,
            effective_bytes_per_sec: 0.0,
            blocks_erased: 0,
        };
    }
    let page = topo.page_bytes as u64;
    let pages = bytes.div_ceil(page);
    let channels = topo.channels as u64;
    let dies_per_channel = topo.dies_per_channel() as u64;
    // Planes program independently (multi-plane program), so each die
    // sustains planes × page / t_prog.
    let planes = topo.planes_per_die as u64;

    // Erase: blocks spread across all dies erase in parallel waves.
    let blocks = pages.div_ceil(PAGES_PER_BLOCK);
    let total_dies = channels * dies_per_channel;
    let erase_waves = blocks.div_ceil(total_dies);
    let erase_time = timing.t_erase * erase_waves;

    // Program: per channel, pages stream over the bus (plus command
    // overhead) and program in parallel across dies/planes.
    let pages_per_channel = pages.div_ceil(channels);
    let bus_per_page = timing.bus_occupancy(page).as_secs_f64();
    let prog_rate_pages = dies_per_channel as f64 * planes as f64 / timing.t_prog.as_secs_f64();
    let bus_rate_pages = 1.0 / bus_per_page;
    let program_bound = prog_rate_pages < bus_rate_pages;
    let rate = prog_rate_pages.min(bus_rate_pages);
    let program_time = SimTime::from_secs_f64(pages_per_channel as f64 / rate);

    let total = erase_time + program_time + timing.t_prog; // + drain of last page
    ProvisionReport {
        bytes,
        total,
        program_bound,
        effective_bytes_per_sec: bytes as f64 / total.as_secs_f64(),
        blocks_erased: blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loading_70b_takes_minutes_not_hours() {
        // 69 GB onto Cambricon-LLM-S: 32 dies × 2 planes × 16 KB/600 µs
        // ≈ 1.7 GB/s program rate vs 8 GB/s of channels → program-bound,
        // roughly 40–90 s.
        let r = bulk_load(&Topology::cambricon_s(), &Timing::paper(), 69_000_000_000);
        assert!(r.program_bound);
        let secs = r.total.as_secs_f64();
        assert!((20.0..200.0).contains(&secs), "{secs}");
    }

    #[test]
    fn bigger_devices_load_faster() {
        let t = Timing::paper();
        let s = bulk_load(&Topology::cambricon_s(), &t, 10_000_000_000);
        let l = bulk_load(&Topology::cambricon_l(), &t, 10_000_000_000);
        assert!(l.total < s.total);
    }

    #[test]
    fn zero_bytes_is_instant() {
        let r = bulk_load(&Topology::cambricon_s(), &Timing::paper(), 0);
        assert_eq!(r.total, SimTime::ZERO);
        assert_eq!(r.blocks_erased, 0);
    }

    #[test]
    fn write_far_slower_than_read_rate() {
        // §III-B's premise: writes are 1–2 orders slower than reads.
        // Read-side consumption on Cam-S is ~24 GB/s (decode), write
        // side must be well under a tenth of that.
        let r = bulk_load(&Topology::cambricon_s(), &Timing::paper(), 1 << 34);
        assert!(
            r.effective_bytes_per_sec < 3e9,
            "{}",
            r.effective_bytes_per_sec
        );
    }

    #[test]
    fn erase_accounting() {
        let topo = Topology::cambricon_s();
        let t = Timing::paper();
        let one_block = PAGES_PER_BLOCK * topo.page_bytes as u64;
        let r = bulk_load(&topo, &t, one_block);
        assert_eq!(r.blocks_erased, 1);
        let r2 = bulk_load(&topo, &t, one_block * 10);
        assert_eq!(r2.blocks_erased, 10);
    }

    #[test]
    fn channel_bound_when_single_die() {
        // One die per channel can still program 2 planes in parallel:
        // 2 × 16 KB / 600 µs ≈ 55 MB/s « 1 GB/s bus → program-bound.
        // Conversely a hypothetical ultra-fast program flips the bound.
        let topo = Topology::custom(8, 1);
        let mut fast = Timing::paper();
        fast.t_prog = SimTime::from_micros(10);
        let r = bulk_load(&topo, &fast, 1 << 30);
        assert!(!r.program_bound);
    }
}
