//! Simulation reports.

use sim_core::SimTime;

/// Result of running one channel's workload to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelReport {
    /// Time the last transfer completed.
    pub finish: SimTime,
    /// Time the last read-compute result was delivered.
    pub rc_finish: SimTime,
    /// Time the last plain-read page was delivered.
    pub read_finish: SimTime,
    /// Total channel-bus busy time.
    pub bus_busy: SimTime,
    /// Bus busy fraction over `[0, finish)`.
    pub utilization: f64,
    /// Control bytes moved (inputs + results).
    pub control_bytes: u64,
    /// Read-page bytes moved to the NPU.
    pub read_bytes: u64,
    /// Read-compute rounds retired.
    pub rc_rounds_done: usize,
    /// Plain-read pages delivered.
    pub read_pages_done: usize,
    /// Discrete events processed (diagnostics).
    pub events: u64,
}

impl ChannelReport {
    /// An all-zero report for an empty workload.
    pub fn empty() -> Self {
        ChannelReport {
            finish: SimTime::ZERO,
            rc_finish: SimTime::ZERO,
            read_finish: SimTime::ZERO,
            bus_busy: SimTime::ZERO,
            utilization: 0.0,
            control_bytes: 0,
            read_bytes: 0,
            rc_rounds_done: 0,
            read_pages_done: 0,
            events: 0,
        }
    }
}

/// Result of running a full device (all channels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceReport {
    /// Completion time: the slowest channel's finish.
    pub finish: SimTime,
    /// Mean channel-bus utilization across channels.
    pub mean_utilization: f64,
    /// Total bytes delivered to the NPU (results + read pages), summed
    /// over channels.
    pub bytes_to_npu: u64,
    /// Total bytes sent from the NPU to the flash (input vectors).
    pub bytes_from_npu: u64,
    /// Total weight bytes *consumed inside* the flash by compute cores
    /// (never crossing the channel) — the in-storage-computing saving.
    pub bytes_computed_in_flash: u64,
    /// Channels simulated.
    pub channels: usize,
}

impl DeviceReport {
    /// Total D2D-link traffic in both directions.
    pub fn d2d_bytes(&self) -> u64 {
        self.bytes_to_npu + self.bytes_from_npu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_zeroed() {
        let r = ChannelReport::empty();
        assert_eq!(r.finish, SimTime::ZERO);
        assert_eq!(r.events, 0);
    }

    #[test]
    fn d2d_sums_directions() {
        let d = DeviceReport {
            finish: SimTime::from_micros(1),
            mean_utilization: 0.5,
            bytes_to_npu: 100,
            bytes_from_npu: 30,
            bytes_computed_in_flash: 1000,
            channels: 8,
        };
        assert_eq!(d.d2d_bytes(), 130);
    }
}
