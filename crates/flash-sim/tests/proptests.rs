//! Property tests for the flash discrete-event engine.

use flash_sim::{ChannelEngine, ChannelWorkload, EngineConfig, SlicePolicy, Timing, Topology};
use proptest::prelude::*;
use sim_core::SimTime;

fn wl(rc: usize, reads: usize) -> ChannelWorkload {
    ChannelWorkload {
        rc_rounds: rc,
        rc_input_bytes: 256,
        rc_result_bytes_per_core: 64,
        ops_per_page: 32768,
        read_pages: reads,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The engine terminates for arbitrary topologies and workloads,
    /// conserving work counts.
    #[test]
    fn terminates_on_arbitrary_topologies(
        channels_exp in 0u32..4,
        chips in 1usize..6,
        dies in 1usize..3,
        planes in 1usize..3,
        rc in 0usize..30,
        reads in 0usize..30,
    ) {
        let mut topo = Topology::custom(1 << channels_exp, chips);
        topo.dies_per_chip = dies;
        topo.planes_per_die = planes;
        let cfg = EngineConfig::paper(topo);
        let rep = ChannelEngine::new(cfg, wl(rc, reads)).run();
        prop_assert_eq!(rep.rc_rounds_done, rc);
        prop_assert_eq!(rep.read_pages_done, reads);
    }

    /// Simulated time lower bounds: a channel can never finish faster
    /// than its array reads or its bus transfers allow.
    #[test]
    fn physics_lower_bounds(rc in 1usize..40, reads in 0usize..40) {
        let cfg = EngineConfig::paper(Topology::cambricon_s());
        let rep = ChannelEngine::new(cfg, wl(rc, reads)).run();
        // Array-read bound: each die's plane pipelines one page per tR.
        let per_die_pages = rc; // plane 0 processes rc pages in order
        let array_bound = SimTime::from_micros(30) * per_die_pages as u64;
        prop_assert!(rep.finish >= array_bound,
            "finish {} < array bound {}", rep.finish, array_bound);
        // Bus bound: all bytes must cross a 1 GB/s link.
        let bytes = rep.control_bytes + rep.read_bytes;
        let bus_bound = SimTime::from_nanos(bytes); // 1 B/ns
        prop_assert!(rep.finish >= bus_bound);
        prop_assert!(rep.bus_busy >= bus_bound);
    }

    /// In the contended steady-state regime (reads riding in the
    /// bubbles of an ongoing read-compute stream — the Figure 12
    /// scenario) slicing dominates. Outside that regime slicing's extra
    /// per-chunk commands can cost a little, so the property is scoped
    /// to it.
    #[test]
    fn sliced_dominates_unsliced_when_contended(rc in 8usize..40, extra in 0usize..8) {
        let reads = rc + rc / 2 + extra; // ≈ the balanced NPU share
        let sliced = ChannelEngine::new(
            EngineConfig::paper(Topology::cambricon_s()), wl(rc, reads)).run();
        let mut cfg = EngineConfig::paper(Topology::cambricon_s());
        cfg.slice = SlicePolicy::Unsliced;
        let unsliced = ChannelEngine::new(cfg, wl(rc, reads)).run();
        prop_assert!(
            unsliced.finish.as_picos() as f64 >= sliced.finish.as_picos() as f64 * 0.99,
            "unsliced {} < sliced {}", unsliced.finish, sliced.finish);
    }

    /// Doubling channel bandwidth never slows a workload down.
    #[test]
    fn faster_bus_helps(rc in 1usize..25, reads in 0usize..40) {
        let slow = EngineConfig::paper(Topology::cambricon_s());
        let mut fast = slow;
        fast.timing = Timing {
            channel_bytes_per_sec: 2_000_000_000,
            ..Timing::paper()
        };
        let a = ChannelEngine::new(slow, wl(rc, reads)).run();
        let b = ChannelEngine::new(fast, wl(rc, reads)).run();
        // Event-driven arbitration can re-order transfers, so allow a
        // 2% Graham-anomaly slack; the bus itself must do less work.
        prop_assert!(
            b.finish.as_picos() as f64 <= a.finish.as_picos() as f64 * 1.02,
            "{} vs {}", b.finish, a.finish
        );
        prop_assert!(b.bus_busy <= a.bus_busy);
    }

    /// Utilization and byte accounting invariants hold under slice-size
    /// variation.
    #[test]
    fn slice_size_invariants(slice_kb in 1usize..9, rc in 1usize..20, reads in 1usize..40) {
        let mut cfg = EngineConfig::paper(Topology::cambricon_s());
        cfg.slice = SlicePolicy::Sliced { slice_bytes: slice_kb * 1024 };
        let rep = ChannelEngine::new(cfg, wl(rc, reads)).run();
        prop_assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
        prop_assert_eq!(rep.read_bytes, reads as u64 * 16 * 1024);
    }
}
