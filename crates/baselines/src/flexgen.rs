//! FlexGen offloading baselines (Table III, Figure 9(a)).
//!
//! FlexGen (Sheng et al., ICML'23) serves LLMs from a single GPU by
//! offloading weights to system DRAM or an NVMe SSD. At batch size 1 the
//! decode loop is a pure weight-streaming pipeline: every layer's
//! weights cross `SSD → DRAM → GPU` (or `DRAM → GPU`) once per token,
//! so throughput is `weights / bottleneck-bandwidth`. The bandwidth
//! constants are calibrated to Table III's testbed (AMD EPYC 7742 +
//! A100-80G + Intel NVMe SSD) via the paper's measured speeds.
//!
//! FlexGen supports only OPT models (paper §VII-A); requesting a Llama
//! model returns [`BaselineError::UnsupportedModel`].

use crate::BaselineError;
use llm_workload::{kv, Family, ModelSpec, Quant};

/// Where FlexGen keeps the weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offload {
    /// Weights on the NVMe SSD (`Flexgen-SSD`).
    Ssd,
    /// Weights in system DRAM (`Flexgen-DRAM`).
    Dram,
}

/// The FlexGen testbed model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlexGen {
    /// Offload target.
    pub offload: Offload,
    /// Effective NVMe SSD streaming bandwidth (bytes/s).
    pub ssd_bytes_per_sec: f64,
    /// Effective DRAM→GPU (PCIe 4.0 ×16) bandwidth (bytes/s).
    pub pcie_bytes_per_sec: f64,
    /// GPU HBM bandwidth (bytes/s) for the attention/KV work.
    pub hbm_bytes_per_sec: f64,
    /// System DRAM capacity in bytes (128 GB per Table III).
    pub dram_bytes: u64,
    /// Quantization (Table III: 8-bit).
    pub quant: Quant,
}

impl FlexGen {
    /// FlexGen-SSD as configured in Table III.
    pub fn ssd() -> Self {
        FlexGen {
            offload: Offload::Ssd,
            ..Self::common()
        }
    }

    /// FlexGen-DRAM as configured in Table III.
    pub fn dram() -> Self {
        FlexGen {
            offload: Offload::Dram,
            ..Self::common()
        }
    }

    fn common() -> Self {
        FlexGen {
            offload: Offload::Dram,
            // Calibrated: the paper's measured OPT speeds imply
            // ~5.5–6.6 GB/s effective NVMe streaming.
            ssd_bytes_per_sec: 5.8e9,
            // PCIe 4.0 ×16 ≈ 32 GB/s raw, ~25 GB/s effective.
            pcie_bytes_per_sec: 25e9,
            hbm_bytes_per_sec: 2.0e12,
            dram_bytes: 128_000_000_000,
            quant: Quant::W8A8,
        }
    }

    /// Per-token decode latency in seconds.
    ///
    /// # Errors
    ///
    /// [`BaselineError::UnsupportedModel`] for non-OPT models;
    /// [`BaselineError::OutOfMemory`] if the weights exceed system DRAM
    /// in DRAM-offload mode.
    pub fn token_latency_s(&self, model: &ModelSpec, seq_len: usize) -> Result<f64, BaselineError> {
        if model.family != Family::Opt {
            return Err(BaselineError::UnsupportedModel {
                model: model.name,
                framework: "FlexGen",
            });
        }
        let weights = model.weight_bytes(self.quant.weight_bits()) as f64;
        if self.offload == Offload::Dram && weights > self.dram_bytes as f64 {
            return Err(BaselineError::OutOfMemory {
                model: model.name,
                needed: weights as u64,
                capacity: self.dram_bytes,
            });
        }
        // Weight streaming: the stages pipeline, so the bottleneck link
        // sets the pace.
        let stream_s = match self.offload {
            Offload::Ssd => weights / self.ssd_bytes_per_sec.min(self.pcie_bytes_per_sec),
            Offload::Dram => weights / self.pcie_bytes_per_sec,
        };
        // Attention against the KV cache in GPU HBM — negligible but
        // modeled.
        let kv_bytes = 2.0 * kv::kv_cache_bytes(model, self.quant, seq_len) as f64
            / model.layers as f64
            * model.layers as f64;
        let attn_s = kv_bytes / self.hbm_bytes_per_sec;
        Ok(stream_s + attn_s)
    }

    /// Decode speed in tokens/second.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::token_latency_s`].
    pub fn decode_speed(&self, model: &ModelSpec, seq_len: usize) -> Result<f64, BaselineError> {
        Ok(1.0 / self.token_latency_s(model, seq_len)?)
    }

    /// Bytes moved per token (Figure 16(a)): in SSD mode each weight
    /// byte crosses SSD→DRAM, is written to and read from DRAM, and
    /// crosses PCIe to the GPU — ~3× amplification over the weight
    /// footprint, as the paper reports.
    pub fn bytes_per_token(&self, model: &ModelSpec, seq_len: usize) -> u64 {
        let w = model.weight_bytes(self.quant.weight_bits());
        let kv = 2 * kv::kv_cache_bytes(model, self.quant, seq_len) / seq_len.max(1) as u64
            * seq_len as u64
            / 2;
        match self.offload {
            Offload::Ssd => 3 * w + kv,
            Offload::Dram => 2 * w + kv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn ssd_speeds_match_figure_9a() {
        // Paper: FlexGen-SSD reaches 0.8/0.4/0.2/0.1 tok/s on
        // OPT-6.7B/13B/30B/66B.
        let fg = FlexGen::ssd();
        let cases = [
            (zoo::opt_6_7b(), 0.8),
            (zoo::opt_13b(), 0.4),
            (zoo::opt_30b(), 0.2),
            (zoo::opt_66b(), 0.1),
        ];
        for (m, paper) in cases {
            let s = fg.decode_speed(&m, 1000).unwrap();
            let rel = (s - paper).abs() / paper;
            assert!(rel < 0.35, "{}: {s:.2} vs paper {paper}", m.name);
        }
    }

    #[test]
    fn dram_speeds_match_figure_9a() {
        // Paper: FlexGen-DRAM reaches 3.5/2.0/0.8/0.4 tok/s.
        let fg = FlexGen::dram();
        let cases = [
            (zoo::opt_6_7b(), 3.5),
            (zoo::opt_13b(), 2.0),
            (zoo::opt_66b(), 0.4),
        ];
        for (m, paper) in cases {
            let s = fg.decode_speed(&m, 1000).unwrap();
            let rel = (s - paper).abs() / paper;
            assert!(rel < 0.45, "{}: {s:.2} vs paper {paper}", m.name);
        }
    }

    #[test]
    fn dram_variant_is_faster_than_ssd() {
        for m in zoo::opt_family() {
            let ssd = FlexGen::ssd().decode_speed(&m, 1000).unwrap();
            let dram = FlexGen::dram().decode_speed(&m, 1000).unwrap();
            assert!(dram > ssd, "{}", m.name);
        }
    }

    #[test]
    fn llama_is_unsupported() {
        let err = FlexGen::ssd()
            .decode_speed(&zoo::llama2_7b(), 100)
            .unwrap_err();
        assert!(matches!(err, BaselineError::UnsupportedModel { .. }));
        assert!(err.to_string().contains("FlexGen"));
    }

    #[test]
    fn transfer_amplification_is_3x_for_ssd() {
        // Figure 16(a): FlexGen-SSD moves ~20.2 GB/token for OPT-6.7B.
        let m = zoo::opt_6_7b();
        let b = FlexGen::ssd().bytes_per_token(&m, 1000) as f64 / 1e9;
        assert!((18.0..23.0).contains(&b), "{b} GB");
    }
}
