//! # baselines — the comparison systems of §VII
//!
//! Analytic simulators of the frameworks Cambricon-LLM is evaluated
//! against (Table III):
//!
//! * [`FlexGen`] — GPU + DRAM/NVMe offloading on a server
//!   (Figure 9(a), Figure 16);
//! * [`MlcLlm`] — DRAM-resident 4-bit inference on a Snapdragon 8 Gen 2
//!   phone, with the out-of-memory behaviour above 7B (Figure 9(b)).
//!
//! Both baselines are bandwidth-bound pipelines at batch size 1; their
//! constants are calibrated to the paper's testbeds so the comparisons
//! reproduce who-wins-by-how-much rather than absolute silicon numbers.
//!
//! ## Example
//!
//! ```
//! use baselines::{FlexGen, MlcLlm, BaselineError};
//! use llm_workload::zoo;
//!
//! let ssd_speed = FlexGen::ssd().decode_speed(&zoo::opt_66b(), 1000)?;
//! assert!(ssd_speed < 0.2); // the 0.1 tok/s of Figure 9(a)
//! assert!(matches!(
//!     MlcLlm::default().decode_speed(&zoo::llama2_70b()),
//!     Err(BaselineError::OutOfMemory { .. })
//! ));
//! # Ok::<(), BaselineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flexgen;
pub mod mlc;

pub use flexgen::{FlexGen, Offload};
pub use mlc::MlcLlm;

use std::fmt;

/// Errors a baseline can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineError {
    /// The framework cannot run this model family (FlexGen is OPT-only).
    UnsupportedModel {
        /// Model requested.
        model: &'static str,
        /// Framework that rejected it.
        framework: &'static str,
    },
    /// The model does not fit in the device's memory.
    OutOfMemory {
        /// Model requested.
        model: &'static str,
        /// Bytes needed.
        needed: u64,
        /// Bytes available.
        capacity: u64,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::UnsupportedModel { model, framework } => {
                write!(f, "{framework} does not support {model}")
            }
            BaselineError::OutOfMemory {
                model,
                needed,
                capacity,
            } => write!(
                f,
                "{model} out of memory: needs {needed} bytes, only {capacity} available"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}
