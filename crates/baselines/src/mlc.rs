//! MLC-LLM smartphone baseline (Table III, Figure 9(b)).
//!
//! MLC-LLM runs the whole model from phone DRAM with 4-bit RTN
//! quantization on a Snapdragon 8 Gen 2. Decode speed is LPDDR-bandwidth
//! bound; models whose 4-bit weights exceed the usable DRAM budget fail
//! with out-of-memory — exactly what the paper reports for Llama2-13B
//! and 70B.

use crate::BaselineError;
use llm_workload::{ModelSpec, Quant};

/// The MLC-LLM phone model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlcLlm {
    /// Effective LPDDR bandwidth available to the generator (bytes/s).
    pub dram_bytes_per_sec: f64,
    /// DRAM available for model weights after OS/app overhead (bytes).
    pub usable_dram_bytes: u64,
    /// Weight quantization (4-bit RTN per Table III).
    pub quant: Quant,
}

impl Default for MlcLlm {
    fn default() -> Self {
        Self::snapdragon_8_gen_2()
    }
}

impl MlcLlm {
    /// The Table III device: Snapdragon 8 Gen 2, ~25 GB/s effective
    /// LPDDR5X under sustained generation, ~6 GB of DRAM usable for
    /// weights on a 12 GB phone.
    pub fn snapdragon_8_gen_2() -> Self {
        MlcLlm {
            dram_bytes_per_sec: 25.5e9,
            usable_dram_bytes: 6_000_000_000,
            quant: Quant::W4A16,
        }
    }

    /// Decode speed in tokens/second.
    ///
    /// # Errors
    ///
    /// [`BaselineError::OutOfMemory`] when the 4-bit weights do not fit
    /// in usable DRAM (Llama2-13B/70B in the paper).
    pub fn decode_speed(&self, model: &ModelSpec) -> Result<f64, BaselineError> {
        let weights = model.weight_bytes(self.quant.weight_bits());
        if weights > self.usable_dram_bytes {
            return Err(BaselineError::OutOfMemory {
                model: model.name,
                needed: weights,
                capacity: self.usable_dram_bytes,
            });
        }
        Ok(self.dram_bytes_per_sec / weights as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn llama7b_speed_matches_figure_9b() {
        // Paper: 7.58 tok/s on Llama2-7B (4-bit).
        let s = MlcLlm::default().decode_speed(&zoo::llama2_7b()).unwrap();
        assert!((s - 7.58).abs() / 7.58 < 0.15, "{s}");
    }

    #[test]
    fn llama13b_and_70b_oom() {
        // Paper: "On Llama2-13B and 70B, it encounters out-of-memory".
        for m in [zoo::llama2_13b(), zoo::llama2_70b()] {
            let err = MlcLlm::default().decode_speed(&m).unwrap_err();
            match err {
                BaselineError::OutOfMemory {
                    needed, capacity, ..
                } => {
                    assert!(needed > capacity);
                }
                other => panic!("expected OOM, got {other}"),
            }
        }
    }

    #[test]
    fn oom_error_is_displayable() {
        let err = MlcLlm::default()
            .decode_speed(&zoo::llama2_70b())
            .unwrap_err();
        let s = err.to_string();
        assert!(s.contains("Llama2-70B"), "{s}");
        assert!(s.to_lowercase().contains("memory"), "{s}");
    }
}
