//! Property tests for the outlier ECC codec.

use outlier_ecc::{hamming, measure, BitFlipModel, PageCodec};
use proptest::prelude::*;

fn small_codec() -> PageCodec {
    PageCodec {
        elems: 2048,
        protect_fraction: 0.01,
        value_copies: 2,
        spare_bytes: 256,
    }
}

fn arb_page(elems: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(any::<i8>(), elems)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hamming(19,14): every address round-trips, and any single bit
    /// flip is corrected.
    #[test]
    fn hamming_corrects_one_flip(addr in 0u16..(1 << 14), bit in 0u32..19) {
        let w = hamming::encode(addr);
        prop_assert_eq!(hamming::decode(w), hamming::Decoded::Clean(addr));
        prop_assert_eq!(
            hamming::decode(w ^ (1 << bit)),
            hamming::Decoded::Corrected(addr)
        );
    }

    /// Encode/decode is the identity on any clean page content,
    /// including adversarial ones (all equal, all extreme, random).
    #[test]
    fn roundtrip_identity(weights in arb_page(2048)) {
        let c = small_codec();
        let page = c.encode(&weights);
        prop_assert_eq!(c.decode(&page), weights);
    }

    /// A protected outlier survives any single-bit flip of its stored
    /// data byte (majority vote with two clean copies).
    #[test]
    fn top_outlier_survives_any_flip(seed in 0u64..3000, bit in 0u32..8) {
        let c = small_codec();
        // Build a page with a unique maximal outlier at a known spot.
        let mut weights = vec![0i8; c.elems];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = ((i % 17) as i8) - 8;
        }
        let spot = (seed as usize) % c.elems;
        weights[spot] = 127;
        let mut page = c.encode(&weights);
        page.data[spot] = (page.data[spot] as u8 ^ (1 << bit)) as i8;
        let out = c.decode(&page);
        prop_assert_eq!(out[spot], 127);
    }

    /// Corruption damage (RMS) with ECC does not exceed damage without,
    /// in expectation. Pointwise the scheme can lose on rare draws — a
    /// double-flip in an address field can alias to a wrong single-bit
    /// "correction" and re-target an outlier's copies onto an innocent
    /// element — so the property is statistical, like the mechanism's
    /// own guarantee (f_prot is a probability, §VI).
    #[test]
    fn ecc_helps_in_expectation(seed in 0u64..200) {
        let c = small_codec();
        // ~0.5% outliers, the regime the mechanism is designed for. (A
        // degenerate all-outlier page defeats it: with most large values
        // unprotected, the threshold clamp zeroes legitimate weights —
        // the codec documents this domain assumption.)
        let weights: Vec<i8> = (0..c.elems)
            .map(|i| if (i as u64 + seed) % 199 == 0 { 115 } else { (i % 13) as i8 - 6 })
            .collect();
        let trials = 6;
        let mut sum_with = 0.0;
        let mut sum_raw = 0.0;
        for t in 0..trials {
            let inj_seed = seed.wrapping_mul(0x9E37_79B9).wrapping_add(t);
            let mut with = c.encode(&weights);
            BitFlipModel::new(5e-4, inj_seed).corrupt_page(&mut with);
            sum_with += measure(&weights, &c.decode(&with), &c).rms_err;

            let mut raw = weights.clone();
            let bytes: &mut [u8] = unsafe {
                std::slice::from_raw_parts_mut(raw.as_mut_ptr() as *mut u8, raw.len())
            };
            BitFlipModel::new(5e-4, inj_seed).corrupt_bytes(bytes);
            sum_raw += measure(&weights, &raw, &c).rms_err;
        }
        prop_assert!(sum_with <= sum_raw + 0.5 * trials as f64,
            "mean with {} vs mean raw {}",
            sum_with / trials as f64, sum_raw / trials as f64);
    }

    /// The injector flips exactly as many bits as it reports.
    #[test]
    fn injector_reports_exact_flip_count(seed in 0u64..2000, ber in 1e-4f64..1e-2) {
        let mut buf = vec![0u8; 8192];
        let flips = BitFlipModel::new(ber, seed).corrupt_bytes(&mut buf);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        prop_assert_eq!(ones as usize, flips);
    }
}
