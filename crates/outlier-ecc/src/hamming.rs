//! Hamming(19,14) single-error-correcting code for outlier addresses.
//!
//! §VI of the paper: each protected outlier's 14-bit in-page address is
//! "accompanied by a 5-bit private error-correcting code ... utilizing
//! the format of Hamming code. ... If a 1-bit error occurs in the
//! address, it will be corrected by the on-die decoder. If a 2-bit error
//! occurs, the protected value will be discarded."
//!
//! With 14 data bits, 5 parity bits give a (19,14) Hamming code — the
//! minimal SEC configuration (2⁵ ≥ 14 + 5 + 1). Pure SEC cannot
//! *reliably* detect double errors (some alias to miscorrections); we
//! catch the detectable subset (syndrome pointing outside the codeword)
//! and additionally let callers reject corrected addresses that fall
//! outside the page — the behaviour the paper's "discard" rule needs.

/// Result of decoding a possibly corrupted codeword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error detected; payload is the 14-bit address.
    Clean(u16),
    /// A single-bit error was corrected; payload is the address.
    Corrected(u16),
    /// The syndrome is inconsistent (detectable multi-bit error).
    Uncorrectable,
}

impl Decoded {
    /// The recovered address, if any.
    pub fn address(self) -> Option<u16> {
        match self {
            Decoded::Clean(a) | Decoded::Corrected(a) => Some(a),
            Decoded::Uncorrectable => None,
        }
    }
}

const DATA_BITS: u32 = 14;
const TOTAL_BITS: u32 = 19;

/// Returns true for codeword positions (1-based) that hold parity bits.
#[inline]
fn is_parity_pos(pos: u32) -> bool {
    pos.is_power_of_two()
}

/// Encodes a 14-bit address into a 19-bit Hamming codeword.
///
/// The codeword is returned in the low 19 bits, bit `i` (0-based)
/// corresponding to Hamming position `i + 1`.
///
/// # Panics
///
/// Panics if `addr` does not fit in 14 bits.
pub fn encode(addr: u16) -> u32 {
    assert!(addr < (1 << DATA_BITS), "address {addr} exceeds 14 bits");
    // Scatter data bits into non-parity positions.
    let mut word: u32 = 0;
    let mut data_idx = 0;
    for pos in 1..=TOTAL_BITS {
        if !is_parity_pos(pos) {
            if (addr >> data_idx) & 1 == 1 {
                word |= 1 << (pos - 1);
            }
            data_idx += 1;
        }
    }
    // Compute each parity bit: XOR of all positions whose index has that
    // parity bit set.
    for p in [1u32, 2, 4, 8, 16] {
        let mut parity = 0u32;
        for pos in 1..=TOTAL_BITS {
            if pos & p != 0 && !is_parity_pos(pos) {
                parity ^= (word >> (pos - 1)) & 1;
            }
        }
        if parity == 1 {
            word |= 1 << (p - 1);
        }
    }
    word
}

/// Decodes a 19-bit codeword, correcting up to one flipped bit.
pub fn decode(mut word: u32) -> Decoded {
    word &= (1 << TOTAL_BITS) - 1;
    // Syndrome: XOR of the (1-based) positions of all set bits.
    let mut syndrome = 0u32;
    for pos in 1..=TOTAL_BITS {
        if (word >> (pos - 1)) & 1 == 1 {
            syndrome ^= pos;
        }
    }
    let corrected = if syndrome == 0 {
        None
    } else if syndrome <= TOTAL_BITS {
        word ^= 1 << (syndrome - 1);
        Some(())
    } else {
        return Decoded::Uncorrectable;
    };
    // Gather data bits.
    let mut addr: u16 = 0;
    let mut data_idx = 0;
    for pos in 1..=TOTAL_BITS {
        if !is_parity_pos(pos) {
            if (word >> (pos - 1)) & 1 == 1 {
                addr |= 1 << data_idx;
            }
            data_idx += 1;
        }
    }
    match corrected {
        None => Decoded::Clean(addr),
        Some(()) => Decoded::Corrected(addr),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_addresses() {
        for addr in 0..(1u16 << 14) {
            assert_eq!(decode(encode(addr)), Decoded::Clean(addr));
        }
    }

    #[test]
    fn corrects_every_single_bit_flip() {
        for addr in [0u16, 1, 163, 4095, 16383, 9999] {
            let word = encode(addr);
            for bit in 0..19 {
                let corrupted = word ^ (1 << bit);
                let d = decode(corrupted);
                assert_eq!(d, Decoded::Corrected(addr), "addr {addr} bit {bit}");
            }
        }
    }

    #[test]
    fn double_flips_never_return_clean() {
        // SEC cannot reliably recover 2-bit errors, but it must never
        // claim a clean decode for one.
        for addr in [7u16, 1234, 16000] {
            let word = encode(addr);
            for b1 in 0..19 {
                for b2 in (b1 + 1)..19 {
                    let corrupted = word ^ (1 << b1) ^ (1 << b2);
                    match decode(corrupted) {
                        Decoded::Clean(_) => panic!("2-bit error decoded as clean"),
                        Decoded::Corrected(_) | Decoded::Uncorrectable => {}
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 14 bits")]
    fn oversized_address_panics() {
        encode(1 << 14);
    }

    #[test]
    fn parity_positions_are_powers_of_two() {
        assert!(is_parity_pos(1) && is_parity_pos(16));
        assert!(!is_parity_pos(3) && !is_parity_pos(19));
    }

    #[test]
    fn decoded_address_accessor() {
        assert_eq!(Decoded::Clean(5).address(), Some(5));
        assert_eq!(Decoded::Corrected(9).address(), Some(9));
        assert_eq!(Decoded::Uncorrectable.address(), None);
    }
}
