//! MSB-first bit packing for the ECC spare-area layout.

/// Writes bit fields MSB-first into a byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 32` or `value` has bits above `width`.
    pub fn write(&mut self, value: u32, width: u32) {
        assert!(width <= 32, "width {width} too large");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value:#x} exceeds {width} bits"
        );
        for i in (0..width).rev() {
            let bit = (value >> i) & 1;
            let byte_idx = self.bit_len / 8;
            if byte_idx == self.bytes.len() {
                self.bytes.push(0);
            }
            if bit == 1 {
                self.bytes[byte_idx] |= 1 << (7 - (self.bit_len % 8));
            }
            self.bit_len += 1;
        }
    }

    /// Total bits written.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Finishes, returning the packed bytes (last byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bit fields MSB-first from a byte buffer.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits MSB-first. Reads past the end return zero bits
    /// (the spare area is larger than the payload; trailing bits are
    /// padding).
    pub fn read(&mut self, width: u32) -> u32 {
        let mut v = 0u32;
        for _ in 0..width {
            let byte_idx = self.pos / 8;
            let bit = if byte_idx < self.bytes.len() {
                (self.bytes[byte_idx] >> (7 - (self.pos % 8))) & 1
            } else {
                0
            };
            v = (v << 1) | bit as u32;
            self.pos += 1;
        }
        v
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0x3FFF, 14);
        w.write(0, 5);
        w.write(0xAB, 8);
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        assert_eq!(bits, 30);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(14), 0x3FFF);
        assert_eq!(r.read(5), 0);
        assert_eq!(r.read(8), 0xAB);
        assert_eq!(r.bit_pos(), 30);
    }

    #[test]
    fn reading_past_end_yields_zeros() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read(8), 0xFF);
        assert_eq!(r.read(8), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_value_panics() {
        BitWriter::new().write(8, 3);
    }

    #[test]
    fn bytes_are_msb_first() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
