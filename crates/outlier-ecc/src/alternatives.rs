//! On-die protection alternatives — why outlier ECC?
//!
//! §VI motivates the outlier scheme by elimination: LDPC-class
//! controller ECC cannot fit on a die, and na(ï)ve in-die schemes either
//! blow the spare-area budget or protect the wrong bits. This module
//! implements the plausible alternatives so the design choice is an
//! *ablation*, not an assertion:
//!
//! * [`NoProtection`] — the OptimStore/BeaconGNN position (the paper's
//!   Figure 3(b) baseline);
//! * [`FullReplication`] — one extra copy of every byte + majority with
//!   the threshold trick unavailable: needs `page`-sized spare (16 KB ≫
//!   1664 B) so it is *infeasible*; modeled to quantify by how much;
//! * [`WordHamming`] — SEC Hamming(72,64) over every 64-bit word, the
//!   classic lightweight on-die code: fits no better (2 KB of parity
//!   per 16 KB page > 1664 B spare) and corrects only one bit per word;
//! * [`OutlierEcc`] — the paper's scheme (722 B, fits).
//!
//! Each alternative reports its spare-area demand and its residual
//! damage under injection, so the trade-off table writes itself.

use crate::codec::{EncodedPage, PageCodec};
use crate::inject::BitFlipModel;

/// A page-protection scheme that can be evaluated under error injection.
pub trait Protection {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;
    /// Spare-area bytes required per `elems`-element page.
    fn spare_bytes_required(&self, elems: usize) -> usize;
    /// Whether the scheme fits the physical spare area.
    fn fits(&self, elems: usize, spare_bytes: usize) -> bool {
        self.spare_bytes_required(elems) <= spare_bytes
    }
    /// Stores `weights`, corrupts everything (data + metadata) at `ber`,
    /// and returns the recovered weights.
    fn roundtrip(&self, weights: &[i8], ber: f64, seed: u64) -> Vec<i8>;
}

/// No protection at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProtection;

impl Protection for NoProtection {
    fn name(&self) -> &'static str {
        "none"
    }
    fn spare_bytes_required(&self, _elems: usize) -> usize {
        0
    }
    fn roundtrip(&self, weights: &[i8], ber: f64, seed: u64) -> Vec<i8> {
        let mut page = EncodedPage {
            data: weights.to_vec(),
            spare: Vec::new(),
        };
        BitFlipModel::new(ber, seed).corrupt_page(&mut page);
        page.data
    }
}

/// One full extra copy of the page in the spare area; per-element
/// 2-way compare with bitwise arbitration (ties favour the data copy —
/// with only two copies, a mismatch cannot be arbitrated reliably,
/// which is exactly the scheme's weakness).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullReplication;

impl Protection for FullReplication {
    fn name(&self) -> &'static str {
        "full replication"
    }
    fn spare_bytes_required(&self, elems: usize) -> usize {
        elems // one byte per INT8 element
    }
    fn roundtrip(&self, weights: &[i8], ber: f64, seed: u64) -> Vec<i8> {
        let copy: Vec<u8> = weights.iter().map(|&v| v as u8).collect();
        let mut page = EncodedPage {
            data: weights.to_vec(),
            spare: copy,
        };
        BitFlipModel::new(ber, seed).corrupt_page(&mut page);
        page.data
            .iter()
            .zip(&page.spare)
            .map(|(&d, &s)| {
                // With two diverged copies, pick the smaller magnitude:
                // a flip usually inflates magnitude (high bits), so this
                // is the best available arbitration without a vote.
                let (d8, s8) = (d, s as i8);
                if d8 == s8 || d8.unsigned_abs() <= s8.unsigned_abs() {
                    d8
                } else {
                    s8
                }
            })
            .collect()
    }
}

/// SEC Hamming(71,64): seven parity bits (stored in one spare byte)
/// protect every aligned 64-bit word of the data area. Fixes any single
/// flipped bit per word; multi-bit words miscorrect or pass through.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordHamming;

impl WordHamming {
    fn syndrome(word: u64, parity: u8) -> (u64, u8) {
        // Compute the 8 parity bits of `word` (64 data bits at Hamming
        // positions skipping powers of two within 1..=72).
        let mut computed = 0u8;
        let mut data_idx = 0;
        let mut contributions = [0u64; 7];
        for pos in 1u32..=71 {
            if pos.is_power_of_two() {
                continue;
            }
            let bit = (word >> data_idx) & 1;
            if bit == 1 {
                for (p, c) in contributions.iter_mut().enumerate() {
                    if pos & (1 << p) != 0 {
                        *c ^= 1;
                    }
                }
            }
            data_idx += 1;
        }
        for (p, c) in contributions.iter().enumerate() {
            if *c == 1 {
                computed |= 1 << p;
            }
        }
        (word, computed ^ parity)
    }

    fn correct(word: u64, parity: u8) -> u64 {
        let (_, syn) = Self::syndrome(word, parity);
        if syn == 0 {
            return word;
        }
        let pos = syn as u32;
        if pos > 71 || pos.is_power_of_two() {
            return word; // parity-bit error or invalid syndrome
        }
        // Map Hamming position back to data bit index.
        let mut data_idx = 0;
        for p in 1u32..=71 {
            if p.is_power_of_two() {
                continue;
            }
            if p == pos {
                return word ^ (1 << data_idx);
            }
            data_idx += 1;
        }
        word
    }
}

impl Protection for WordHamming {
    fn name(&self) -> &'static str {
        "Hamming(71,64)"
    }
    fn spare_bytes_required(&self, elems: usize) -> usize {
        elems / 8 // one parity byte per 8 data bytes
    }
    fn roundtrip(&self, weights: &[i8], ber: f64, seed: u64) -> Vec<i8> {
        assert!(weights.len() % 8 == 0, "page must be 8-byte aligned");
        // Encode parities.
        let words: Vec<u64> = weights
            .chunks(8)
            .map(|c| {
                let mut w = 0u64;
                for (i, &b) in c.iter().enumerate() {
                    w |= (b as u8 as u64) << (8 * i);
                }
                w
            })
            .collect();
        let parities: Vec<u8> = words.iter().map(|&w| Self::syndrome(w, 0).1).collect();
        let mut page = EncodedPage {
            data: weights.to_vec(),
            spare: parities,
        };
        BitFlipModel::new(ber, seed).corrupt_page(&mut page);
        // Decode.
        let mut out = Vec::with_capacity(weights.len());
        for (wi, chunk) in page.data.chunks(8).enumerate() {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u8 as u64) << (8 * i);
            }
            let fixed = Self::correct(w, page.spare[wi]);
            for i in 0..8 {
                out.push(((fixed >> (8 * i)) & 0xFF) as u8 as i8);
            }
        }
        out
    }
}

/// The paper's outlier ECC, adapted to the trait.
#[derive(Debug, Clone)]
pub struct OutlierEcc {
    codec: PageCodec,
}

impl OutlierEcc {
    /// Wraps a codec configuration.
    pub fn new(codec: PageCodec) -> Self {
        OutlierEcc { codec }
    }
}

impl Protection for OutlierEcc {
    fn name(&self) -> &'static str {
        "outlier ECC (paper)"
    }
    fn spare_bytes_required(&self, _elems: usize) -> usize {
        self.codec.payload_bytes()
    }
    fn roundtrip(&self, weights: &[i8], ber: f64, seed: u64) -> Vec<i8> {
        let mut page = self.codec.encode(weights);
        BitFlipModel::new(ber, seed).corrupt_page(&mut page);
        self.codec.decode(&page)
    }
}

/// One row of the alternatives comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AlternativeRow {
    /// Scheme name.
    pub name: &'static str,
    /// Spare bytes required for the evaluated page.
    pub spare_required: usize,
    /// Fits the 1664 B physical spare of a 16 KB page?
    pub feasible: bool,
    /// Residual RMS weight error at the evaluated BER.
    pub rms_err: f64,
}

/// Evaluates all alternatives on one page of weights at `ber`.
pub fn compare_alternatives(weights: &[i8], ber: f64, seed: u64) -> Vec<AlternativeRow> {
    let elems = weights.len();
    let spare_budget = 1664 * elems / (16 * 1024); // scale the physical spare
    let codec = PageCodec {
        elems,
        protect_fraction: 0.01,
        value_copies: 2,
        spare_bytes: spare_budget.max(1),
    };
    let schemes: Vec<Box<dyn Protection>> = vec![
        Box::new(NoProtection),
        Box::new(FullReplication),
        Box::new(WordHamming),
        Box::new(OutlierEcc::new(codec)),
    ];
    schemes
        .iter()
        .map(|s| {
            let out = s.roundtrip(weights, ber, seed);
            let sum_sq: f64 = out
                .iter()
                .zip(weights)
                .map(|(&a, &b)| {
                    let e = (a as i32 - b as i32) as f64;
                    e * e
                })
                .sum();
            AlternativeRow {
                name: s.name(),
                spare_required: s.spare_bytes_required(elems),
                feasible: s.fits(elems, spare_budget),
                rms_err: (sum_sq / elems as f64).sqrt(),
            }
        })
        .collect()
}

/// The feasible row with the least residual error, or `None` if no
/// scheme fits the spare area.
///
/// Ordering uses [`f64::total_cmp`], not `partial_cmp(..).unwrap()`:
/// `rms_err` is a computed quantity, and a NaN (e.g. from a degenerate
/// empty page) must pin to a deterministic rank instead of panicking
/// the comparison. Under IEEE 754 total order positive NaNs sort above
/// every real value, so a NaN row can never displace a finite winner;
/// ties keep the first row in `rows` order.
pub fn best_feasible(rows: &[AlternativeRow]) -> Option<&AlternativeRow> {
    rows.iter()
        .filter(|r| r.feasible)
        .min_by(|a, b| a.rms_err.total_cmp(&b.rms_err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SplitMix64;

    fn llm_page(elems: usize, seed: u64) -> Vec<i8> {
        let mut rng = SplitMix64::new(seed);
        (0..elems)
            .map(|_| {
                if rng.chance(0.005) {
                    110
                } else {
                    (rng.normal() * 8.0).clamp(-70.0, 70.0) as i8
                }
            })
            .collect()
    }

    #[test]
    fn only_outlier_ecc_fits_the_spare_area() {
        let rows = compare_alternatives(&llm_page(16384, 1), 1e-4, 7);
        let by_name = |n: &str| rows.iter().find(|r| r.name.contains(n)).unwrap();
        assert!(by_name("none").feasible);
        assert!(by_name("outlier").feasible);
        assert!(
            !by_name("replication").feasible,
            "16 KB copy cannot fit 1664 B"
        );
        assert!(
            !by_name("Hamming").feasible,
            "2 KB parity cannot fit 1664 B"
        );
    }

    #[test]
    fn word_hamming_corrects_single_bit_words() {
        let weights = llm_page(512, 3);
        // Zero BER: identity.
        assert_eq!(WordHamming.roundtrip(&weights, 0.0, 1), weights);
        // A single manual flip inside one word gets corrected: emulate
        // via very low BER over many trials — any trial with ≤1 flip
        // per word must come back clean.
        let out = WordHamming.roundtrip(&weights, 1e-5, 5);
        let diff = out.iter().zip(&weights).filter(|(a, b)| a != b).count();
        assert!(diff <= 1, "{diff}");
    }

    #[test]
    fn full_replication_beats_nothing_but_needs_a_page() {
        let weights = llm_page(4096, 9);
        let none = NoProtection.roundtrip(&weights, 2e-3, 11);
        let repl = FullReplication.roundtrip(&weights, 2e-3, 11);
        let rms = |out: &[i8]| -> f64 {
            (out.iter()
                .zip(&weights)
                .map(|(&a, &b)| ((a as i32 - b as i32) as f64).powi(2))
                .sum::<f64>()
                / out.len() as f64)
                .sqrt()
        };
        assert!(rms(&repl) < rms(&none));
        assert_eq!(FullReplication.spare_bytes_required(4096), 4096);
    }

    #[test]
    fn outlier_ecc_is_best_feasible_scheme_at_retention_ber() {
        // At the paper's fresh-chip retention BER (1e-4), among schemes
        // that FIT the spare area, the outlier ECC has the least damage.
        let weights = llm_page(16384, 21);
        let rows = compare_alternatives(&weights, 1e-4, 33);
        let feasible_best = best_feasible(&rows).unwrap();
        assert!(
            feasible_best.name.contains("outlier"),
            "best feasible was {}",
            feasible_best.name
        );
    }

    #[test]
    fn best_feasible_pins_nan_rows_instead_of_panicking() {
        let row = |name, feasible, rms_err| AlternativeRow {
            name,
            spare_required: 0,
            feasible,
            rms_err,
        };
        // A NaN row never displaces a finite winner (total_cmp ranks
        // positive NaN above every real), and an infeasible row never
        // competes at all.
        let rows = vec![
            row("nan", true, f64::NAN),
            row("good", true, 1.0),
            row("tiny-but-infeasible", false, 0.0),
        ];
        assert_eq!(best_feasible(&rows).unwrap().name, "good");
        // All-NaN input returns the first row (min_by keeps the first
        // of equal elements) rather than panicking.
        let all_nan = vec![row("a", true, f64::NAN), row("b", true, f64::NAN)];
        assert_eq!(best_feasible(&all_nan).unwrap().name, "a");
        // No feasible rows: None, not a panic.
        assert!(best_feasible(&[row("x", false, 1.0)]).is_none());
    }

    #[test]
    fn hamming72_64_is_weaker_than_outlier_at_high_ber() {
        // Even ignoring feasibility, word-Hamming loses once words see
        // multiple flips (aged flash), because it miscorrects.
        let weights = llm_page(16384, 5);
        let rows = compare_alternatives(&weights, 5e-3, 13);
        let get = |n: &str| rows.iter().find(|r| r.name.contains(n)).unwrap().rms_err;
        assert!(get("outlier") < get("Hamming") * 1.5);
    }
}
