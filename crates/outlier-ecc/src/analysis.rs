//! Corruption measurement: how badly did flash errors damage a page,
//! with and without the on-die Error Correction Unit?
//!
//! These metrics are the bridge between the bit-level error/ECC
//! machinery and task accuracy (crate `accuracy-lab`): the paper's
//! Figures 3(b) and 10 plot accuracy against BER; we measure the weight
//! corruption the ECC leaves behind and map it to accuracy with a
//! calibrated surrogate (see `DESIGN.md` §4 for the substitution note).

use crate::codec::{EncodedPage, PageCodec};
use crate::inject::BitFlipModel;

/// Damage metrics for one decoded page vs. the original.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CorruptionReport {
    /// Elements compared.
    pub elems: usize,
    /// Elements whose decoded value differs from the original.
    pub changed: usize,
    /// Changed elements that were top-1% outliers in the original.
    pub outliers_changed: usize,
    /// Mean |decoded − original| over all elements (INT8 LSBs).
    pub mean_abs_err: f64,
    /// Root-mean-square error (INT8 LSBs).
    pub rms_err: f64,
    /// Largest single-element |error| (INT8 LSBs).
    pub max_abs_err: u32,
}

impl CorruptionReport {
    /// Fraction of elements changed.
    pub fn change_rate(&self) -> f64 {
        if self.elems == 0 {
            return 0.0;
        }
        self.changed as f64 / self.elems as f64
    }

    /// Magnitude-weighted error rate: RMS error normalized by the INT8
    /// full scale. This is the scalar `accuracy-lab` maps to task
    /// accuracy.
    pub fn severity(&self) -> f64 {
        self.rms_err / 127.0
    }
}

/// Compares decoded weights against the originals.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn measure(original: &[i8], decoded: &[i8], codec: &PageCodec) -> CorruptionReport {
    assert_eq!(original.len(), decoded.len(), "length mismatch");
    let n_out = codec.outlier_count();
    let mut idx: Vec<usize> = (0..original.len()).collect();
    idx.sort_by_key(|&i| (std::cmp::Reverse(original[i].unsigned_abs()), i));
    let mut is_outlier = vec![false; original.len()];
    for &i in &idx[..n_out.min(idx.len())] {
        is_outlier[i] = true;
    }

    let mut changed = 0;
    let mut outliers_changed = 0;
    let mut sum_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut max_abs = 0u32;
    for i in 0..original.len() {
        let e = (original[i] as i32 - decoded[i] as i32).unsigned_abs();
        if e != 0 {
            changed += 1;
            if is_outlier[i] {
                outliers_changed += 1;
            }
        }
        sum_abs += e as f64;
        sum_sq += (e as f64) * (e as f64);
        max_abs = max_abs.max(e);
    }
    let n = original.len() as f64;
    CorruptionReport {
        elems: original.len(),
        changed,
        outliers_changed,
        mean_abs_err: sum_abs / n,
        rms_err: (sum_sq / n).sqrt(),
        max_abs_err: max_abs,
    }
}

/// Runs one inject-and-decode trial on a page of weights.
///
/// With `with_ecc = false` the page is stored raw (no spare payload) and
/// read back uncorrected — the Figure 3(b)/10 "Without Err Cor" arm.
pub fn run_trial(
    codec: &PageCodec,
    weights: &[i8],
    ber: f64,
    seed: u64,
    with_ecc: bool,
) -> CorruptionReport {
    let mut model = BitFlipModel::new(ber, seed);
    if with_ecc {
        let mut page = codec.encode(weights);
        model.corrupt_page(&mut page);
        let decoded = codec.decode(&page);
        measure(weights, &decoded, codec)
    } else {
        let mut page = EncodedPage {
            data: weights.to_vec(),
            spare: Vec::new(),
        };
        model.corrupt_page(&mut page);
        measure(weights, &page.data, codec)
    }
}

/// Averages trials across `pages` independently seeded pages.
pub fn run_trials(
    codec: &PageCodec,
    make_weights: impl Fn(u64) -> Vec<i8>,
    pages: usize,
    ber: f64,
    base_seed: u64,
    with_ecc: bool,
) -> CorruptionReport {
    assert!(pages > 0, "need at least one page");
    let mut acc = CorruptionReport::default();
    for p in 0..pages {
        let weights = make_weights(p as u64);
        let r = run_trial(
            codec,
            &weights,
            ber,
            base_seed ^ (p as u64).wrapping_mul(0x9E37),
            with_ecc,
        );
        acc.elems += r.elems;
        acc.changed += r.changed;
        acc.outliers_changed += r.outliers_changed;
        acc.mean_abs_err += r.mean_abs_err;
        acc.rms_err += r.rms_err * r.rms_err; // accumulate variance-like
        acc.max_abs_err = acc.max_abs_err.max(r.max_abs_err);
    }
    acc.mean_abs_err /= pages as f64;
    acc.rms_err = (acc.rms_err / pages as f64).sqrt();
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SplitMix64;

    fn gaussian_weights(seed: u64, n: usize) -> Vec<i8> {
        // LLM-like distribution: narrow Gaussian bulk + rare large
        // outliers (the paper's §VI observation).
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                if rng.chance(0.005) {
                    let mag = 80.0 + rng.next_f64() * 47.0;
                    let v = if rng.chance(0.5) { mag } else { -mag };
                    v as i8
                } else {
                    (rng.normal() * 8.0).clamp(-60.0, 60.0) as i8
                }
            })
            .collect()
    }

    #[test]
    fn identical_pages_report_zero() {
        let c = PageCodec::paper();
        let w = gaussian_weights(1, c.elems);
        let r = measure(&w, &w, &c);
        assert_eq!(r.changed, 0);
        assert_eq!(r.severity(), 0.0);
        assert_eq!(r.change_rate(), 0.0);
    }

    #[test]
    fn ecc_protects_outliers_at_1e_4() {
        let c = PageCodec::paper();
        let w = gaussian_weights(2, c.elems);
        let with = run_trial(&c, &w, 1e-4, 99, true);
        let without = run_trial(&c, &w, 1e-4, 99, false);
        // The ECC must strictly reduce magnitude-weighted damage: big
        // flips on outliers and fake outliers dominate RMS error.
        assert!(
            with.rms_err < without.rms_err,
            "with {} vs without {}",
            with.rms_err,
            without.rms_err
        );
        assert!(with.outliers_changed <= without.outliers_changed);
    }

    #[test]
    fn severity_grows_with_ber() {
        let c = PageCodec::paper();
        let w = gaussian_weights(3, c.elems);
        let lo = run_trials(&c, |s| gaussian_weights(s, c.elems), 4, 1e-5, 5, false);
        let hi = run_trials(&c, |s| gaussian_weights(s, c.elems), 4, 1e-3, 5, false);
        let _ = w;
        assert!(hi.severity() > lo.severity());
        assert!(hi.change_rate() > lo.change_rate());
    }

    #[test]
    fn ecc_cannot_help_midrange_values() {
        // §VIII-D: "It offers no protection for intermediate and small
        // values" — at very high BER both arms degrade.
        let c = PageCodec::paper();
        let with = run_trials(&c, |s| gaussian_weights(s, c.elems), 3, 1e-2, 11, true);
        assert!(with.change_rate() > 0.02, "{}", with.change_rate());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn measure_rejects_mismatched_lengths() {
        let c = PageCodec::paper();
        measure(&[0i8; 4], &[0i8; 5], &c);
    }
}
