//! # outlier-ecc — the on-die outlier-oriented error correction of §VI
//!
//! NAND retention errors (BER 1e-4 … 1e-2) would silently corrupt
//! weights consumed by the in-flash compute cores, collapsing LLM
//! accuracy by 70%+ (paper Figure 3(b)). Cambricon-LLM's Error
//! Correction Unit protects exactly what matters:
//!
//! * the **top 1 % of weight magnitudes** (outliers) get two extra
//!   stored copies + a Hamming-protected address, recovered by bit-wise
//!   majority vote ([`codec::PageCodec`]);
//! * the page-wide **threshold** (9 replicated copies) lets the decoder
//!   clamp *fake outliers* — normal values flipped upward — to zero;
//! * everything fits in the page's existing spare area (722 B of
//!   payload in 1664 B for a 16 KB page).
//!
//! The crate is bit-exact: pages really are encoded into spare-area
//! bytes, bit flips really are injected ([`inject::BitFlipModel`]), and
//! the decoder really votes. [`analysis`] measures the surviving damage.
//!
//! ## Example
//!
//! ```
//! use outlier_ecc::{PageCodec, BitFlipModel};
//!
//! let codec = PageCodec::paper();
//! let weights: Vec<i8> = (0..16384)
//!     .map(|i| if i % 97 == 0 { 110 } else { (i % 23) as i8 - 11 })
//!     .collect();
//! let mut page = codec.encode(&weights);
//! BitFlipModel::new(1e-4, 7).corrupt_page(&mut page);
//! let decoded = codec.decode(&page);
//! // Outliers survive; total damage is tiny.
//! let diff = decoded.iter().zip(&weights).filter(|(a, b)| a != b).count();
//! assert!(diff < 40, "{diff}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alternatives;
pub mod analysis;
pub mod bitstream;
pub mod codec;
pub mod hamming;
pub mod inject;

pub use alternatives::{best_feasible, compare_alternatives, AlternativeRow, Protection};
pub use analysis::{measure, run_trial, run_trials, CorruptionReport};
pub use codec::{DecodeStats, EncodedPage, PageCodec, CORRECTABLE_RBER, THRESHOLD_COPIES};
pub use inject::{protected_flip_rate, BitFlipModel};
