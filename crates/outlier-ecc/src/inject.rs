//! Flash bit-flip error injection.
//!
//! §III-C: retention errors dominate NAND failure modes; a fresh 3D TLC
//! chip reaches BER ~1e-4 after hours of retention, and aged chips exceed
//! 1e-2. The paper "constructs flash error models of varying intensities
//! ... and injects them into quantized model weights"; this module is
//! that error model. Flips hit the data area *and* the spare-area ECC
//! bytes — the corrector must survive corruption of its own metadata.
//!
//! Injection uses geometric skip-sampling (jump directly between flips)
//! so sweeping BERs down to 1e-6 over many pages stays fast.

use crate::codec::EncodedPage;
use sim_core::SplitMix64;

/// A Bernoulli-per-bit flash error model.
#[derive(Debug, Clone)]
pub struct BitFlipModel {
    /// Probability that any single stored bit is flipped.
    pub ber: f64,
    rng: SplitMix64,
}

impl BitFlipModel {
    /// Creates a model with bit error rate `ber` and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ber ≤ 1`.
    pub fn new(ber: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&ber), "BER {ber} out of range");
        BitFlipModel {
            ber,
            // simlint: allow(D1) — the fault model IS the stream owner; callers pass a forked or study-level seed
            rng: SplitMix64::new(seed),
        }
    }

    /// Flips bits in `buf` in place; returns the number of flips.
    pub fn corrupt_bytes(&mut self, buf: &mut [u8]) -> usize {
        if self.ber <= 0.0 || buf.is_empty() {
            return 0;
        }
        let total_bits = buf.len() as u64 * 8;
        let mut flips = 0;
        let mut pos = self.rng.geometric(self.ber);
        while pos < total_bits {
            let byte = (pos / 8) as usize;
            let bit = (pos % 8) as u32;
            buf[byte] ^= 1 << bit;
            flips += 1;
            pos += 1 + self.rng.geometric(self.ber);
        }
        flips
    }

    /// Corrupts a whole stored page: data area and spare area.
    /// Returns `(data_flips, spare_flips)`.
    pub fn corrupt_page(&mut self, page: &mut EncodedPage) -> (usize, usize) {
        // i8 and u8 share representation; flip on the raw bytes.
        let data_flips = {
            let bytes: &mut [u8] = unsafe {
                std::slice::from_raw_parts_mut(page.data.as_mut_ptr() as *mut u8, page.data.len())
            };
            self.corrupt_bytes(bytes)
        };
        let spare_flips = self.corrupt_bytes(&mut page.spare);
        (data_flips, spare_flips)
    }
}

/// The paper's analytic protected-flip-rate bound (§VI):
///
/// ```text
/// f_prot = Σ_{i=N/2+1}^{N+1} C(N+1, i) · xⁱ · (1−x)^{N+1−i}
/// ```
///
/// With `N = 2` copies and `x = 1e-4`, `f_prot ≈ 3x² = 3e-8`.
pub fn protected_flip_rate(copies: usize, x: f64) -> f64 {
    assert!(
        copies % 2 == 0 && copies > 0,
        "copies must be positive even"
    );
    let n = copies;
    (n / 2 + 1..=n + 1)
        .map(|i| binomial(n + 1, i) as f64 * x.powi(i as i32) * (1.0 - x).powi((n + 1 - i) as i32))
        .sum()
}

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u64 = 1;
    let mut den: u64 = 1;
    for i in 0..k {
        num *= (n - i) as u64;
        den *= (i + 1) as u64;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_count_matches_ber() {
        let mut m = BitFlipModel::new(1e-3, 42);
        let mut buf = vec![0u8; 1 << 20]; // 8M bits
        let flips = m.corrupt_bytes(&mut buf);
        let expected = 8.0 * (1 << 20) as f64 * 1e-3; // ~8389
        assert!(
            (flips as f64 - expected).abs() / expected < 0.1,
            "{flips} vs {expected}"
        );
        // Every flip leaves a set bit (from zeroed buffer).
        let set: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(set as usize, flips);
    }

    #[test]
    fn zero_ber_flips_nothing() {
        let mut m = BitFlipModel::new(0.0, 1);
        let mut buf = vec![0xAAu8; 4096];
        assert_eq!(m.corrupt_bytes(&mut buf), 0);
        assert!(buf.iter().all(|&b| b == 0xAA));
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = BitFlipModel::new(1e-4, 7);
        let mut b = BitFlipModel::new(1e-4, 7);
        let mut buf_a = vec![0u8; 65536];
        let mut buf_b = vec![0u8; 65536];
        a.corrupt_bytes(&mut buf_a);
        b.corrupt_bytes(&mut buf_b);
        assert_eq!(buf_a, buf_b);
    }

    #[test]
    fn corrupt_page_touches_both_areas() {
        let mut m = BitFlipModel::new(0.02, 3);
        let mut page = EncodedPage {
            data: vec![0i8; 16384],
            spare: vec![0u8; 1664],
        };
        let (d, s) = m.corrupt_page(&mut page);
        assert!(d > 1000, "{d}");
        assert!(s > 50, "{s}");
    }

    #[test]
    fn paper_fprot_example() {
        // N = 2, x = 1e-4 → f_prot ≈ 3e-8 (paper §VI).
        let f = protected_flip_rate(2, 1e-4);
        assert!((f - 3e-8).abs() / 3e-8 < 0.01, "{f}");
    }

    #[test]
    fn fprot_improves_with_more_copies() {
        let x = 1e-3;
        let f2 = protected_flip_rate(2, x);
        let f4 = protected_flip_rate(4, x);
        assert!(f4 < f2);
        assert!(f2 < x);
    }

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(3, 2), 3);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(4, 5), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_ber_panics() {
        BitFlipModel::new(1.5, 0);
    }
}
