//! The outlier-oriented ECC page codec (paper §VI, Figure 8).
//!
//! Per 16 KB page of INT8 weights:
//!
//! * the **top 1 %** of values by magnitude are *protected outliers*:
//!   their 14-bit address (Hamming-protected with 5 parity bits) and
//!   `N = 2` extra copies of their 8-bit value are stored in the page's
//!   spare area;
//! * the **threshold** — the smallest protected magnitude — is stored
//!   first as 9 replicated bytes (bit-wise majority on read);
//! * on read, protected addresses are recovered by **bit-wise majority
//!   vote** over `{stored value, copy₁, copy₂}`; unprotected values whose
//!   magnitude exceeds the threshold must be flip-generated *fake
//!   outliers* and are **clamped to zero**.
//!
//! Layout: `9×8 + (14 + 5 + 2×8) × n_outliers` bits — 722 B for a 16 KB
//! page, within the 1664 B spare area.

use crate::bitstream::{BitReader, BitWriter};
use crate::hamming;

/// Number of replicated threshold bytes (Figure 8(a): "e.g., 9 copies").
pub const THRESHOLD_COPIES: usize = 9;

/// Raw bit error rate the outlier-oriented ECC corrects transparently.
///
/// Paper §VI: the scheme keeps model accuracy intact up to RBER ~2e-4
/// (Figure 10's knee — beyond it fake outliers and unprotected flips
/// start to bite). Serve-side fault injection (`core::reliability`)
/// imports this same constant as its per-page correction threshold, so
/// the ECC crate and the serving simulator can never drift apart on
/// what "correctable" means.
pub const CORRECTABLE_RBER: f64 = 2e-4;

/// Codec configuration for one page geometry.
///
/// # Domain assumption
///
/// The mechanism presumes the LLM weight statistics of §VI: large
/// magnitudes are *rare* (≲1% of a page). On a page where values above
/// the protected set's floor are common, the fake-outlier clamp will
/// zero legitimate weights that flip upward, and protection can be
/// counter-productive. This matches the paper, which motivates the
/// design exclusively with the outlier sparsity of ≥7B LLMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageCodec {
    /// Weight elements per page (16384 for a 16 KB INT8 page).
    pub elems: usize,
    /// Fraction of elements protected (paper: top 1 %).
    pub protect_fraction: f64,
    /// Extra value copies stored per outlier (paper: `N = 2`, even).
    pub value_copies: usize,
    /// Spare-area bytes available.
    pub spare_bytes: usize,
}

impl Default for PageCodec {
    fn default() -> Self {
        Self::paper()
    }
}

impl PageCodec {
    /// The paper's configuration: 16 KB page, top 1 %, two copies,
    /// 1664 B spare.
    pub fn paper() -> Self {
        PageCodec {
            elems: 16 * 1024,
            protect_fraction: 0.01,
            value_copies: 2,
            spare_bytes: 1664,
        }
    }

    /// Number of protected outliers per page (163 for the paper config).
    pub fn outlier_count(&self) -> usize {
        ((self.elems as f64) * self.protect_fraction) as usize
    }

    /// Size of the encoded ECC payload in bits.
    pub fn payload_bits(&self) -> usize {
        THRESHOLD_COPIES * 8 + self.outlier_count() * (14 + 5 + self.value_copies * 8)
    }

    /// Size of the encoded ECC payload in bytes (rounded up).
    pub fn payload_bytes(&self) -> usize {
        self.payload_bits().div_ceil(8)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if the page needs more than 14 address bits,
    /// the copy count is odd/zero, or the payload overflows the spare.
    pub fn validate(&self) -> Result<(), String> {
        if self.elems == 0 || self.elems > (1 << 14) {
            return Err(format!("{} elems not addressable in 14 bits", self.elems));
        }
        if self.value_copies == 0 || self.value_copies % 2 != 0 {
            return Err("value_copies must be a positive even number (majority vote)".into());
        }
        if self.payload_bytes() > self.spare_bytes {
            return Err(format!(
                "ECC payload {} B exceeds spare area {} B",
                self.payload_bytes(),
                self.spare_bytes
            ));
        }
        Ok(())
    }

    /// Encodes a page of weights, producing the spare-area ECC bytes.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `weights.len()` differs
    /// from `elems`.
    pub fn encode(&self, weights: &[i8]) -> EncodedPage {
        self.validate().expect("invalid codec config");
        assert_eq!(weights.len(), self.elems, "wrong page size");
        let n = self.outlier_count();

        // Select the top-n magnitudes. Ties broken by address for
        // determinism.
        let mut idx: Vec<usize> = (0..weights.len()).collect();
        idx.sort_by_key(|&i| (std::cmp::Reverse(weights[i].unsigned_abs()), i));
        let mut protected: Vec<usize> = idx[..n].to_vec();
        protected.sort_unstable();
        let threshold: u8 = protected
            .iter()
            .map(|&i| weights[i].unsigned_abs())
            .min()
            .unwrap_or(u8::MAX);

        let mut w = BitWriter::new();
        for _ in 0..THRESHOLD_COPIES {
            w.write(threshold as u32, 8);
        }
        for &i in &protected {
            let codeword = hamming::encode(i as u16);
            // addr(14) then parity(5): split the 19-bit codeword so the
            // layout matches Figure 8(a)'s "Addr | ECC" fields.
            w.write(codeword & 0x3FFF, 14);
            w.write(codeword >> 14, 5);
            for _ in 0..self.value_copies {
                w.write(weights[i] as u8 as u32, 8);
            }
        }
        let mut spare = w.into_bytes();
        spare.resize(self.spare_bytes, 0);
        EncodedPage {
            data: weights.to_vec(),
            spare,
        }
    }

    /// Decodes a (possibly corrupted) page, applying the on-die Error
    /// Correction Unit's rules. Returns the corrected weights.
    ///
    /// # Panics
    ///
    /// Panics if the page geometry does not match the codec.
    pub fn decode(&self, page: &EncodedPage) -> Vec<i8> {
        self.decode_with_stats(page).0
    }

    /// Like [`decode`](Self::decode) but also reports corrector actions.
    pub fn decode_with_stats(&self, page: &EncodedPage) -> (Vec<i8>, DecodeStats) {
        self.validate().expect("invalid codec config");
        assert_eq!(page.data.len(), self.elems, "wrong page size");
        let mut r = BitReader::new(&page.spare);

        // Threshold: bit-wise majority over the replicated copies.
        let copies: Vec<u8> = (0..THRESHOLD_COPIES).map(|_| r.read(8) as u8).collect();
        let threshold = bitwise_majority(&copies);

        // Outlier table.
        let n = self.outlier_count();
        let mut entries: Vec<(u16, Vec<u8>)> = Vec::with_capacity(n);
        let mut stats = DecodeStats::default();
        for _ in 0..n {
            let addr_bits = r.read(14);
            let parity_bits = r.read(5);
            let codeword = (parity_bits << 14) | addr_bits;
            let decoded = hamming::decode(codeword);
            if matches!(decoded, hamming::Decoded::Corrected(_)) {
                stats.addresses_corrected += 1;
            }
            let vals: Vec<u8> = (0..self.value_copies).map(|_| r.read(8) as u8).collect();
            match decoded.address() {
                Some(a) if (a as usize) < self.elems => entries.push((a, vals)),
                _ => stats.entries_discarded += 1,
            }
        }

        let mut out = page.data.clone();
        let mut is_protected = vec![false; self.elems];
        for (addr, copies) in &entries {
            let i = *addr as usize;
            if is_protected[i] {
                // Duplicate address from a miscorrection: keep first.
                stats.entries_discarded += 1;
                continue;
            }
            is_protected[i] = true;
            // Majority vote over {flash value, copy1, copy2, ...}.
            let mut votes = Vec::with_capacity(copies.len() + 1);
            votes.push(out[i] as u8);
            votes.extend_from_slice(copies);
            let voted = bitwise_majority(&votes);
            if voted != out[i] as u8 {
                stats.outliers_repaired += 1;
            }
            out[i] = voted as i8;
        }
        // Clamp fake outliers among unprotected values.
        for i in 0..self.elems {
            if !is_protected[i] && out[i].unsigned_abs() > threshold {
                out[i] = 0;
                stats.values_clamped += 1;
            }
        }
        (out, stats)
    }
}

/// A page as stored in flash: data area plus spare-area ECC bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedPage {
    /// INT8 weight values (the 16 KB data area).
    pub data: Vec<i8>,
    /// Spare-area bytes holding the ECC payload.
    pub spare: Vec<u8>,
}

/// Corrector activity counters for one page decode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Outlier values whose majority vote changed the stored value.
    pub outliers_repaired: usize,
    /// Addresses fixed by the Hamming decoder.
    pub addresses_corrected: usize,
    /// Outlier-table entries dropped (uncorrectable/out-of-range addr).
    pub entries_discarded: usize,
    /// Unprotected values clamped to zero as fake outliers.
    pub values_clamped: usize,
}

/// Bit-wise majority over an odd (or even, ties→0) number of bytes.
fn bitwise_majority(bytes: &[u8]) -> u8 {
    let half = bytes.len() / 2;
    let mut out = 0u8;
    for bit in 0..8 {
        let ones = bytes.iter().filter(|b| (*b >> bit) & 1 == 1).count();
        if ones > half {
            out |= 1 << bit;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_page(codec: &PageCodec) -> Vec<i8> {
        // Deterministic page with a clear outlier structure: mostly small
        // values, a sprinkling of large-magnitude outliers.
        (0..codec.elems)
            .map(|i| {
                if i % 100 == 7 {
                    if i % 200 == 7 {
                        100 + (i % 27) as i8
                    } else {
                        -100 - (i % 27) as i8
                    }
                } else {
                    ((i % 31) as i8) - 15
                }
            })
            .collect()
    }

    #[test]
    fn paper_payload_is_722_bytes() {
        let c = PageCodec::paper();
        assert_eq!(c.outlier_count(), 163);
        // 72 + 163 × 35 = 5777 bits → 723 B packed (the paper quotes
        // 722 B from 5777/8 = 722.1).
        assert_eq!(c.payload_bits(), 5777);
        assert_eq!(c.payload_bytes(), 723);
        assert!(c.payload_bytes() <= c.spare_bytes);
        c.validate().unwrap();
    }

    #[test]
    fn clean_roundtrip_is_identity() {
        let c = PageCodec::paper();
        let weights = ramp_page(&c);
        let page = c.encode(&weights);
        let (out, stats) = c.decode_with_stats(&page);
        assert_eq!(out, weights);
        assert_eq!(stats, DecodeStats::default());
    }

    #[test]
    fn protected_outlier_survives_a_flip() {
        let c = PageCodec::paper();
        let weights = ramp_page(&c);
        let mut page = c.encode(&weights);
        // Find a protected outlier (value 100+) and corrupt its stored
        // data byte.
        let victim = weights
            .iter()
            .position(|&v| v.unsigned_abs() >= 100)
            .unwrap();
        page.data[victim] ^= 0x40u8 as i8; // flip bit 6
        let (out, stats) = c.decode_with_stats(&page);
        assert_eq!(out[victim], weights[victim], "vote failed");
        assert_eq!(stats.outliers_repaired, 1);
    }

    #[test]
    fn fake_outlier_is_clamped_to_zero() {
        let c = PageCodec::paper();
        let weights = ramp_page(&c);
        let mut page = c.encode(&weights);
        // Corrupt an unprotected small value into a huge one.
        let victim = weights.iter().position(|&v| v == 0).unwrap();
        page.data[victim] = 127;
        let (out, stats) = c.decode_with_stats(&page);
        assert_eq!(out[victim], 0, "fake outlier not clamped");
        assert_eq!(stats.values_clamped, 1);
    }

    #[test]
    fn small_flip_below_threshold_passes_through() {
        // The mechanism deliberately does not protect mid-range values:
        // a flip that stays below the threshold survives to the output.
        let c = PageCodec::paper();
        let weights = ramp_page(&c);
        let mut page = c.encode(&weights);
        let victim = weights.iter().position(|&v| v == 0).unwrap();
        page.data[victim] = 3;
        let out = c.decode(&page);
        assert_eq!(out[victim], 3);
    }

    #[test]
    fn address_field_flip_is_corrected_by_hamming() {
        let c = PageCodec::paper();
        let weights = ramp_page(&c);
        let mut page = c.encode(&weights);
        // First outlier entry starts right after the 9 threshold bytes;
        // flip a bit inside its 14-bit address field.
        page.spare[9] ^= 0x20;
        let (out, stats) = c.decode_with_stats(&page);
        assert_eq!(out, weights);
        assert_eq!(stats.addresses_corrected, 1);
    }

    #[test]
    fn threshold_survives_copy_corruption() {
        let c = PageCodec::paper();
        let weights = ramp_page(&c);
        let mut page = c.encode(&weights);
        // Corrupt 4 of the 9 threshold copies — majority still wins.
        for i in 0..4 {
            page.spare[i] = !page.spare[i];
        }
        let out = c.decode(&page);
        assert_eq!(out, weights);
    }

    #[test]
    fn bitwise_majority_votes_per_bit() {
        assert_eq!(bitwise_majority(&[0b1010, 0b1010, 0b0101]), 0b1010);
        assert_eq!(bitwise_majority(&[0xFF, 0x00, 0xFF]), 0xFF);
        assert_eq!(bitwise_majority(&[0x0F]), 0x0F);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = PageCodec::paper();
        c.value_copies = 3;
        assert!(c.validate().is_err());
        let mut c2 = PageCodec::paper();
        c2.elems = 1 << 15;
        assert!(c2.validate().is_err());
        let mut c3 = PageCodec::paper();
        c3.spare_bytes = 100;
        assert!(c3.validate().is_err());
    }

    #[test]
    fn smaller_pages_work() {
        let c = PageCodec {
            elems: 4096,
            protect_fraction: 0.01,
            value_copies: 2,
            spare_bytes: 512,
        };
        c.validate().unwrap();
        let weights: Vec<i8> = (0..4096).map(|i| ((i * 7) % 256) as u8 as i8).collect();
        let page = c.encode(&weights);
        assert_eq!(c.decode(&page), weights);
    }

    #[test]
    #[should_panic(expected = "wrong page size")]
    fn wrong_size_panics() {
        PageCodec::paper().encode(&[0i8; 100]);
    }
}
