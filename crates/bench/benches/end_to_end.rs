//! End-to-end decode benches — the Figure 9/11/16 workloads.
//!
//! Each bench measures one simulated decode step (token generation) of a
//! model on a system configuration; the bench *output value* is wall
//! time of the simulator, while the simulated tokens/s is what `repro
//! fig9a`/`fig9b` report.

use baselines::{FlexGen, MlcLlm};
use cambricon_llm::{System, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_workload::{zoo, Quant};

fn fig9a_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9a_decode");
    g.sample_size(10);
    for model in zoo::opt_family() {
        for cfg in SystemConfig::paper_variants() {
            g.bench_with_input(
                BenchmarkId::new(cfg.name, model.name),
                &(cfg, model.clone()),
                |b, (cfg, model)| {
                    b.iter(|| {
                        let mut sys = System::new(*cfg);
                        sys.decode_token(model, 1000).tokens_per_sec
                    })
                },
            );
        }
        g.bench_with_input(
            BenchmarkId::new("FlexGen-SSD", model.name),
            &model,
            |b, model| b.iter(|| FlexGen::ssd().decode_speed(model, 1000).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("FlexGen-DRAM", model.name),
            &model,
            |b, model| b.iter(|| FlexGen::dram().decode_speed(model, 1000).unwrap()),
        );
    }
    g.finish();
}

fn fig9b_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9b_decode");
    g.sample_size(10);
    for model in zoo::llama_family() {
        g.bench_with_input(
            BenchmarkId::new("Cambricon-LLM-L", model.name),
            &model,
            |b, model| {
                b.iter(|| {
                    let mut sys = System::new(SystemConfig::cambricon_l());
                    sys.decode_token(model, 1000).tokens_per_sec
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("MLC-LLM", model.name),
            &model,
            |b, model| b.iter(|| MlcLlm::default().decode_speed(model).ok()),
        );
    }
    g.finish();
}

fn fig11_quantization(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_quant");
    g.sample_size(10);
    for quant in [Quant::W8A8, Quant::W4A16] {
        g.bench_with_input(
            BenchmarkId::new("Cam-S_OPT-6.7B", format!("{quant}")),
            &quant,
            |b, quant| {
                b.iter(|| {
                    let mut sys = System::new(SystemConfig::cambricon_s().with_quant(*quant));
                    sys.decode_token(&zoo::opt_6_7b(), 1000).tokens_per_sec
                })
            },
        );
    }
    g.finish();
}

fn fig16_energy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_energy");
    g.sample_size(10);
    g.bench_function("Cam-S_traffic_and_energy_OPT-6.7B", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::cambricon_s());
            let rep = sys.decode_token(&zoo::opt_6_7b(), 1000);
            cambricon_llm::EnergyModel::calibrated().cambricon_token_j(&rep.traffic)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig9a_end_to_end,
    fig9b_end_to_end,
    fig11_quantization,
    fig16_energy
);
criterion_main!(benches);
