//! Substrate microbenches: the flash discrete-event engine, the outlier
//! ECC codec (Figures 3(b)/10 inner loop), and the tiling planner.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use flash_sim::{ChannelEngine, ChannelWorkload, EngineConfig, Topology};
use outlier_ecc::{BitFlipModel, PageCodec};
use tiling::{plan_gemv, AlphaInputs, Strategy};

fn flash_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("flash_engine");
    let wl = ChannelWorkload {
        rc_rounds: 100,
        rc_input_bytes: 256,
        rc_result_bytes_per_core: 64,
        ops_per_page: 32768,
        read_pages: 170,
    };
    let pages = (100 * 4 + 170) as u64;
    g.throughput(Throughput::Elements(pages));
    g.bench_function("cam_s_channel_570_pages", |b| {
        b.iter(|| ChannelEngine::new(EngineConfig::paper(Topology::cambricon_s()), wl).run())
    });
    g.finish();
}

fn ecc_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecc_codec");
    let codec = PageCodec::paper();
    let weights: Vec<i8> = (0..codec.elems)
        .map(|i| {
            if i % 97 == 0 {
                110
            } else {
                (i % 23) as i8 - 11
            }
        })
        .collect();
    g.throughput(Throughput::Bytes(codec.elems as u64));
    g.bench_function("encode_16k_page", |b| b.iter(|| codec.encode(&weights)));
    let page = codec.encode(&weights);
    g.bench_function("decode_16k_page", |b| b.iter(|| codec.decode(&page)));
    g.bench_function("inject_1e-3_and_decode", |b| {
        b.iter(|| {
            let mut p = page.clone();
            BitFlipModel::new(1e-3, 7).corrupt_page(&mut p);
            codec.decode(&p)
        })
    });
    g.finish();
}

fn tiling_planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("tiling_planner");
    let inp = AlphaInputs::paper(Topology::cambricon_l());
    g.bench_function("plan_28672x8192_on_L", |b| {
        b.iter(|| plan_gemv(&inp, 28672, 8192, Strategy::HardwareAware, None))
    });
    g.finish();
}

criterion_group!(benches, flash_engine, ecc_codec, tiling_planner);
criterion_main!(benches);
