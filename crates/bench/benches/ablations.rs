//! Ablation benches — Figures 12 (slice), 13 (tile size), 14 (tiling)
//! and 15 (scalability).

use cambricon_llm::{System, SystemConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llm_workload::zoo;
use tiling::{Strategy, TileShape};

fn fig12_slice(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_slice");
    g.sample_size(10);
    let model = zoo::opt_6_7b();
    g.bench_function("with_slice", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::cambricon_s());
            sys.decode_token(&model, 1000).tokens_per_sec
        })
    });
    g.bench_function("without_slice", |b| {
        b.iter(|| {
            let mut sys = System::new(SystemConfig::cambricon_s().without_read_slice());
            sys.decode_token(&model, 1000).tokens_per_sec
        })
    });
    g.finish();
}

fn fig13_tiles(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_tiles");
    g.sample_size(10);
    let model = zoo::opt_6_7b();
    let shapes: [(&str, Option<TileShape>); 3] = [
        ("256x2048_ours", None),
        (
            "128x4096",
            Some(TileShape {
                h_req: 128,
                w_req: 4096,
            }),
        ),
        (
            "4096x128",
            Some(TileShape {
                h_req: 4096,
                w_req: 128,
            }),
        ),
    ];
    for (name, shape) in shapes {
        g.bench_with_input(BenchmarkId::from_parameter(name), &shape, |b, shape| {
            b.iter(|| {
                let cfg = match shape {
                    None => SystemConfig::cambricon_s(),
                    Some(ts) => SystemConfig::cambricon_s().with_tile(*ts),
                };
                let mut sys = System::new(cfg);
                sys.decode_token(&model, 1000).tokens_per_sec
            })
        });
    }
    g.finish();
}

fn fig14_tiling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_tiling");
    g.sample_size(10);
    let model = zoo::opt_6_7b();
    for (name, strategy) in [
        ("hardware_aware", Strategy::HardwareAware),
        ("flash_only", Strategy::FlashOnly),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            b.iter(|| {
                let mut sys = System::new(SystemConfig::cambricon_s().with_strategy(*s));
                sys.decode_token(&model, 1000).tokens_per_sec
            })
        });
    }
    g.finish();
}

fn fig15_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_scale");
    g.sample_size(10);
    let model = zoo::opt_6_7b();
    for chips in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("chips_per_channel", chips),
            &chips,
            |b, &chips| {
                b.iter(|| {
                    let mut sys = System::new(SystemConfig::custom(8, chips));
                    sys.decode_token(&model, 1000).tokens_per_sec
                })
            },
        );
    }
    for channels in [1usize, 8, 64] {
        g.bench_with_input(
            BenchmarkId::new("channels", channels),
            &channels,
            |b, &channels| {
                b.iter(|| {
                    let mut sys = System::new(SystemConfig::custom(channels, 4));
                    sys.decode_token(&model, 1000).tokens_per_sec
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    fig12_slice,
    fig13_tiles,
    fig14_tiling,
    fig15_scalability
);
criterion_main!(benches);
