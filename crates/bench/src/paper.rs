//! Paper-reported reference values, transcribed from the figures and
//! tables, for side-by-side "ours vs paper" output and for
//! `EXPERIMENTS.md`.

/// Figure 9(a): decode speed (tokens/s) on OPT models.
/// Rows: (model, Cam-S, Cam-M, Cam-L, FlexGen-SSD, FlexGen-DRAM).
pub const FIG9A: [(&str, f64, f64, f64, f64, f64); 4] = [
    ("OPT-6.7B", 3.6, 11.0, 36.3, 0.8, 3.5),
    ("OPT-13B", 1.9, 4.7, 14.2, 0.4, 2.0),
    ("OPT-30B", 0.8, 2.5, 7.6, 0.2, 0.8),
    ("OPT-66B", 0.4, 1.2, 2.6, 0.1, 0.4),
];

/// Figure 9(b): decode speed (tokens/s) on Llama2 models.
/// Rows: (model, Cam-S, Cam-M, Cam-L, MLC-LLM; `None` = OOM).
pub const FIG9B: [(&str, f64, f64, f64, Option<f64>); 3] = [
    ("Llama2-7B", 3.6, 10.4, 34.0, Some(7.58)),
    ("Llama2-13B", 1.9, 4.7, 14.0, None),
    ("Llama2-70B", 0.3, 1.0, 3.4, None),
];

/// Figure 11: W8A8 vs W4A16 decode speed.
/// Rows: (model, S-W8A8, S-W4A16, L-W8A8, L-W4A16).
pub const FIG11: [(&str, f64, f64, f64, f64); 7] = [
    ("OPT-6.7B", 3.6, 6.8, 36.3, 42.8),
    ("OPT-13B", 1.9, 3.4, 14.2, 19.1),
    ("OPT-30B", 0.8, 1.5, 7.6, 12.3),
    ("OPT-66B", 0.4, 0.7, 2.6, 5.2),
    ("Llama2-7B", 3.5, 6.7, 34.0, 43.4),
    ("Llama2-13B", 1.9, 3.2, 14.0, 18.7),
    ("Llama2-70B", 0.3, 0.6, 3.4, 5.5),
];

/// Figure 12: read-request-slice ablation on Cambricon-LLM-S.
/// Rows: (model, speed with slice, speed without, usage with, usage without).
pub const FIG12: [(&str, f64, f64, f64, f64); 7] = [
    ("OPT-6.7B", 3.6, 2.2, 0.79, 0.48),
    ("OPT-13B", 1.9, 1.0, 0.91, 0.50),
    ("OPT-30B", 0.8, 0.4, 0.89, 0.50),
    ("OPT-66B", 0.4, 0.2, 0.90, 0.50),
    ("Llama2-7B", 3.5, 2.2, 0.81, 0.49),
    ("Llama2-13B", 1.9, 1.0, 0.91, 0.50),
    ("Llama2-70B", 0.3, 0.2, 0.89, 0.50),
];

/// Figure 13: tile-size ablation on Cambricon-LLM-S (speed, tokens/s).
/// Rows: (model, 256x2048 (ours), 128x4096, 4096x128).
pub const FIG13: [(&str, f64, f64, f64); 7] = [
    ("OPT-6.7B", 3.6, 3.5, 2.8),
    ("OPT-13B", 1.9, 1.4, 1.7),
    ("OPT-30B", 0.8, 0.7, 0.6),
    ("OPT-66B", 0.4, 0.3, 0.3),
    ("Llama2-7B", 3.5, 3.4, 2.9),
    ("Llama2-13B", 1.9, 1.3, 1.6),
    ("Llama2-70B", 0.3, 0.3, 0.2),
];

/// Figure 14: hardware-aware-tiling ablation on Cambricon-LLM-S.
/// Rows: (model, speed with tiling, without, usage with, usage without).
pub const FIG14: [(&str, f64, f64, f64, f64); 7] = [
    ("OPT-6.7B", 3.6, 2.7, 0.79, 0.03),
    ("OPT-13B", 1.9, 1.4, 0.91, 0.03),
    ("OPT-30B", 0.8, 0.6, 0.89, 0.03),
    ("OPT-66B", 0.4, 0.3, 0.90, 0.03),
    ("Llama2-7B", 3.5, 2.6, 0.81, 0.03),
    ("Llama2-13B", 1.9, 1.4, 0.91, 0.02),
    ("Llama2-70B", 0.3, 0.2, 0.89, 0.02),
];

/// Figure 16(a): data moved per token (GB), Cam-S vs FlexGen-SSD.
pub const FIG16A: [(&str, f64, f64); 7] = [
    ("OPT-6.7B", 1.9, 20.2),
    ("OPT-13B", 4.1, 39.2),
    ("OPT-30B", 9.3, 90.3),
    ("OPT-66B", 20.5, 198.6),
    ("Llama2-7B", 2.0, 21.1),
    ("Llama2-13B", 4.1, 39.2),
    ("Llama2-70B", 24.2, 210.7),
];

/// Figure 16(b): energy per token (J), Cam-S vs FlexGen-SSD.
pub const FIG16B: [(&str, f64, f64); 7] = [
    ("OPT-6.7B", 1.0, 1.6),
    ("OPT-13B", 2.0, 3.1),
    ("OPT-30B", 5.0, 7.2),
    ("OPT-66B", 11.0, 15.8),
    ("Llama2-7B", 1.0, 1.7),
    ("Llama2-13B", 2.0, 3.1),
    ("Llama2-70B", 11.0, 16.8),
];

/// Table IV: compute-core area (µm²) and power (µW) at TSMC 65 nm.
pub const TABLE4: [(&str, f64, f64); 4] = [
    ("Error Correction Unit", 496.4, 0.4),
    ("PEs", 562.0, 343.6),
    ("Input/Output Buffers", 38755.1, 1591.7), // 58755.1 in print is a typo
    ("Total Compute Core", 39813.5, 1935.6),
];

/// Abstract headline: 70B decode speed on Cambricon-LLM-L (tokens/s).
pub const HEADLINE_70B_TOKS: f64 = 3.44;
/// Abstract headline: 7B decode speed on Cambricon-LLM-L (tokens/s).
pub const HEADLINE_7B_TOKS: f64 = 36.34;
/// Abstract headline: minimum speedup over flash offloading.
pub const HEADLINE_SPEEDUP_MIN: f64 = 22.0;
/// Abstract headline: maximum speedup over flash offloading.
pub const HEADLINE_SPEEDUP_MAX: f64 = 45.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_are_complete() {
        assert_eq!(FIG9A.len(), 4);
        assert_eq!(FIG9B.len(), 3);
        assert_eq!(FIG11.len(), 7);
        assert_eq!(FIG12.len(), 7);
        assert_eq!(FIG13.len(), 7);
        assert_eq!(FIG14.len(), 7);
        assert_eq!(FIG16A.len(), 7);
        assert_eq!(FIG16B.len(), 7);
    }

    #[test]
    fn paper_internal_consistency() {
        // The abstract's 22×–45× speedups over flash offloading follow
        // from Figure 9(a): Cam-L vs FlexGen-SSD.
        for (name, _, _, l, ssd, _) in FIG9A {
            let speedup = l / ssd;
            assert!((6.0..50.0).contains(&speedup), "{name}: {speedup}");
        }
        // OPT-6.7B hits the abstract's 45×.
        assert!((FIG9A[0].3 / FIG9A[0].4 - 45.0).abs() < 1.0);
    }

    #[test]
    fn table4_components_sum_to_total() {
        let sum: f64 = TABLE4[..3].iter().map(|r| r.1).sum();
        assert!((sum - TABLE4[3].1).abs() < 1.0);
        let psum: f64 = TABLE4[..3].iter().map(|r| r.2).sum();
        assert!((psum - TABLE4[3].2).abs() < 0.2);
    }
}
