//! Plain-text table rendering for the `repro` binary.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for table cells.
pub fn num(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Model", "tok/s"]);
        t.row(["OPT-6.7B", "3.56"]);
        t.row(["OPT-66B", "0.41"]);
        let s = t.render();
        assert!(s.contains("Model"));
        assert!(s.lines().count() == 4, "{s}");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn num_formats_by_magnitude() {
        assert_eq!(num(0.0), "0");
        assert_eq!(num(0.123), "0.123");
        assert_eq!(num(3.456), "3.46");
        assert_eq!(num(123.4), "123");
    }
}
