//! Minimal JSON rendering for benchmark reports.
//!
//! The serving benchmark used to assemble `BENCH_serving.json` with one
//! thirty-argument `format!` string — unreviewable and unmergeable.
//! This module is the small structured replacement: build a [`Json`]
//! value, `to_string()` it, write the file. Output is deterministic —
//! object fields render in insertion order, two-space indentation,
//! arrays inline — so committed benchmark files diff cleanly.
//!
//! Numbers are formatted at the call site ([`Json::int`],
//! [`Json::float`] with an explicit decimal count) because a benchmark
//! report's precision is part of its format, not a serializer default.
//!
//! # Example
//!
//! ```
//! use bench::json::Json;
//!
//! let doc = Json::obj()
//!     .field("benchmark", "demo")
//!     .field("iterations", Json::array([1.25f64, 2.5].map(|r| Json::float(r, 1))))
//!     .field("best", Json::float(2.5, 1));
//! assert_eq!(
//!     doc.to_string(),
//!     "{\n  \"benchmark\": \"demo\",\n  \"iterations\": [1.2, 2.5],\n  \"best\": 2.5\n}"
//! );
//! ```

use std::fmt;

/// A JSON value: strings, preformatted numbers, inline arrays and
/// insertion-ordered objects.
#[derive(Debug, Clone)]
pub enum Json {
    /// A number, already formatted (validated by the constructors).
    Num(String),
    /// A string (escaped at render time).
    Str(String),
    /// An array, rendered inline: `[1, 2, 3]`.
    Arr(Vec<Json>),
    /// An object, rendered multi-line in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object to chain [`field`](Json::field) calls on.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// An integer value.
    pub fn int(value: impl Into<u64>) -> Json {
        Json::Num(value.into().to_string())
    }

    /// A float rendered with exactly `decimals` fraction digits.
    ///
    /// # Panics
    ///
    /// Panics on NaN or infinity — a benchmark report carrying either
    /// is a bug upstream, not something to serialize.
    pub fn float(value: f64, decimals: usize) -> Json {
        assert!(
            value.is_finite(),
            "non-finite value in a JSON report: {value}"
        );
        Json::Num(format!("{value:.decimals$}"))
    }

    /// An array of values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(values.into_iter().collect())
    }

    /// Appends a field to an object (insertion order is render order).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, name: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((name.to_string(), value.into())),
            other => panic!("field() on a non-object: {other:?}"),
        }
        self
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
        match self {
            Json::Num(n) => f.write_str(n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    item.render(f, level)?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{\n")?;
                let pad = "  ".repeat(level + 1);
                for (i, (name, value)) in fields.iter().enumerate() {
                    f.write_str(&pad)?;
                    write_escaped(f, name)?;
                    f.write_str(": ")?;
                    value.render(f, level + 1)?;
                    f.write_str(if i + 1 < fields.len() { ",\n" } else { "\n" })?;
                }
                write!(f, "{}}}", "  ".repeat(level))
            }
        }
    }
}

/// Writes `s` as a quoted JSON string — shared by values and object
/// keys, so neither can smuggle an unescaped quote into the output.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::int(n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects_with_two_space_indent() {
        let doc = Json::obj()
            .field("name", "serve")
            .field("count", 3usize)
            .field(
                "inner",
                Json::obj()
                    .field("rate", Json::float(1.5, 4))
                    .field("list", Json::array((1u64..=3).map(Json::int))),
            );
        assert_eq!(
            doc.to_string(),
            "{\n  \"name\": \"serve\",\n  \"count\": 3,\n  \"inner\": {\n    \
             \"rate\": 1.5000,\n    \"list\": [1, 2, 3]\n  }\n}"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).to_string(),
            "\"a\\\"b\\\\c\\nd\""
        );
    }

    #[test]
    fn escapes_object_keys() {
        let doc = Json::obj().field("a\"b", 1u64);
        assert_eq!(doc.to_string(), "{\n  \"a\\\"b\": 1\n}");
    }

    #[test]
    fn float_precision_is_explicit() {
        assert_eq!(Json::float(1.0 / 3.0, 1).to_string(), "0.3");
        assert_eq!(Json::float(1.0 / 3.0, 4).to_string(), "0.3333");
        assert_eq!(Json::float(2.0, 0).to_string(), "2");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_floats_are_rejected() {
        let _ = Json::float(f64::NAN, 2);
    }

    #[test]
    fn empty_object_renders_inline() {
        assert_eq!(Json::obj().to_string(), "{}");
    }
}
