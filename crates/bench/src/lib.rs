//! # bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (`cargo run -p bench --bin repro -- list` prints the experiment
//! index):
//!
//! * [`figures`] — one generator per table/figure, each printing an
//!   "ours vs paper" comparison;
//! * [`paper`] — the paper-reported reference values;
//! * [`table`] — plain-text table rendering.
//!
//! Run `cargo run -p bench --bin repro -- all` for everything, or a
//! specific id (`fig9a`, `fig12`, `table5`, ...). Criterion benches in
//! `benches/` time the underlying simulators.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod json;
pub mod paper;
pub mod table;

pub use json::Json;
pub use table::{num, TextTable};
