//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro all            # everything (accuracy figures in quick mode)
//! repro full           # everything, full-resolution accuracy sweeps
//! repro fig9a          # one experiment
//! repro list           # available ids
//! ```

use bench::figures;
use bench::TextTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    if what == "list" {
        for (id, title, _) in catalog(true) {
            println!("{id:10} {title}");
        }
        return;
    }
    let quick = what != "full";
    let mut any = false;
    for (id, title, gen) in catalog(quick) {
        if what == "all" || what == "full" || what == id {
            println!("== {id}: {title} ==");
            println!("{}", gen().render());
            any = true;
        }
    }
    if !any {
        eprintln!("unknown experiment '{what}'; try `repro list`");
        std::process::exit(2);
    }
}

type Gen = Box<dyn Fn() -> TextTable>;

fn catalog(quick: bool) -> Vec<(&'static str, &'static str, Gen)> {
    vec![
        (
            "fig1a",
            "Arithmetic intensity comparison",
            Box::new(figures::fig1a) as Gen,
        ),
        (
            "fig1b",
            "Reduction ratio comparison",
            Box::new(figures::fig1b),
        ),
        (
            "fig3a",
            "Roofline: smartphone NPU vs Cambricon-LLM",
            Box::new(figures::fig3a),
        ),
        (
            "fig3b",
            "Accuracy vs flash BER without correction",
            Box::new(move || figures::fig3b(quick)),
        ),
        (
            "table1",
            "Storage density of DRAM and NAND flash",
            Box::new(figures::table1),
        ),
        (
            "table2",
            "Cambricon-LLM configurations",
            Box::new(figures::table2),
        ),
        (
            "table3",
            "Baseline configurations",
            Box::new(figures::table3),
        ),
        (
            "table4",
            "Compute-core area and power",
            Box::new(figures::table4),
        ),
        (
            "fig9a",
            "End-to-end decode speed vs FlexGen (OPT)",
            Box::new(figures::fig9a),
        ),
        (
            "fig9b",
            "End-to-end decode speed vs MLC-LLM (Llama2)",
            Box::new(figures::fig9b),
        ),
        (
            "fig10",
            "Error-correction accuracy evaluation",
            Box::new(move || figures::fig10(quick)),
        ),
        (
            "fig11",
            "W4A16 vs W8A8 performance",
            Box::new(figures::fig11),
        ),
        (
            "fig12",
            "Read-request slice ablation",
            Box::new(figures::fig12),
        ),
        ("fig13", "Tile-size ablation", Box::new(figures::fig13)),
        (
            "fig14",
            "Hardware-aware tiling ablation",
            Box::new(figures::fig14),
        ),
        (
            "fig15",
            "Scalability: chips and channels",
            Box::new(figures::fig15),
        ),
        (
            "fig16",
            "Data transfer and energy vs FlexGen-SSD",
            Box::new(figures::fig16),
        ),
        (
            "table5",
            "Memory BOM cost for 70B inference",
            Box::new(figures::table5),
        ),
        (
            "prefill",
            "Prefill/TTFT model (extension)",
            Box::new(figures::prefill_table),
        ),
        (
            "serving",
            "Multi-request serving study (extension)",
            Box::new(figures::serving_table),
        ),
    ]
}
