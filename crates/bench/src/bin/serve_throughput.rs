//! Serving hot-path benchmark: simulated-tokens-per-wall-second.
//!
//! Runs the canonical 70B serving scenario (Llama2-70B on
//! Cambricon-LLM-L, a closed-loop fleet of clients) and measures how
//! many *simulated* tokens the engine retires per *wall-clock* second —
//! the number that bounds how large a traffic sweep the simulator can
//! explore. The same scenario is then run under
//! `ContinuousBatch { max_batch: clients }`, recording both the
//! engine's wall-clock rate and the *simulated* serving speedup over
//! FCFS (with batch occupancy and KV rejections), so the batched
//! scheduler's trajectory lives in the same file. A third pass runs
//! the fleet with `PrefillMode::Modeled` — every prompt pays its
//! prefill stage, so TTFT is arrival-relative — recording that
//! variant's wall-clock trajectory and its simulated TTFT/prefill
//! numbers under a `prefill` key. Emits `BENCH_serving.json`
//! (`just perf`; CI runs one iteration of all three variants as a
//! smoke test so the binary cannot rot).
//!
//! ```text
//! serve_throughput [--iters N] [--clients N] [--tokens N] [--out PATH]
//! ```

use cambricon_llm::serve::{PrefillMode, SchedulePolicy, ServeEngine};
use cambricon_llm::SystemConfig;
use llm_workload::{zoo, ArrivalTrace, RequestShape};
use std::time::Instant;

struct Args {
    iters: usize,
    clients: usize,
    tokens: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 5,
        clients: 8,
        tokens: 32,
        out: "BENCH_serving.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--iters" => args.iters = value("--iters").parse().expect("--iters: integer"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: integer"),
            "--tokens" => args.tokens = value("--tokens").parse().expect("--tokens: integer"),
            "--out" => args.out = value("--out"),
            other => {
                eprintln!("unknown flag {other}; see the doc comment for usage");
                std::process::exit(2);
            }
        }
    }
    assert!(args.iters >= 1, "--iters must be at least 1");
    args
}

/// One measured variant: an untimed warm-up run plus `iters` timed
/// runs of `engine.run(trace, policy)`.
///
/// The warm-up settles OS/allocator/branch-predictor state; each `run`
/// still builds a fresh `System` (deterministic, independent runs), so
/// the fixed per-run pricing work — the flash DES for each distinct
/// GeMV shape — is inside every timed iteration too: it is part of
/// what a caller pays per run and is identical before and after any
/// hot-path change, so the trajectory stays comparable. Returns the
/// warm-up report plus `(per-iteration rates, best, mean)` in
/// simulated-tokens-per-wall-second.
fn measure(
    engine: &ServeEngine,
    trace: &ArrivalTrace,
    policy: SchedulePolicy,
    iters: usize,
    label: &str,
) -> (cambricon_llm::serve::ServeReport, Vec<f64>, f64, f64) {
    let warm = engine.run(trace, policy);
    let tokens = warm.tokens_served;
    let mut rates = Vec::with_capacity(iters);
    for i in 0..iters {
        let t0 = Instant::now();
        let rep = engine.run(trace, policy);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(rep.tokens_served, tokens, "non-deterministic run");
        let rate = tokens as f64 / wall;
        println!("  {label}iter {i}: {wall:.4} s wall, {rate:.0} simulated tokens/s");
        rates.push(rate);
    }
    let best = rates.iter().cloned().fold(f64::MIN, f64::max);
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    println!("{label}best {best:.0} tok/s-wall, mean {mean:.0} tok/s-wall");
    (warm, rates, best, mean)
}

fn main() {
    let args = parse_args();
    let model = zoo::llama2_70b();
    let cfg = SystemConfig::cambricon_l();
    let shape = RequestShape::new(1000, args.tokens);
    let trace = ArrivalTrace::closed_loop(args.clients, 1, shape);
    let engine = ServeEngine::new(cfg, model.clone());

    println!(
        "serve_throughput: {} on {}, {} closed-loop clients x {} tokens, {} iterations",
        model.name, cfg.name, args.clients, args.tokens, args.iters
    );

    let (warm, rates, best, mean) =
        measure(&engine, &trace, SchedulePolicy::RoundRobin, args.iters, "");
    let tokens = warm.tokens_served;

    // Batched variant: same fleet under continuous batching. The wall
    // rate tracks the batched loop's own hot path; the simulated
    // numbers record what the policy buys (weight-stream amortization
    // over FCFS) and its admission behaviour.
    let policy = SchedulePolicy::ContinuousBatch {
        max_batch: args.clients,
    };
    let fcfs_sim = engine.run(&trace, SchedulePolicy::Fcfs).tokens_per_sec;
    let (warm_b, rates_b, best_b, mean_b) =
        measure(&engine, &trace, policy, args.iters, "batched ");
    let tokens_b = warm_b.tokens_served;
    println!(
        "batched({}): simulated {:.2} tok/s vs FCFS {:.2} ({:.2}x), occupancy {:.2} (peak {}), {} kv rejections",
        args.clients,
        warm_b.tokens_per_sec,
        fcfs_sim,
        warm_b.tokens_per_sec / fcfs_sim,
        warm_b.mean_batch_occupancy,
        warm_b.peak_batch_occupancy,
        warm_b.kv_rejections,
    );

    // Prefill-enabled variant: the same fleet, every prompt paying its
    // prefill stage. The wall rate tracks the prefill-aware event
    // loop's hot path; the simulated numbers record what the phase
    // costs (arrival-relative TTFT, device time spent prefilling).
    let engine_p = ServeEngine::new(cfg, model.clone()).with_prefill(PrefillMode::Modeled);
    let (warm_p, rates_p, best_p, mean_p) = measure(
        &engine_p,
        &trace,
        SchedulePolicy::RoundRobin,
        args.iters,
        "prefill ",
    );
    let tokens_p = warm_p.tokens_served;
    println!(
        "prefill({}): simulated ttft p50 {:.2} s / p99 {:.2} s, prefill busy {:.2} s over {:.2} s makespan",
        args.clients,
        warm_p.ttft_p50_s,
        warm_p.ttft_p99_s,
        warm_p.prefill_busy_s,
        warm_p.makespan.as_secs_f64(),
    );

    let iters_json = |rates: &[f64]| {
        rates
            .iter()
            .map(|r| format!("{r:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"scenario\": {{\n    \"model\": \"{}\",\n    \"config\": \"{}\",\n    \"clients\": {},\n    \"prompt_len\": 1000,\n    \"new_tokens\": {},\n    \"policy\": \"RoundRobin\"\n  }},\n  \"tokens_served\": {},\n  \"iterations\": [{}],\n  \"sim_tokens_per_wall_sec_best\": {:.1},\n  \"sim_tokens_per_wall_sec_mean\": {:.1},\n  \"batched\": {{\n    \"policy\": \"ContinuousBatch\",\n    \"max_batch\": {},\n    \"tokens_served\": {},\n    \"sim_tokens_per_sec\": {:.4},\n    \"fcfs_sim_tokens_per_sec\": {:.4},\n    \"sim_speedup_vs_fcfs\": {:.4},\n    \"mean_batch_occupancy\": {:.4},\n    \"peak_batch_occupancy\": {},\n    \"kv_rejections\": {},\n    \"iterations\": [{}],\n    \"sim_tokens_per_wall_sec_best\": {:.1},\n    \"sim_tokens_per_wall_sec_mean\": {:.1}\n  }},\n  \"prefill\": {{\n    \"policy\": \"RoundRobin\",\n    \"mode\": \"Modeled\",\n    \"tokens_served\": {},\n    \"sim_ttft_p50_s\": {:.4},\n    \"sim_ttft_p99_s\": {:.4},\n    \"sim_ttft_mean_s\": {:.4},\n    \"sim_decode_ttft_mean_s\": {:.4},\n    \"sim_prefill_busy_s\": {:.4},\n    \"sim_makespan_s\": {:.4},\n    \"iterations\": [{}],\n    \"sim_tokens_per_wall_sec_best\": {:.1},\n    \"sim_tokens_per_wall_sec_mean\": {:.1}\n  }}\n}}\n",
        model.name,
        cfg.name,
        args.clients,
        args.tokens,
        tokens,
        iters_json(&rates),
        best,
        mean,
        args.clients,
        tokens_b,
        warm_b.tokens_per_sec,
        fcfs_sim,
        warm_b.tokens_per_sec / fcfs_sim,
        warm_b.mean_batch_occupancy,
        warm_b.peak_batch_occupancy,
        warm_b.kv_rejections,
        iters_json(&rates_b),
        best_b,
        mean_b,
        tokens_p,
        warm_p.ttft_p50_s,
        warm_p.ttft_p99_s,
        warm_p.ttft_mean_s,
        warm_p.decode_ttft_s.mean().unwrap_or(0.0),
        warm_p.prefill_busy_s,
        warm_p.makespan.as_secs_f64(),
        iters_json(&rates_p),
        best_p,
        mean_p
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    println!("wrote {}", args.out);
}
