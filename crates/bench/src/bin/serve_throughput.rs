//! Serving hot-path benchmark: simulated-tokens-per-wall-second.
//!
//! Runs the canonical 70B serving scenario (Llama2-70B on
//! Cambricon-LLM-L, a closed-loop fleet of clients) and measures how
//! many *simulated* tokens the engine retires per *wall-clock* second —
//! the number that bounds how large a traffic sweep the simulator can
//! explore. Four variants share the file so every hot path's trajectory
//! lives together:
//!
//! 1. the round-robin decode-only fleet (the original scenario);
//! 2. `ContinuousBatch { max_batch: clients }` — the batched loop,
//!    with the simulated speedup over FCFS and admission behaviour;
//! 3. the same fleet under `PrefillMode::Modeled` — TTFT is
//!    arrival-relative and every prompt pays its prefill;
//! 4. **coalesced** — a long-decode scenario (`--long-tokens`,
//!    default 512) under continuous batching, measured with span
//!    fast-forwarding on (the default engine) *and* with the per-op
//!    reference loop (`SpanMode::PerOp`, the PR 4 engine), recording
//!    the wall-clock speedup spans buy in the regime they exist for;
//! 5. **montecarlo** — the long-decode scenario fanned across
//!    `--monte-carlo` seeded Poisson arrival traces through
//!    [`MonteCarlo`]: one pre-warmed pricing system shared by every
//!    seed, so the wall rate is *aggregate* simulated tokens (all
//!    seeds) per wall-second — the harness's figure of merit — plus
//!    the cross-seed estimates (mean ± 95% CI) the batch exists to
//!    produce;
//! 6. **reliability** (`--faults <age-days>`) — the same 70B fleet
//!    under fault injection: a wear ladder (fresh, ¼, ½, and the full
//!    age) recording goodput vs. wear, then the [`WearTrajectory`]
//!    driver replaying days of traffic with read-disturb feedback
//!    until deadline goodput falls below half the fresh value —
//!    the days-until-SLO-violation figure;
//! 7. **overload** — the multi-request steady-state regime the
//!    interleaved replay loop exists for: a closed-loop ladder of 2,
//!    8, and 16 clients with long decodes (`--long-tokens`), under
//!    FCFS and round-robin. Every decode overlaps, so solo spans never
//!    trigger and every op is a scheduling event; each rung runs twice
//!    on the same trace — the per-op reference loop (`SpanMode::PerOp`)
//!    and the default interleaved-replay engine, asserted report-equal
//!    — and the wall-clock ratio is the replay loop's speedup;
//! 8. **profile** (`--profile`) — a per-stage wall-clock breakdown of
//!    the 16-client overload run by bench-side differentials: a
//!    minimal one-client/one-token run isolates the fixed pricing +
//!    report-build floor, and subtracting it from the per-op and
//!    replay totals splits each into floor + event-core time;
//! 9. **fleet** (`--fleet <replicas>`) — one heavy Poisson arrival
//!    trace routed across a replica ladder (1, 2, …, `<replicas>`) of
//!    [`FleetEngine`] devices, recording aggregate simulated tokens
//!    per wall-second per rung plus a router-policy comparison at the
//!    full width. The single-device rung drowns in overlapping
//!    requests (no solo spans — every token is a scheduling event);
//!    routing thins each replica's arrivals until decodes run solo and
//!    span fast-forwarding coalesces them, so the ladder's speedup is
//!    simulation efficiency, not thread parallelism.
//!
//! Each variant reports best/mean/**median** over the iterations —
//! the raw arrays routinely carry ~35% scheduler outliers, which the
//! median ignores. Emits `BENCH_serving.json` via [`bench::json`]
//! (`just perf`; CI runs one iteration of all variants as a smoke test
//! so the binary cannot rot).
//!
//! ```text
//! serve_throughput [--iters N] [--clients N] [--tokens N]
//!                  [--long-tokens N] [--monte-carlo N] [--profile]
//!                  [--faults AGE_DAYS] [--fleet REPLICAS] [--out PATH]
//! ```

use bench::Json;
use cambricon_llm::fleet::{FleetEngine, Interconnect, RouterPolicy};
use cambricon_llm::montecarlo::MonteCarlo;
use cambricon_llm::reliability::{FaultConfig, FaultMode, WearTrajectory};
use cambricon_llm::serve::{
    DeviceEngine, PrefillMode, SchedulePolicy, ServeEngine, ServeReport, SpanMode,
};
use cambricon_llm::SystemConfig;
use flash_sim::FlashAge;
use llm_workload::{zoo, ArrivalTrace, RequestShape};
use sim_core::SimTime;
use std::time::Instant;

struct Args {
    iters: usize,
    clients: usize,
    tokens: usize,
    long_tokens: usize,
    monte_carlo: usize,
    profile: bool,
    faults: Option<f64>,
    fleet: Option<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 5,
        clients: 8,
        tokens: 32,
        long_tokens: 512,
        monte_carlo: 32,
        profile: false,
        faults: None,
        fleet: None,
        out: "BENCH_serving.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--iters" => args.iters = value("--iters").parse().expect("--iters: integer"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: integer"),
            "--tokens" => args.tokens = value("--tokens").parse().expect("--tokens: integer"),
            "--long-tokens" => {
                args.long_tokens = value("--long-tokens")
                    .parse()
                    .expect("--long-tokens: integer")
            }
            "--monte-carlo" => {
                args.monte_carlo = value("--monte-carlo")
                    .parse()
                    .expect("--monte-carlo: integer")
            }
            "--profile" => args.profile = true,
            "--faults" => {
                args.faults = Some(value("--faults").parse().expect("--faults: age in days"))
            }
            "--fleet" => {
                args.fleet = Some(value("--fleet").parse().expect("--fleet: replica count"))
            }
            "--out" => args.out = value("--out"),
            other => {
                eprintln!("unknown flag {other}; see the doc comment for usage");
                std::process::exit(2);
            }
        }
    }
    assert!(args.iters >= 1, "--iters must be at least 1");
    assert!(args.long_tokens >= 1, "--long-tokens must be at least 1");
    assert!(args.monte_carlo >= 1, "--monte-carlo must be at least 1");
    assert!(
        !args.faults.is_some_and(|d| d <= 0.0),
        "--faults must be a positive number of days"
    );
    assert!(
        !args.fleet.is_some_and(|r| r == 0),
        "--fleet must be at least 1 replica"
    );
    args
}

/// The wear ladder + trajectory of the reliability variant
/// (`--faults`): fault-injected runs of the base fleet at increasing
/// age, then the wear-trajectory driver's days-until-SLO figure.
fn reliability_section(
    age_days: f64,
    cfg: SystemConfig,
    model: &llm_workload::ModelSpec,
    trace: &ArrivalTrace,
    warm: &ServeReport,
) -> Json {
    // A device at `day` days of service: retention plus ~8 P/E
    // cycles/day of background write traffic (3K cycles ≈ one year).
    let age_at = |day: f64| FlashAge {
        pe_cycles: 100 + (day * 8.0) as u32,
        retention_days: 0.5 + day,
    };
    // Deadline: 2x the worst fault-free request latency. A fresh chip
    // meets it with margin; a worn one sheds — which is exactly the
    // goodput-vs-wear signal the ladder records.
    let worst = warm
        .requests
        .iter()
        .map(|r| r.finished - r.arrived)
        .max()
        .expect("fault-free run served no requests");
    let deadline = worst * 2;
    let base_fc = FaultConfig::default().with_deadlines(None, Some(deadline));
    println!(
        "reliability: wear ladder to {age_days} days, total deadline {:.2} s",
        deadline.as_secs_f64()
    );
    let mut rungs = Vec::new();
    let mut fresh_goodput = 0.0;
    for day in [0.0, age_days / 4.0, age_days / 2.0, age_days] {
        let age = age_at(day);
        let fc = FaultConfig { age, ..base_fc };
        let engine = ServeEngine::new(cfg, model.clone()).with_faults(FaultMode::Injected(fc));
        let rep = engine.run(trace, SchedulePolicy::RoundRobin);
        let rel = rep.reliability;
        if day == 0.0 {
            fresh_goodput = rel.deadline_goodput_tps;
        }
        println!(
            "  day {day:7.1}: rber {:.2e}, {:.2} tok/s, goodput {:.2} tok/s, \
             {} rereads, {} uncorrectable, {} sheds",
            rel.rber,
            rep.tokens_per_sec,
            rel.deadline_goodput_tps,
            rel.page_rereads,
            rel.uncorrectable_events,
            rel.total_sheds(),
        );
        rungs.push(
            Json::obj()
                .field("day", Json::float(day, 1))
                .field("rber_ppm", Json::float(rel.rber * 1e6, 3))
                .field("sim_tokens_per_sec", Json::float(rep.tokens_per_sec, 4))
                .field("goodput_tps", Json::float(rel.deadline_goodput_tps, 4))
                .field("page_rereads", rel.page_rereads)
                .field("uncorrectable_events", rel.uncorrectable_events)
                .field("sheds", rel.total_sheds()),
        );
    }
    // The trajectory: replay the trace as a full day of traffic per
    // simulated day, with read-disturb wear feedback, until deadline
    // goodput falls below half the fresh value.
    let wt = WearTrajectory {
        start: FlashAge::fresh(),
        days_per_step: (age_days / 2.0).max(1.0),
        max_days: age_days * 8.0,
        traffic_scale: 86_400.0 / warm.makespan.as_secs_f64().max(1e-9),
        bytes_per_pe: 1 << 50,
        slo_goodput_tps: fresh_goodput * 0.5,
        base: base_fc,
    };
    let wear = wt.run(
        cfg,
        model,
        PrefillMode::Off,
        trace,
        SchedulePolicy::RoundRobin,
    );
    print!(
        "wear trajectory (SLO {:.2} tok/s):\n{}",
        wt.slo_goodput_tps,
        wear.summary()
    );
    let days_until: Json = match wear.days_until_slo {
        Some(d) => Json::float(d, 1),
        None => "survived the horizon".into(),
    };
    match wear.days_until_slo {
        Some(d) => println!("days until SLO violation: {d:.1}"),
        None => println!("SLO held for the whole {:.0}-day horizon", wt.max_days),
    }
    Json::obj()
        .field("age_days", Json::float(age_days, 1))
        .field("deadline_s", Json::float(deadline.as_secs_f64(), 3))
        .field("ladder", Json::array(rungs))
        .field(
            "wear_trajectory",
            Json::obj()
                .field("slo_goodput_tps", Json::float(wt.slo_goodput_tps, 4))
                .field("days_per_step", Json::float(wt.days_per_step, 1))
                .field("max_days", Json::float(wt.max_days, 1))
                .field("traffic_scale", Json::float(wt.traffic_scale, 1))
                .field("steps_run", wear.points.len())
                .field("days_until_slo", days_until),
        )
}

/// The overloaded-device ladder: 2, 8, and 16 closed-loop clients
/// with long decodes under FCFS and round-robin. Past two clients no
/// decode ever runs alone, so solo spans never trigger — every op is
/// a scheduling event and the wall rate is pure event-loop speed.
/// Each rung runs the same trace through the per-op reference loop
/// ([`SpanMode::PerOp`]) and the default interleaved-replay engine;
/// the reports must match field for field (the replay loop's exactness
/// contract) and the wall-clock ratio is the replay speedup.
fn overload_section(
    iters: usize,
    cfg: SystemConfig,
    model: &llm_workload::ModelSpec,
    long_tokens: usize,
) -> Json {
    let shape = RequestShape::new(1000, long_tokens);
    println!(
        "overload: closed-loop ladder x {long_tokens} tokens, per-op reference vs interleaved replay"
    );
    let engine = ServeEngine::new(cfg, model.clone());
    let engine_per_op = ServeEngine::new(cfg, model.clone()).with_span_mode(SpanMode::PerOp);
    let mut rungs = Vec::new();
    let mut headline = f64::INFINITY;
    for clients in [2usize, 8, 16] {
        let trace = ArrivalTrace::closed_loop(clients, 1, shape);
        for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
            let tag = match policy {
                SchedulePolicy::Fcfs => "fcfs",
                _ => "rr",
            };
            let (warm_ref, stats_ref) = measure(
                &engine_per_op,
                &trace,
                policy,
                iters,
                &format!("overload x{clients} {tag} per-op "),
            );
            let (warm_replay, stats_replay) = measure(
                &engine,
                &trace,
                policy,
                iters,
                &format!("overload x{clients} {tag} replay "),
            );
            assert_eq!(
                warm_replay, warm_ref,
                "interleaved replay diverged from the per-op reference"
            );
            let speedup = stats_replay.median / stats_ref.median;
            println!(
                "overload x{clients} {tag}: replay {:.0} vs per-op {:.0} tok/s-wall — \
                 {speedup:.2}x median ({:.2}x best)",
                stats_replay.median,
                stats_ref.median,
                stats_replay.best / stats_ref.best,
            );
            if clients == 16 {
                headline = headline.min(speedup);
            }
            rungs.push(
                stats_replay.fields(
                    Json::obj()
                        .field("clients", clients)
                        .field("policy", tag)
                        .field("tokens_served", warm_replay.tokens_served)
                        .field(
                            "sim_tokens_per_sec",
                            Json::float(warm_replay.tokens_per_sec, 4),
                        )
                        .field(
                            "per_op_baseline",
                            stats_ref.fields(Json::obj().field("span_mode", "PerOp")),
                        )
                        .field("replay_speedup_median", Json::float(speedup, 2))
                        .field(
                            "replay_speedup_best",
                            Json::float(stats_replay.best / stats_ref.best, 2),
                        ),
                ),
            );
        }
    }
    println!("overload headline (min 16-client median speedup): {headline:.2}x");
    Json::obj()
        .field("new_tokens", long_tokens)
        .field("clients_ladder", Json::array([2u64, 8, 16].map(Json::from)))
        .field("ladder", Json::array(rungs))
        .field("min_16_client_speedup_median", Json::float(headline, 2))
}

/// The `--profile` per-stage breakdown: bench-side differentials on
/// the 16-client overload scenario. A one-client, one-token run pays
/// the full fixed cost — pricing every distinct GeMV shape through the
/// flash DES plus building a report — with a negligible event count,
/// so its wall time is the *floor* shared by every run of this model
/// and config. Subtracting the floor from the per-op and replay totals
/// splits each into `floor + event core`, and the event-core ratio is
/// the replay loop's speedup with fixed costs stripped out. The floor
/// run prices attention at one position only, so the split is an
/// estimate — good to the few percent the memoized prefix table leaves
/// position-dependent.
fn profile_section(
    iters: usize,
    cfg: SystemConfig,
    model: &llm_workload::ModelSpec,
    long_tokens: usize,
) -> Json {
    let engine = ServeEngine::new(cfg, model.clone());
    let engine_per_op = ServeEngine::new(cfg, model.clone()).with_span_mode(SpanMode::PerOp);
    let floor_trace = ArrivalTrace::closed_loop(1, 1, RequestShape::new(1000, 1));
    let trace = ArrivalTrace::closed_loop(16, 1, RequestShape::new(1000, long_tokens));
    println!("profile: stage breakdown on 16 clients x {long_tokens} tokens (fcfs)");

    // Median wall seconds of `runs` timed iterations.
    let wall_median = |engine: &ServeEngine, trace: &ArrivalTrace, label: &str| {
        let warm = engine.run(trace, SchedulePolicy::Fcfs);
        let mut walls = Vec::with_capacity(iters);
        for _ in 0..iters {
            // Wall-clock measurement is this harness's purpose.
            #[allow(clippy::disallowed_methods)]
            let t0 = Instant::now();
            let rep = engine.run(trace, SchedulePolicy::Fcfs);
            walls.push(t0.elapsed().as_secs_f64());
            assert_eq!(rep, warm, "non-deterministic profile run");
        }
        walls.sort_by(f64::total_cmp);
        let median = walls[walls.len() / 2];
        println!("  {label}: {median:.4} s wall median");
        (median, warm.tokens_served)
    };

    let (floor_s, _) = wall_median(&engine, &floor_trace, "pricing + report floor");
    let (per_op_s, tokens) = wall_median(&engine_per_op, &trace, "per-op total");
    let (replay_s, _) = wall_median(&engine, &trace, "replay total");
    let per_op_core = (per_op_s - floor_s).max(0.0);
    let replay_core = (replay_s - floor_s).max(0.0);
    println!(
        "profile: floor {floor_s:.4} s; event core per-op {per_op_core:.4} s vs replay \
         {replay_core:.4} s ({:.2}x core speedup); {tokens} tokens",
        per_op_core / replay_core.max(1e-12),
    );
    Json::obj()
        .field("clients", 16u64)
        .field("new_tokens", long_tokens)
        .field("policy", "Fcfs")
        .field("tokens_served", tokens)
        .field("pricing_report_floor_s", Json::float(floor_s, 4))
        .field("per_op_total_s", Json::float(per_op_s, 4))
        .field("replay_total_s", Json::float(replay_s, 4))
        .field("per_op_event_core_s", Json::float(per_op_core, 4))
        .field("replay_event_core_s", Json::float(replay_core, 4))
        .field(
            "event_core_speedup",
            Json::float(per_op_core / replay_core.max(1e-12), 2),
        )
}

/// The replica ladder of the fleet variant (`--fleet`): one heavy
/// Poisson trace routed across 1, 2, …, `replicas_max` device
/// replicas, each rung measured in aggregate simulated tokens per
/// wall-second, plus a router-policy comparison at the full width.
fn fleet_section(
    replicas_max: usize,
    iters: usize,
    cfg: SystemConfig,
    model: &llm_workload::ModelSpec,
    long_tokens: usize,
) -> Json {
    // Heavy enough to drown one device (offered load ~2.3x a single
    // replica's decode capacity at 512 tokens/request on L), light
    // enough that a 4-way split leaves each replica mostly solo — the
    // regime where routing converts queueing into coalesced spans.
    const FLEET_SEED: u64 = 0xF1EE7;
    let requests = 4 * replicas_max;
    let shape = RequestShape::new(1000, long_tokens);
    let trace = ArrivalTrace::poisson(0.03, requests, shape, FLEET_SEED);
    let hop = SimTime::from_micros(50);
    println!(
        "fleet: {} poisson arrivals (rate 0.03/s, seed {FLEET_SEED:#x}) x {} tokens, \
         replica ladder to {}, 50 us hops",
        requests, long_tokens, replicas_max
    );

    let measure_fleet = |replicas: usize, router: RouterPolicy| {
        let device = DeviceEngine::new(cfg, model.clone());
        let fleet = FleetEngine::new(device, replicas)
            .with_router(router)
            .with_interconnect(Interconnect::symmetric(hop));
        let warm = fleet.run(&trace, SchedulePolicy::Fcfs);
        let tokens = warm.tokens_served;
        let mut rates = Vec::with_capacity(iters);
        for i in 0..iters {
            // Wall-clock measurement is this harness's purpose.
            #[allow(clippy::disallowed_methods)]
            let t0 = Instant::now();
            let rep = fleet.run(&trace, SchedulePolicy::Fcfs);
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(rep, warm, "non-deterministic fleet run");
            let rate = tokens as f64 / wall;
            println!(
                "  fleet x{replicas} ({}) iter {i}: {wall:.4} s wall, {rate:.0} simulated tokens/s",
                router.label()
            );
            rates.push(rate);
        }
        (warm, WallStats::of(rates))
    };

    let row = |replicas: usize, router: RouterPolicy| {
        let (warm, stats) = measure_fleet(replicas, router);
        println!(
            "fleet x{replicas} ({}): sim {:.2} tok/s, ttft p99 {:.2} s, imbalance {:.2}; \
             median {:.0} tok/s-wall",
            router.label(),
            warm.tokens_per_sec,
            warm.ttft_p99_s,
            warm.load_imbalance,
            stats.median,
        );
        let json = stats.fields(
            Json::obj()
                .field("replicas", replicas)
                .field("router", router.label())
                .field("sim_tokens_per_sec", Json::float(warm.tokens_per_sec, 4))
                .field("sim_ttft_p99_s", Json::float(warm.ttft_p99_s, 4))
                .field("load_imbalance", Json::float(warm.load_imbalance, 4)),
        );
        (json, stats)
    };

    // Replica ladder under the round-robin router: 1, 2, 4, … to max.
    let mut ladder = vec![1usize];
    while *ladder.last().expect("seeded") < replicas_max {
        ladder.push((ladder.last().expect("seeded") * 2).min(replicas_max));
    }
    let mut rungs = Vec::new();
    let mut single_median = 0.0;
    let mut full_median = 0.0;
    for &replicas in &ladder {
        let (json, stats) = row(replicas, RouterPolicy::RoundRobin);
        if replicas == 1 {
            single_median = stats.median;
        }
        if replicas == replicas_max {
            full_median = stats.median;
        }
        rungs.push(json);
    }
    let speedup = full_median / single_median;
    println!(
        "fleet speedup x{replicas_max} vs x1: {speedup:.2}x \
         (arrival thinning -> coalesced solo spans)"
    );

    // Router-policy comparison at the full width: same trace, same
    // replicas, only the dispatch decision changes. The odd session
    // count is deliberate — `sessions % replicas != 0` is where
    // affinity trades balance for locality.
    let mut policies = Vec::new();
    for router in [
        RouterPolicy::LeastLoaded,
        RouterPolicy::SessionAffinity {
            sessions: (2 * replicas_max).max(3) - 1,
        },
    ] {
        let (json, _) = row(replicas_max, router);
        policies.push(json);
    }

    Json::obj()
        .field("requests", requests)
        .field("new_tokens", long_tokens)
        .field("arrival_rate_per_sec", Json::float(0.03, 3))
        .field("seed", FLEET_SEED)
        .field("hop_us", 50u64)
        .field("policy", "Fcfs")
        .field("ladder", Json::array(rungs))
        .field("router_comparison", Json::array(policies))
        .field("speedup_vs_single_median", Json::float(speedup, 2))
}

/// Wall-clock statistics of one measured variant, in
/// simulated-tokens-per-wall-second.
struct WallStats {
    rates: Vec<f64>,
    best: f64,
    mean: f64,
    median: f64,
}

impl WallStats {
    fn of(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty());
        let best = rates.iter().cloned().fold(f64::MIN, f64::max);
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        let mut sorted = rates.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        WallStats {
            rates,
            best,
            mean,
            median,
        }
    }

    /// The three summary fields plus the raw array, appended to a
    /// variant's JSON object.
    fn fields(&self, obj: Json) -> Json {
        obj.field(
            "iterations",
            Json::array(self.rates.iter().map(|r| Json::float(*r, 1))),
        )
        .field("sim_tokens_per_wall_sec_best", Json::float(self.best, 1))
        .field("sim_tokens_per_wall_sec_mean", Json::float(self.mean, 1))
        .field(
            "sim_tokens_per_wall_sec_median",
            Json::float(self.median, 1),
        )
    }
}

/// One measured variant: an untimed warm-up run plus `iters` timed
/// runs of `engine.run(trace, policy)`.
///
/// The warm-up settles OS/allocator/branch-predictor state; each `run`
/// still builds a fresh `System` (deterministic, independent runs), so
/// the fixed per-run pricing work — the flash DES for each distinct
/// GeMV shape — is inside every timed iteration too: it is part of
/// what a caller pays per run and is identical before and after any
/// hot-path change, so the trajectory stays comparable.
fn measure(
    engine: &ServeEngine,
    trace: &ArrivalTrace,
    policy: SchedulePolicy,
    iters: usize,
    label: &str,
) -> (ServeReport, WallStats) {
    let warm = engine.run(trace, policy);
    let tokens = warm.tokens_served;
    let mut rates = Vec::with_capacity(iters);
    for i in 0..iters {
        // Wall-clock measurement is this harness's purpose.
        #[allow(clippy::disallowed_methods)]
        let t0 = Instant::now();
        let rep = engine.run(trace, policy);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(rep.tokens_served, tokens, "non-deterministic run");
        let rate = tokens as f64 / wall;
        println!("  {label}iter {i}: {wall:.4} s wall, {rate:.0} simulated tokens/s");
        rates.push(rate);
    }
    let stats = WallStats::of(rates);
    println!(
        "{label}best {:.0}, median {:.0}, mean {:.0} tok/s-wall",
        stats.best, stats.median, stats.mean
    );
    (warm, stats)
}

fn main() {
    let args = parse_args();
    let model = zoo::llama2_70b();
    let cfg = SystemConfig::cambricon_l();
    let shape = RequestShape::new(1000, args.tokens);
    let trace = ArrivalTrace::closed_loop(args.clients, 1, shape);
    let engine = ServeEngine::new(cfg, model.clone());

    println!(
        "serve_throughput: {} on {}, {} closed-loop clients x {} tokens, {} iterations",
        model.name, cfg.name, args.clients, args.tokens, args.iters
    );

    let (warm, stats) = measure(&engine, &trace, SchedulePolicy::RoundRobin, args.iters, "");

    // Batched variant: same fleet under continuous batching. The wall
    // rate tracks the batched loop's own hot path; the simulated
    // numbers record what the policy buys (weight-stream amortization
    // over FCFS) and its admission behaviour.
    let policy = SchedulePolicy::ContinuousBatch {
        max_batch: args.clients,
    };
    let fcfs_sim = engine.run(&trace, SchedulePolicy::Fcfs).tokens_per_sec;
    let (warm_b, stats_b) = measure(&engine, &trace, policy, args.iters, "batched ");
    println!(
        "batched({}): simulated {:.2} tok/s vs FCFS {:.2} ({:.2}x), occupancy {:.2} (peak {}), {} kv rejections",
        args.clients,
        warm_b.tokens_per_sec,
        fcfs_sim,
        warm_b.tokens_per_sec / fcfs_sim,
        warm_b.mean_batch_occupancy,
        warm_b.peak_batch_occupancy,
        warm_b.kv_rejections,
    );

    // Prefill-enabled variant: the same fleet, every prompt paying its
    // prefill stage.
    let engine_p = ServeEngine::new(cfg, model.clone()).with_prefill(PrefillMode::Modeled);
    let (warm_p, stats_p) = measure(
        &engine_p,
        &trace,
        SchedulePolicy::RoundRobin,
        args.iters,
        "prefill ",
    );
    println!(
        "prefill({}): simulated ttft p50 {:.2} s / p99 {:.2} s, prefill busy {:.2} s over {:.2} s makespan",
        args.clients,
        warm_p.ttft_p50_s,
        warm_p.ttft_p99_s,
        warm_p.prefill_busy_s,
        warm_p.makespan.as_secs_f64(),
    );

    // Coalesced variant: the long-decode regime span fast-forwarding
    // exists for — many tokens between scheduling boundaries. Measured
    // twice on the same trace: the per-op reference loop (the PR 4
    // engine, `SpanMode::PerOp`) as the recorded baseline, then the
    // default coalescing engine; the ratio is the tentpole speedup.
    let long_shape = RequestShape::new(1000, args.long_tokens);
    let long_trace = ArrivalTrace::closed_loop(args.clients, 1, long_shape);
    println!(
        "coalesced: long-decode scenario, {} clients x {} tokens, ContinuousBatch",
        args.clients, args.long_tokens
    );
    let engine_per_op = ServeEngine::new(cfg, model.clone()).with_span_mode(SpanMode::PerOp);
    let (_, stats_base) = measure(&engine_per_op, &long_trace, policy, args.iters, "per-op ");
    let (warm_c, stats_c) = measure(&engine, &long_trace, policy, args.iters, "spans ");
    println!(
        "coalesced({} tokens): spans {:.0} vs per-op {:.0} tok/s-wall — {:.2}x (median {:.2}x)",
        args.long_tokens,
        stats_c.best,
        stats_base.best,
        stats_c.best / stats_base.best,
        stats_c.median / stats_base.median,
    );

    // Monte Carlo variant: the same long-decode scenario fanned across
    // seeded Poisson arrival traces. One timed `run` prices the
    // scenario once (the internal warm-up) and replays it per seed on
    // clones of the warm system, so the aggregate wall rate — tokens
    // across *all* seeds per wall-second — is what the harness's
    // amortization buys over running the seeds as independent
    // cold-cache simulations.
    const MC_ROOT_SEED: u64 = 0xCA3B51C0;
    let mc = MonteCarlo::new(args.monte_carlo, MC_ROOT_SEED);
    let mc_trace = |seed: u64| ArrivalTrace::poisson(1.0, args.clients, long_shape, seed);
    println!(
        "montecarlo: {} seeds (root {MC_ROOT_SEED:#x}) x {} poisson arrivals x {} tokens",
        args.monte_carlo, args.clients, args.long_tokens
    );
    let warm_mc = mc.run(&engine, policy, mc_trace);
    let mc_tokens = warm_mc.tokens_served;
    let mut mc_rates = Vec::with_capacity(args.iters);
    for i in 0..args.iters {
        // Wall-clock measurement is this harness's purpose.
        #[allow(clippy::disallowed_methods)]
        let t0 = Instant::now();
        let rep = mc.run(&engine, policy, mc_trace);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(rep, warm_mc, "non-deterministic Monte Carlo batch");
        let rate = mc_tokens as f64 / wall;
        println!("  montecarlo iter {i}: {wall:.4} s wall, {rate:.0} aggregate simulated tokens/s");
        mc_rates.push(rate);
    }
    let stats_mc = WallStats::of(mc_rates);
    println!(
        "montecarlo({} seeds): {} aggregate tokens; best {:.0}, median {:.0} tok/s-wall\n{}",
        args.monte_carlo,
        mc_tokens,
        stats_mc.best,
        stats_mc.median,
        warm_mc.summary(),
    );

    // Overload ladder: always on — it carries the replay loop's
    // exactness assertion, so the smoke run exercises it too.
    let overload = overload_section(args.iters, cfg, &model, args.long_tokens);
    let profile = args
        .profile
        .then(|| profile_section(args.iters, cfg, &model, args.long_tokens));

    let doc = Json::obj()
        .field("benchmark", "serve_throughput")
        .field(
            "scenario",
            Json::obj()
                .field("model", model.name)
                .field("config", cfg.name)
                .field("clients", args.clients)
                .field("prompt_len", 1000u64)
                .field("new_tokens", args.tokens)
                .field("policy", "RoundRobin"),
        )
        .field("tokens_served", warm.tokens_served);
    let doc = stats.fields(doc);
    let doc = doc
        .field(
            "batched",
            stats_b.fields(
                Json::obj()
                    .field("policy", "ContinuousBatch")
                    .field("max_batch", args.clients)
                    .field("tokens_served", warm_b.tokens_served)
                    .field("sim_tokens_per_sec", Json::float(warm_b.tokens_per_sec, 4))
                    .field("fcfs_sim_tokens_per_sec", Json::float(fcfs_sim, 4))
                    .field(
                        "sim_speedup_vs_fcfs",
                        Json::float(warm_b.tokens_per_sec / fcfs_sim, 4),
                    )
                    .field(
                        "mean_batch_occupancy",
                        Json::float(warm_b.mean_batch_occupancy, 4),
                    )
                    .field("peak_batch_occupancy", warm_b.peak_batch_occupancy)
                    .field("kv_rejections", warm_b.kv_rejections),
            ),
        )
        .field(
            "prefill",
            stats_p.fields(
                Json::obj()
                    .field("policy", "RoundRobin")
                    .field("mode", "Modeled")
                    .field("tokens_served", warm_p.tokens_served)
                    .field("sim_ttft_p50_s", Json::float(warm_p.ttft_p50_s, 4))
                    .field("sim_ttft_p99_s", Json::float(warm_p.ttft_p99_s, 4))
                    .field("sim_ttft_mean_s", Json::float(warm_p.ttft_mean_s, 4))
                    .field(
                        "sim_decode_ttft_mean_s",
                        Json::float(warm_p.decode_ttft_s.mean().unwrap_or(0.0), 4),
                    )
                    .field("sim_prefill_busy_s", Json::float(warm_p.prefill_busy_s, 4))
                    .field(
                        "sim_makespan_s",
                        Json::float(warm_p.makespan.as_secs_f64(), 4),
                    ),
            ),
        )
        .field(
            "coalesced",
            stats_c.fields(
                Json::obj()
                    .field("policy", "ContinuousBatch")
                    .field("max_batch", args.clients)
                    .field("new_tokens", args.long_tokens)
                    .field("tokens_served", warm_c.tokens_served)
                    .field(
                        "per_op_baseline",
                        stats_base.fields(Json::obj().field("span_mode", "PerOp")),
                    )
                    .field(
                        "span_speedup_best",
                        Json::float(stats_c.best / stats_base.best, 2),
                    )
                    .field(
                        "span_speedup_median",
                        Json::float(stats_c.median / stats_base.median, 2),
                    ),
            ),
        )
        .field(
            "montecarlo",
            stats_mc.fields(
                Json::obj()
                    .field("seeds", args.monte_carlo)
                    .field("root_seed", MC_ROOT_SEED)
                    .field("policy", "ContinuousBatch")
                    .field("max_batch", args.clients)
                    .field("arrivals_per_seed", args.clients)
                    .field("new_tokens", args.long_tokens)
                    .field("aggregate_tokens_served", mc_tokens)
                    .field(
                        "sim_throughput_mean",
                        Json::float(warm_mc.throughput.mean, 4),
                    )
                    .field(
                        "sim_throughput_ci95",
                        Json::float(warm_mc.throughput.ci95, 4),
                    )
                    .field(
                        "sim_ttft_p50_mean_s",
                        Json::float(warm_mc.ttft_p50_s.mean, 4),
                    )
                    .field(
                        "sim_ttft_p50_ci95_s",
                        Json::float(warm_mc.ttft_p50_s.ci95, 4),
                    )
                    .field(
                        "sim_ttft_p99_mean_s",
                        Json::float(warm_mc.ttft_p99_s.mean, 4),
                    )
                    .field(
                        "sim_ttft_p99_ci95_s",
                        Json::float(warm_mc.ttft_p99_s.ci95, 4),
                    )
                    .field(
                        "sim_token_latency_p99_mean_s",
                        Json::float(warm_mc.token_latency_p99_s.mean, 4),
                    )
                    .field(
                        "sim_token_latency_p99_ci95_s",
                        Json::float(warm_mc.token_latency_p99_s.ci95, 4),
                    )
                    .field(
                        "mean_batch_occupancy",
                        Json::float(warm_mc.batch_occupancy.mean, 4),
                    )
                    .field(
                        "kv_rejections_mean",
                        Json::float(warm_mc.kv_rejections.mean, 4),
                    ),
            ),
        );
    let doc = doc.field("overload", overload);
    let doc = match profile {
        Some(p) => doc.field("profile", p),
        None => doc,
    };
    let doc = match args.faults {
        Some(age_days) => doc.field(
            "reliability",
            reliability_section(age_days, cfg, &model, &trace, &warm),
        ),
        None => doc,
    };
    let doc = match args.fleet {
        Some(replicas) => doc.field(
            "fleet",
            fleet_section(replicas, args.iters, cfg, &model, args.long_tokens),
        ),
        None => doc,
    };
    std::fs::write(&args.out, format!("{doc}\n")).expect("write benchmark json");
    println!("wrote {}", args.out);
}
