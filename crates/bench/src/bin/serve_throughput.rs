//! Serving hot-path benchmark: simulated-tokens-per-wall-second.
//!
//! Runs the canonical 70B serving scenario (Llama2-70B on
//! Cambricon-LLM-L, a closed-loop fleet of clients) and measures how
//! many *simulated* tokens the engine retires per *wall-clock* second —
//! the number that bounds how large a traffic sweep the simulator can
//! explore. Emits `BENCH_serving.json` so every PR leaves a perf
//! trajectory behind (`just perf`; CI runs one iteration as a smoke
//! test so the binary cannot rot).
//!
//! ```text
//! serve_throughput [--iters N] [--clients N] [--tokens N] [--out PATH]
//! ```

use cambricon_llm::serve::{SchedulePolicy, ServeEngine};
use cambricon_llm::SystemConfig;
use llm_workload::{zoo, ArrivalTrace, RequestShape};
use std::time::Instant;

struct Args {
    iters: usize,
    clients: usize,
    tokens: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        iters: 5,
        clients: 8,
        tokens: 32,
        out: "BENCH_serving.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--iters" => args.iters = value("--iters").parse().expect("--iters: integer"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients: integer"),
            "--tokens" => args.tokens = value("--tokens").parse().expect("--tokens: integer"),
            "--out" => args.out = value("--out"),
            other => {
                eprintln!("unknown flag {other}; see the doc comment for usage");
                std::process::exit(2);
            }
        }
    }
    assert!(args.iters >= 1, "--iters must be at least 1");
    args
}

fn main() {
    let args = parse_args();
    let model = zoo::llama2_70b();
    let cfg = SystemConfig::cambricon_l();
    let shape = RequestShape::new(1000, args.tokens);
    let trace = ArrivalTrace::closed_loop(args.clients, 1, shape);
    let engine = ServeEngine::new(cfg, model.clone());

    println!(
        "serve_throughput: {} on {}, {} closed-loop clients x {} tokens, {} iterations",
        model.name, cfg.name, args.clients, args.tokens, args.iters
    );

    // Untimed warm-up for OS/allocator/branch-predictor state. Note
    // that each `run` builds a fresh `System` (deterministic,
    // independent runs), so the fixed per-run pricing work — the flash
    // DES for each distinct GeMV shape — is inside every timed
    // iteration too; it is part of what a caller pays per run and is
    // identical before and after any hot-path change, so the
    // trajectory stays comparable.
    let warm = engine.run(&trace, SchedulePolicy::RoundRobin);
    let tokens = warm.tokens_served;

    let mut rates = Vec::with_capacity(args.iters);
    for i in 0..args.iters {
        let t0 = Instant::now();
        let rep = engine.run(&trace, SchedulePolicy::RoundRobin);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(rep.tokens_served, tokens, "non-deterministic run");
        let rate = tokens as f64 / wall;
        println!("  iter {i}: {wall:.4} s wall, {rate:.0} simulated tokens/s");
        rates.push(rate);
    }
    let best = rates.iter().cloned().fold(f64::MIN, f64::max);
    let mean = rates.iter().sum::<f64>() / rates.len() as f64;
    println!("best {best:.0} tok/s-wall, mean {mean:.0} tok/s-wall");

    let iters_json = rates
        .iter()
        .map(|r| format!("{r:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"benchmark\": \"serve_throughput\",\n  \"scenario\": {{\n    \"model\": \"{}\",\n    \"config\": \"{}\",\n    \"clients\": {},\n    \"prompt_len\": 1000,\n    \"new_tokens\": {},\n    \"policy\": \"RoundRobin\"\n  }},\n  \"tokens_served\": {},\n  \"iterations\": [{}],\n  \"sim_tokens_per_wall_sec_best\": {:.1},\n  \"sim_tokens_per_wall_sec_mean\": {:.1}\n}}\n",
        model.name, cfg.name, args.clients, args.tokens, tokens, iters_json, best, mean
    );
    std::fs::write(&args.out, json).expect("write benchmark json");
    println!("wrote {}", args.out);
}
