//! Generators for every table and figure in the paper's evaluation.
//!
//! Each `figNN`/`tableN` function runs the relevant simulations and
//! renders an "ours vs paper" text table. The `repro` binary exposes
//! them as subcommands; `EXPERIMENTS.md` is produced from the same
//! output.

use crate::paper;
use crate::table::{num, TextTable};
use accuracy_lab::surrogate;
use baselines::{FlexGen, MlcLlm};
use cambricon_llm::{
    cambricon_bom, cambricon_point, prefill, smartphone_npu_point, table_i, traditional_bom,
    AreaModel, EnergyModel, PrefillMode, Prices, SchedulePolicy, ServeEngine, System, SystemConfig,
};
use flash_sim::CoreParams;
use llm_workload::{intensity, kv, zoo, ArrivalTrace, ModelSpec, Quant, RequestShape};
use outlier_ecc::PageCodec;
use tiling::{Strategy, TileShape};

const SEQ: usize = 1000;

fn all_models() -> Vec<ModelSpec> {
    zoo::all()
}

/// Figure 1(a): arithmetic-intensity comparison.
pub fn fig1a() -> TextTable {
    let mut t = TextTable::new(["Workload / Hardware", "Ops per byte", "Kind"]);
    let m = zoo::opt_6_7b();
    t.row([
        "LLM decode (OPT-6.7B, INT8)".to_string(),
        num(intensity::decode_intensity(&m, Quant::W8A8, 128)),
        "workload (computed)".into(),
    ]);
    t.row([
        "LLM prefill (512-token prompt)".to_string(),
        num(intensity::prefill_intensity(&m, Quant::W8A8, 512)),
        "workload (computed)".into(),
    ]);
    for p in intensity::reference_workloads() {
        t.row([p.name, num(p.ops_per_byte), "workload (literature)".into()]);
    }
    for p in intensity::reference_hardware() {
        t.row([p.name, num(p.ops_per_byte), "hardware (compute/bw)".into()]);
    }
    t
}

/// Figure 1(b): reduction-ratio comparison.
pub fn fig1b() -> TextTable {
    let mut t = TextTable::new(["Scenario", "Reduction ratio"]);
    t.row([
        "LLM GeMV (Llama2-7B smallest matrix)".to_string(),
        num(intensity::min_decode_reduction_ratio(&zoo::llama2_7b())),
    ]);
    for p in intensity::reference_reduction_ratios() {
        t.row([p.name, num(p.ratio)]);
    }
    t
}

/// Figure 3(a): roofline points.
pub fn fig3a() -> TextTable {
    let mut t = TextTable::new(["Point", "Intensity (op/B)", "Attainable GOPS"]);
    let i = intensity::decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 128);
    let a = smartphone_npu_point(i);
    t.row([a.name, num(a.intensity), num(a.gops)]);
    let d = cambricon_llm::roofline::smartphone_dram_point(i);
    t.row([d.name, num(d.intensity), num(d.gops)]);
    for cfg in SystemConfig::paper_variants() {
        let b = cambricon_point(&cfg, i);
        t.row([b.name, num(b.intensity), num(b.gops)]);
    }
    t
}

/// Figure 3(b): OPT-6.7B accuracy vs flash BER, no error correction.
pub fn fig3b(quick: bool) -> TextTable {
    let mut t = TextTable::new(["BER", "HellaSwag", "ARC", "WinoGrande"]);
    let codec = PageCodec::paper();
    let bers: &[f64] = if quick {
        &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
    } else {
        &[1e-6, 1e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 5e-3, 1e-2]
    };
    for &ber in bers {
        let damage = surrogate::damage_at(&codec, ber, false, 42);
        let accs: Vec<String> = surrogate::tasks()
            .iter()
            .map(|task| num(surrogate::accuracy_from_severity(task, damage)))
            .collect();
        t.row([
            format!("{ber:.0e}"),
            accs[0].clone(),
            accs[1].clone(),
            accs[2].clone(),
        ]);
    }
    t
}

/// Figure 9(a): end-to-end decode speed vs FlexGen on OPT models.
pub fn fig9a() -> TextTable {
    let mut t = TextTable::new([
        "Model",
        "Cam-S",
        "(paper)",
        "Cam-M",
        "(paper)",
        "Cam-L",
        "(paper)",
        "Flex-SSD",
        "(paper)",
        "Flex-DRAM",
        "(paper)",
    ]);
    let mut s = System::new(SystemConfig::cambricon_s());
    let mut m = System::new(SystemConfig::cambricon_m());
    let mut l = System::new(SystemConfig::cambricon_l());
    for (i, model) in zoo::opt_family().iter().enumerate() {
        let p = paper::FIG9A[i];
        t.row([
            model.name.to_string(),
            num(s.decode_speed(model, SEQ)),
            num(p.1),
            num(m.decode_speed(model, SEQ)),
            num(p.2),
            num(l.decode_speed(model, SEQ)),
            num(p.3),
            num(FlexGen::ssd().decode_speed(model, SEQ).unwrap()),
            num(p.4),
            num(FlexGen::dram().decode_speed(model, SEQ).unwrap()),
            num(p.5),
        ]);
    }
    t
}

/// Figure 9(b): decode speed vs MLC-LLM on Llama2 models (with OOM).
pub fn fig9b() -> TextTable {
    let mut t = TextTable::new([
        "Model", "Cam-S", "(paper)", "Cam-M", "(paper)", "Cam-L", "(paper)", "MLC-LLM", "(paper)",
    ]);
    let mut s = System::new(SystemConfig::cambricon_s());
    let mut m = System::new(SystemConfig::cambricon_m());
    let mut l = System::new(SystemConfig::cambricon_l());
    for (i, model) in zoo::llama_family().iter().enumerate() {
        let p = paper::FIG9B[i];
        let mlc = match MlcLlm::default().decode_speed(model) {
            Ok(v) => num(v),
            Err(_) => "OOM".into(),
        };
        let mlc_paper = match p.4 {
            Some(v) => num(v),
            None => "OOM".into(),
        };
        t.row([
            model.name.to_string(),
            num(s.decode_speed(model, SEQ)),
            num(p.1),
            num(m.decode_speed(model, SEQ)),
            num(p.2),
            num(l.decode_speed(model, SEQ)),
            num(p.3),
            mlc,
            mlc_paper,
        ]);
    }
    t
}

/// Figure 10: accuracy with vs without the error correction mechanism.
pub fn fig10(quick: bool) -> TextTable {
    let mut t = TextTable::new([
        "BER", "HS w/o", "HS w/", "ARC w/o", "ARC w/", "WG w/o", "WG w/",
    ]);
    let codec = PageCodec::paper();
    let bers: &[f64] = if quick {
        &[1e-5, 2e-4, 1e-3]
    } else {
        &[1e-5, 5e-5, 1e-4, 2e-4, 4e-4, 8e-4, 1e-3]
    };
    for &ber in bers {
        let d_no = surrogate::damage_at(&codec, ber, false, 42);
        let d_ecc = surrogate::damage_at(&codec, ber, true, 42);
        let tasks = surrogate::tasks();
        let mut cells = vec![format!("{ber:.0e}")];
        for task in &tasks {
            cells.push(num(surrogate::accuracy_from_severity(task, d_no)));
            cells.push(num(surrogate::accuracy_from_severity(task, d_ecc)));
        }
        t.row(cells);
    }
    t
}

/// Figure 11: W8A8 vs W4A16 on Cam-S and Cam-L.
pub fn fig11() -> TextTable {
    let mut t = TextTable::new([
        "Model", "S-W8A8", "(paper)", "S-W4A16", "(paper)", "L-W8A8", "(paper)", "L-W4A16",
        "(paper)",
    ]);
    let mut s8 = System::new(SystemConfig::cambricon_s());
    let mut s4 = System::new(SystemConfig::cambricon_s().with_quant(Quant::W4A16));
    let mut l8 = System::new(SystemConfig::cambricon_l());
    let mut l4 = System::new(SystemConfig::cambricon_l().with_quant(Quant::W4A16));
    for (i, model) in all_models().iter().enumerate() {
        let p = paper::FIG11[i];
        t.row([
            model.name.to_string(),
            num(s8.decode_speed(model, SEQ)),
            num(p.1),
            num(s4.decode_speed(model, SEQ)),
            num(p.2),
            num(l8.decode_speed(model, SEQ)),
            num(p.3),
            num(l4.decode_speed(model, SEQ)),
            num(p.4),
        ]);
    }
    t
}

/// Figure 12: read-request-slice ablation (speed + channel usage).
pub fn fig12() -> TextTable {
    let mut t = TextTable::new([
        "Model",
        "tok/s slice",
        "(paper)",
        "tok/s no-slice",
        "(paper)",
        "usage slice",
        "(paper)",
        "usage no-slice",
        "(paper)",
    ]);
    for (i, model) in all_models().iter().enumerate() {
        let p = paper::FIG12[i];
        let mut ours = System::new(SystemConfig::cambricon_s());
        let mut noslice = System::new(SystemConfig::cambricon_s().without_read_slice());
        let a = ours.decode_token(model, SEQ);
        let b = noslice.decode_token(model, SEQ);
        t.row([
            model.name.to_string(),
            num(a.tokens_per_sec),
            num(p.1),
            num(b.tokens_per_sec),
            num(p.2),
            format!("{:.0}%", a.channel_utilization * 100.0),
            format!("{:.0}%", p.3 * 100.0),
            format!("{:.0}%", b.channel_utilization * 100.0),
            format!("{:.0}%", p.4 * 100.0),
        ]);
    }
    t
}

/// Figure 13: tile-size ablation on Cambricon-LLM-S.
pub fn fig13() -> TextTable {
    let mut t = TextTable::new([
        "Model",
        "256x2048 (ours)",
        "(paper)",
        "128x4096",
        "(paper)",
        "4096x128",
        "(paper)",
    ]);
    let shapes = [
        None,
        Some(TileShape {
            h_req: 128,
            w_req: 4096,
        }),
        Some(TileShape {
            h_req: 4096,
            w_req: 128,
        }),
    ];
    for (i, model) in all_models().iter().enumerate() {
        let p = paper::FIG13[i];
        let mut speeds = Vec::new();
        for shape in shapes {
            let cfg = match shape {
                None => SystemConfig::cambricon_s(),
                Some(ts) => SystemConfig::cambricon_s().with_tile(ts),
            };
            let mut sys = System::new(cfg);
            speeds.push(sys.decode_speed(model, SEQ));
        }
        t.row([
            model.name.to_string(),
            num(speeds[0]),
            num(p.1),
            num(speeds[1]),
            num(p.2),
            num(speeds[2]),
            num(p.3),
        ]);
    }
    t
}

/// Figure 14: hardware-aware-tiling ablation.
pub fn fig14() -> TextTable {
    let mut t = TextTable::new([
        "Model",
        "tok/s tiling",
        "(paper)",
        "tok/s flash-only",
        "(paper)",
        "usage tiling",
        "(paper)",
        "usage flash-only",
        "(paper)",
    ]);
    for (i, model) in all_models().iter().enumerate() {
        let p = paper::FIG14[i];
        let mut ours = System::new(SystemConfig::cambricon_s());
        let mut flash_only =
            System::new(SystemConfig::cambricon_s().with_strategy(Strategy::FlashOnly));
        let a = ours.decode_token(model, SEQ);
        let b = flash_only.decode_token(model, SEQ);
        t.row([
            model.name.to_string(),
            num(a.tokens_per_sec),
            num(p.1),
            num(b.tokens_per_sec),
            num(p.2),
            format!("{:.0}%", a.channel_utilization * 100.0),
            format!("{:.0}%", p.3 * 100.0),
            format!("{:.0}%", b.channel_utilization * 100.0),
            format!("{:.0}%", p.4 * 100.0),
        ]);
    }
    t
}

/// Figure 15: scalability in chips-per-channel and channel count.
pub fn fig15() -> TextTable {
    let mut t = TextTable::new([
        "Sweep",
        "Value",
        "OPT-6.7B tok/s",
        "OPT-13B tok/s",
        "OPT-30B tok/s",
        "channel usage",
    ]);
    let models = [zoo::opt_6_7b(), zoo::opt_13b(), zoo::opt_30b()];
    // (a)/(c): 8 channels, 1..128 chips per channel.
    for chips in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let mut speeds = Vec::new();
        let mut usage = 0.0;
        for model in &models {
            let mut sys = System::new(SystemConfig::custom(8, chips));
            let rep = sys.decode_token(model, SEQ);
            usage = rep.channel_utilization;
            speeds.push(num(rep.tokens_per_sec));
        }
        t.row([
            "chips/channel (8 ch)".to_string(),
            chips.to_string(),
            speeds[0].clone(),
            speeds[1].clone(),
            speeds[2].clone(),
            format!("{:.0}%", usage * 100.0),
        ]);
    }
    // (b)/(d): 4 chips per channel, 1..64 channels.
    for channels in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut speeds = Vec::new();
        let mut usage = 0.0;
        for model in &models {
            let mut sys = System::new(SystemConfig::custom(channels, 4));
            let rep = sys.decode_token(model, SEQ);
            usage = rep.channel_utilization;
            speeds.push(num(rep.tokens_per_sec));
        }
        t.row([
            "channels (4 chips)".to_string(),
            channels.to_string(),
            speeds[0].clone(),
            speeds[1].clone(),
            speeds[2].clone(),
            format!("{:.0}%", usage * 100.0),
        ]);
    }
    t
}

/// Figure 16: per-token data transfer and energy, Cam-S vs FlexGen-SSD.
pub fn fig16() -> TextTable {
    let mut t = TextTable::new([
        "Model", "Cam GB", "(paper)", "Flex GB", "(paper)", "Cam J", "(paper)", "Flex J", "(paper)",
    ]);
    let em = EnergyModel::calibrated();
    for (i, model) in all_models().iter().enumerate() {
        let pa = paper::FIG16A[i];
        let pb = paper::FIG16B[i];
        let mut sys = System::new(SystemConfig::cambricon_s());
        let rep = sys.decode_token(model, SEQ);
        let cam_gb = rep.traffic.transferred_bytes() as f64 / 1e9;
        let cam_j = em.cambricon_token_j(&rep.traffic);
        // FlexGen only runs OPT; the paper nevertheless charts Llama2
        // under FlexGen-SSD — reproduce with the same pipeline maths.
        let flex_bytes = 3 * model.weight_bytes(8) + rep.traffic.dram_bytes;
        let flex_gb = flex_bytes as f64 / 1e9;
        let flex_j = em.flexgen_ssd_token_j(
            model.weight_bytes(8),
            rep.traffic.dram_bytes,
            2 * model.param_count(),
        );
        t.row([
            model.name.to_string(),
            num(cam_gb),
            num(pa.1),
            num(flex_gb),
            num(pa.2),
            num(cam_j),
            num(pb.1),
            num(flex_j),
            num(pb.2),
        ]);
    }
    t
}

/// Table I: storage density.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(["Manufacturer", "Type", "Layers", "Gb/mm2"]);
    for e in table_i() {
        t.row([
            e.manufacturer.to_string(),
            e.mem_type.to_string(),
            e.layers.to_string(),
            num(e.density_gb_per_mm2),
        ]);
    }
    t
}

/// Table II: Cambricon-LLM configurations.
pub fn table2() -> TextTable {
    let mut t = TextTable::new([
        "Config",
        "Channels",
        "Chips/ch",
        "Dies/chip",
        "Planes/die",
        "Cores/die",
        "Page",
        "tR",
        "Bus",
    ]);
    for cfg in SystemConfig::paper_variants() {
        let topo = cfg.engine.topology;
        t.row([
            cfg.name.to_string(),
            topo.channels.to_string(),
            topo.chips_per_channel.to_string(),
            topo.dies_per_chip.to_string(),
            topo.planes_per_die.to_string(),
            topo.cores_per_die.to_string(),
            format!("{}KB", topo.page_bytes / 1024),
            format!("{}us", cfg.engine.timing.t_r.as_micros()),
            "1000MT/s x8".to_string(),
        ]);
    }
    t
}

/// Table III: baseline configurations.
pub fn table3() -> TextTable {
    let mut t = TextTable::new(["Baseline", "Quant", "Weights", "Hardware"]);
    t.row([
        "Flexgen-SSD",
        "8bit",
        "NVMe SSD",
        "EPYC 7742 + A100-80G + NVMe + 128GB DRAM",
    ]);
    t.row([
        "Flexgen-DRAM",
        "8bit",
        "DRAM",
        "EPYC 7742 + A100-80G + 128GB DRAM",
    ]);
    t.row(["MLC-LLM", "4bit", "DRAM", "Snapdragon 8 Gen 2"]);
    t
}

/// Table IV: compute-core area and power.
pub fn table4() -> TextTable {
    let mut t = TextTable::new(["Component", "Area um2", "(paper)", "Power uW", "(paper)"]);
    let rep = AreaModel::default().report(&CoreParams::paper());
    for (i, c) in rep.components.iter().enumerate() {
        let p = paper::TABLE4[i];
        t.row([
            c.name.to_string(),
            num(c.area_um2),
            num(p.1),
            num(c.power_uw),
            num(p.2),
        ]);
    }
    let p = paper::TABLE4[3];
    t.row([
        "Total Compute Core".to_string(),
        num(rep.total_area_um2),
        num(p.1),
        num(rep.total_power_uw),
        num(p.2),
    ]);
    t.row([
        "Overhead".to_string(),
        format!("{:.1}%", rep.area_overhead * 100.0),
        "1.2%".to_string(),
        format!("{:.1}%", rep.power_overhead * 100.0),
        "4.5%".to_string(),
    ]);
    t
}

/// Table V: memory BOM cost for 70B inference.
pub fn table5() -> TextTable {
    let mut t = TextTable::new(["Architecture", "DRAM GB", "Flash GB", "Total $", "(paper)"]);
    let prices = Prices::default();
    let kv_gb = kv::kv_cache_bytes(&zoo::llama2_70b(), Quant::W8A8, 4096) as f64 / 1e9;
    let cam = cambricon_bom(80.0, kv_gb.max(2.0), &prices);
    let trad = traditional_bom(80.0, 0.0, &prices);
    t.row([
        "Cambricon-LLM".to_string(),
        num(cam.dram_gb),
        num(cam.flash_gb),
        num(cam.total_usd),
        "43.67".to_string(),
    ]);
    t.row([
        "Traditional".to_string(),
        num(trad.dram_gb),
        num(trad.flash_gb),
        num(trad.total_usd),
        "194.68".to_string(),
    ]);
    t
}

/// Extension: prefill / time-to-first-token model (not a paper figure).
pub fn prefill_table() -> TextTable {
    let mut t = TextTable::new(["Config", "Model", "Prompt", "TTFT (s)", "Bound"]);
    for cfg in SystemConfig::paper_variants() {
        for (model, prompt) in [(zoo::opt_6_7b(), 256usize), (zoo::llama2_70b(), 256)] {
            let r = prefill(&cfg, &model, prompt).expect("prompts here are non-empty");
            t.row([
                cfg.name.to_string(),
                model.name.to_string(),
                prompt.to_string(),
                num(r.ttft_s),
                if r.compute_bound { "compute" } else { "stream" }.to_string(),
            ]);
        }
    }
    t
}

/// Extension: multi-request serving study (not a paper figure).
///
/// Closed-loop concurrency ladder on Cambricon-LLM-S serving OPT-6.7B:
/// aggregate throughput, p50/p99 token latency, and the latency
/// slowdown vs a single in-flight request. Sub-linear slowdown is the
/// flash/NPU phase overlap the serving engine exploits; the cache
/// columns show how far the fleet amortizes pricing — the GeMV cache
/// keeps the whole ladder at one flash simulation per distinct weight
/// shape, and the op-cost cache turns all repeated op pricings into
/// recalls. Each rung is shown under round-robin interleaving and under
/// continuous batching, whose occupancy and KV-rejection columns
/// surface the batched scheduler's admission behaviour (one weight
/// stream per batch step is why its throughput pulls ahead as the
/// rung widens).
pub fn serving_table() -> TextTable {
    let mut t = TextTable::new([
        "Clients",
        "Policy",
        "tok/s",
        "p50 ms/tok",
        "p99 ms/tok",
        "TTFT p50 (s)",
        "Slowdown",
        "GeMV hit/miss",
        "OpCost hit/miss",
        "Occupancy",
        "KV-rej",
    ]);
    let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
    // The same device with the prefill phase simulated: TTFT becomes
    // arrival-relative (queue wait + prompt prefill + first token), and
    // each joining prompt's prefill contends with in-flight decodes.
    let with_prefill = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
        .with_prefill(PrefillMode::Modeled);
    let shape = RequestShape::new(SEQ, 4);
    let mut single = 0.0;
    for clients in [1usize, 2, 4] {
        let trace = ArrivalTrace::closed_loop(clients, 1, shape);
        for (name, engine, policy) in [
            ("round-robin", &engine, SchedulePolicy::RoundRobin),
            ("rr+prefill", &with_prefill, SchedulePolicy::RoundRobin),
            (
                "cont-batch",
                &engine,
                SchedulePolicy::ContinuousBatch { max_batch: clients },
            ),
        ] {
            let rep = engine.run(&trace, policy);
            if clients == 1 && name == "round-robin" {
                single = rep.mean_token_latency_s;
            }
            t.row([
                clients.to_string(),
                name.to_string(),
                num(rep.tokens_per_sec),
                num(rep.p50_token_latency_s * 1e3),
                num(rep.p99_token_latency_s * 1e3),
                num(rep.ttft_p50_s),
                format!("{:.2}x", rep.mean_token_latency_s / single),
                format!("{}/{}", rep.gemv_cache_hits, rep.gemv_cache_misses),
                format!("{}/{}", rep.op_cost_cache_hits, rep.op_cost_cache_misses),
                format!(
                    "{:.2} (peak {})",
                    rep.mean_batch_occupancy, rep.peak_batch_occupancy
                ),
                rep.kv_rejections.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_table_shows_sublinear_slowdown() {
        let t = serving_table();
        assert_eq!(t.len(), 9); // round-robin + rr+prefill + cont-batch per rung
        let rendered = t.render();
        assert!(rendered.contains("1.00x"), "{rendered}");
        assert!(rendered.contains("cont-batch"), "{rendered}");
        assert!(rendered.contains("rr+prefill"), "{rendered}");
        assert!(rendered.contains("TTFT"), "{rendered}");
        assert!(rendered.contains("peak"), "{rendered}");
    }

    #[test]
    fn fast_figures_render() {
        for t in [
            fig1a(),
            fig1b(),
            fig3a(),
            table1(),
            table2(),
            table3(),
            table4(),
            table5(),
        ] {
            assert!(!t.is_empty());
            assert!(t.render().lines().count() >= 3);
        }
    }

    #[test]
    fn fig9a_has_four_models() {
        let t = fig9a();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn fig9b_marks_oom() {
        let s = fig9b().render();
        assert!(s.contains("OOM"), "{s}");
    }

    #[test]
    fn fig12_and_14_render_percentages() {
        let s = fig12().render();
        assert!(s.contains('%'));
        let s = fig14().render();
        assert!(s.contains('%'));
    }

    #[test]
    fn fig15_covers_both_sweeps() {
        let t = fig15();
        assert_eq!(t.len(), 15); // 8 chip points + 7 channel points
    }

    #[test]
    fn quick_accuracy_figures_render() {
        assert!(fig3b(true).len() >= 4);
        assert!(fig10(true).len() >= 3);
    }

    #[test]
    fn fig16_and_fig11_and_fig13_render() {
        assert_eq!(fig16().len(), 7);
        assert_eq!(fig11().len(), 7);
        assert_eq!(fig13().len(), 7);
        assert_eq!(prefill_table().len(), 6);
    }
}
