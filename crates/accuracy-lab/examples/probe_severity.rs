//! One-off calibration probe: prints measured severities.
use accuracy_lab::surrogate::severity_at;
use outlier_ecc::PageCodec;

fn main() {
    let c = PageCodec::paper();
    for ber in [1e-6, 1e-5, 5e-5, 1e-4, 2e-4, 4e-4, 8e-4, 1e-3, 2e-3, 1e-2] {
        let no = severity_at(&c, ber, false, 7);
        let yes = severity_at(&c, ber, true, 7);
        println!(
            "ber={ber:.0e} no_ecc={no:.5} ecc={yes:.5} gain={:.2}",
            no / yes.max(1e-12)
        );
    }
}
