//! Calibrated surrogate for LLM task accuracy under weight corruption
//! (Figures 3(b) and 10).
//!
//! We cannot evaluate OPT-6.7B on HellaSwag/ARC/WinoGrande in this
//! environment, so the figure pipeline is split in two faithful halves:
//!
//! 1. **Measured corruption** — synthetic pages with an LLM-like weight
//!    distribution (narrow Gaussian bulk + ~0.5 % large-magnitude
//!    outliers, the §VI premise) go through the *real* bit-flip injector
//!    and the *real* ECC codec; we measure the surviving RMS weight
//!    error ([`severity_at`]).
//! 2. **Surrogate mapping** — a two-parameter Hill curve maps severity
//!    to task accuracy, calibrated against the paper's anchor points
//!    (degradation onset at BER ≈ 1e-5; ~40 % of original accuracy at
//!    2e-4 without ECC; 92–95 % retained at 2e-4 with ECC).
//!
//! The ECC's benefit is therefore *measured*, not assumed — only the
//! final severity→accuracy translation is calibrated.

use outlier_ecc::{measure, BitFlipModel, EncodedPage, PageCodec};
use sim_core::SplitMix64;

/// Hill-curve midpoint damage (calibrated; see module docs).
pub const DAMAGE_MID: f64 = 0.0107;
/// Hill exponent (calibrated).
pub const HILL_EXP: f64 = 3.2;
/// Weight of the mid-value flip-rate term in the damage metric.
///
/// §VIII-D explains that beyond ~8e-4 even the ECC-protected model
/// collapses because of "extensive flipping of these intermediate and
/// small values" that the outlier mechanism deliberately leaves
/// unprotected. RMS severity alone underweights that failure mode (many
/// small errors), so the damage metric adds the per-byte flip rate with
/// this calibrated weight.
pub const MID_FLIP_WEIGHT: f64 = 2.1;

/// One evaluation task with its clean baseline for OPT-6.7B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Clean OPT-6.7B accuracy (percent).
    pub base_acc: f64,
    /// Chance-level accuracy (percent).
    pub chance: f64,
}

/// The three datasets of Figures 3(b)/10 with approximate published
/// OPT-6.7B baselines.
pub fn tasks() -> [TaskSpec; 3] {
    [
        TaskSpec {
            name: "HellaSwag",
            base_acc: 57.0,
            chance: 25.0,
        },
        TaskSpec {
            name: "ARC",
            base_acc: 43.0,
            chance: 25.0,
        },
        TaskSpec {
            name: "WinoGrande",
            base_acc: 65.0,
            chance: 50.0,
        },
    ]
}

/// Generates one page of LLM-like INT8 weights: Gaussian bulk (σ ≈ 8)
/// plus ~0.5 % outliers of magnitude 80–127.
pub fn llm_like_page(elems: usize, seed: u64) -> Vec<i8> {
    // simlint: allow(D1) — synthetic-weight generator; one stream per page seed, offline
    let mut rng = SplitMix64::new(seed);
    (0..elems)
        .map(|_| {
            if rng.chance(0.005) {
                // simlint: allow(D4) — outlier magnitudes for synthetic weights, outside the serving replay path
                let mag = 80.0 + rng.next_f64() * 47.0;
                (if rng.chance(0.5) { mag } else { -mag }) as i8
            } else {
                (rng.normal() * 8.0).clamp(-70.0, 70.0) as i8
            }
        })
        .collect()
}

/// Measures the post-correction severity (normalized RMS weight error)
/// at a bit error rate, with or without the ECC.
///
/// Pages are encoded once and corrupted across enough trials that at
/// least ~100 bit flips are observed, so low BERs are not noise-limited.
pub fn severity_at(codec: &PageCodec, ber: f64, with_ecc: bool, seed: u64) -> f64 {
    if ber <= 0.0 {
        return 0.0;
    }
    let pages = 2usize;
    let bits_per_page = (codec.elems * 8 + codec.spare_bytes * 8) as f64;
    let flips_per_trial = bits_per_page * ber * pages as f64;
    let trials = ((120.0 / flips_per_trial).ceil() as usize).clamp(1, 200);

    let mut originals = Vec::new();
    let mut encoded = Vec::new();
    for p in 0..pages {
        let w = llm_like_page(codec.elems, seed ^ (p as u64 * 0x5851_F42D));
        if with_ecc {
            encoded.push(codec.encode(&w));
        } else {
            encoded.push(EncodedPage {
                data: w.clone(),
                spare: Vec::new(),
            });
        }
        originals.push(w);
    }

    let mut sum_sq = 0.0;
    let mut n = 0u64;
    for t in 0..trials {
        for p in 0..pages {
            let mut page = encoded[p].clone();
            let mut injector = BitFlipModel::new(
                ber,
                seed ^ ((t * pages + p) as u64).wrapping_mul(0x2545_F491),
            );
            injector.corrupt_page(&mut page);
            let decoded = if with_ecc {
                codec.decode(&page)
            } else {
                page.data
            };
            let r = measure(&originals[p], &decoded, codec);
            sum_sq += r.rms_err * r.rms_err * r.elems as f64;
            n += r.elems as u64;
        }
    }
    (sum_sq / n as f64).sqrt() / 127.0
}

/// Probability that an INT8 weight byte has at least one flipped bit.
pub fn byte_flip_rate(ber: f64) -> f64 {
    1.0 - (1.0 - ber).powi(8)
}

/// The scalar damage metric: measured RMS severity plus the calibrated
/// mid-value flip-rate term (see [`MID_FLIP_WEIGHT`]).
pub fn damage_at(codec: &PageCodec, ber: f64, with_ecc: bool, seed: u64) -> f64 {
    severity_at(codec, ber, with_ecc, seed) + MID_FLIP_WEIGHT * byte_flip_rate(ber)
}

/// Maps a damage value to task accuracy via the calibrated Hill curve.
pub fn accuracy_from_severity(task: &TaskSpec, damage: f64) -> f64 {
    let frac = 1.0 / (1.0 + (damage / DAMAGE_MID).powf(HILL_EXP));
    task.chance + (task.base_acc - task.chance) * frac
}

/// Full pipeline: accuracy of `task` at `ber`, with or without ECC.
pub fn accuracy_at(codec: &PageCodec, task: &TaskSpec, ber: f64, with_ecc: bool, seed: u64) -> f64 {
    accuracy_from_severity(task, damage_at(codec, ber, with_ecc, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_zero_at_zero_ber() {
        let c = PageCodec::paper();
        assert_eq!(severity_at(&c, 0.0, true, 1), 0.0);
        for t in tasks() {
            assert!((accuracy_from_severity(&t, 0.0) - t.base_acc).abs() < 1e-9);
        }
    }

    #[test]
    fn severity_scales_roughly_sqrt_in_ber_without_ecc() {
        let c = PageCodec::paper();
        let s1 = severity_at(&c, 1e-4, false, 3);
        let s2 = severity_at(&c, 4e-4, false, 3);
        let ratio = s2 / s1;
        assert!((1.5..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn ecc_reduces_severity_multiple_times_at_2e4() {
        // This is the measured mechanism behind the Figure 10 gap.
        let c = PageCodec::paper();
        let without = severity_at(&c, 2e-4, false, 5);
        let with = severity_at(&c, 2e-4, true, 5);
        let gain = without / with;
        assert!(gain > 2.0, "gain {gain}");
    }

    #[test]
    fn paper_anchor_points_hold() {
        let c = PageCodec::paper();
        let hs = tasks()[0];
        // Without ECC at 2e-4 the paper reports ~40% of the original
        // level; our surrogate floors at chance (25/57 ≈ 0.44 for
        // HellaSwag), so accept the 0.40–0.62 band.
        let a = accuracy_at(&c, &hs, 2e-4, false, 7);
        let frac = a / hs.base_acc;
        assert!((0.40..0.62).contains(&frac), "no-ECC frac {frac}");
        // With ECC at 2e-4: ≥ ~88% of original retained.
        let b = accuracy_at(&c, &hs, 2e-4, true, 7);
        let frac_ecc = b / hs.base_acc;
        assert!(frac_ecc > 0.85, "ECC frac {frac_ecc}");
        // Onset: at 1e-5 without ECC accuracy is still ≥ 88% of base.
        let on = accuracy_at(&c, &hs, 1e-5, false, 7);
        assert!(on / hs.base_acc > 0.88, "onset {}", on / hs.base_acc);
        // Protection limit (§VIII-D): with ECC the model still collapses
        // beyond ~8e-4 because mid-range values are unprotected.
        let limit = accuracy_at(&c, &hs, 1.5e-3, true, 7);
        assert!(limit / hs.base_acc < 0.75, "limit {}", limit / hs.base_acc);
    }

    #[test]
    fn accuracy_monotone_decreasing_in_ber() {
        let c = PageCodec::paper();
        let hs = tasks()[0];
        let accs: Vec<f64> = [1e-5, 1e-4, 1e-3, 1e-2]
            .iter()
            .map(|&b| accuracy_at(&c, &hs, b, false, 9))
            .collect();
        for w in accs.windows(2) {
            assert!(w[0] >= w[1] - 1.0, "{accs:?}");
        }
        // Floor is chance level.
        assert!(accs[3] >= hs.chance - 1e-9);
        assert!(accs[3] < hs.chance + 8.0);
    }

    #[test]
    fn ecc_curve_dominates_no_ecc_curve() {
        let c = PageCodec::paper();
        for t in tasks() {
            for ber in [1e-5, 1e-4, 5e-4, 1e-3] {
                let w = accuracy_at(&c, &t, ber, true, 11);
                let wo = accuracy_at(&c, &t, ber, false, 11);
                assert!(w >= wo - 1.0, "{} at {ber}: {w} vs {wo}", t.name);
            }
        }
    }
}
