//! # accuracy-lab — accuracy experiments under flash errors
//!
//! Reproduces the accuracy side of the paper (Figures 3(b) and 10)
//! without access to OPT-6.7B or GPU inference:
//!
//! * [`mlp`] / [`storage`] — a *real* INT8-quantized classifier trained
//!   in-repo whose weights round-trip through simulated flash pages with
//!   bit-flip injection and the bit-exact outlier ECC — the full
//!   store → corrupt → correct → infer lifecycle;
//! * [`surrogate`] — measured weight-corruption severity on LLM-like
//!   weight distributions mapped to HellaSwag/ARC/WinoGrande accuracy
//!   through a calibrated curve (substitution documented in DESIGN.md).
//!
//! ## Example
//!
//! ```
//! use accuracy_lab::{data::gaussian_blobs, mlp::{Mlp, MlpConfig, QuantMlp}};
//!
//! let cfg = MlpConfig::default();
//! let train = gaussian_blobs(1500, cfg.input, cfg.classes, 0.6, 1);
//! let test = gaussian_blobs(500, cfg.input, cfg.classes, 0.6, 2);
//! let net = Mlp::train(cfg, &train);
//! let q = QuantMlp::quantize(&net);
//! assert!(q.accuracy(&test) > 0.8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod data;
pub mod mlp;
pub mod storage;
pub mod surrogate;

pub use data::{gaussian_blobs, Dataset};
pub use mlp::{Mlp, MlpConfig, QuantMlp};
pub use storage::{mean_stored_accuracy, stored_accuracy, TrialResult};
pub use surrogate::{accuracy_at, accuracy_from_severity, severity_at, tasks, TaskSpec};
