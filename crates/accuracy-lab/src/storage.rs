//! End-to-end flash round-trip for the proxy model.
//!
//! The quantized MLP's weights are packed into simulated flash pages,
//! bit-flip errors are injected at a chosen BER (into data *and* spare
//! areas), the on-die Error Correction Unit decodes each page, and the
//! surviving weights are loaded back into the model for evaluation —
//! exactly the lifecycle a Cambricon-LLM deployment subjects weights to.

use crate::data::Dataset;
use crate::mlp::QuantMlp;
use outlier_ecc::{BitFlipModel, EncodedPage, PageCodec};

/// Result of one stored-inference trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Accuracy after the flash round-trip.
    pub accuracy: f64,
    /// Weights that differ from the originals after decode.
    pub weights_changed: usize,
    /// Total weights.
    pub weights_total: usize,
}

/// Stores the model's weights through simulated flash at `ber`,
/// with or without the ECC, and evaluates on `test`.
pub fn stored_accuracy(
    model: &QuantMlp,
    test: &Dataset,
    codec: &PageCodec,
    ber: f64,
    seed: u64,
    with_ecc: bool,
) -> TrialResult {
    let flat = model.weights_flat();
    let total = flat.len();
    let mut restored: Vec<i8> = Vec::with_capacity(total);
    let mut injector = BitFlipModel::new(ber, seed);

    for (pi, chunk) in flat.chunks(codec.elems).enumerate() {
        // Pad the final partial page with zeros (real layouts pad too).
        let mut page_weights = chunk.to_vec();
        page_weights.resize(codec.elems, 0);
        let decoded = if with_ecc {
            let mut page = codec.encode(&page_weights);
            injector.corrupt_page(&mut page);
            codec.decode(&page)
        } else {
            let mut page = EncodedPage {
                data: page_weights.clone(),
                spare: Vec::new(),
            };
            injector.corrupt_page(&mut page);
            page.data
        };
        let _ = pi;
        restored.extend_from_slice(&decoded[..chunk.len()]);
    }

    let changed = restored.iter().zip(&flat).filter(|(a, b)| a != b).count();
    let rebuilt = model.with_weights(&restored);
    TrialResult {
        accuracy: rebuilt.accuracy(test),
        weights_changed: changed,
        weights_total: total,
    }
}

/// Averages `trials` independent injections.
pub fn mean_stored_accuracy(
    model: &QuantMlp,
    test: &Dataset,
    codec: &PageCodec,
    ber: f64,
    trials: usize,
    base_seed: u64,
    with_ecc: bool,
) -> f64 {
    assert!(trials > 0);
    (0..trials)
        .map(|t| {
            stored_accuracy(
                model,
                test,
                codec,
                ber,
                base_seed.wrapping_add(t as u64 * 0x9E37_79B9),
                with_ecc,
            )
            .accuracy
        })
        .sum::<f64>()
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::gaussian_blobs;
    use crate::mlp::{Mlp, MlpConfig};

    fn setup() -> (QuantMlp, Dataset, PageCodec) {
        let cfg = MlpConfig::default();
        let train = gaussian_blobs(2000, cfg.input, cfg.classes, 0.6, 11);
        let test = gaussian_blobs(600, cfg.input, cfg.classes, 0.6, 22);
        let net = Mlp::train(cfg, &train);
        let q = QuantMlp::quantize(&net);
        // Small pages so the ~1.3K weights span one page exactly.
        let codec = PageCodec {
            elems: 4096,
            protect_fraction: 0.01,
            value_copies: 2,
            spare_bytes: 512,
        };
        (q, test, codec)
    }

    #[test]
    fn zero_ber_is_lossless() {
        let (q, test, codec) = setup();
        let r = stored_accuracy(&q, &test, &codec, 0.0, 1, true);
        assert_eq!(r.weights_changed, 0);
        assert_eq!(r.accuracy, q.accuracy(&test));
    }

    #[test]
    fn ecc_beats_no_ecc_at_high_ber() {
        // The proxy model has ~1.3K weights, so meaningful corruption
        // needs a high BER (2e-2 ≈ 200 expected flips). The ECC clamps
        // the catastrophic high-bit flips, so it must retain visibly
        // more accuracy than the raw arm on average.
        let (q, test, codec) = setup();
        let with = mean_stored_accuracy(&q, &test, &codec, 2e-2, 8, 42, true);
        let without = mean_stored_accuracy(&q, &test, &codec, 2e-2, 8, 42, false);
        assert!(
            with >= without - 0.01,
            "ECC {with} should not lose to raw {without}"
        );
        // And the clean model must beat the raw-corrupted one clearly.
        assert!(q.accuracy(&test) > without);
    }

    #[test]
    fn accuracy_degrades_monotonically_in_expectation() {
        let (q, test, codec) = setup();
        let clean = q.accuracy(&test);
        let heavy = mean_stored_accuracy(&q, &test, &codec, 3e-2, 4, 7, false);
        assert!(heavy < clean, "heavy {heavy} vs clean {clean}");
    }

    #[test]
    fn weight_change_counts_scale_with_ber() {
        let (q, test, codec) = setup();
        let lo = stored_accuracy(&q, &test, &codec, 1e-4, 3, false);
        let hi = stored_accuracy(&q, &test, &codec, 1e-2, 3, false);
        assert!(hi.weights_changed > lo.weights_changed);
        assert_eq!(lo.weights_total, q.weights_flat().len());
    }
}
