//! Synthetic classification datasets for the proxy model.
//!
//! We cannot run OPT-6.7B on HellaSwag here (see `DESIGN.md` §4); instead
//! the error-correction pipeline is exercised end-to-end on a small
//! classifier trained on Gaussian-blob data. Real trained weights have
//! genuine outliers, which is the property the paper's ECC exploits.

use sim_core::SplitMix64;

/// A labelled dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature vectors, all of equal dimension.
    pub xs: Vec<Vec<f32>>,
    /// Class labels in `0..classes`.
    pub ys: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature dimension.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn dim(&self) -> usize {
        self.xs.first().expect("empty dataset").len()
    }
}

/// Generates Gaussian blobs: one anisotropic cluster per class with
/// partially overlapping means, so the task is learnable but not
/// trivial (Bayes accuracy well below 100%).
pub fn gaussian_blobs(
    samples: usize,
    dim: usize,
    classes: usize,
    spread: f32,
    seed: u64,
) -> Dataset {
    assert!(classes >= 2 && dim >= 1 && samples >= classes);
    // simlint: allow(D1) — synthetic-dataset generator; one stream per dataset seed, offline
    let mut rng = SplitMix64::new(seed);
    // Class means on a scaled simplex-ish arrangement.
    let means: Vec<Vec<f32>> = (0..classes)
        .map(|c| {
            (0..dim)
                .map(|d| {
                    let phase = (c * 31 + d * 7) % 17;
                    2.0 * ((phase as f32 / 17.0) - 0.5) * (1.0 + (c as f32) * 0.3)
                })
                .collect()
        })
        .collect();
    let mut xs = Vec::with_capacity(samples);
    let mut ys = Vec::with_capacity(samples);
    for i in 0..samples {
        let c = i % classes;
        let x: Vec<f32> = (0..dim)
            .map(|d| means[c][d] + spread * rng.normal() as f32)
            .collect();
        xs.push(x);
        ys.push(c);
    }
    Dataset { xs, ys, classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let d = gaussian_blobs(100, 8, 4, 0.5, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim(), 8);
        assert_eq!(d.classes, 4);
        assert!(d.ys.iter().all(|&y| y < 4));
        assert!(!d.is_empty());
    }

    #[test]
    fn classes_are_balanced() {
        let d = gaussian_blobs(400, 4, 4, 0.5, 2);
        for c in 0..4 {
            let n = d.ys.iter().filter(|&&y| y == c).count();
            assert_eq!(n, 100);
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = gaussian_blobs(50, 4, 2, 0.3, 9);
        let b = gaussian_blobs(50, 4, 2, 0.3, 9);
        assert_eq!(a.xs, b.xs);
    }

    #[test]
    fn spread_controls_overlap() {
        // Tight blobs → features close to means; loose blobs → far.
        let tight = gaussian_blobs(200, 4, 2, 0.1, 3);
        let loose = gaussian_blobs(200, 4, 2, 2.0, 3);
        let var = |d: &Dataset| {
            d.xs.iter()
                .flat_map(|x| x.iter())
                .map(|v| (*v as f64).powi(2))
                .sum::<f64>()
                / (d.len() * d.dim()) as f64
        };
        assert!(var(&loose) > var(&tight));
    }
}
