//! A small MLP classifier, trained in-repo, then quantized to INT8.
//!
//! This is the proxy model whose weights live in simulated flash pages
//! for the end-to-end ECC experiments: train (f32 SGD) → quantize
//! (per-tensor symmetric INT8, as SmoothQuant produces) → store →
//! corrupt → correct → evaluate.

#![allow(clippy::needless_range_loop)] // index math mirrors the row-major weight layout

use crate::data::Dataset;
use sim_core::SplitMix64;

/// MLP hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MlpConfig {
    /// Input feature dimension.
    pub input: usize,
    /// Hidden layer width.
    pub hidden: usize,
    /// Output classes.
    pub classes: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            input: 16,
            hidden: 64,
            classes: 4,
            epochs: 12,
            lr: 0.05,
            seed: 0xACC,
        }
    }
}

/// A trained two-layer MLP (ReLU hidden, softmax output).
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Configuration used.
    pub cfg: MlpConfig,
    /// Hidden weights, `hidden × input`, row-major.
    pub w1: Vec<f32>,
    /// Hidden biases.
    pub b1: Vec<f32>,
    /// Output weights, `classes × hidden`, row-major.
    pub w2: Vec<f32>,
    /// Output biases.
    pub b2: Vec<f32>,
}

impl Mlp {
    /// Trains an MLP on `train` data with plain SGD + cross-entropy.
    ///
    /// # Panics
    ///
    /// Panics if the dataset shape disagrees with the config.
    pub fn train(cfg: MlpConfig, train: &Dataset) -> Mlp {
        assert_eq!(train.dim(), cfg.input, "dataset dim mismatch");
        assert_eq!(train.classes, cfg.classes, "class count mismatch");
        // simlint: allow(D1) — weight-init stream from the training config's own seed, offline
        let mut rng = SplitMix64::new(cfg.seed);
        let mut init = |n: usize, fan_in: usize| -> Vec<f32> {
            let scale = (2.0 / fan_in as f64).sqrt();
            (0..n).map(|_| (rng.normal() * scale) as f32).collect()
        };
        let mut net = Mlp {
            cfg,
            w1: init(cfg.hidden * cfg.input, cfg.input),
            b1: vec![0.0; cfg.hidden],
            w2: init(cfg.classes * cfg.hidden, cfg.hidden),
            b2: vec![0.0; cfg.classes],
        };
        let n = train.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..cfg.epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                order.swap(i, j);
            }
            for &i in &order {
                net.sgd_step(&train.xs[i], train.ys[i]);
            }
        }
        net
    }

    fn sgd_step(&mut self, x: &[f32], y: usize) {
        let (h, p) = self.forward_f32(x);
        let lr = self.cfg.lr;
        // Output layer gradients: dL/dz2 = p - onehot(y).
        let mut dz2 = p;
        dz2[y] -= 1.0;
        // Hidden grads.
        let mut dh = vec![0.0f32; self.cfg.hidden];
        for c in 0..self.cfg.classes {
            for j in 0..self.cfg.hidden {
                dh[j] += dz2[c] * self.w2[c * self.cfg.hidden + j];
            }
        }
        for c in 0..self.cfg.classes {
            for j in 0..self.cfg.hidden {
                self.w2[c * self.cfg.hidden + j] -= lr * dz2[c] * h[j];
            }
            self.b2[c] -= lr * dz2[c];
        }
        for j in 0..self.cfg.hidden {
            if h[j] <= 0.0 {
                continue; // ReLU gate
            }
            for d in 0..self.cfg.input {
                self.w1[j * self.cfg.input + d] -= lr * dh[j] * x[d];
            }
            self.b1[j] -= lr * dh[j];
        }
    }

    /// Forward pass returning hidden activations and class probabilities.
    fn forward_f32(&self, x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let h: Vec<f32> = (0..self.cfg.hidden)
            .map(|j| {
                let mut z = self.b1[j];
                for d in 0..self.cfg.input {
                    z += self.w1[j * self.cfg.input + d] * x[d];
                }
                z.max(0.0)
            })
            .collect();
        let mut logits: Vec<f32> = (0..self.cfg.classes)
            .map(|c| {
                let mut z = self.b2[c];
                for j in 0..self.cfg.hidden {
                    z += self.w2[c * self.cfg.hidden + j] * h[j];
                }
                z
            })
            .collect();
        let m = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for l in logits.iter_mut() {
            *l = (*l - m).exp();
            sum += *l;
        }
        for l in logits.iter_mut() {
            *l /= sum;
        }
        (h, logits)
    }

    /// Predicted class for `x`.
    pub fn predict(&self, x: &[f32]) -> usize {
        let (_, p) = self.forward_f32(x);
        argmax(&p)
    }

    /// Classification accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .xs
            .iter()
            .zip(&data.ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }
}

/// An INT8-quantized MLP (per-tensor symmetric scales; biases stay f32,
/// as they are tiny and stored in on-chip SRAM in real deployments).
#[derive(Debug, Clone)]
pub struct QuantMlp {
    /// Configuration (shapes).
    pub cfg: MlpConfig,
    /// Quantized hidden weights.
    pub q1: Vec<i8>,
    /// Scale: `w1 ≈ q1 × s1`.
    pub s1: f32,
    /// Quantized output weights.
    pub q2: Vec<i8>,
    /// Scale for `q2`.
    pub s2: f32,
    /// Hidden biases (f32).
    pub b1: Vec<f32>,
    /// Output biases (f32).
    pub b2: Vec<f32>,
}

impl QuantMlp {
    /// Quantizes a trained MLP.
    pub fn quantize(net: &Mlp) -> QuantMlp {
        let (q1, s1) = quantize_tensor(&net.w1);
        let (q2, s2) = quantize_tensor(&net.w2);
        QuantMlp {
            cfg: net.cfg,
            q1,
            s1,
            q2,
            s2,
            b1: net.b1.clone(),
            b2: net.b2.clone(),
        }
    }

    /// All weights as one flat INT8 slice (`w1` then `w2`) — the layout
    /// stored into flash pages.
    pub fn weights_flat(&self) -> Vec<i8> {
        let mut v = self.q1.clone();
        v.extend_from_slice(&self.q2);
        v
    }

    /// Rebuilds the model with weights replaced by `flat` (e.g. after a
    /// flash round-trip).
    ///
    /// # Panics
    ///
    /// Panics if `flat` has the wrong length.
    pub fn with_weights(&self, flat: &[i8]) -> QuantMlp {
        assert_eq!(flat.len(), self.q1.len() + self.q2.len(), "wrong length");
        let mut out = self.clone();
        out.q1 = flat[..self.q1.len()].to_vec();
        out.q2 = flat[self.q1.len()..].to_vec();
        out
    }

    /// Predicted class using dequantized weights.
    pub fn predict(&self, x: &[f32]) -> usize {
        let cfg = &self.cfg;
        let h: Vec<f32> = (0..cfg.hidden)
            .map(|j| {
                let mut z = self.b1[j];
                for d in 0..cfg.input {
                    z += self.q1[j * cfg.input + d] as f32 * self.s1 * x[d];
                }
                z.max(0.0)
            })
            .collect();
        let logits: Vec<f32> = (0..cfg.classes)
            .map(|c| {
                let mut z = self.b2[c];
                for j in 0..cfg.hidden {
                    z += self.q2[c * cfg.hidden + j] as f32 * self.s2 * h[j];
                }
                z
            })
            .collect();
        argmax(&logits)
    }

    /// Accuracy on a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let correct = data
            .xs
            .iter()
            .zip(&data.ys)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / data.len() as f64
    }
}

fn quantize_tensor(w: &[f32]) -> (Vec<i8>, f32) {
    let max = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
    let q = w
        .iter()
        .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, x) in v.iter().enumerate() {
        if *x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::gaussian_blobs;

    fn trained() -> (Mlp, Dataset, Dataset) {
        let cfg = MlpConfig::default();
        let train = gaussian_blobs(2000, cfg.input, cfg.classes, 0.6, 11);
        let test = gaussian_blobs(800, cfg.input, cfg.classes, 0.6, 22);
        (Mlp::train(cfg, &train), train, test)
    }

    #[test]
    fn training_beats_chance_comfortably() {
        let (net, _, test) = trained();
        let acc = net.accuracy(&test);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn quantization_costs_little_accuracy() {
        let (net, _, test) = trained();
        let q = QuantMlp::quantize(&net);
        let fa = net.accuracy(&test);
        let qa = q.accuracy(&test);
        assert!(fa - qa < 0.05, "f32 {fa} vs int8 {qa}");
    }

    #[test]
    fn quantized_weights_have_outliers() {
        // The premise of the paper's ECC: a small fraction of weights is
        // much larger than the bulk. Verify the trained net shows this.
        let (net, _, _) = trained();
        let q = QuantMlp::quantize(&net);
        let flat = q.weights_flat();
        let mut mags: Vec<u8> = flat.iter().map(|v| v.unsigned_abs()).collect();
        mags.sort_unstable_by(|a, b| b.cmp(a));
        let p99 = mags[flat.len() / 100];
        let median = mags[flat.len() / 2];
        assert!(
            p99 as f32 >= 3.0 * median.max(1) as f32,
            "p99 {p99} vs median {median}"
        );
    }

    #[test]
    fn weight_roundtrip_preserves_model() {
        let (net, _, test) = trained();
        let q = QuantMlp::quantize(&net);
        let rebuilt = q.with_weights(&q.weights_flat());
        assert_eq!(q.accuracy(&test), rebuilt.accuracy(&test));
    }

    #[test]
    fn corrupting_weights_hurts() {
        let (net, _, test) = trained();
        let q = QuantMlp::quantize(&net);
        let mut flat = q.weights_flat();
        // Saturate 10% of weights.
        for i in (0..flat.len()).step_by(10) {
            flat[i] = i8::MAX;
        }
        let bad = q.with_weights(&flat);
        assert!(bad.accuracy(&test) < q.accuracy(&test) - 0.1);
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = MlpConfig::default();
        let train = gaussian_blobs(500, cfg.input, cfg.classes, 0.6, 5);
        let a = Mlp::train(cfg, &train);
        let b = Mlp::train(cfg, &train);
        assert_eq!(a.w1, b.w1);
        assert_eq!(a.w2, b.w2);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn with_weights_rejects_bad_length() {
        let (net, _, _) = trained();
        let q = QuantMlp::quantize(&net);
        q.with_weights(&[0i8; 3]);
    }
}
