//! Diagnostic: per-GeMV tiling plans and simulated latencies for
//! Llama2-70B on Cambricon-LLM-L — the breakdown behind the headline
//! 3.4 tokens/s.
//!
//! ```text
//! cargo run -p cambricon-llm --example probe_70b
//! ```

use cambricon_llm::{System, SystemConfig};
use flash_sim::FlashDevice;
use llm_workload::{decode_step, zoo, Quant};
use tiling::plan_gemv;

fn main() {
    let cfg = SystemConfig::cambricon_l();
    let model = zoo::llama2_70b();
    let step = decode_step(&model, Quant::W8A8, 1000);
    let inp = cfg.alpha_inputs();
    println!("per-shape GeMV plans for {model} on {}:", cfg.name);
    for (r, c, n) in step.gemv_shape_census() {
        let plan = plan_gemv(&inp, r, c, tiling::Strategy::HardwareAware, None);
        let dev = FlashDevice::new(cfg.engine);
        let rep = dev.run_per_channel(&plan.channel_workloads(&inp));
        println!(
            "  {r:>5}x{c:<5} x{n:<3} tile {:>4}x{:<5} rc={:<3} reads={:<5} alpha={:.2} \
             finish={:>7.1}us util={:.2}",
            plan.tile.h_req,
            plan.tile.w_req,
            plan.rc_rounds,
            plan.read_pages_total,
            plan.alpha_achieved,
            rep.finish.as_secs_f64() * 1e6,
            rep.mean_utilization
        );
    }
    let mut sys = System::new(cfg);
    let rep = sys.decode_token(&model, 1000);
    println!(
        "token: {:.1} ms total = gemv {:.1} + kv {:.1} + sfu {:.1} ms -> {:.2} tok/s",
        rep.total.as_secs_f64() * 1e3,
        rep.gemv.as_secs_f64() * 1e3,
        rep.kv.as_secs_f64() * 1e3,
        rep.sfu.as_secs_f64() * 1e3,
        rep.tokens_per_sec
    );
}
