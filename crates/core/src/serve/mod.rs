//! Multi-request serving engine: many concurrent decode requests on one
//! Cambricon-LLM device.
//!
//! # Scheduler model
//!
//! The single-request simulator ([`crate::system`]) prices a token as
//! the *serial* sum of its op latencies, because at batch 1 every op
//! consumes the previous op's output. Across **different requests**
//! there is no such dependency, and the paper's Figure 4 pipeline
//! exposes two serially-exclusive resources that can serve different
//! requests at the same time:
//!
//! * the **flash device** (NAND channels + in-flash compute cores,
//!   together with the NPU share that consumes pages as they stream) —
//!   occupied by weight GeMVs ([`OpClass::Flash`]);
//! * the **NPU/DRAM side** (systolic array, SFU, LPDDR KV traffic) —
//!   occupied by KV matrix work, special functions and cache appends
//!   ([`OpClass::Npu`]).
//!
//! The engine is a discrete-event simulation: each in-flight request is
//! an [`OpCursor`] over the model's shared [`TokenPlan`], each resource
//! serves one op at a time, and when a resource frees it picks the next
//! waiting request according to the [`SchedulePolicy`]. While request
//! A's GeMV holds the flash device, request B can run its attention/KV
//! phase on the NPU — that overlap is why per-token latency degrades
//! *sub-linearly* in the number of in-flight requests, exactly as in a
//! real serving stack that pipelines prefill/attention against weight
//! streaming.
//!
//! # Continuous batching
//!
//! [`SchedulePolicy::ContinuousBatch`] goes one step further than
//! overlap: up to `max_batch` requests march through the shared plan in
//! **lockstep** — a batch step is one plan walk with many cursors
//! parked at the same position. Each weight GeMV then streams from
//! NAND **once per step** for the whole batch (seq-invariant slots are
//! priced once per plan through the [`PlanTable`]), while the three
//! attention slots are re-priced per request from its own
//! [`OpCursor::seq_len`]. That amortization of the per-token weight
//! fetch is exactly what makes cloud serving batch-efficient (§III-A's
//! arithmetic-intensity cliff), applied to the edge device. New
//! requests join the running batch at token boundaries, and admission
//! is gated on [`npu_sim::KvCache`] capacity: each admitted request
//! reserves DRAM for its whole context and releases it on completion,
//! so an oversubscribed trace queues (FIFO, head-of-line, starvation
//! free) instead of silently over-committing memory. Requests whose
//! context can never fit are rejected and counted
//! ([`ServeReport::kv_rejections`]); batch occupancy is reported
//! time-weighted ([`ServeReport::mean_batch_occupancy`]).
//!
//! # Hot-path structure
//!
//! The engine retires one simulated op per event, so op dispatch is the
//! hottest code in the repo and is built around reuse instead of
//! re-materialization:
//!
//! * the per-token op sequence is never materialized — every request
//!   walks the engine's one [`TokenPlan`] with a cursor, and only the
//!   few seq-dependent attention ops are re-priced, once per token;
//! * op latencies come from a per-plan **slot table**: each distinct
//!   cost slot is priced once through [`System::op_cost`] (which itself
//!   memoizes by canonical shape in the system-wide
//!   [`crate::system::OpCostCache`]) and replayed by array index;
//! * the ready lists are per-resource binary heaps keyed by the active
//!   policy's priority at enqueue time (exact, because both policies'
//!   keys are frozen while a request waits), so a dispatch is O(log n)
//!   instead of an O(n) scan;
//! * the event core is specialized to this scheduler's shape: at most
//!   one completion can be pending per resource, so "next event" is a
//!   three-way minimum over two completion slots and an arrival queue
//!   rather than a general priority queue, with the same
//!   `(time, schedule-order)` FIFO tie-breaking as
//!   [`sim_core::EventQueue`].
//!
//! All timing still flows through the same flash discrete-event model
//! and NPU roofline as the single-request path; with one in-flight
//! request the engine reproduces [`System::decode_token`] exactly, and
//! golden tests pin the reports bit-for-bit to the pre-optimization
//! engine. Identical shapes across requests hit the shared caches, so a
//! fleet of same-model requests costs one flash simulation per distinct
//! shape, not per request.
//!
//! # Span fast-forwarding
//!
//! Even with per-op dispatch reduced to array lookups, firing one
//! event-core round per op makes wall-clock scale linearly in
//! `new_tokens` — painful exactly in the long-decode regime where
//! continuous batching matters most. But between two **scheduling
//! boundaries** (the next arrival, the next completion — the minimum
//! remaining tokens in flight —, the next admission opportunity, a
//! prefill window) the dynamics are fully deterministic: only the
//! attention slots' cost varies, and predictably, with each request's
//! sequence position. [`SpanMode::Coalesced`] (the default) therefore
//! computes the number `k` of whole tokens until the earliest boundary
//! and executes them as **one** bulk-priced span: the seq-invariant
//! slots once per token from the [`PlanTable`], the attention templates
//! over the growing prefix in the exact per-token order, cursors
//! advanced `k` tokens in one shot ([`OpCursor::advance_by`]), traffic
//! booked through the bulk
//! [`TrafficBreakdown::absorb_batch_span`], and a single span-end
//! event. The batched loop spans whole batch steps (one heap/hash/event
//! round per span instead of per plan position), so the win compounds
//! with batch size; the per-op loops span a lone in-flight request
//! between arrivals.
//!
//! **Bit-exactness invariant:** every quantity the engine accumulates —
//! timestamps, busy time, occupancy integrals, traffic, dispatch
//! counters — is integer picoseconds/bytes/ops, and spans sum them in
//! the identical per-token order, so regrouping is exact: coalesced
//! reports equal [`SpanMode::PerOp`] reports field for field (pinned by
//! the goldens and a span-equivalence proptest across policies, prefill
//! modes and forced-tiny-span caps).
//!
//! # Prefill
//!
//! Every request walks the state machine **Queued → Prefilling →
//! Decoding → Done**. Under [`PrefillMode::Modeled`] a request's
//! prompt is not free: after admission it runs a prefill stage — the
//! NPU's prompt-wide GeMMs overlapped with a one-shot weight stream at
//! the *effective* (tiling-derived) read bandwidth, priced by
//! [`System::prefill_cost`] once per `(model, quant, prompt_len)`
//! bucket — that occupies **both** the flash channel and the NPU for
//! its duration, so it contends with every in-flight decode:
//!
//! * under FCFS/round-robin a prefill waits for both resources to be
//!   free, holds them together, and head-of-line blocks later flash
//!   work until it completes;
//! * under continuous batching the prefill of a joining request runs
//!   at the token boundary where it is admitted, delaying the shared
//!   batch step for everyone already in the batch.
//!
//! Time-to-first-token is therefore real: [`RequestReport::ttft`]
//! spans arrival → first decoded token, including queue wait and
//! prefill, and [`ServeReport`] carries its percentiles alongside the
//! old decode-only metric ([`RequestReport::decode_ttft`]). With
//! [`PrefillMode::Off`] (the default) requests enter with their prompt
//! already in the KV cache, exactly as before — the decode-only
//! goldens pin that mode bit for bit.
//!
//! # Example
//!
//! ```
//! use cambricon_llm::serve::{ServeEngine, SchedulePolicy};
//! use cambricon_llm::SystemConfig;
//! use llm_workload::{zoo, ArrivalTrace, RequestShape};
//!
//! let trace = ArrivalTrace::closed_loop(2, 1, RequestShape::new(256, 4));
//! let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
//! let report = engine.run(&trace, SchedulePolicy::RoundRobin);
//! assert_eq!(report.requests_served, 2);
//! assert_eq!(report.tokens_served, 8);
//! assert!(report.tokens_per_sec > 0.0);
//! ```

use crate::config::SystemConfig;
use crate::reliability::{FaultMode, ReliabilitySummary};
use crate::system::{System, TrafficBreakdown};
use llm_workload::{ArrivalTrace, ModelSpec, TokenPlan};
use sim_core::{Aggregate, SimTime};

/// Whether the engine simulates the prefill phase of each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefillMode {
    /// Requests enter with their prompt already materialized in the KV
    /// cache; only decode is simulated. The pre-prefill behavior,
    /// pinned bit for bit by the decode-only goldens.
    #[default]
    Off,
    /// Each admitted request runs a prefill stage (NPU GeMM compute
    /// overlapped with a one-shot weight stream at the effective read
    /// bandwidth) that occupies the flash channel and the NPU, delaying
    /// its own first token and contending with in-flight decodes.
    Modeled,
}

/// How aggressively the event loops coalesce decode work between
/// scheduling boundaries into bulk-priced **spans**.
///
/// Between two scheduling boundaries — the next arrival, the next
/// completion (minimum remaining tokens in flight), the next admission
/// opportunity, a prefill window — the decode dynamics are fully
/// deterministic: only the attention slots' cost varies, and
/// predictably, with each request's sequence position. A span executes
/// that whole run of tokens as one event-core round, pricing the
/// seq-invariant slots once per token from the [`PlanTable`] and the
/// attention templates over the growing prefix **in the exact
/// per-token order**, so every timestamp, sample, counter and traffic
/// total is bit-identical to per-op stepping (all quantities are
/// integer picoseconds/bytes/ops, so regrouped sums are exact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanMode {
    /// One event-core round per op (per plan position in the batched
    /// loop) — the original engines, kept as the executable reference
    /// semantics the span path is pinned against.
    PerOp,
    /// Fast-forward up to `max_span` whole tokens per span between
    /// scheduling boundaries. The default mode is unbounded
    /// (`usize::MAX`: spans end only at real boundaries); tiny caps
    /// force degenerate spans (`k = 1`) for boundary-case testing.
    Coalesced {
        /// Most tokens one span may coalesce (at least 1).
        max_span: usize,
    },
}

impl Default for SpanMode {
    fn default() -> Self {
        SpanMode::Coalesced {
            max_span: usize::MAX,
        }
    }
}

impl SpanMode {
    /// The span cap this mode imposes: 0 encodes per-op stepping.
    fn cap(self) -> usize {
        match self {
            SpanMode::PerOp => 0,
            SpanMode::Coalesced { max_span } => {
                assert!(
                    max_span >= 1,
                    "a coalesced span must hold at least one token"
                );
                max_span
            }
        }
    }
}

/// How a freed resource picks the next waiting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// First come, first served: the earliest-arrived waiting request
    /// wins. Minimizes queueing delay variance across requests but lets
    /// an early long request starve later short ones.
    Fcfs,
    /// Round-robin: the least-recently-scheduled waiting request wins,
    /// interleaving per-token progress fairly across in-flight requests.
    RoundRobin,
    /// Continuous batching: up to `max_batch` in-flight requests march
    /// through the shared [`TokenPlan`] in **lockstep** — one batch
    /// step is one plan walk with many cursors parked at the same
    /// position. Each weight GeMV streams from NAND **once** per step
    /// for the whole batch (the cloud-style amortization of §III-A),
    /// while per-request NPU work (attention, softmax, KV appends)
    /// repeats per batch member at its own sequence position. New
    /// requests join the running batch at token boundaries, FIFO, and
    /// admission is gated on [`npu_sim::KvCache`] capacity: a request
    /// reserves DRAM for its whole context (`prompt + new_tokens`) at
    /// admission and releases it on completion, so oversubscribed
    /// traces queue instead of silently over-committing memory.
    /// Requests whose context can never fit are rejected and counted
    /// in [`ServeReport::kv_rejections`].
    ContinuousBatch {
        /// Most requests served concurrently by one batch step.
        max_batch: usize,
    },
}

/// Summary of one served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestReport {
    /// Request id (issue order).
    pub id: usize,
    /// Arrival time.
    pub arrived: SimTime,
    /// When the device first worked for the request (prefill start
    /// under [`PrefillMode::Modeled`], first decode op otherwise).
    pub started: SimTime,
    /// When the request's prefill stage completed and decode could
    /// begin. Equal to `started` when no prefill ran (mode off, or an
    /// empty prompt).
    pub prefill_end: SimTime,
    /// Timestamp at which the first decoded token completed.
    ///
    /// This is an absolute virtual time, not a latency: subtract
    /// `arrived` for the arrival-relative TTFT ([`RequestReport::ttft`])
    /// or `prefill_end` for the decode-only metric
    /// ([`RequestReport::decode_ttft`]) — the two are deliberately
    /// separate methods so they cannot be confused. (This field was
    /// previously named `first_token` and mislabeled "decode-only
    /// TTFT".)
    pub first_token_at: SimTime,
    /// When the last token completed.
    pub finished: SimTime,
    /// Tokens generated.
    pub tokens: usize,
}

impl RequestReport {
    /// Time spent queued before any work (prefill or decode op) ran.
    pub fn queueing_delay(&self) -> SimTime {
        self.started.saturating_sub(self.arrived)
    }

    /// Arrival-relative time to first token: queue wait + prefill +
    /// the first decoded token. The user-visible TTFT.
    pub fn ttft(&self) -> SimTime {
        self.first_token_at.saturating_sub(self.arrived)
    }

    /// Decode-only time to first token, measured from the end of
    /// prefill (or from service start when no prefill ran) — the
    /// metric the old `first_token` field's label promised.
    pub fn decode_ttft(&self) -> SimTime {
        self.first_token_at.saturating_sub(self.prefill_end)
    }

    /// Time the request spent in its prefill stage (zero when none
    /// ran).
    pub fn prefill_time(&self) -> SimTime {
        self.prefill_end.saturating_sub(self.started)
    }

    /// Mean time per generated token once running.
    pub fn mean_token_latency(&self) -> SimTime {
        let span = self.finished.saturating_sub(self.started);
        SimTime::from_picos(span.as_picos() / self.tokens.max(1) as u64)
    }
}

/// Fleet-level results of a serving run.
///
/// Implements `PartialEq` so span-equivalence tests can compare whole
/// reports bit for bit (every field is either an integer or an `f64`
/// derived from integer picosecond arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Scheduling policy that produced this report.
    pub policy: SchedulePolicy,
    /// Whether prefill was simulated ([`PrefillMode::Modeled`]) or the
    /// prompts were taken as pre-materialized.
    pub prefill: PrefillMode,
    /// Requests completed.
    pub requests_served: usize,
    /// Tokens generated across all requests.
    pub tokens_served: u64,
    /// Virtual time from the first *admitted* request's arrival to the
    /// last completion. Rejected arrivals are not simulated and do not
    /// stretch it (or the rates/utilizations derived from it).
    pub makespan: SimTime,
    /// Aggregate decode throughput over the makespan.
    pub tokens_per_sec: f64,
    /// Median per-token latency in seconds.
    pub p50_token_latency_s: f64,
    /// 99th-percentile per-token latency in seconds.
    pub p99_token_latency_s: f64,
    /// Mean per-token latency in seconds.
    pub mean_token_latency_s: f64,
    /// Median arrival-relative TTFT ([`RequestReport::ttft`]): queue
    /// wait + prefill + first decoded token, in seconds.
    pub ttft_p50_s: f64,
    /// 99th-percentile arrival-relative TTFT in seconds.
    pub ttft_p99_s: f64,
    /// Mean arrival-relative TTFT in seconds.
    pub ttft_mean_s: f64,
    /// The old decode-only TTFT ([`RequestReport::decode_ttft`])
    /// statistics, in seconds — reported alongside the arrival-relative
    /// percentiles so the two metrics cannot be confused.
    pub decode_ttft_s: Aggregate,
    /// Virtual seconds the device spent in prefill stages (both
    /// resources held). Zero with [`PrefillMode::Off`]; divide by the
    /// makespan for the prefill share of utilization.
    pub prefill_busy_s: f64,
    /// Queueing delay (arrival → first op) statistics, in seconds.
    pub queueing_delay_s: Aggregate,
    /// Busy fraction of the flash device over the makespan.
    pub flash_utilization: f64,
    /// Busy fraction of the NPU/DRAM side over the makespan.
    pub npu_utilization: f64,
    /// GeMV-cache hits across the fleet: weight-GeMV dispatches served
    /// without re-running the flash discrete-event simulation.
    pub gemv_cache_hits: u64,
    /// GeMV-cache misses (distinct shapes actually simulated).
    pub gemv_cache_misses: u64,
    /// Dispatched ops priced from the memo ([`crate::system::OpCostCache`]
    /// plus the per-plan slot table derived from it): every dispatch
    /// after the first of its canonical shape. Together with the misses
    /// this partitions the dispatched ops exactly:
    /// `hits + misses == tokens_served × ops_per_token`.
    pub op_cost_cache_hits: u64,
    /// Dispatched ops whose cost had to be derived from the hardware
    /// models — the distinct canonical shapes, including one per
    /// sequence position reached for the attention ops.
    pub op_cost_cache_misses: u64,
    /// Time-weighted mean number of requests in the running batch over
    /// the makespan. Zero for [`SchedulePolicy::Fcfs`] and
    /// [`SchedulePolicy::RoundRobin`], which do not maintain a batch.
    pub mean_batch_occupancy: f64,
    /// Largest batch assembled at any token boundary (zero for the
    /// non-batched policies).
    pub peak_batch_occupancy: usize,
    /// Requests rejected by KV-capacity admission control — each one a
    /// counted [`npu_sim::KvCapacityError`]: the whole context
    /// (`prompt + new_tokens`) can never fit in the DRAM KV
    /// allocation, under any policy. Rejected requests are not
    /// simulated and do not appear in `requests`.
    pub kv_rejections: u64,
    /// Total traffic across all requests.
    pub traffic: TrafficBreakdown,
    /// Fault-injection counters ([`crate::reliability`]): rereads,
    /// uncorrectable events, degradation, deadline sheds, and goodput.
    /// All zero (the `Default`) when the run had [`FaultMode::Off`].
    pub reliability: ReliabilitySummary,
    /// Per-request summaries, in completion order.
    pub requests: Vec<RequestReport>,
}

impl ServeReport {
    /// Renders the headline numbers as a short multi-line summary.
    pub fn summary(&self) -> String {
        let makespan_s = self.makespan.as_secs_f64();
        let prefill_pct = if makespan_s > 0.0 {
            self.prefill_busy_s / makespan_s * 100.0
        } else {
            0.0
        };
        let mut out = format!(
            "served {} requests / {} tokens in {:.2} s ({:.2} tok/s)\n\
             token latency: p50 {:.0} ms, p99 {:.0} ms, mean {:.0} ms\n\
             ttft (arrival-relative): p50 {:.0} ms, p99 {:.0} ms, mean {:.0} ms\n\
             decode-only ttft: mean {:.0} ms | prefill busy {:.2} s ({:.0}% of makespan, {:?})\n\
             queueing delay: mean {:.0} ms, max {:.0} ms\n\
             utilization: flash {:.0}%, npu {:.0}% | gemv cache: {} hits / {} misses\n\
             op-cost cache: {} hits / {} misses\n\
             batch occupancy: mean {:.2}, peak {} | kv rejections: {}",
            self.requests_served,
            self.tokens_served,
            makespan_s,
            self.tokens_per_sec,
            self.p50_token_latency_s * 1e3,
            self.p99_token_latency_s * 1e3,
            self.mean_token_latency_s * 1e3,
            self.ttft_p50_s * 1e3,
            self.ttft_p99_s * 1e3,
            self.ttft_mean_s * 1e3,
            self.decode_ttft_s.mean().unwrap_or(0.0) * 1e3,
            self.prefill_busy_s,
            prefill_pct,
            self.prefill,
            self.queueing_delay_s.mean().unwrap_or(0.0) * 1e3,
            self.queueing_delay_s.max().unwrap_or(0.0) * 1e3,
            self.flash_utilization * 100.0,
            self.npu_utilization * 100.0,
            self.gemv_cache_hits,
            self.gemv_cache_misses,
            self.op_cost_cache_hits,
            self.op_cost_cache_misses,
            self.mean_batch_occupancy,
            self.peak_batch_occupancy,
            self.kv_rejections,
        );
        if self.reliability != ReliabilitySummary::default() {
            let r = &self.reliability;
            out.push_str(&format!(
                "\nreliability: rber {:.2e}, rereads {}, uncorrectable {}, degraded {} chips ({:.0}% bw lost)\n\
                 deadlines: {} ttft timeouts, {} sheds | goodput {} reqs / {} tokens ({:.2} tok/s)",
                r.rber,
                r.page_rereads,
                r.uncorrectable_events,
                r.degraded_chips,
                r.degraded_bandwidth_fraction * 100.0,
                r.ttft_timeouts,
                r.deadline_sheds,
                r.goodput_requests,
                r.goodput_tokens,
                r.deadline_goodput_tps,
            ));
        }
        out
    }
}

mod device;

pub use device::{DeviceEngine, RequestQueue};

/// A multi-request serving engine over one simulated device.
///
/// Thin facade over [`DeviceEngine`], the component owning the device
/// event loop: construction, mode knobs and `run` delegate one-to-one,
/// so the single-device API (and every golden report) is unchanged by
/// the component split. Fleet composition ([`crate::fleet`]) drives
/// [`DeviceEngine`] directly.
#[derive(Debug)]
pub struct ServeEngine {
    device: DeviceEngine,
}

impl ServeEngine {
    /// An engine serving `model` on a device configured as `cfg`, with
    /// prefill off ([`PrefillMode::Off`] — the decode-only engine the
    /// goldens pin).
    pub fn new(cfg: SystemConfig, model: ModelSpec) -> Self {
        ServeEngine {
            device: DeviceEngine::new(cfg, model),
        }
    }

    /// Sets the prefill mode for every subsequent run.
    pub fn with_prefill(mut self, mode: PrefillMode) -> Self {
        self.device = self.device.with_prefill(mode);
        self
    }

    /// The active prefill mode.
    pub fn prefill_mode(&self) -> PrefillMode {
        self.device.prefill_mode()
    }

    /// Sets the span-coalescing mode for every subsequent run; see
    /// [`DeviceEngine::with_span_mode`].
    ///
    /// # Panics
    ///
    /// Panics if the mode is `Coalesced { max_span: 0 }`.
    pub fn with_span_mode(mut self, mode: SpanMode) -> Self {
        self.device = self.device.with_span_mode(mode);
        self
    }

    /// The active span-coalescing mode.
    pub fn span_mode(&self) -> SpanMode {
        self.device.span_mode()
    }

    /// Sets the fault-injection mode for every subsequent run; see
    /// [`DeviceEngine::with_faults`].
    pub fn with_faults(mut self, mode: FaultMode) -> Self {
        self.device = self.device.with_faults(mode);
        self
    }

    /// The active fault-injection mode.
    pub fn fault_mode(&self) -> FaultMode {
        self.device.fault_mode()
    }

    /// The system configuration this engine simulates.
    pub fn config(&self) -> SystemConfig {
        self.device.config()
    }

    /// The model this engine serves.
    pub fn model(&self) -> &ModelSpec {
        self.device.model()
    }

    /// The shared decode plan every request of every run walks.
    pub fn plan(&self) -> &TokenPlan {
        self.device.plan()
    }

    /// The single-device component behind this facade, e.g. to compose
    /// replicas of it under a cluster router ([`crate::fleet`]).
    pub fn device(&self) -> &DeviceEngine {
        &self.device
    }

    /// Runs `trace` to completion under `policy` and reports fleet
    /// statistics. Deterministic: the same trace and policy always
    /// produce an identical report.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`SchedulePolicy::ContinuousBatch`] with
    /// `max_batch == 0` (a batch must hold at least one request).
    pub fn run(&self, trace: &ArrivalTrace, policy: SchedulePolicy) -> ServeReport {
        self.device.run(trace, policy)
    }

    /// Runs `trace` on a caller-provided [`System`]; see
    /// [`DeviceEngine::run_with_system`].
    pub(crate) fn run_with_system(
        &self,
        trace: &ArrivalTrace,
        policy: SchedulePolicy,
        system: System,
    ) -> (ServeReport, System) {
        self.device.run_with_system(trace, policy, system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::{zoo, RequestShape};

    fn engine() -> ServeEngine {
        ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
    }

    #[test]
    fn single_request_matches_decode_token_exactly() {
        // One in-flight request serializes every op, so the serving
        // engine must reproduce the single-request simulator tick for
        // tick — same flash model, same roofline, same cache.
        let shape = RequestShape::new(500, 3);
        let rep = engine().run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::Fcfs,
        );
        let mut sys = System::new(SystemConfig::cambricon_s());
        let expected: SimTime = (0..3)
            .map(|i| sys.decode_token(&zoo::opt_6_7b(), 500 + i).total)
            .fold(SimTime::ZERO, |a, b| a + b);
        assert_eq!(rep.makespan, expected);
        assert_eq!(rep.tokens_served, 3);
        assert_eq!(rep.requests_served, 1);
        assert_eq!(rep.queueing_delay_s.max(), Some(0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let shape = RequestShape::new(300, 4);
        let trace = ArrivalTrace::poisson(5.0, 6, shape, 42);
        for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
            let a = engine().run(&trace, policy);
            let b = engine().run(&trace, policy);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.p99_token_latency_s, b.p99_token_latency_s);
        }
    }

    #[test]
    fn concurrent_requests_degrade_sublinearly() {
        // Two in-flight requests share the device; NPU phases of one
        // overlap flash phases of the other, so the makespan is less
        // than 2x the single-request makespan.
        let shape = RequestShape::new(400, 3);
        let one = engine().run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::RoundRobin,
        );
        let two = engine().run(
            &ArrivalTrace::closed_loop(2, 1, shape),
            SchedulePolicy::RoundRobin,
        );
        assert!(
            two.makespan < one.makespan + one.makespan,
            "2-request makespan {} not sublinear vs {}",
            two.makespan,
            one.makespan
        );
        assert!(
            two.makespan > one.makespan,
            "device is still serial per resource"
        );
        assert_eq!(two.tokens_served, 2 * one.tokens_served);
    }

    #[test]
    fn shared_gemv_cache_simulates_each_shape_once() {
        let shape = RequestShape::new(200, 2);
        let rep = engine().run(&ArrivalTrace::burst(4, shape), SchedulePolicy::RoundRobin);
        // OPT decode has 5 distinct weight shapes regardless of fleet size.
        assert!(rep.gemv_cache_misses <= 5, "{}", rep.gemv_cache_misses);
        assert!(rep.gemv_cache_hits > rep.gemv_cache_misses);
    }

    #[test]
    fn op_cost_cache_amortizes_across_fleet() {
        let shape = RequestShape::new(200, 2);
        let rep = engine().run(&ArrivalTrace::burst(4, shape), SchedulePolicy::RoundRobin);
        // Hits + misses partition the dispatched ops exactly.
        let ops_per_token = 32 * 13 + 2; // OPT-6.7B: 32 layers × 13 ops + norm + head
        assert_eq!(
            rep.op_cost_cache_hits + rep.op_cost_cache_misses,
            rep.tokens_served * ops_per_token
        );
        // Distinct shapes: a dozen invariant ones plus a couple per
        // sequence position reached (2 tokens → 2 positions).
        assert!(
            rep.op_cost_cache_misses < 30,
            "{}",
            rep.op_cost_cache_misses
        );
        assert!(rep.op_cost_cache_hits > 100 * rep.op_cost_cache_misses);
    }

    #[test]
    fn fcfs_favors_early_arrivals_round_robin_shares() {
        // A burst of equal requests: FCFS finishes them in arrival order
        // with spread-out finish times; round-robin finishes them close
        // together (fair progress). Queueing delay mean is lower for RR
        // first tokens... at minimum, both serve everything and FCFS
        // keeps arrival order.
        let shape = RequestShape::new(300, 4);
        let trace = ArrivalTrace::burst(3, shape);
        let fcfs = engine().run(&trace, SchedulePolicy::Fcfs);
        let rr = engine().run(&trace, SchedulePolicy::RoundRobin);
        assert_eq!(fcfs.requests_served, 3);
        assert_eq!(rr.requests_served, 3);
        // FCFS: completion order == arrival (id) order.
        let order: Vec<usize> = fcfs.requests.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![0, 1, 2]);
        // RR spreads first tokens across requests; its spread between
        // first and last completion is no larger than FCFS's.
        let spread = |rep: &ServeReport| {
            let first = rep
                .requests
                .iter()
                .map(|r| r.finished)
                .fold(rep.makespan, SimTime::min);
            rep.makespan.saturating_sub(first)
        };
        assert!(spread(&rr) <= spread(&fcfs));
        // Total work is identical either way.
        assert_eq!(fcfs.tokens_served, rr.tokens_served);
    }

    #[test]
    fn open_trace_queueing_delay_reported() {
        // Simultaneous arrivals contend for the NPU's first op: every
        // request but the first must queue before starting.
        let shape = RequestShape::new(300, 2);
        let rep = engine().run(&ArrivalTrace::burst(5, shape), SchedulePolicy::Fcfs);
        assert_eq!(rep.requests_served, 5);
        assert!(rep.queueing_delay_s.max().unwrap() > 0.0);
        assert_eq!(rep.queueing_delay_s.min(), Some(0.0));
        assert!(rep.p99_token_latency_s >= rep.p50_token_latency_s);
        assert!(rep.flash_utilization > 0.5);
    }

    #[test]
    fn poisson_open_trace_serves_all_requests() {
        let shape = RequestShape::new(300, 2);
        let trace = ArrivalTrace::poisson(50.0, 5, shape, 9);
        let rep = engine().run(&trace, SchedulePolicy::Fcfs);
        assert_eq!(rep.requests_served, 5);
        assert_eq!(rep.tokens_served, 10);
        assert!(rep.flash_utilization > 0.5);
    }

    #[test]
    fn batch_of_one_matches_single_stream_exactly() {
        // A batch step over one request prices the same serial op walk
        // as the unbatched engine, so batch-of-1 reproduces the FCFS
        // single stream tick for tick.
        let shape = RequestShape::new(500, 3);
        let trace = ArrivalTrace::closed_loop(1, 2, shape);
        let fcfs = engine().run(&trace, SchedulePolicy::Fcfs);
        let batched = engine().run(&trace, SchedulePolicy::ContinuousBatch { max_batch: 1 });
        assert_eq!(batched.makespan, fcfs.makespan);
        assert_eq!(batched.tokens_served, fcfs.tokens_served);
        assert_eq!(batched.traffic, fcfs.traffic);
        assert_eq!(batched.requests.len(), fcfs.requests.len());
        for (b, f) in batched.requests.iter().zip(&fcfs.requests) {
            assert_eq!(b.finished, f.finished);
            assert_eq!(b.first_token_at, f.first_token_at);
        }
        assert_eq!(batched.peak_batch_occupancy, 1);
        assert!((batched.mean_batch_occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn continuous_batching_amortizes_the_weight_stream() {
        // Four concurrent requests: FCFS streams all weights once per
        // token *per request*; the batch streams them once per step for
        // everyone. NAND traffic drops ~4x and throughput rises.
        let shape = RequestShape::new(300, 3);
        let trace = ArrivalTrace::closed_loop(4, 1, shape);
        let fcfs = engine().run(&trace, SchedulePolicy::Fcfs);
        let batched = engine().run(&trace, SchedulePolicy::ContinuousBatch { max_batch: 4 });
        assert_eq!(batched.tokens_served, fcfs.tokens_served);
        assert!(
            batched.tokens_per_sec > fcfs.tokens_per_sec,
            "batched {} <= fcfs {}",
            batched.tokens_per_sec,
            fcfs.tokens_per_sec
        );
        assert_eq!(
            batched.traffic.nand_array_bytes * 4,
            fcfs.traffic.nand_array_bytes
        );
        // Per-request work is identical either way: every member still
        // runs its own KV traffic and its own share of the GeMV
        // arithmetic on the streamed weights — only the *stream* is
        // shared.
        assert_eq!(batched.traffic.dram_bytes, fcfs.traffic.dram_bytes);
        assert_eq!(batched.traffic.npu_ops, fcfs.traffic.npu_ops);
        assert_eq!(batched.traffic.flash_ops, fcfs.traffic.flash_ops);
        assert_eq!(batched.peak_batch_occupancy, 4);
        assert!(batched.mean_batch_occupancy > 3.9);
        assert_eq!(batched.kv_rejections, 0);
    }

    #[test]
    fn huge_batches_hit_the_compute_ceiling() {
        // The shared weight stream is floored by both compute
        // rooflines on batch × the per-request MAC shares. The
        // in-flash cores are sized to just match the NAND read rate at
        // batch 1, so they throttle the stream within a few batch
        // members and throughput stops scaling — the §III-A intensity
        // cliff from the other side. (Short prompts keep KV
        // reservations small enough for one batch.)
        let shape = RequestShape::new(4, 1);
        let one = engine().run(
            &ArrivalTrace::burst(1, shape),
            SchedulePolicy::ContinuousBatch { max_batch: 1 },
        );
        let many = engine().run(
            &ArrivalTrace::burst(1024, shape),
            SchedulePolicy::ContinuousBatch { max_batch: 1024 },
        );
        let speedup = many.tokens_per_sec / one.tokens_per_sec;
        assert!(
            speedup < 20.0,
            "batch 1024 scaled past the compute ceiling ({speedup:.0}x)"
        );
        assert!(
            speedup > 1.5,
            "batching stopped paying at all ({speedup:.1}x)"
        );
    }

    #[test]
    fn max_batch_caps_the_running_batch() {
        let shape = RequestShape::new(300, 2);
        let rep = engine().run(
            &ArrivalTrace::burst(5, shape),
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        );
        assert_eq!(rep.requests_served, 5);
        assert_eq!(rep.peak_batch_occupancy, 2);
        assert!(rep.mean_batch_occupancy <= 2.0 + 1e-12);
    }

    #[test]
    fn impossible_prompt_is_rejected_not_simulated() {
        // OPT-6.7B W8A8: 256 KiB of KV per token, 2 GB of DRAM — a
        // ~7.6k-token context is the ceiling. A 10k-token prompt can
        // never fit and must be a counted rejection under every policy.
        let shape = RequestShape::new(10_000, 2);
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch: 4 },
        ] {
            let rep = engine().run(&ArrivalTrace::burst(2, shape), policy);
            assert_eq!(rep.requests_served, 0, "{policy:?}");
            assert_eq!(rep.kv_rejections, 2, "{policy:?}");
            assert_eq!(rep.tokens_served, 0);
            assert!(rep.requests.is_empty());
        }
    }

    #[test]
    fn rejection_criterion_is_the_full_context_under_every_policy() {
        // The prompt fits (7000 < ~7.6k-token ceiling) but prompt +
        // generation never can: simulating it would price attention at
        // sequence positions DRAM cannot hold, so every policy rejects
        // it — the per-op policies agree with the batched reservation.
        let shape = RequestShape::new(7000, 1000);
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        ] {
            let rep = engine().run(&ArrivalTrace::burst(1, shape), policy);
            assert_eq!(rep.requests_served, 0, "{policy:?}");
            assert_eq!(rep.kv_rejections, 1, "{policy:?}");
        }
        // Just inside the ceiling is served by all of them.
        let fits = RequestShape::new(7000, 100);
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        ] {
            let rep = engine().run(&ArrivalTrace::burst(1, fits), policy);
            assert_eq!(rep.requests_served, 1, "{policy:?}");
            assert_eq!(rep.kv_rejections, 0, "{policy:?}");
        }
    }

    #[test]
    fn rejected_stragglers_do_not_stretch_the_makespan() {
        // A servable request at t=0 plus an impossible one arriving
        // long after it completes: the rejection event advances the
        // virtual clock, but the report spans actual service only —
        // throughput and utilization must not be diluted by a request
        // that was never simulated.
        let ok = RequestShape::new(300, 2);
        let huge = RequestShape::new(10_000, 2);
        let late = SimTime::from_secs_f64(1000.0);
        let trace = ArrivalTrace::Open(vec![
            llm_workload::RequestArrival {
                at: SimTime::ZERO,
                shape: ok,
            },
            llm_workload::RequestArrival {
                at: late,
                shape: huge,
            },
        ]);
        let baseline = engine().run(&ArrivalTrace::burst(1, ok), SchedulePolicy::Fcfs);
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        ] {
            let rep = engine().run(&trace, policy);
            assert_eq!(rep.requests_served, 1, "{policy:?}");
            assert_eq!(rep.kv_rejections, 1, "{policy:?}");
            assert_eq!(rep.makespan, baseline.makespan, "{policy:?}");
            assert_eq!(rep.tokens_per_sec, baseline.tokens_per_sec, "{policy:?}");
        }
        // Symmetrically, an early rejected arrival must not drag the
        // span's start earlier than the first admitted request.
        let trace = ArrivalTrace::Open(vec![
            llm_workload::RequestArrival {
                at: SimTime::ZERO,
                shape: huge,
            },
            llm_workload::RequestArrival {
                at: late,
                shape: ok,
            },
        ]);
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        ] {
            let rep = engine().run(&trace, policy);
            assert_eq!(rep.makespan, baseline.makespan, "{policy:?}");
        }
    }

    #[test]
    fn mixed_trace_serves_what_fits_and_counts_the_rest() {
        let ok = RequestShape::new(300, 2);
        let huge = RequestShape::new(10_000, 2);
        let trace = ArrivalTrace::Open(vec![
            llm_workload::RequestArrival {
                at: SimTime::ZERO,
                shape: ok,
            },
            llm_workload::RequestArrival {
                at: SimTime::ZERO,
                shape: huge,
            },
            llm_workload::RequestArrival {
                at: SimTime::ZERO,
                shape: ok,
            },
        ]);
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::ContinuousBatch { max_batch: 4 },
        ] {
            let rep = engine().run(&trace, policy);
            assert_eq!(rep.requests_served, 2, "{policy:?}");
            assert_eq!(rep.kv_rejections, 1, "{policy:?}");
            assert_eq!(rep.tokens_served, 4);
        }
    }

    #[test]
    fn oversubscribed_batch_queues_on_kv_capacity() {
        // Each request reserves ~3000 KV tokens of the ~7.6k-token
        // DRAM allocation, so only two fit at a time: the batch must
        // run at peak 2 even though max_batch allows 4, and everything
        // still completes once reservations release.
        let shape = RequestShape::new(2990, 10);
        let rep = engine().run(
            &ArrivalTrace::burst(4, shape),
            SchedulePolicy::ContinuousBatch { max_batch: 4 },
        );
        assert_eq!(rep.requests_served, 4);
        assert_eq!(rep.kv_rejections, 0);
        assert_eq!(rep.peak_batch_occupancy, 2);
        assert_eq!(rep.tokens_served, 40);
        // Later requests queued for capacity, not forever.
        assert!(rep.queueing_delay_s.max().unwrap() > 0.0);
    }

    #[test]
    fn closed_loop_clients_rejoin_the_batch() {
        // 2 clients x 3 requests each: every completion respawns at the
        // token boundary, so the batch stays full and everything is
        // served.
        let shape = RequestShape::new(200, 2);
        let rep = engine().run(
            &ArrivalTrace::closed_loop(2, 3, shape),
            SchedulePolicy::ContinuousBatch { max_batch: 2 },
        );
        assert_eq!(rep.requests_served, 6);
        assert_eq!(rep.tokens_served, 12);
        assert!(
            rep.mean_batch_occupancy > 1.9,
            "{}",
            rep.mean_batch_occupancy
        );
    }

    #[test]
    fn batched_runs_are_deterministic() {
        let shape = RequestShape::new(300, 3);
        let trace = ArrivalTrace::poisson(5.0, 6, shape, 42);
        let policy = SchedulePolicy::ContinuousBatch { max_batch: 3 };
        let a = engine().run(&trace, policy);
        let b = engine().run(&trace, policy);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.mean_batch_occupancy, b.mean_batch_occupancy);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn empty_trace_reports_all_zero_finite() {
        // Satellite: zero-duration runs report 0.0, never NaN.
        for policy in [
            SchedulePolicy::Fcfs,
            SchedulePolicy::RoundRobin,
            SchedulePolicy::ContinuousBatch { max_batch: 4 },
        ] {
            let rep = engine().run(&ArrivalTrace::Open(Vec::new()), policy);
            assert_eq!(rep.requests_served, 0);
            assert_eq!(rep.tokens_served, 0);
            assert_eq!(rep.makespan, SimTime::ZERO);
            assert_eq!(rep.tokens_per_sec, 0.0);
            assert_eq!(rep.p50_token_latency_s, 0.0);
            assert_eq!(rep.p99_token_latency_s, 0.0);
            assert_eq!(rep.mean_token_latency_s, 0.0);
            assert_eq!(rep.flash_utilization, 0.0);
            assert_eq!(rep.npu_utilization, 0.0);
            assert_eq!(rep.mean_batch_occupancy, 0.0);
            assert!(rep.summary().lines().count() >= 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_max_batch_panics() {
        engine().run(
            &ArrivalTrace::burst(1, RequestShape::new(10, 1)),
            SchedulePolicy::ContinuousBatch { max_batch: 0 },
        );
    }
}
