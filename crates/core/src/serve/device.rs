//! The device component: one flash/NPU device's entire event loop.
//!
//! [`DeviceEngine`] owns everything that happens *inside* one device —
//! the request pool, ready queues, span coalescing, fault windows,
//! prefill holds, and both executors (the per-op interleaving loop and
//! the continuous-batching loop). The scheduler boundary sits above:
//! traces are routed/fed in from the outside ([`ServeEngine`] for a
//! single device, [`crate::fleet`] for N replicas behind a cluster
//! router), and the device runs its own specialized event core — the
//! "component keeps its own executor" half of the
//! [`sim_core::Component`] split.
//!
//! Everything here is an implementation detail of the serving model
//! documented on [`crate::serve`]; the public surface is
//! [`DeviceEngine`] and [`RequestQueue`].

use crate::config::SystemConfig;
use crate::reliability::{FaultMode, FaultRun, ReliabilitySummary};
use crate::system::{OpClass, PrefillCost, System, TrafficBreakdown};
use llm_workload::kv::kv_bytes_per_token;
use llm_workload::{
    ArrivalTrace, AttnPrefix, ModelSpec, OpCursor, PrefillPlan, RequestShape, TokenPlan,
};
use npu_sim::KvCache;
use sim_core::{Aggregate, BusyTracker, Samples, SimTime, SplitMix64};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use super::{PrefillMode, RequestReport, SchedulePolicy, ServeReport, SpanMode};

/// The scheduler's ready queues: per resource, a priority heap of the
/// requests whose next op is waiting for that resource.
///
/// Used by the per-op interleaving policies (FCFS, round-robin): every
/// arrival whose context fits in DRAM is admitted immediately and
/// enqueued here. The batched policy keeps its own FIFO admission
/// queue instead ([`BatchedSimulation`]). Entries carry the
/// active policy's priority key, computed **at enqueue time** — exact
/// because both policies' keys (FCFS arrival time, round-robin
/// last-scheduled stamp) cannot change while a request waits — so a
/// freed resource pops its winner in O(log n) instead of scanning.
#[derive(Debug, Default)]
pub struct RequestQueue {
    ready: [BinaryHeap<Reverse<(u64, u64)>>; 2],
}

impl RequestQueue {
    #[inline]
    fn enqueue(&mut self, class_slot: usize, key: u64, id: usize) {
        self.ready[class_slot].push(Reverse((key, id as u64)));
    }

    /// Removes and returns the waiting request minimizing `(key, id)`.
    #[inline]
    fn pop_min(&mut self, class_slot: usize) -> Option<usize> {
        let Reverse((_, id)) = self.ready[class_slot].pop()?;
        Some(id as usize)
    }

    /// Requests currently waiting for `class`.
    pub fn waiting(&self, class: OpClass) -> usize {
        self.ready[slot(class)].len()
    }

    /// Total requests waiting across both resources.
    pub fn len(&self) -> usize {
        self.ready.iter().map(BinaryHeap::len).sum()
    }

    /// Whether no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.ready.iter().all(BinaryHeap::is_empty)
    }
}

/// A multi-request serving engine over one simulated device.
#[derive(Debug)]
pub struct DeviceEngine {
    cfg: SystemConfig,
    model: ModelSpec,
    /// Shared decode plan: one per engine, reused by every request of
    /// every run.
    plan: TokenPlan,
    /// Shared prefill aggregates, evaluated per `(prompt_len)` bucket
    /// when [`PrefillMode::Modeled`].
    prefill_plan: PrefillPlan,
    prefill: PrefillMode,
    span: SpanMode,
    faults: FaultMode,
}

impl DeviceEngine {
    /// An engine serving `model` on a device configured as `cfg`, with
    /// prefill off ([`PrefillMode::Off`] — the decode-only engine the
    /// goldens pin).
    pub fn new(cfg: SystemConfig, model: ModelSpec) -> Self {
        let plan = TokenPlan::new(&model, cfg.quant);
        let prefill_plan = PrefillPlan::new(&model, cfg.quant);
        DeviceEngine {
            cfg,
            model,
            plan,
            prefill_plan,
            prefill: PrefillMode::Off,
            span: SpanMode::default(),
            faults: FaultMode::Off,
        }
    }

    /// Sets the prefill mode for every subsequent run.
    pub fn with_prefill(mut self, mode: PrefillMode) -> Self {
        self.prefill = mode;
        self
    }

    /// The active prefill mode.
    pub fn prefill_mode(&self) -> PrefillMode {
        self.prefill
    }

    /// Sets the span-coalescing mode for every subsequent run.
    /// [`SpanMode::Coalesced`] (the default) is bit-identical to
    /// [`SpanMode::PerOp`] and only changes wall-clock speed; the
    /// per-op mode exists as the reference semantics and for pinning
    /// tests.
    ///
    /// # Panics
    ///
    /// Panics if the mode is `Coalesced { max_span: 0 }` — a span must
    /// hold at least one token (the misconfiguration is reported here,
    /// at the construction site, not at the first `run`).
    pub fn with_span_mode(mut self, mode: SpanMode) -> Self {
        mode.cap();
        self.span = mode;
        self
    }

    /// The active span-coalescing mode.
    pub fn span_mode(&self) -> SpanMode {
        self.span
    }

    /// Sets the fault-injection mode for every subsequent run.
    /// [`FaultMode::Off`] (the default) is bit-for-bit inert; with
    /// [`FaultMode::Injected`] every run samples seeded NAND read
    /// faults, enforces the configured deadlines, and fills
    /// [`ServeReport::reliability`].
    ///
    /// Fault injection disables span coalescing for the per-op
    /// policies (fault sampling is causal: each token's faults must be
    /// drawn before the next arrival decision), so faulted per-op runs
    /// pay the per-op event cadence. The batched loop keeps its spans.
    pub fn with_faults(mut self, mode: FaultMode) -> Self {
        self.faults = mode;
        self
    }

    /// The active fault-injection mode.
    pub fn fault_mode(&self) -> FaultMode {
        self.faults
    }

    /// The system configuration this engine simulates.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// The model this engine serves.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The shared decode plan every request of every run walks.
    pub fn plan(&self) -> &TokenPlan {
        &self.plan
    }

    /// Runs `trace` to completion under `policy` and reports fleet
    /// statistics. Deterministic: the same trace and policy always
    /// produce an identical report.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is [`SchedulePolicy::ContinuousBatch`] with
    /// `max_batch == 0` (a batch must hold at least one request).
    pub fn run(&self, trace: &ArrivalTrace, policy: SchedulePolicy) -> ServeReport {
        self.run_with_system(trace, policy, System::new(self.cfg)).0
    }

    /// Runs `trace` on a caller-provided [`System`], using and
    /// extending the memoization state (GeMV cache, op-cost cache) it
    /// carries, and returns the system alongside the report.
    ///
    /// The Monte Carlo harness hands every seeded run a clone of one
    /// pre-warmed system, so the fixed pricing cost of a scenario is
    /// paid once instead of once per seed; [`DeviceEngine::run`] passes
    /// a fresh system, preserving the cold-cache reports the goldens
    /// pin (cache hit/miss counters included).
    pub(crate) fn run_with_system(
        &self,
        trace: &ArrivalTrace,
        policy: SchedulePolicy,
        system: System,
    ) -> (ServeReport, System) {
        match policy {
            SchedulePolicy::ContinuousBatch { max_batch } => {
                assert!(max_batch >= 1, "a batch must hold at least one request");
                BatchedSimulation::new(self, trace, max_batch, system).run()
            }
            _ => Simulation::new(self, trace, policy, system).run(),
        }
    }
}

/// Upper bound on seq-dependent cost slots per plan (both model
/// families have exactly three: scores, softmax, context). Sized with
/// one spare so a new attention template doesn't immediately overflow.
const MAX_DEP_SLOTS: usize = 4;

/// Per-plan pricing table: latencies and traffic by cost slot, so the
/// per-op dispatch path is an array index instead of an op
/// materialization plus cost derivation.
#[derive(Debug)]
struct PlanTable {
    /// Resource class of each plan position.
    classes: Vec<OpClass>,
    /// `slot(classes[idx])` per plan position — the resource index the
    /// interleaved fast loop reads per op (a load instead of a match).
    class_slots: Vec<u8>,
    /// Per-op dispatch latency in picoseconds for the fast loop, built
    /// once the invariant slots are priced: invariant positions carry
    /// their latency directly; seq-dependent positions carry
    /// `u64::MAX - dep_index` (never a real latency), telling the
    /// dispatcher to read the member's own attention pricing instead.
    fast_lat: Vec<u64>,
    /// Cost slot of each plan position.
    slots: Vec<u32>,
    /// Latency per seq-invariant slot (indices `0..n_inv`).
    inv_lat: Vec<SimTime>,
    n_inv: usize,
    n_dep: usize,
    /// Ops per token mapping to each invariant slot.
    inv_counts: Vec<u64>,
    /// Whether each invariant slot is a weight GeMV (flash class).
    inv_is_weight: Vec<bool>,
    /// Ops per token mapping to each seq-dependent slot.
    dep_counts: [u64; MAX_DEP_SLOTS],
    /// Serial per-token latency of the weight (flash) positions —
    /// `Σ inv_lat × count` over weight slots. One term of a solo span's
    /// token latency; filled by [`price_invariant`].
    solo_flash_lat: SimTime,
    /// Serial per-token latency of the invariant NPU positions (the
    /// attention slots are priced per sequence position on top).
    solo_npu_lat: SimTime,
    /// Traffic of one token's seq-invariant ops.
    inv_traffic: TrafficBreakdown,
    /// The shared-stream share of `inv_traffic`: NAND reads, in-flash
    /// consumption and the D2D weight share, which a batched step pays
    /// **once** for the whole batch.
    inv_stream_traffic: TrafficBreakdown,
    /// The per-request share of `inv_traffic` — each member's share of
    /// the GeMV arithmetic on both sides, plus KV appends, norms and
    /// activations: repeated per batch member.
    inv_request_traffic: TrafficBreakdown,
    /// Per-request NPU ops of each invariant slot's op (zero for
    /// non-weight slots): the operand of the batched NPU compute floor.
    inv_npu_ops: Vec<u64>,
    /// Per-request in-flash ops of each invariant slot's op (zero for
    /// non-weight slots): the operand of the batched flash-core floor.
    inv_flash_ops: Vec<u64>,
    /// Weight GeMVs per token (for GeMV-cache recall accounting).
    gemvs_per_token: u64,
    /// Whether the invariant slots have been priced yet (done lazily so
    /// an empty trace prices nothing, like the engine it replaced).
    priced: bool,
    /// Memoized cumulative attention prices by sequence position, grown
    /// on demand: pricing a position a second time (another member of a
    /// cohort, another span probe) is two table reads instead of three
    /// op-cost lookups, and a contiguous range prices as one
    /// prefix-sum difference. Segmented, so only positions requests
    /// actually visit are ever priced — the op-cost cache's miss count
    /// (a report field) sees exactly the per-op loop's derivations.
    attn: AttnPrefix<AttnPoint>,
}

/// One sequence position's attention prices, folded cumulatively in
/// [`PlanTable::attn`]: the per-dependent-slot op latency plus the
/// position's combined slot-count-scaled traffic.
#[derive(Debug, Clone, Default)]
struct AttnPoint {
    lat: [SimTime; MAX_DEP_SLOTS],
    traffic: TrafficBreakdown,
}

impl PlanTable {
    fn new(plan: &TokenPlan) -> Self {
        let classes: Vec<OpClass> = (0..plan.len())
            .map(|idx| OpClass::of(&plan.op_at(idx, 0)))
            .collect();
        let gemvs_per_token = plan.weight_ops_per_token() as u64;
        debug_assert_eq!(
            gemvs_per_token,
            classes.iter().filter(|c| **c == OpClass::Flash).count() as u64,
            "plan's weight positions disagree with the op classification"
        );
        let n_inv = plan.invariant_slots();
        let n_dep = plan.dependent_slots();
        assert!(
            n_dep <= MAX_DEP_SLOTS,
            "plan has {n_dep} seq-dependent slots; raise MAX_DEP_SLOTS"
        );
        let mut dep_counts = [0u64; MAX_DEP_SLOTS];
        for (d, count) in dep_counts.iter_mut().enumerate().take(n_dep) {
            *count = plan.slot_count(n_inv + d) as u64;
        }
        PlanTable {
            class_slots: classes.iter().map(|c| slot(*c) as u8).collect(),
            fast_lat: Vec::new(),
            classes,
            slots: (0..plan.len())
                .map(|idx| plan.cost_slot(idx) as u32)
                .collect(),
            inv_lat: vec![SimTime::ZERO; n_inv],
            n_inv,
            n_dep,
            inv_counts: (0..n_inv).map(|s| plan.slot_count(s) as u64).collect(),
            inv_is_weight: (0..n_inv).map(|s| plan.slot_is_weight(s)).collect(),
            dep_counts,
            solo_flash_lat: SimTime::ZERO,
            solo_npu_lat: SimTime::ZERO,
            inv_traffic: TrafficBreakdown::default(),
            inv_stream_traffic: TrafficBreakdown::default(),
            inv_request_traffic: TrafficBreakdown::default(),
            inv_npu_ops: vec![0; n_inv],
            inv_flash_ops: vec![0; n_inv],
            gemvs_per_token,
            priced: false,
            attn: AttnPrefix::new(),
        }
    }

    /// Builds [`PlanTable::fast_lat`] from the priced invariant slots.
    /// Idempotent; the invariant prices never change once set.
    fn build_fast_lat(&mut self) {
        if self.fast_lat.len() == self.slots.len() {
            return;
        }
        debug_assert!(self.priced, "fast_lat needs priced invariant slots");
        self.fast_lat = self
            .slots
            .iter()
            .map(|&s| {
                let s = s as usize;
                if s < self.n_inv {
                    let lat = self.inv_lat[s].as_picos();
                    debug_assert!(lat < DEP_LAT_MARK, "latency collides with dep marker");
                    lat
                } else {
                    u64::MAX - (s - self.n_inv) as u64
                }
            })
            .collect();
    }
}

/// `fast_lat` values at or above this are seq-dependent-slot markers
/// (`u64::MAX - dep_index`), not latencies.
const DEP_LAT_MARK: u64 = u64::MAX - MAX_DEP_SLOTS as u64;

/// Branch-layout hint: calling this marks the enclosing block cold, so
/// the replay loop's rare arms (one token boundary per `n_ops` events)
/// are laid out away from the hot op path.
#[cold]
#[inline(never)]
fn cold_mark() {}

/// Prices the attention slots at sequence position `seq` through the
/// table's prefix table and returns the position's per-slot latencies
/// plus its combined count-scaled traffic. First visit of a position
/// prices it through [`System::op_cost`] in ascending slot order —
/// exactly the calls (and therefore the cache misses) the per-op loop
/// makes — and every later visit is two adjacent prefix reads.
fn attn_at(
    system: &mut System,
    plan: &TokenPlan,
    table: &mut PlanTable,
    seq: usize,
) -> ([SimTime; MAX_DEP_SLOTS], TrafficBreakdown) {
    let n_inv = table.n_inv;
    let n_dep = table.n_dep;
    let dep_counts = table.dep_counts;
    table.attn.ensure(
        seq,
        seq + 1,
        AttnPoint::default(),
        &mut |pos| {
            let mut p = AttnPoint::default();
            for (d, &count) in dep_counts.iter().enumerate().take(n_dep) {
                let cost = system.op_cost(&plan.slot_op(n_inv + d, pos));
                p.lat[d] = cost.latency;
                p.traffic.absorb_scaled(&cost.traffic, count);
            }
            p
        },
        &mut |a, b| {
            for d in 0..MAX_DEP_SLOTS {
                a.lat[d] += b.lat[d];
            }
            a.traffic.absorb(&b.traffic);
        },
    );
    let (lo, hi) = table.attn.range(seq, seq + 1);
    let mut lat = [SimTime::ZERO; MAX_DEP_SLOTS];
    for (d, l) in lat.iter_mut().enumerate().take(n_dep) {
        *l = hi.lat[d] - lo.lat[d];
    }
    (lat, hi.traffic.difference(&lo.traffic))
}

/// Prices the seq-invariant slots once, filling the latency table and
/// both traffic views (serial total for the unbatched engines, the
/// stream/per-request split for batched steps). Lazy so an empty trace
/// prices nothing, like the engine it replaced.
fn price_invariant(system: &mut System, plan: &TokenPlan, table: &mut PlanTable) {
    if table.priced {
        return;
    }
    for s in 0..table.n_inv {
        let cost = system.op_cost(&plan.slot_op(s, 0));
        table.inv_lat[s] = cost.latency;
        let count = plan.slot_count(s) as u64;
        table.inv_traffic.absorb_scaled(&cost.traffic, count);
        if plan.slot_is_weight(s) {
            table.solo_flash_lat += cost.latency * count;
            // A weight slot's *weight bytes* (NAND stream, in-flash and
            // D2D consumption) are shared by a batch; everything else —
            // each member multiplying the streamed weights by its own
            // activations on both the flash cores and the NPU, and any
            // DRAM traffic a weight op might ever book — repeats per
            // member, same as the non-weight slots.
            table.inv_npu_ops[s] = cost.traffic.npu_ops;
            table.inv_flash_ops[s] = cost.traffic.flash_ops;
            let stream = TrafficBreakdown {
                nand_array_bytes: cost.traffic.nand_array_bytes,
                in_flash_bytes: cost.traffic.in_flash_bytes,
                d2d_bytes: cost.traffic.d2d_bytes,
                ..TrafficBreakdown::default()
            };
            let mut per_member = cost.traffic;
            per_member.nand_array_bytes = 0;
            per_member.in_flash_bytes = 0;
            per_member.d2d_bytes = 0;
            table.inv_stream_traffic.absorb_scaled(&stream, count);
            table.inv_request_traffic.absorb_scaled(&per_member, count);
        } else {
            table.solo_npu_lat += cost.latency * count;
            table
                .inv_request_traffic
                .absorb_scaled(&cost.traffic, count);
        }
    }
    table.priced = true;
}

/// Where a request sits in its lifecycle: the serving state machine
/// `Queued → Prefilling → Decoding → Done`. With [`PrefillMode::Off`]
/// (or an empty prompt) the `Prefilling` state is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Admitted (or awaiting admission) with no work dispatched yet.
    Queued,
    /// The prefill stage holds the device (flash stream + NPU GeMMs).
    Prefilling,
    /// Emitting tokens through the shared [`TokenPlan`].
    Decoding,
    /// All tokens emitted; the request has left the engine.
    Done,
}

/// Per-request execution state, laid out struct-of-arrays.
///
/// The event loops scan a handful of fields per request on every
/// scheduling decision — the span boundary computation's min-remaining
/// scan, the batched walk's per-member sequence positions and attention
/// latencies, the round-robin recency keys — while the rest (arrival
/// stamps, report timestamps, client bindings) is touched only at
/// admission and completion. A `Vec` of one heterogeneous struct
/// strides those hot scans over the cold report fields; splitting the
/// loop-scanned fields into dense parallel arrays keeps each scan on a
/// contiguous lane of same-typed values. Pure layout change: every
/// site reads and writes the same values in the same order, so reports
/// are bit-identical to the array-of-structs engine (pinned by the
/// goldens and the span-equivalence suite).
#[derive(Debug, Default)]
struct RequestPool {
    /// Lifecycle phase (`Queued → Prefilling → Decoding → Done`).
    phase: Vec<Phase>,
    /// Decode tokens still owed — the operand of the span boundary
    /// computation's min-remaining scan.
    remaining: Vec<usize>,
    /// Position in the shared [`TokenPlan`] (carries the sequence
    /// length the batched walk reads per member per step).
    cursor: Vec<OpCursor>,
    /// Start of the token currently being decoded.
    token_started: Vec<SimTime>,
    /// Latencies of the current token's seq-dependent slots, refreshed
    /// at each token start.
    dep_lat: Vec<[SimTime; MAX_DEP_SLOTS]>,
    /// Monotone stamp of the last time a resource scheduled each
    /// request (round-robin recency key).
    last_scheduled: Vec<u64>,
    /// Per-request fault stream, forked from `fault_root` at push time
    /// (empty-state generators when faults are off — never drawn from).
    fault_rng: Vec<SplitMix64>,
    /// Fault-added picoseconds of the request's current token, consumed
    /// by its first flash dispatch (always 0 with faults off).
    fault_extra: Vec<u64>,
    /// Root generator the per-request streams fork from; `None` (the
    /// default) when faults are off. Seeded before the trace loads so
    /// stream assignment follows push order — deterministic and
    /// policy-independent.
    fault_root: Option<SplitMix64>,
    /// The boundary-only half of each request's state.
    cold: Vec<ColdRequest>,
}

/// The cold half of a request's state: everything a [`RequestReport`]
/// needs that no inner loop scans.
#[derive(Debug)]
struct ColdRequest {
    shape: RequestShape,
    arrived: SimTime,
    started: Option<SimTime>,
    /// When the prefill stage completed (set iff one ran).
    prefill_end: Option<SimTime>,
    first_token: Option<SimTime>,
    /// Closed-loop client this request belongs to, if any.
    client: Option<usize>,
}

impl RequestPool {
    /// A pool with every parallel array sized for `n` requests up
    /// front, so the deep-queue regime (hundreds of queued arrivals,
    /// closed-loop respawns) never reallocates the hot arrays
    /// mid-loop. Capacity only — contents and push order are
    /// unchanged, so reports are bit-identical (pinned by the goldens).
    fn with_capacity(n: usize) -> Self {
        RequestPool {
            phase: Vec::with_capacity(n),
            remaining: Vec::with_capacity(n),
            cursor: Vec::with_capacity(n),
            token_started: Vec::with_capacity(n),
            dep_lat: Vec::with_capacity(n),
            last_scheduled: Vec::with_capacity(n),
            fault_rng: Vec::with_capacity(n),
            fault_extra: Vec::with_capacity(n),
            fault_root: None,
            cold: Vec::with_capacity(n),
        }
    }

    /// Appends a fresh request and returns its id. The single
    /// construction site for request state — shared by trace admission
    /// and the closed-loop respawn path inside the event loops.
    fn push(&mut self, shape: RequestShape, arrived: SimTime, client: Option<usize>) -> usize {
        let id = self.cold.len();
        debug_assert!(
            id < SPAN_BOUNDARY,
            "request ids collide with event sentinels"
        );
        self.phase.push(Phase::Queued);
        self.remaining.push(shape.new_tokens);
        self.cursor.push(OpCursor::new(shape.prompt_len));
        self.token_started.push(arrived);
        self.dep_lat.push([SimTime::ZERO; MAX_DEP_SLOTS]);
        self.last_scheduled.push(0);
        self.fault_rng.push(match &mut self.fault_root {
            Some(root) => root.fork(),
            // simlint: allow(D1) — placeholder stream for fault-free runs; never drawn from
            None => SplitMix64::new(0),
        });
        self.fault_extra.push(0);
        self.cold.push(ColdRequest {
            shape,
            arrived,
            started: None,
            prefill_end: None,
            first_token: None,
            client,
        });
        id
    }

    /// Tokens generated so far — the report-facing complement of
    /// [`RequestPool::remaining`].
    fn tokens_done(&self, id: usize) -> usize {
        self.cold[id].shape.new_tokens - self.remaining[id]
    }

    /// Assembles the completion report for `id` finishing at `now`.
    /// The single definition shared by both event loops.
    fn completion_report(&self, id: usize, now: SimTime) -> RequestReport {
        let c = &self.cold[id];
        let started = c.started.expect("completed request never started");
        RequestReport {
            id,
            arrived: c.arrived,
            started,
            prefill_end: c.prefill_end.unwrap_or(started),
            first_token_at: c.first_token.expect("completed request has tokens"),
            finished: now,
            tokens: self.tokens_done(id),
        }
    }
}

/// The serving scheduler's event core.
///
/// A general priority queue is overkill here: each resource serves one
/// op at a time, so at most one completion is pending per resource, and
/// the only other event source is the arrival sequence. "Next event" is
/// therefore a three-way minimum over two slots and the arrival heap.
/// Ordering matches [`sim_core::EventQueue`] exactly: earliest
/// `(time, schedule_stamp)` wins, so simultaneous events fire in the
/// order they were scheduled (FIFO) and every run is deterministic.
#[derive(Debug, Default)]
struct EventCore {
    /// Pending op completion per resource: `(fires_at_ps, stamp, req)`.
    op_done: [Option<(u64, u64, u32)>; 2],
    /// Pending arrivals as `(time_ps, stamp, req)`, earliest first.
    arrivals: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Global schedule stamp (FIFO tie-break).
    stamp: u64,
    /// Timestamp of the most recently fired event.
    now: SimTime,
}

/// Which event source fired; see [`EventCore::pop`].
#[derive(Debug, Clone, Copy)]
enum Fired {
    /// Op completion on a resource slot, for a request.
    Op(usize, usize),
    /// Arrival of a request.
    Arrive(usize),
}

impl EventCore {
    /// A core whose arrival heap holds `n` pending arrivals without
    /// growing — an open trace schedules its whole arrival sequence up
    /// front, so sizing from the trace length keeps the heap's one
    /// allocation out of the event loop.
    fn with_capacity(n: usize) -> Self {
        EventCore {
            arrivals: BinaryHeap::with_capacity(n),
            ..EventCore::default()
        }
    }

    fn schedule_arrival(&mut self, at: SimTime, id: usize) {
        let stamp = self.stamp;
        self.stamp += 1;
        self.arrivals
            .push(Reverse((at.as_picos(), stamp, id as u32)));
    }

    #[inline]
    fn schedule_op(&mut self, class_slot: usize, at: SimTime, id: usize) {
        debug_assert!(self.op_done[class_slot].is_none(), "resource already busy");
        let stamp = self.stamp;
        self.stamp += 1;
        self.op_done[class_slot] = Some((at.as_picos(), stamp, id as u32));
    }

    /// Whether resource `class_slot` is serving an op.
    #[inline]
    fn busy(&self, class_slot: usize) -> bool {
        self.op_done[class_slot].is_some()
    }

    /// Earliest pending arrival's timestamp (picoseconds), if any —
    /// the next externally imposed scheduling boundary a coalesced
    /// span must respect.
    #[inline]
    fn next_arrival_ps(&self) -> Option<u64> {
        self.arrivals.peek().map(|&Reverse((at, _, _))| at)
    }

    /// Advances the schedule stamp by `n` without scheduling anything.
    /// Span fast-forwarding accounts for the per-op events it elides so
    /// stamp-based FIFO tie-breaking (and the round-robin recency keys
    /// derived from the sibling dispatch stamp) stay identical to
    /// per-op stepping.
    #[inline]
    fn bump_stamp(&mut self, n: u64) {
        self.stamp += n;
    }

    /// Pops an arrival scheduled for exactly `now`, if any — used by
    /// the batched scheduler to fold simultaneous arrivals (bursts,
    /// closed-loop respawns) into the token boundary being processed
    /// instead of making them wait out a full batch step. The clock is
    /// unchanged: only events at the current instant qualify.
    fn pop_due_arrival(&mut self, now: SimTime) -> Option<usize> {
        let &Reverse((at, _, req)) = self.arrivals.peek()?;
        if at != now.as_picos() {
            return None;
        }
        self.arrivals.pop();
        Some(req as usize)
    }

    /// Fires the earliest pending event, advancing the clock.
    #[inline]
    fn pop(&mut self) -> Option<Fired> {
        let mut best: Option<(u64, u64, Fired)> = None;
        for s in 0..2 {
            if let Some((at, stamp, req)) = self.op_done[s] {
                if best.map_or(true, |(bt, bs, _)| (at, stamp) < (bt, bs)) {
                    best = Some((at, stamp, Fired::Op(s, req as usize)));
                }
            }
        }
        if let Some(&Reverse((at, stamp, req))) = self.arrivals.peek() {
            if best.map_or(true, |(bt, bs, _)| (at, stamp) < (bt, bs)) {
                best = Some((at, stamp, Fired::Arrive(req as usize)));
            }
        }
        let (at, _, fired) = best?;
        debug_assert!(at >= self.now.as_picos(), "event core went back in time");
        self.now = SimTime::from_picos(at);
        match fired {
            Fired::Op(s, _) => self.op_done[s] = None,
            Fired::Arrive(_) => {
                self.arrivals.pop();
            }
        }
        Some(fired)
    }
}

struct Simulation<'a> {
    system: System,
    plan: &'a TokenPlan,
    table: PlanTable,
    policy: SchedulePolicy,
    /// Prefill simulation state: `Some` iff [`PrefillMode::Modeled`],
    /// holding the shared aggregates and the per-prompt-length cost
    /// buckets.
    prefill: Option<PrefillState<'a>>,
    ev: EventCore,
    ready: RequestQueue,
    requests: RequestPool,
    busy_track: [BusyTracker; 2],
    stamp: u64,
    /// Remaining requests per closed-loop client.
    client_remaining: Vec<usize>,
    closed_shape: Option<RequestShape>,
    traffic: TrafficBreakdown,
    token_latencies: Samples,
    queueing: Aggregate,
    done: Vec<RequestReport>,
    /// Arrival time of the first *admitted* request — rejected
    /// arrivals are not simulated and must not stretch the makespan.
    first_arrival: Option<SimTime>,
    /// [`kv_cache`]`().max_tokens()`: arrivals whose context exceeds
    /// it are rejected, not simulated.
    kv_max_context: usize,
    kv_rejections: u64,
    /// Most tokens one span may coalesce (0 = per-op stepping).
    span_cap: usize,
    /// Whether the interleaved replay loop may take over multi-request
    /// steady stretches ([`run_interleaved`]). On for any
    /// [`SpanMode::Coalesced`] — independent of `span_cap`, because the
    /// replay is a faithful per-op re-execution (exact under fault
    /// injection too), not a speculative coalescing.
    replay: bool,
    /// Fault-injection state; `None` when [`FaultMode::Off`].
    faults: Option<FaultRun>,
}

/// Shared prefill-pricing state of one simulation run.
#[derive(Debug)]
struct PrefillState<'a> {
    plan: &'a PrefillPlan,
    /// Cost per prompt length, derived once per bucket. The bucket
    /// count is also the derivation count for op-pricing accounting.
    buckets: BTreeMap<usize, PrefillCost>,
    /// Total device time spent prefilling.
    busy: SimTime,
}

impl<'a> PrefillState<'a> {
    fn new(engine: &'a DeviceEngine) -> Option<Self> {
        match engine.prefill {
            PrefillMode::Off => None,
            PrefillMode::Modeled => Some(PrefillState {
                plan: &engine.prefill_plan,
                buckets: BTreeMap::new(),
                busy: SimTime::ZERO,
            }),
        }
    }

    /// Prompt-length buckets actually derived (each one made
    /// [`PrefillCost::COMPONENT_OPS`] op-cost lookups).
    fn priced(&self) -> u64 {
        self.buckets.len() as u64
    }
}

fn slot(class: OpClass) -> usize {
    match class {
        OpClass::Flash => 0,
        OpClass::Npu => 1,
    }
}

/// Event-core sentinel: the NPU-side hold of an in-flight prefill. A
/// prefill occupies both resources; its completion event lives on the
/// flash slot (owned by the prefilling request) and this sentinel
/// parks the NPU slot for the same window, firing as a no-op release.
const PREFILL_HOLD: usize = u32::MAX as usize - 1;

/// Event-core sentinel for the batched loop's admission-prefill window:
/// the serialized prefills of newly joined members, after which the
/// delayed batch step starts.
const BATCH_PREFILL: usize = u32::MAX as usize - 2;

/// Event-core sentinel for a coalesced span's end in the batched loop:
/// the token boundary closing a bulk-priced run of batch steps, handled
/// by the ordinary [`BatchedSimulation::token_boundary`].
const SPAN_BOUNDARY: usize = u32::MAX as usize - 3;

/// Prices (or recalls) the prefill stage of an `m`-token prompt.
///
/// Derived once per `(model, quant, prompt_len)` bucket — the engine
/// fixes `(model, quant)`, so the key is the prompt length. The bucket
/// count doubles as the derivation count for the report's op-pricing
/// accounting ([`PrefillCost::COMPONENT_OPS`] cache lookups per
/// derivation).
fn prefill_cost_bucketed(
    system: &mut System,
    plan: &PrefillPlan,
    buckets: &mut BTreeMap<usize, PrefillCost>,
    m: usize,
) -> PrefillCost {
    if let Some(c) = buckets.get(&m) {
        return *c;
    }
    let c = system.prefill_cost(plan, m);
    buckets.insert(m, c);
    c
}

/// Sizing hints a trace implies: `(total requests over the run, peak
/// simultaneously scheduled arrivals)` — the capacities
/// [`RequestPool::with_capacity`] and [`EventCore::with_capacity`]
/// reserve before the loop starts. A closed loop holds at most one
/// scheduled arrival per client (respawns replace completions), while
/// an open trace schedules everything up front.
fn trace_sizes(trace: &ArrivalTrace) -> (usize, usize) {
    match trace {
        ArrivalTrace::Open(arrivals) => (arrivals.len(), arrivals.len()),
        ArrivalTrace::ClosedLoop {
            clients,
            requests_per_client,
            ..
        } => (clients.saturating_mul(*requests_per_client), *clients),
    }
}

/// Seeds the request pool and arrival events from a trace. Returns
/// `(client_remaining, closed_shape)`. Shared by both simulation
/// loops, so arrival order — and therefore event stamps — is
/// identical regardless of policy.
fn load_trace(
    trace: &ArrivalTrace,
    requests: &mut RequestPool,
    ev: &mut EventCore,
) -> (Vec<usize>, Option<RequestShape>) {
    match trace {
        ArrivalTrace::Open(arrivals) => {
            for a in arrivals {
                let id = requests.push(a.shape, a.at, None);
                ev.schedule_arrival(a.at, id);
            }
            (Vec::new(), None)
        }
        ArrivalTrace::ClosedLoop {
            clients,
            requests_per_client,
            shape,
        } => {
            // The variant's fields are public, so a hand-built trace
            // can bypass `ArrivalTrace::closed_loop`'s asserts.
            assert!(
                *clients >= 1 && *requests_per_client >= 1,
                "closed loop needs at least one client and one request per client"
            );
            let remaining = vec![requests_per_client - 1; *clients];
            for client in 0..*clients {
                let id = requests.push(*shape, SimTime::ZERO, Some(client));
                ev.schedule_arrival(SimTime::ZERO, id);
            }
            (remaining, Some(*shape))
        }
    }
}

/// Closed-loop respawn: the client behind a departing request
/// (completed or rejected) issues its next request at the same
/// instant. The single implementation shared by both event loops —
/// a free function so callers can hold disjoint borrows of their
/// simulation's fields.
fn respawn_client(
    requests: &mut RequestPool,
    ev: &mut EventCore,
    client_remaining: &mut [usize],
    closed_shape: Option<RequestShape>,
    client: Option<usize>,
    now: SimTime,
) {
    if let Some(client) = client {
        if client_remaining[client] > 0 {
            client_remaining[client] -= 1;
            let shape = closed_shape.expect("closed loop has a shape");
            let next = requests.push(shape, now, Some(client));
            ev.schedule_arrival(now, next);
        }
    }
}

/// The DRAM KV cache for this engine's model and quantization — the
/// single source of capacity truth: its `max_tokens()` is the
/// never-fits rejection criterion every policy shares, and the batched
/// loop additionally reserves and releases context through it.
fn kv_cache(engine: &DeviceEngine) -> KvCache {
    KvCache::new(
        kv_bytes_per_token(&engine.model, engine.cfg.quant),
        &engine.cfg.npu,
    )
}

/// Starts a token for request `r`: prices this token's seq-dependent
/// slots (through the memoizing [`System::op_cost`]) and books the
/// whole token's traffic up front — totals at completion are identical
/// to per-dispatch accounting because every admitted token runs all its
/// ops. The cursor must already sit at the token's first op. Free
/// function so the hot loop can call it while holding disjoint borrows
/// of the simulation's fields.
fn begin_token(
    system: &mut System,
    plan: &TokenPlan,
    table: &mut PlanTable,
    traffic: &mut TrafficBreakdown,
    requests: &mut RequestPool,
    faults: &mut Option<FaultRun>,
    id: usize,
) {
    price_invariant(system, plan, table);
    traffic.absorb(&table.inv_traffic);
    let seq = requests.cursor[id].seq_len();
    let (dep_lat, dep_traffic) = attn_at(system, plan, table, seq);
    requests.dep_lat[id] = dep_lat;
    traffic.absorb(&dep_traffic);
    // Fault sampling at token granularity: the token's NAND weight
    // stream is the page-read window, drawn from the request's own
    // stream so reports are independent of interleaving order. The
    // extra time lands on the token's first flash dispatch.
    if let Some(f) = faults {
        let extra = f.window_extra(
            table.inv_stream_traffic.nand_array_bytes,
            table.solo_flash_lat.as_picos(),
            &mut requests.fault_rng[id],
        );
        requests.fault_extra[id] = extra;
    }
}

/// Retires one token for `r` at boundary time `tb`: the count, the
/// latency sample (clocked from `token_started`, which may predate the
/// token for a request's first — queue wait and prefill are in the
/// first token's latency under every policy), the clock reset and the
/// first-token stamp. The **single** definition of per-token retire
/// bookkeeping, shared by both per-token handlers and both span paths —
/// span/per-op bit-exactness requires these four sites to agree, so
/// the agreement is structural rather than copy-discipline.
#[inline]
fn retire_token(requests: &mut RequestPool, id: usize, tb: SimTime, token_latencies: &mut Samples) {
    requests.remaining[id] -= 1;
    token_latencies.push(tb.saturating_sub(requests.token_started[id]).as_secs_f64());
    requests.token_started[id] = tb;
    let first = &mut requests.cold[id].first_token;
    if first.is_none() {
        *first = Some(tb);
    }
}

/// Deadline check at a token boundary, shared by both event loops:
/// returns whether the in-flight request `id` must be shed at `now`,
/// updating the fault counters. Checks are strict (`>`): a request
/// finishing exactly on its deadline meets it. A request whose tokens
/// are all done is never shed — late completions are penalized through
/// goodput scoring instead, so the completion path stays the only exit
/// for finished work.
fn deadline_shed(f: &mut FaultRun, requests: &RequestPool, id: usize, now: SimTime) -> bool {
    if requests.remaining[id] == 0 {
        return false;
    }
    let elapsed = now.saturating_sub(requests.cold[id].arrived);
    // The TTFT check fires exactly once, at the first token's boundary.
    if requests.tokens_done(id) == 1 {
        if let Some(dl) = f.ttft_deadline() {
            if elapsed > dl {
                f.ttft_timeouts += 1;
                f.shed_tokens += requests.tokens_done(id) as u64;
                return true;
            }
        }
    }
    if let Some(dl) = f.total_deadline() {
        if elapsed > dl {
            f.deadline_sheds += 1;
            f.shed_tokens += requests.tokens_done(id) as u64;
            return true;
        }
    }
    false
}

/// Span fast-forwarding for the per-op loops: coalesces a run of whole
/// tokens for the **lone** in-flight request `id`, which must be parked
/// at a token boundary (cursor at op 0, its current token already
/// priced and booked by [`begin_token`]). With nothing else in flight
/// the request's ops run strictly serially, so a token's latency is the
/// sum of the plan's slot latencies — the seq-invariant positions from
/// the [`PlanTable`], the attention positions at the token's own
/// sequence position — and a run of `k` tokens is priced in the exact
/// per-token order without touching the event machinery.
///
/// The span ends at the earliest scheduling boundary: the request's
/// completion, a forced span cap, or the **last token boundary at or
/// before the next arrival** — a token an arrival would land inside
/// must run per-op, because the newcomer starts interleaving on the
/// free resource mid-token. Returns the number of tokens coalesced;
/// 0 means the very next token would cross an arrival and the caller
/// must fall back to per-op dispatch for it.
///
/// The final token's last op becomes the span-end event, so the
/// ordinary completion handler retires it (sample, completion report,
/// respawn) exactly as in per-op stepping. Elided per-op dispatches are
/// accounted into both schedule stamps so round-robin recency keys and
/// FIFO tie-breaks stay identical.
#[allow(clippy::too_many_arguments)]
fn run_solo_span(
    system: &mut System,
    plan: &TokenPlan,
    table: &mut PlanTable,
    ev: &mut EventCore,
    busy_track: &mut [BusyTracker; 2],
    traffic: &mut TrafficBreakdown,
    token_latencies: &mut Samples,
    stamp: &mut u64,
    requests: &mut RequestPool,
    id: usize,
    span_cap: usize,
    now: SimTime,
) -> usize {
    debug_assert!(table.priced, "a begun token implies a priced table");
    debug_assert_eq!(
        requests.cursor[id].index(),
        0,
        "span starts at a token boundary"
    );
    let n_ops = plan.len();
    let next_arrival = ev.next_arrival_ps();
    let remaining = requests.remaining[id];
    let mut lats: Vec<SimTime> = Vec::with_capacity(remaining.min(span_cap).min(4096));
    let mut t = now;
    let mut k = 0usize;
    // Attention latencies of the token under consideration. The first
    // token's were already priced (and its traffic booked) by
    // `begin_token`; later tokens are priced speculatively below and
    // booked only on acceptance — a rejected token is re-priced by its
    // own `begin_token` later, hitting the memo.
    let mut dep = requests.dep_lat[id];
    let mut unbooked: Option<TrafficBreakdown> = None;
    loop {
        let mut lat = table.solo_flash_lat + table.solo_npu_lat;
        for (d, &dep_lat) in dep.iter().enumerate().take(table.n_dep) {
            lat += dep_lat * table.dep_counts[d];
        }
        let end = t + lat;
        if next_arrival.is_some_and(|ta| end.as_picos() > ta) {
            // The token would overlap the arrival: leave it per-op.
            break;
        }
        if let Some(tr) = unbooked.take() {
            // Book the accepted token exactly as `begin_token` would
            // have at its start.
            traffic.absorb(&table.inv_traffic);
            traffic.absorb(&tr);
        }
        k += 1;
        t = end;
        lats.push(lat);
        if k == remaining || k >= span_cap {
            break;
        }
        if next_arrival == Some(t.as_picos()) {
            // An arrival lands exactly on this boundary; it must see
            // the engine at the boundary, so the span stops here.
            break;
        }
        // Price the next token's attention slots (speculative; the
        // prefix table keeps the entries either way, and a rejected
        // token's position is re-read — not re-priced — by its own
        // `begin_token` later).
        let seq = requests.cursor[id].seq_len() + k;
        let (lat, tr) = attn_at(system, plan, table, seq);
        dep = lat;
        unbooked = Some(tr);
    }
    if k == 0 {
        return 0;
    }
    // Per-op bookkeeping the span elides: one dispatch (and one event
    // stamp) per op of every coalesced token.
    let elided = (k * n_ops) as u64;
    *stamp += elided;
    requests.last_scheduled[id] = *stamp;
    let started = &mut requests.cold[id].started;
    if started.is_none() {
        *started = Some(now);
    }
    // Interior boundaries: every token but the last retires inline.
    let mut tb = now;
    for &lat in &lats[..k - 1] {
        tb += lat;
        retire_token(requests, id, tb, token_latencies);
    }
    // Advance the cursor past the retired tokens in one shot, then
    // park it one op short of the final token's end so the ordinary
    // completion handler's advance lands on the token boundary.
    requests.cursor[id].advance_by(k - 1);
    requests.cursor[id].seek(n_ops - 1);
    // One busy interval per resource for the whole span: the per-class
    // totals are identical to per-op interval accounting (integer
    // sums), and each interval ends before the span does.
    let flash_busy = table.solo_flash_lat * k as u64;
    busy_track[0].add_interval(now, now + flash_busy);
    busy_track[1].add_interval(now, now + ((t - now) - flash_busy));
    ev.schedule_op(slot(table.classes[n_ops - 1]), t, id);
    ev.bump_stamp(elided - 1);
    k
}

/// Ready-set interface of the interleaved replay loop
/// ([`run_interleaved`]): a policy-specialized stand-in for
/// [`RequestQueue`] whose operations avoid per-op heap churn.
///
/// Implementations must reproduce `RequestQueue`'s pop order exactly
/// under the replay loop's **fixed-membership discipline**: the member
/// set is frozen at entry (only members and their re-enqueues flow
/// through), and each policy's key law holds — FCFS keys are static
/// per member, round-robin keys strictly increase along each enqueue
/// source.
trait FastReady {
    /// Whether a member popped as the minimum stays the minimum for as
    /// long as the member set and every key are unchanged (true for
    /// FCFS, whose keys are static; false for round-robin, whose
    /// rotation re-keys every dispatch). Inside a frozen-membership
    /// stretch this licenses redispatching the completing member
    /// without touching the ready structure.
    const RETAINS_MIN: bool;
    /// Queues member `id` for resource `rs`. `src` is the resource
    /// whose completion triggered the enqueue and `key` the policy key
    /// at enqueue time (what the general loop's `ready_key` computes).
    fn enqueue(&mut self, rs: usize, src: usize, key: u64, id: u32);
    /// Removes and returns the queued member minimizing `(key, id)`
    /// for `rs` — the [`RequestQueue::pop_min`] contract.
    fn pop_min(&mut self, rs: usize) -> Option<u32>;
    /// Pops the sole queued member (the caller counted exactly one),
    /// returning `(rs, id)` with `rs` chosen like the general loop: the
    /// flash list if non-empty, the NPU list otherwise.
    fn pop_sole(&mut self) -> (usize, u32);
    /// Restores the member popped by [`FastReady::pop_sole`] after a
    /// declined solo-span attempt.
    fn requeue_sole(&mut self, rs: usize, key: u64, id: u32);
}

/// FCFS ready-set for the replay loop: arrival keys are static, so the
/// members are ranked once at entry (ascending `(arrived, id)` — the
/// heap's exact order) and each resource's ready set is a rank-indexed
/// bitmask. Pop-min is a trailing-zeros scan; enqueue sets one bit.
#[derive(Debug, Default)]
struct FcfsReady {
    /// Member id per rank.
    order: Vec<u32>,
    /// id → rank, dense over the request pool. Member entries are
    /// reset at writeback; anything else is never read.
    rank: Vec<u32>,
    /// Rank-indexed ready bits per resource.
    mask: [Vec<u64>; 2],
    /// Entry scratch: `(key, id)` of every member, heap order.
    members: Vec<(u64, u32)>,
    /// Entry scratch: `(resource, id)` of the initially queued members.
    queued: Vec<(u8, u32)>,
}

impl FcfsReady {
    /// Drains the heaps, ranks every member (queued and in-flight),
    /// and seeds the masks. Returns the queued count per resource.
    fn begin(
        &mut self,
        ready: &mut RequestQueue,
        ev: &EventCore,
        requests: &RequestPool,
    ) -> [usize; 2] {
        debug_assert!(self.order.is_empty() && self.members.is_empty());
        let mut n = [0usize; 2];
        for (rs, count) in n.iter_mut().enumerate() {
            while let Some(Reverse((key, id))) = ready.ready[rs].pop() {
                self.members.push((key, id as u32));
                self.queued.push((rs as u8, id as u32));
                *count += 1;
            }
        }
        for slot_ev in &ev.op_done {
            if let Some((_, _, id)) = *slot_ev {
                self.members
                    .push((requests.cold[id as usize].arrived.as_picos(), id));
            }
        }
        self.members.sort_unstable();
        if self.rank.len() < requests.phase.len() {
            self.rank.resize(requests.phase.len(), u32::MAX);
        }
        for (r, &(_, id)) in self.members.iter().enumerate() {
            self.rank[id as usize] = r as u32;
            self.order.push(id);
        }
        let words = self.members.len().div_ceil(64);
        for m in &mut self.mask {
            m.clear();
            m.resize(words, 0);
        }
        for i in 0..self.queued.len() {
            let (rs, id) = self.queued[i];
            let r = self.rank[id as usize] as usize;
            self.mask[rs as usize][r / 64] |= 1u64 << (r % 64);
        }
        n
    }

    /// Pushes the still-queued members back into the heaps (their keys
    /// are static, so re-push order is irrelevant to pop order) and
    /// resets the member ranks for the next entry.
    fn finish(&mut self, ready: &mut RequestQueue, requests: &RequestPool) {
        for rs in 0..2 {
            for w in 0..self.mask[rs].len() {
                let mut word = self.mask[rs][w];
                while word != 0 {
                    let r = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let id = self.order[r] as usize;
                    ready.enqueue(rs, requests.cold[id].arrived.as_picos(), id);
                }
            }
            self.mask[rs].clear();
        }
        for &id in &self.order {
            self.rank[id as usize] = u32::MAX;
        }
        self.order.clear();
        self.members.clear();
        self.queued.clear();
    }
}

impl FastReady for FcfsReady {
    const RETAINS_MIN: bool = true;

    #[inline]
    fn enqueue(&mut self, rs: usize, _src: usize, _key: u64, id: u32) {
        let r = self.rank[id as usize] as usize;
        debug_assert_ne!(r, u32::MAX as usize, "enqueue of a non-member");
        self.mask[rs][r / 64] |= 1u64 << (r % 64);
    }

    #[inline]
    fn pop_min(&mut self, rs: usize) -> Option<u32> {
        for (w, word) in self.mask[rs].iter_mut().enumerate() {
            if *word != 0 {
                let b = word.trailing_zeros() as usize;
                *word &= *word - 1;
                return Some(self.order[w * 64 + b]);
            }
        }
        None
    }

    fn pop_sole(&mut self) -> (usize, u32) {
        let rs = usize::from(self.mask[0].iter().all(|&w| w == 0));
        let id = self.pop_min(rs).expect("sole member is queued");
        (rs, id)
    }

    fn requeue_sole(&mut self, rs: usize, _key: u64, id: u32) {
        self.enqueue(rs, 0, 0, id);
    }
}

/// One ascending FIFO lane of the round-robin replay ready-set: a
/// power-of-two ring whose front key is cached in a register-friendly
/// field (`u64::MAX` when empty), so the three-way pop-min compares
/// three plain loads. Head and tail grow monotonically and are masked
/// on access; live entries never exceed the member count the ring was
/// sized for.
#[derive(Debug, Default)]
struct RrLane {
    key: Vec<u64>,
    id: Vec<u32>,
    head: usize,
    tail: usize,
    mask: usize,
    /// Key at the head, `u64::MAX` when empty. Real keys are dispatch
    /// stamps (bounded by the dispatch count), never `u64::MAX`.
    front: u64,
}

impl RrLane {
    fn reset(&mut self, cap: usize) {
        let cap = cap.next_power_of_two().max(4);
        if self.key.len() < cap {
            self.key.resize(cap, 0);
            self.id.resize(cap, 0);
        }
        self.mask = self.key.len() - 1;
        self.head = 0;
        self.tail = 0;
        self.front = u64::MAX;
    }

    #[inline]
    fn push(&mut self, key: u64, id: u32) {
        debug_assert!(self.tail - self.head <= self.mask, "lane overflow");
        debug_assert!(
            self.head == self.tail || key >= self.key[(self.tail - 1) & self.mask],
            "lane keys must ascend"
        );
        if self.head == self.tail {
            self.front = key;
        }
        let t = self.tail & self.mask;
        self.key[t] = key;
        self.id[t] = id;
        self.tail += 1;
    }

    #[inline]
    fn pop(&mut self) -> u32 {
        debug_assert!(self.head < self.tail, "pop of an empty lane");
        let h = self.head & self.mask;
        let v = self.id[h];
        self.head += 1;
        self.front = if self.head == self.tail {
            u64::MAX
        } else {
            self.key[self.head & self.mask]
        };
        v
    }
}

/// Round-robin ready-set for the replay loop. Keys are last-scheduled
/// stamps, which strictly increase along each of the three enqueue
/// sources — the entry drain arrives heap-sorted, and each resource
/// completes ops in dispatch-stamp order, so its completions enqueue
/// ascending keys. Three ascending FIFO lanes per resource therefore
/// replace the heap, and pop-min is a three-way cached-front
/// comparison. Fresh never-scheduled members share key 0, but only the
/// (sorted) entry lane can hold them, so cross-lane ties cannot occur.
#[derive(Debug, Default)]
struct RrReady {
    /// `lanes[rs][src]`: src 0 = entry drain, 1 = fed by flash
    /// completions, 2 = fed by NPU completions.
    lanes: [[RrLane; 3]; 2],
}

impl RrReady {
    /// Drains the heaps into the entry lanes (pop order is ascending
    /// `(key, id)`) and sizes every lane for the member count. Returns
    /// the queued count per resource.
    fn begin(&mut self, ready: &mut RequestQueue) -> [usize; 2] {
        let members = ready.ready[0].len() + ready.ready[1].len() + 2;
        let mut n = [0usize; 2];
        for (rs, count) in n.iter_mut().enumerate() {
            for lane in &mut self.lanes[rs] {
                debug_assert_eq!(lane.head, lane.tail);
                lane.reset(members);
            }
            while let Some(Reverse((key, id))) = ready.ready[rs].pop() {
                self.lanes[rs][0].push(key, id as u32);
                *count += 1;
            }
        }
        n
    }

    /// Pushes the still-queued members back into the heaps. Each entry
    /// keeps the key it was enqueued with — its last-scheduled stamp,
    /// unchanged while queued — so heap keys match the general loop's.
    fn finish(&mut self, ready: &mut RequestQueue) {
        for rs in 0..2 {
            for lane in &mut self.lanes[rs] {
                while lane.head < lane.tail {
                    let h = lane.head & lane.mask;
                    ready.enqueue(rs, lane.key[h], lane.id[h] as usize);
                    lane.head += 1;
                }
                lane.front = u64::MAX;
            }
        }
    }
}

impl FastReady for RrReady {
    const RETAINS_MIN: bool = false;

    #[inline]
    fn enqueue(&mut self, rs: usize, src: usize, key: u64, id: u32) {
        self.lanes[rs][src + 1].push(key, id);
    }

    #[inline]
    fn pop_min(&mut self, rs: usize) -> Option<u32> {
        let lanes = &mut self.lanes[rs];
        // Keys are globally unique dispatch stamps (the shared key 0 of
        // fresh members lives only in the sorted entry lane), so strict
        // comparison is total and tie handling is moot.
        let mut best = 0usize;
        let mut bk = lanes[0].front;
        if lanes[1].front < bk {
            best = 1;
            bk = lanes[1].front;
        }
        if lanes[2].front < bk {
            best = 2;
            bk = lanes[2].front;
        }
        if bk == u64::MAX {
            return None;
        }
        Some(lanes[best].pop())
    }

    fn pop_sole(&mut self) -> (usize, u32) {
        let rs = usize::from(self.lanes[0].iter().all(|l| l.front == u64::MAX));
        let id = self.pop_min(rs).expect("sole member is queued");
        (rs, id)
    }

    fn requeue_sole(&mut self, rs: usize, key: u64, id: u32) {
        debug_assert!(self.lanes[rs].iter().all(|l| l.front == u64::MAX));
        self.lanes[rs][0].push(key, id);
    }
}

/// The per-policy replay structures, chosen once per run.
// One long-lived stack local per run; the six-ring round-robin
// variant's size is irrelevant there and boxing it would put a deref
// on every ready-set call in the hot loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum FastLane {
    Fcfs(FcfsReady),
    Rr(RrReady),
}

/// Whether the general loop may hand control to [`run_interleaved`]:
/// the next event to fire must be an op completion (not an arrival)
/// belonging to a `Decoding` request, and — when prefill is modeled —
/// no queued member may be awaiting a prefill (the replay loop has no
/// whole-device dispatch path). Exact, not heuristic: any state this
/// rejects is handled by the general loop, which re-checks after every
/// event.
fn replay_eligible(
    ev: &EventCore,
    ready: &RequestQueue,
    requests: &RequestPool,
    prefill_on: bool,
) -> bool {
    let mut best: Option<(u64, u64)> = None;
    for slot_ev in &ev.op_done {
        if let Some((at, st, id)) = *slot_ev {
            let id = id as usize;
            if id == PREFILL_HOLD || requests.phase[id] != Phase::Decoding {
                return false;
            }
            if best.map_or(true, |b| (at, st) < b) {
                best = Some((at, st));
            }
        }
    }
    let Some(best) = best else {
        return false;
    };
    if let Some(&Reverse((at, st, _))) = ev.arrivals.peek() {
        if (at, st) < best {
            return false;
        }
    }
    if prefill_on {
        for heap in &ready.ready {
            for &Reverse((_, id)) in heap.iter() {
                if requests.phase[id as usize] != Phase::Decoding {
                    return false;
                }
            }
        }
    }
    true
}

/// The interleaved replay loop: executes the multi-request steady
/// state — every live request decoding, arrivals quiescent — as a
/// faithful specialized replica of the general event loop, firing op
/// completions and dispatching through a [`FastReady`] instead of the
/// event core and heaps. Every decision point is replayed in the same
/// order with the same keys and stamps, so the trajectory (dispatch
/// order, busy intervals, fault draws, retire times, completion
/// reports) is bit-identical by construction; what's elided is pure
/// mechanism — heap rebalancing, arrival re-peeks, sentinel and phase
/// checks that the entry conditions ([`replay_eligible`]) already
/// discharged for the whole stretch.
///
/// Runs until the next event is an arrival (a scheduling boundary the
/// general loop owns: admission, KV rejection, prefill entry) or the
/// event core drains, then writes the in-flight events, stamps, and
/// clock back. Token boundaries, deadline sheds, completions,
/// closed-loop respawns and solo-span handoffs are all handled inline
/// through the same shared helpers the general loop calls.
#[allow(clippy::too_many_arguments)]
fn run_interleaved<Q: FastReady>(
    q: &mut Q,
    mut rlen: [usize; 2],
    system: &mut System,
    plan: &TokenPlan,
    table: &mut PlanTable,
    ev: &mut EventCore,
    busy_track: &mut [BusyTracker; 2],
    traffic: &mut TrafficBreakdown,
    token_latencies: &mut Samples,
    queueing: &mut Aggregate,
    done: &mut Vec<RequestReport>,
    stamp: &mut u64,
    requests: &mut RequestPool,
    client_remaining: &mut [usize],
    closed_shape: Option<RequestShape>,
    span_cap: usize,
    faults: &mut Option<FaultRun>,
) {
    let n_ops = plan.len();
    table.build_fast_lat();
    let faults_on = faults.is_some();
    // Local mirrors of the event core's hot state: the two op slots
    // (flattened to sentinel arrays — `u64::MAX` end time marks an
    // empty slot, cheaper to test and update than `Option` tuples),
    // the schedule stamp, the clock, and the earliest pending arrival
    // (refreshed after any respawn). `EventCore::pop`'s ordering is
    // reproduced exactly — stamps are unique, so the slot comparison
    // and the arrival cutoff are total.
    let mut s_at = [u64::MAX; 2];
    let mut s_st = [u64::MAX; 2];
    let mut s_id = [0u32; 2];
    for rs in 0..2 {
        if let Some((at, st, id)) = ev.op_done[rs].take() {
            s_at[rs] = at;
            s_st[rs] = st;
            s_id[rs] = id;
        }
    }
    let mut ev_stamp = ev.stamp;
    let mut d_stamp = *stamp;
    let mut now = ev.now;
    let peek_arrival = |ev: &EventCore| {
        ev.arrivals
            .peek()
            .map_or((u64::MAX, u64::MAX), |&Reverse((at, st, _))| (at, st))
    };
    let mut next_arr = peek_arrival(ev);

    // Lazy busy booking: dispatches that chain gaplessly on a resource
    // (its start equals the previous dispatch's end — always true on a
    // saturated resource) merge into one open run, flushed as a single
    // `add_contiguous` when a starvation gap opens, before a solo-span
    // handoff, and at exit. Busy sum, final `last_end`, and interval
    // count are identical to per-op `add_interval` booking, and the
    // two per-resource trackers are independent, so the deferral is
    // unobservable.
    let mut run_start = [0u64; 2];
    let mut run_end = [u64::MAX; 2]; // sentinel: no open run
    let mut run_k = [0u64; 2];
    macro_rules! flush_busy {
        ($rs:expr) => {{
            let rs = $rs;
            if run_k[rs] > 0 {
                busy_track[rs].add_contiguous(
                    SimTime::from_picos(run_start[rs]),
                    SimTime::from_picos(run_end[rs]),
                    run_k[rs],
                );
                // Dead at the exit-path expansions, where nothing
                // dispatches afterwards.
                #[allow(unused_assignments)]
                {
                    run_k[rs] = 0;
                    run_end[rs] = u64::MAX;
                }
            }
        }};
    }

    // Dispatches `$nid32` on resource `$rs` at `now`. With a literal
    // `$rs` the resource-conditional branches fold away.
    macro_rules! dispatch {
        ($rs:expr, $nid32:expr) => {{
            let rs = $rs;
            let nid32 = $nid32;
            let nid = nid32 as usize;
            debug_assert_eq!(requests.phase[nid], Phase::Decoding);
            d_stamp += 1;
            requests.last_scheduled[nid] = d_stamp;
            if requests.cold[nid].started.is_none() {
                requests.cold[nid].started = Some(now);
            }
            let idx = requests.cursor[nid].index();
            debug_assert_eq!(
                slot(table.classes[idx]),
                rs,
                "ready list / op class mismatch"
            );
            let lat = table.fast_lat[idx];
            let mut latency = if lat >= DEP_LAT_MARK {
                requests.dep_lat[nid][(u64::MAX - lat) as usize]
            } else {
                SimTime::from_picos(lat)
            };
            if faults_on && rs == slot(OpClass::Flash) {
                let extra = std::mem::take(&mut requests.fault_extra[nid]);
                if extra > 0 {
                    latency += SimTime::from_picos(extra);
                }
            }
            let end = now + latency;
            let end_ps = end.as_picos();
            if run_end[rs] == now.as_picos() {
                run_end[rs] = end_ps;
            } else {
                flush_busy!(rs);
                run_start[rs] = now.as_picos();
                run_end[rs] = end_ps;
            }
            run_k[rs] += 1;
            s_at[rs] = end_ps;
            s_st[rs] = ev_stamp;
            s_id[rs] = nid32;
            ev_stamp += 1;
        }};
    }

    // The token-boundary arm: retire, shed/continue/complete, then the
    // general solo-span check and a full dispatch pass. Rare (one op
    // in `n_ops`), so it stays generic over the completing resource.
    macro_rules! boundary {
        ($s:expr, $id32:expr, $id:expr) => {{
            cold_mark();
            let s = $s;
            let id32 = $id32;
            let id = $id;
            retire_token(requests, id, now, token_latencies);
            let shed = faults
                .as_mut()
                .is_some_and(|f| deadline_shed(f, requests, id, now));
            if shed {
                requests.phase[id] = Phase::Done;
                let client = requests.cold[id].client;
                ev.stamp = ev_stamp;
                respawn_client(requests, ev, client_remaining, closed_shape, client, now);
                ev_stamp = ev.stamp;
                next_arr = peek_arrival(ev);
            } else if requests.remaining[id] > 0 {
                requests.cursor[id].next_token();
                begin_token(system, plan, table, traffic, requests, faults, id);
                let rs0 = table.class_slots[0] as usize;
                q.enqueue(rs0, s, requests.last_scheduled[id], id32);
                rlen[rs0] += 1;
            } else {
                requests.phase[id] = Phase::Done;
                let report = requests.completion_report(id, now);
                if let Some(f) = faults {
                    f.note_completion(&report);
                }
                queueing.push(report.queueing_delay().as_secs_f64());
                done.push(report);
                let client = requests.cold[id].client;
                ev.stamp = ev_stamp;
                respawn_client(requests, ev, client_remaining, closed_shape, client, now);
                ev_stamp = ev.stamp;
                next_arr = peek_arrival(ev);
            }

            // Solo-span handoff: same trigger as the general loop's
            // span check (under faults `span_cap` is 0, so speculative
            // solo pricing stays off and the replay remains causal).
            if span_cap > 0 && s_at[0] == u64::MAX && s_at[1] == u64::MAX && rlen[0] + rlen[1] == 1
            {
                let (rs, sole) = q.pop_sole();
                rlen[rs] -= 1;
                let sid = sole as usize;
                let spanned = if requests.phase[sid] == Phase::Decoding
                    && requests.cursor[sid].index() == 0
                {
                    // The solo span books busy time itself; settle the
                    // open runs first so bookings stay chronological.
                    flush_busy!(0);
                    flush_busy!(1);
                    ev.stamp = ev_stamp;
                    let k = run_solo_span(
                        system,
                        plan,
                        table,
                        ev,
                        busy_track,
                        traffic,
                        token_latencies,
                        &mut d_stamp,
                        requests,
                        sid,
                        span_cap,
                        now,
                    );
                    ev_stamp = ev.stamp;
                    k
                } else {
                    0
                };
                if spanned > 0 {
                    for rs in 0..2 {
                        if let Some((at, st, eid)) = ev.op_done[rs].take() {
                            s_at[rs] = at;
                            s_st[rs] = st;
                            s_id[rs] = eid;
                        }
                    }
                    continue;
                }
                q.requeue_sole(rs, requests.last_scheduled[sid], sole);
                rlen[rs] += 1;
            }

            // Full dispatch pass, flash first like the general loop.
            #[allow(clippy::needless_range_loop)]
            for rs in 0..2 {
                if s_at[rs] == u64::MAX && rlen[rs] > 0 {
                    let nid32 = q.pop_min(rs).expect("counted member is queued");
                    rlen[rs] -= 1;
                    dispatch!(rs, nid32);
                }
            }
        }};
    }

    // One op completion on resource `$s` (a literal, so each resource
    // gets its own straight-line path with well-predicted branches).
    // Dispatch is event-driven: only the freed slot and the enqueued-to
    // slot can act, and the general loop's flash-before-NPU dispatch
    // order is preserved in each arm. A member whose next op stays on
    // the freed resource with nobody else queued redispatches directly,
    // skipping the ready structure entirely — with identical stamps,
    // since the pop it elides could only have returned that member.
    macro_rules! step {
        ($s:expr) => {{
            const S: usize = $s;
            const O: usize = 1 - $s;
            let id32 = s_id[S];
            let id = id32 as usize;
            s_at[S] = u64::MAX;
            requests.cursor[id].advance();
            let idx = requests.cursor[id].index();
            if idx < n_ops {
                let rs2 = table.class_slots[idx] as usize;
                if rs2 == S {
                    if rlen[S] == 0 {
                        dispatch!(S, id32);
                    } else {
                        q.enqueue(S, S, requests.last_scheduled[id], id32);
                        let nid32 = q.pop_min(S).expect("just enqueued");
                        dispatch!(S, nid32);
                    }
                    // Single-resource stretch: until the other slot's
                    // completion fires (or forever, while it sits idle
                    // with an empty queue — the sentinel makes its
                    // guard always pass), every next event is a
                    // completion on `S`, and nothing can enqueue to
                    // `S`'s queue from outside. Chew through them
                    // without re-selecting the slot, exiting — before
                    // touching anything — on the other slot's turn
                    // (ties included, stamps decide there), arrivals,
                    // token boundaries, or a cross-resource op. The
                    // membership and keys of `S`'s queue are frozen for
                    // the whole stretch, so a key-static policy
                    // (`RETAINS_MIN`) redispatches the completing member
                    // — popped as min from this very set — directly.
                    {
                        let other = (s_at[O], s_st[O]);
                        loop {
                            let at2 = s_at[S];
                            if !((at2, s_st[S]) < other) || next_arr < (at2, s_st[S]) {
                                break;
                            }
                            let cid32 = s_id[S];
                            let cid = cid32 as usize;
                            let nidx = requests.cursor[cid].index() + 1;
                            if nidx >= n_ops || table.class_slots[nidx] as usize != S {
                                break;
                            }
                            requests.cursor[cid].advance();
                            now = SimTime::from_picos(at2);
                            s_at[S] = u64::MAX;
                            if Q::RETAINS_MIN || rlen[S] == 0 {
                                dispatch!(S, cid32);
                            } else {
                                q.enqueue(S, S, requests.last_scheduled[cid], cid32);
                                let nid32 = q.pop_min(S).expect("just enqueued");
                                dispatch!(S, nid32);
                            }
                        }
                    }
                } else if O == 0 {
                    // NPU completion, next op on flash: the flash slot
                    // dispatches first (directly if it sat idle, which
                    // implies its queue is empty), then the freed NPU.
                    if s_at[0] == u64::MAX {
                        debug_assert_eq!(rlen[0], 0, "idle slot implies empty queue");
                        dispatch!(0, id32);
                    } else {
                        q.enqueue(0, S, requests.last_scheduled[id], id32);
                        rlen[0] += 1;
                    }
                    if rlen[1] > 0 {
                        let nid32 = q.pop_min(1).expect("counted member is queued");
                        rlen[1] -= 1;
                        dispatch!(1, nid32);
                    }
                } else {
                    // Flash completion, next op on NPU: the freed flash
                    // slot dispatches first, then the NPU side.
                    if rlen[0] > 0 {
                        let nid32 = q.pop_min(0).expect("counted member is queued");
                        rlen[0] -= 1;
                        dispatch!(0, nid32);
                    }
                    if s_at[1] == u64::MAX {
                        debug_assert_eq!(rlen[1], 0, "idle slot implies empty queue");
                        dispatch!(1, id32);
                    } else {
                        q.enqueue(1, S, requests.last_scheduled[id], id32);
                        rlen[1] += 1;
                    }
                }
            } else {
                boundary!(S, id32, id);
            }
        }};
    }

    loop {
        let s = usize::from((s_at[1], s_st[1]) < (s_at[0], s_st[0]));
        let at = s_at[s];
        if at == u64::MAX || next_arr < (at, s_st[s]) {
            break;
        }
        now = SimTime::from_picos(at);
        if s == 0 {
            step!(0);
        } else {
            step!(1);
        }
    }
    // Write the mirrors back; the general loop resumes at its `pop`.
    flush_busy!(0);
    flush_busy!(1);
    for rs in 0..2 {
        ev.op_done[rs] = (s_at[rs] != u64::MAX).then(|| (s_at[rs], s_st[rs], s_id[rs]));
    }
    ev.stamp = ev_stamp;
    ev.now = now;
    *stamp = d_stamp;
}

impl<'a> Simulation<'a> {
    fn new(
        engine: &'a DeviceEngine,
        trace: &ArrivalTrace,
        policy: SchedulePolicy,
        mut system: System,
    ) -> Self {
        let faults = FaultRun::for_engine(&engine.faults, &engine.cfg, &mut system);
        let (total_requests, peak_arrivals) = trace_sizes(trace);
        let mut sim = Simulation {
            system,
            plan: &engine.plan,
            table: PlanTable::new(&engine.plan),
            policy,
            prefill: PrefillState::new(engine),
            ev: EventCore::with_capacity(peak_arrivals),
            ready: RequestQueue::default(),
            requests: RequestPool::with_capacity(total_requests),
            busy_track: [BusyTracker::new(), BusyTracker::new()],
            stamp: 0,
            client_remaining: Vec::new(),
            closed_shape: None,
            traffic: TrafficBreakdown::default(),
            token_latencies: Samples::new(),
            queueing: Aggregate::new(),
            done: Vec::new(),
            first_arrival: None,
            kv_max_context: kv_cache(engine).max_tokens(),
            kv_rejections: 0,
            // Fault sampling is causal (each token's faults are drawn
            // and spent before the next scheduling decision), so solo
            // spans — which price tokens speculatively — are disabled
            // under fault injection.
            span_cap: if faults.is_some() {
                0
            } else {
                engine.span.cap()
            },
            replay: matches!(engine.span, SpanMode::Coalesced { .. }),
            faults,
        };
        if let Some(f) = &sim.faults {
            // simlint: allow(D1) — fault root seeded from the config's own seed; per-request streams fork() from it
            sim.requests.fault_root = Some(SplitMix64::new(f.seed()));
        }
        let (remaining, shape) = load_trace(trace, &mut sim.requests, &mut sim.ev);
        sim.client_remaining = remaining;
        sim.closed_shape = shape;
        sim
    }

    /// The event loop. One deliberately monolithic block: this is the
    /// hottest code in the repo (one iteration per simulated op), and
    /// destructuring `self` keeps the table/queue/request base pointers
    /// in registers across iterations instead of re-loading them
    /// through `self` in every helper call.
    fn run(mut self) -> (ServeReport, System) {
        let policy = self.policy;
        {
            let Simulation {
                system,
                plan,
                table,
                prefill,
                ev,
                ready,
                requests,
                busy_track,
                stamp,
                client_remaining,
                closed_shape,
                traffic,
                token_latencies,
                queueing,
                done,
                first_arrival,
                kv_max_context,
                kv_rejections,
                span_cap,
                replay,
                faults,
                ..
            } = &mut self;
            let plan: &TokenPlan = plan;
            let n_ops = table.classes.len();
            // The interleaved replay structures, standing by whenever
            // span coalescing is on for one of the per-op policies.
            let mut fast: Option<FastLane> = match (*replay, policy) {
                (true, SchedulePolicy::Fcfs) => Some(FastLane::Fcfs(FcfsReady::default())),
                (true, SchedulePolicy::RoundRobin) => Some(FastLane::Rr(RrReady::default())),
                _ => None,
            };
            let ready_key = |policy: SchedulePolicy, requests: &RequestPool, id: usize| {
                match policy {
                    // Earliest arrival wins; id breaks ties
                    // deterministically (heap entries are `(key, id)`).
                    SchedulePolicy::Fcfs => requests.cold[id].arrived.as_picos(),
                    // Least-recently-scheduled wins: fair rotation.
                    SchedulePolicy::RoundRobin => requests.last_scheduled[id],
                    // Routed to `BatchedSimulation` by `DeviceEngine::run`.
                    SchedulePolicy::ContinuousBatch { .. } => {
                        unreachable!("batched policy has its own loop")
                    }
                }
            };

            while let Some(fired) = ev.pop() {
                let now = ev.now;
                match fired {
                    Fired::Arrive(id) => {
                        // KV admission control: a context (prompt +
                        // generation) that can never fit in the DRAM KV
                        // allocation is a counted rejection
                        // (`KvCapacityError` at prefill/append on real
                        // hardware), not a simulated run — the same
                        // never-fits criterion `ContinuousBatch` uses.
                        // Anything that fits alone is admitted
                        // immediately; these policies interleave per-op
                        // and do not reserve shared capacity ahead,
                        // `ContinuousBatch` does.
                        let shape = requests.cold[id].shape;
                        if shape.prompt_len + shape.new_tokens > *kv_max_context {
                            *kv_rejections += 1;
                            let client = requests.cold[id].client;
                            respawn_client(
                                requests,
                                ev,
                                client_remaining,
                                *closed_shape,
                                client,
                                now,
                            );
                            continue;
                        }
                        // The request prices its first token and enters
                        // the ready queue of its first op's resource —
                        // unless it owes a prefill, in which case it
                        // queues (state `Queued`) for the whole device
                        // on the flash list and prices its first token
                        // only once the prompt is resident.
                        if first_arrival.is_none() {
                            *first_arrival = Some(requests.cold[id].arrived);
                        }
                        requests.token_started[id] = now;
                        if prefill.is_some() && shape.prompt_len > 0 {
                            ready.enqueue(
                                slot(OpClass::Flash),
                                ready_key(policy, requests, id),
                                id,
                            );
                        } else {
                            requests.phase[id] = Phase::Decoding;
                            begin_token(system, plan, table, traffic, requests, faults, id);
                            ready.enqueue(
                                slot(table.classes[requests.cursor[id].index()]),
                                ready_key(policy, requests, id),
                                id,
                            );
                        }
                    }
                    Fired::Op(_, id) if id == PREFILL_HOLD => {
                        // The NPU-side hold of a finished prefill:
                        // nothing to step, the resource is simply free
                        // again for the dispatch pass below.
                    }
                    Fired::Op(_, id) if requests.phase[id] == Phase::Prefilling => {
                        // Prefill complete (flash-slot event): the
                        // prompt is resident, decode begins.
                        requests.phase[id] = Phase::Decoding;
                        requests.cold[id].prefill_end = Some(now);
                        begin_token(system, plan, table, traffic, requests, faults, id);
                        ready.enqueue(
                            slot(table.classes[requests.cursor[id].index()]),
                            ready_key(policy, requests, id),
                            id,
                        );
                    }
                    Fired::Op(_, id) => {
                        // The resource freed (`pop` vacated its slot);
                        // step the request's cursor.
                        requests.cursor[id].advance();
                        let idx = requests.cursor[id].index();
                        if idx < n_ops {
                            ready.enqueue(
                                slot(table.classes[idx]),
                                ready_key(policy, requests, id),
                                id,
                            );
                        } else {
                            // Token complete.
                            retire_token(requests, id, now, token_latencies);
                            let shed = faults
                                .as_mut()
                                .is_some_and(|f| deadline_shed(f, requests, id, now));
                            if shed {
                                // Deadline missed: the request is shed
                                // (not completed, not reported), its
                                // client re-issues immediately.
                                requests.phase[id] = Phase::Done;
                                let client = requests.cold[id].client;
                                respawn_client(
                                    requests,
                                    ev,
                                    client_remaining,
                                    *closed_shape,
                                    client,
                                    now,
                                );
                            } else if requests.remaining[id] > 0 {
                                // Next token: context has grown by the
                                // token just emitted.
                                requests.cursor[id].next_token();
                                begin_token(system, plan, table, traffic, requests, faults, id);
                                ready.enqueue(
                                    slot(table.classes[0]),
                                    ready_key(policy, requests, id),
                                    id,
                                );
                            } else {
                                // Request complete.
                                requests.phase[id] = Phase::Done;
                                let report = requests.completion_report(id, now);
                                if let Some(f) = faults {
                                    f.note_completion(&report);
                                }
                                queueing.push(report.queueing_delay().as_secs_f64());
                                done.push(report);

                                // Closed loop: the client immediately
                                // issues its next request.
                                let client = requests.cold[id].client;
                                respawn_client(
                                    requests,
                                    ev,
                                    client_remaining,
                                    *closed_shape,
                                    client,
                                    now,
                                );
                            }
                        }
                    }
                }

                // Span fast-forwarding: with exactly one request in
                // flight, parked at a token boundary, and both
                // resources idle, whole tokens coalesce into one
                // bulk-priced span (every other live request would be
                // in a ready heap or holding a pending completion, so
                // this condition is exact).
                if *span_cap > 0 && !ev.busy(0) && !ev.busy(1) && ready.len() == 1 {
                    let s_heap = usize::from(ready.ready[0].is_empty());
                    let id = ready.pop_min(s_heap).expect("ready holds one request");
                    let spanned = if requests.phase[id] == Phase::Decoding
                        && requests.cursor[id].index() == 0
                    {
                        run_solo_span(
                            system,
                            plan,
                            table,
                            ev,
                            busy_track,
                            traffic,
                            token_latencies,
                            stamp,
                            requests,
                            id,
                            *span_cap,
                            now,
                        )
                    } else {
                        0
                    };
                    if spanned > 0 {
                        continue;
                    }
                    // No coalescible token (an arrival is imminent, or
                    // the request owes a prefill): back in the ready
                    // heap for ordinary per-op dispatch below.
                    ready.enqueue(s_heap, ready_key(policy, requests, id), id);
                }

                // Dispatch: start an op on every idle resource that has
                // waiting requests (flash first, as before). The index
                // addresses four parallel structures, not one slice.
                #[allow(clippy::needless_range_loop)]
                for s in 0..2 {
                    if ev.busy(s) {
                        continue;
                    }
                    let Some(id) = ready.pop_min(s) else {
                        continue;
                    };
                    if requests.phase[id] == Phase::Queued {
                        // A pending prefill: it needs the whole device
                        // (flash stream + NPU GeMMs together). If the
                        // NPU is mid-op, the flash idles and the
                        // prefill keeps its place at the head — no
                        // later flash work jumps it — retrying at the
                        // next completion event.
                        debug_assert_eq!(s, slot(OpClass::Flash));
                        if ev.busy(slot(OpClass::Npu)) {
                            ready.enqueue(s, ready_key(policy, requests, id), id);
                            continue;
                        }
                        *stamp += 1;
                        requests.last_scheduled[id] = *stamp;
                        requests.phase[id] = Phase::Prefilling;
                        if requests.cold[id].started.is_none() {
                            requests.cold[id].started = Some(now);
                        }
                        let m = requests.cold[id].shape.prompt_len;
                        let ps = prefill
                            .as_mut()
                            .expect("Queued is only dispatched with prefill on");
                        let cost = prefill_cost_bucketed(system, ps.plan, &mut ps.buckets, m);
                        // The prompt's NAND read volume is one fault
                        // window; rereads stretch the whole stage.
                        let mut total = cost.total;
                        if let Some(f) = faults {
                            let extra = f.window_extra(
                                cost.traffic.nand_array_bytes,
                                cost.total.as_picos(),
                                &mut requests.fault_rng[id],
                            );
                            if extra > 0 {
                                total += SimTime::from_picos(extra);
                            }
                        }
                        ps.busy += total;
                        traffic.absorb(&cost.traffic);
                        busy_track[0].add_interval(now, now + total);
                        busy_track[1].add_interval(now, now + total);
                        ev.schedule_op(0, now + total, id);
                        ev.schedule_op(1, now + total, PREFILL_HOLD);
                        continue;
                    }
                    *stamp += 1;
                    requests.last_scheduled[id] = *stamp;
                    if requests.cold[id].started.is_none() {
                        requests.cold[id].started = Some(now);
                    }
                    let idx = requests.cursor[id].index();
                    debug_assert_eq!(
                        slot(table.classes[idx]),
                        s,
                        "ready list / op class mismatch"
                    );
                    let cost_slot = table.slots[idx] as usize;
                    let mut latency = if cost_slot < table.n_inv {
                        table.inv_lat[cost_slot]
                    } else {
                        requests.dep_lat[id][cost_slot - table.n_inv]
                    };
                    // The token's sampled fault time rides on its first
                    // flash dispatch (always 0 with faults off).
                    if s == slot(OpClass::Flash) {
                        let extra = std::mem::take(&mut requests.fault_extra[id]);
                        if extra > 0 {
                            latency += SimTime::from_picos(extra);
                        }
                    }
                    busy_track[s].add_interval(now, now + latency);
                    ev.schedule_op(s, now + latency, id);
                }

                // Interleaved replay: when every pending event is an op
                // completion of a decoding request — the steady state
                // between arrivals — the stretch up to the next arrival
                // replays in the specialized loop instead of paying the
                // general machinery per op. Bit-identical by
                // construction; see [`run_interleaved`].
                if let Some(lane) = fast.as_mut() {
                    if replay_eligible(ev, ready, requests, prefill.is_some()) {
                        match lane {
                            FastLane::Fcfs(q) => {
                                let queued = q.begin(ready, ev, requests);
                                run_interleaved(
                                    q,
                                    queued,
                                    system,
                                    plan,
                                    table,
                                    ev,
                                    busy_track,
                                    traffic,
                                    token_latencies,
                                    queueing,
                                    done,
                                    stamp,
                                    requests,
                                    client_remaining,
                                    *closed_shape,
                                    *span_cap,
                                    faults,
                                );
                                q.finish(ready, requests);
                            }
                            FastLane::Rr(q) => {
                                let queued = q.begin(ready);
                                run_interleaved(
                                    q,
                                    queued,
                                    system,
                                    plan,
                                    table,
                                    ev,
                                    busy_track,
                                    traffic,
                                    token_latencies,
                                    queueing,
                                    done,
                                    stamp,
                                    requests,
                                    client_remaining,
                                    *closed_shape,
                                    *span_cap,
                                    faults,
                                );
                                q.finish(ready);
                            }
                        }
                    }
                }
            }
        }

        self.finish()
    }

    fn finish(self) -> (ServeReport, System) {
        assert!(
            self.ready.is_empty(),
            "event core drained with work outstanding"
        );
        let tokens_served: u64 = self.done.iter().map(|r| r.tokens as u64).sum();

        // Op-pricing accounting, in dispatched-op terms: each distinct
        // canonical shape was derived once (a cache miss — the slot
        // fills in `begin_token` are exactly those derivations), and
        // every other dispatch replayed a memoized cost through the
        // slot table. Internal table bookkeeping (e.g. a slot re-read
        // at token start) is not counted, so hits + misses partition
        // the dispatched ops exactly. Prefill pricing contributes its
        // component lookups once per prompt-length bucket.
        let (prefill_priced, prefill_busy) = self
            .prefill
            .as_ref()
            .map_or((0, SimTime::ZERO), |p| (p.priced(), p.busy));
        // Shed requests dispatched every op of the tokens they finished
        // before the deadline cut them off — sheds happen only at token
        // boundaries — so their tokens count as dispatched work even
        // though no completion report carries them.
        let shed_tokens = self.faults.as_ref().map_or(0, |f| f.shed_tokens);
        let ops_dispatched = (tokens_served + shed_tokens) * self.plan.len() as u64
            + prefill_priced * PrefillCost::COMPONENT_OPS;

        // GeMV recall accounting: every weight-GeMV dispatch beyond the
        // first per distinct shape reused a memoized flash simulation
        // (whether through the GeMV cache itself or the tables above).
        let gemv_dispatched = (tokens_served + shed_tokens) * self.table.gemvs_per_token;

        let report = build_report(ReportInputs {
            policy: self.policy,
            prefill: if self.prefill.is_some() {
                PrefillMode::Modeled
            } else {
                PrefillMode::Off
            },
            prefill_busy,
            first_arrival: self.first_arrival,
            token_latencies: self.token_latencies,
            queueing: self.queueing,
            busy_track: self.busy_track,
            system: &self.system,
            ops_dispatched,
            gemv_dispatched,
            occ_weighted_ps: 0,
            peak_batch_occupancy: 0,
            kv_rejections: self.kv_rejections,
            traffic: self.traffic,
            reliability: self
                .faults
                .as_ref()
                .map(FaultRun::summary)
                .unwrap_or_default(),
            done: self.done,
        });
        (report, self.system)
    }
}

/// Everything a finished event loop hands to [`build_report`]: the
/// shared accumulators plus the few per-policy numbers (dispatch
/// accounting, batch occupancy, rejections).
struct ReportInputs<'a> {
    policy: SchedulePolicy,
    prefill: PrefillMode,
    /// Total device time spent in prefill stages.
    prefill_busy: SimTime,
    /// Arrival time of the first admitted request, if any.
    first_arrival: Option<SimTime>,
    token_latencies: Samples,
    queueing: Aggregate,
    busy_track: [BusyTracker; 2],
    system: &'a System,
    ops_dispatched: u64,
    gemv_dispatched: u64,
    /// Batch-size × picoseconds integral (zero for per-op policies).
    occ_weighted_ps: u128,
    peak_batch_occupancy: usize,
    kv_rejections: u64,
    traffic: TrafficBreakdown,
    /// Fault counters (all-zero default when faults were off); the
    /// goodput rate is derived here, where the horizon is known.
    reliability: ReliabilitySummary,
    done: Vec<RequestReport>,
}

/// Assembles the fleet report both event loops share: rate,
/// percentile, utilization and cache-recall arithmetic is identical
/// across policies (zero-duration runs divide out to 0.0 everywhere),
/// so a new report field or formula change lands in exactly one place.
fn build_report(inputs: ReportInputs<'_>) -> ServeReport {
    let ReportInputs {
        policy,
        prefill,
        prefill_busy,
        first_arrival,
        mut token_latencies,
        queueing,
        busy_track,
        system,
        ops_dispatched,
        gemv_dispatched,
        occ_weighted_ps,
        peak_batch_occupancy,
        kv_rejections,
        traffic,
        mut reliability,
        done,
    } = inputs;
    // TTFT in both frames: arrival-relative (queue + prefill + first
    // decoded token — the user-visible number) and the old decode-only
    // metric, kept side by side so neither masquerades as the other.
    let mut ttft = Samples::new();
    let mut decode_ttft = Aggregate::new();
    for r in &done {
        ttft.push(r.ttft().as_secs_f64());
        decode_ttft.push(r.decode_ttft().as_secs_f64());
    }
    // Span of actual service: first admitted arrival to last
    // completion. Rejected arrivals advance the event clock but are
    // not simulated, so they must not stretch the makespan or dilute
    // the rates, utilizations and occupancy derived from it.
    let makespan = match (first_arrival, done.last()) {
        (Some(first), Some(last)) => last.finished.saturating_sub(first),
        _ => SimTime::ZERO,
    };
    let mean_batch_occupancy = if makespan > SimTime::ZERO {
        // simlint: allow(D5) — report boundary: integer ps accounting ends here, both operands exact
        occ_weighted_ps as f64 / makespan.as_picos() as f64
    } else {
        0.0
    };
    let tokens_served: u64 = done.iter().map(|r| r.tokens as u64).sum();
    let horizon = makespan.as_secs_f64();
    if horizon > 0.0 {
        reliability.deadline_goodput_tps = reliability.goodput_tokens as f64 / horizon;
    }
    let op_misses = system.op_cost_cache().misses();
    let gemv_misses = system.gemv_cache().misses();
    ServeReport {
        policy,
        prefill,
        requests_served: done.len(),
        tokens_served,
        makespan,
        tokens_per_sec: if horizon > 0.0 {
            tokens_served as f64 / horizon
        } else {
            0.0
        },
        p50_token_latency_s: token_latencies.percentile(50.0).unwrap_or(0.0),
        p99_token_latency_s: token_latencies.percentile(99.0).unwrap_or(0.0),
        mean_token_latency_s: token_latencies.mean().unwrap_or(0.0),
        ttft_p50_s: ttft.percentile(50.0).unwrap_or(0.0),
        ttft_p99_s: ttft.percentile(99.0).unwrap_or(0.0),
        ttft_mean_s: ttft.mean().unwrap_or(0.0),
        decode_ttft_s: decode_ttft,
        prefill_busy_s: prefill_busy.as_secs_f64(),
        queueing_delay_s: queueing,
        flash_utilization: busy_track[0].utilization(makespan),
        npu_utilization: busy_track[1].utilization(makespan),
        gemv_cache_hits: gemv_dispatched.saturating_sub(gemv_misses),
        gemv_cache_misses: gemv_misses,
        op_cost_cache_hits: ops_dispatched.saturating_sub(op_misses),
        op_cost_cache_misses: op_misses,
        mean_batch_occupancy,
        peak_batch_occupancy,
        kv_rejections,
        traffic,
        reliability,
        requests: done,
    }
}

/// Event-core request id for batched op completions: the whole batch
/// retires one plan position together, so no single request owns the
/// event.
const BATCH_EVENT: usize = u32::MAX as usize;

/// The running batch of a [`SchedulePolicy::ContinuousBatch`]
/// simulation: the requests marching through the plan in lockstep plus
/// the shared walk state. "Many cursors parked at the same plan
/// position" — the batch holds one position, each member holds its own
/// sequence length.
#[derive(Debug)]
struct BatchState {
    /// Requests in the batch, admission order.
    active: Vec<usize>,
    /// Plan position of the in-flight batched op.
    pos: usize,
    /// Admission cap.
    max_batch: usize,
    /// Occupancy integral (batch size × picoseconds) for the
    /// time-weighted mean in the report.
    occ_weighted_ps: u128,
    /// When the integral was last advanced.
    occ_last: SimTime,
    /// Largest batch assembled at any boundary.
    peak: usize,
}

impl BatchState {
    fn new(max_batch: usize) -> Self {
        BatchState {
            active: Vec::with_capacity(max_batch),
            pos: 0,
            max_batch,
            occ_weighted_ps: 0,
            occ_last: SimTime::ZERO,
            peak: 0,
        }
    }

    /// Advances the occupancy integral to `now` at the current batch
    /// size. Call before any admission or retirement at `now`.
    fn note_occupancy(&mut self, now: SimTime) {
        let dt = now.saturating_sub(self.occ_last).as_picos();
        self.occ_weighted_ps += self.active.len() as u128 * dt as u128;
        self.occ_last = now;
    }
}

/// The continuous-batching event loop.
///
/// Compared with [`Simulation`], which interleaves *individual* ops of
/// independent requests across the two resources, this loop executes
/// **batch steps**: one walk of the shared [`TokenPlan`] serving every
/// in-flight request at once. Per plan position:
///
/// * a weight GeMV occupies the flash device **once** for the whole
///   batch — the weight stream is fetched a single time and every
///   request consumes it (the amortization that makes cloud serving
///   batch-efficient, now at the edge), floored by the NPU roofline on
///   `batch ×` the per-request MAC share so huge batches hit the
///   compute ceiling instead of scaling forever, and with each
///   member's share of the GeMV arithmetic booked in the traffic
///   ledger;
/// * NPU-side work (attention, softmax, norms, KV appends) runs per
///   request — invariant slots at the shared table price, the three
///   attention slots at each request's own sequence position.
///
/// Requests join at token boundaries, FIFO, gated on KV capacity: a
/// request reserves `prompt + new_tokens` KV entries at admission
/// ([`KvCache::prefill`]) and releases them on completion
/// ([`KvCache::release`]). A context that can never fit is rejected and
/// counted. Head-of-line order is preserved — a blocked head is not
/// jumped by smaller later requests, so admission is starvation-free.
///
/// With one in-flight request a batch step prices exactly the serial
/// op walk, so batch-of-1 reproduces the FCFS single-stream makespan
/// tick for tick.
struct BatchedSimulation<'a> {
    system: System,
    plan: &'a TokenPlan,
    table: PlanTable,
    /// Prefill simulation state (`Some` iff [`PrefillMode::Modeled`]):
    /// newly admitted members prefill serially at their admission
    /// boundary, delaying the shared step.
    prefill: Option<PrefillState<'a>>,
    ev: EventCore,
    batch: BatchState,
    /// Arrived requests awaiting admission, FIFO.
    pending: VecDeque<usize>,
    /// Shared DRAM KV allocation; holds one whole-context reservation
    /// per in-flight request.
    kv: KvCache,
    requests: RequestPool,
    busy_track: [BusyTracker; 2],
    client_remaining: Vec<usize>,
    closed_shape: Option<RequestShape>,
    traffic: TrafficBreakdown,
    token_latencies: Samples,
    queueing: Aggregate,
    done: Vec<RequestReport>,
    /// Arrival time of the first *admitted* request — rejected
    /// arrivals are not simulated and must not stretch the makespan.
    first_arrival: Option<SimTime>,
    /// `self.kv.max_tokens()`, cached: the same never-fits rejection
    /// criterion the per-op loop applies.
    kv_max_context: usize,
    kv_rejections: u64,
    /// Op dispatches in batched terms: one per shared weight fetch,
    /// one per request for NPU positions.
    ops_dispatched: u64,
    gemv_dispatched: u64,
    /// Most batch steps one span may coalesce (0 = per-position
    /// stepping).
    span_cap: usize,
    /// Fault-injection state; `None` when [`FaultMode::Off`].
    faults: Option<FaultRun>,
    /// Fault-added picoseconds of the current batch step, consumed by
    /// its first weight dispatch (always 0 with faults off).
    step_fault_extra: u64,
}

impl<'a> BatchedSimulation<'a> {
    fn new(
        engine: &'a DeviceEngine,
        trace: &ArrivalTrace,
        max_batch: usize,
        mut system: System,
    ) -> Self {
        // The one authoritative cache: the admission gate (`kv.fits`)
        // and the never-fits rejection criterion are both derived from
        // it, so they cannot disagree.
        let kv = kv_cache(engine);
        let faults = FaultRun::for_engine(&engine.faults, &engine.cfg, &mut system);
        let (total_requests, peak_arrivals) = trace_sizes(trace);
        let mut sim = BatchedSimulation {
            system,
            plan: &engine.plan,
            table: PlanTable::new(&engine.plan),
            prefill: PrefillState::new(engine),
            ev: EventCore::with_capacity(peak_arrivals),
            batch: BatchState::new(max_batch),
            pending: VecDeque::new(),
            kv_max_context: kv.max_tokens(),
            kv,
            requests: RequestPool::with_capacity(total_requests),
            busy_track: [BusyTracker::new(), BusyTracker::new()],
            client_remaining: Vec::new(),
            closed_shape: None,
            traffic: TrafficBreakdown::default(),
            token_latencies: Samples::new(),
            queueing: Aggregate::new(),
            done: Vec::new(),
            first_arrival: None,
            kv_rejections: 0,
            ops_dispatched: 0,
            gemv_dispatched: 0,
            span_cap: engine.span.cap(),
            faults,
            step_fault_extra: 0,
        };
        if let Some(f) = &sim.faults {
            // simlint: allow(D1) — fault root seeded from the config's own seed; per-request streams fork() from it
            sim.requests.fault_root = Some(SplitMix64::new(f.seed()));
        }
        let (remaining, shape) = load_trace(trace, &mut sim.requests, &mut sim.ev);
        sim.client_remaining = remaining;
        sim.closed_shape = shape;
        sim
    }

    /// Whether a batched op is in flight (the step is mid-walk).
    fn stepping(&self) -> bool {
        self.ev.busy(0) || self.ev.busy(1)
    }

    fn run(mut self) -> (ServeReport, System) {
        while let Some(fired) = self.ev.pop() {
            let now = self.ev.now;
            self.batch.note_occupancy(now);
            match fired {
                Fired::Arrive(id) => {
                    self.pending.push_back(id);
                    if !self.stepping() {
                        // Device idle: this instant is a (trivial)
                        // token boundary. Fold in simultaneous
                        // arrivals so a burst forms one batch.
                        while let Some(more) = self.ev.pop_due_arrival(now) {
                            self.pending.push_back(more);
                        }
                        let delay = self.admit(now);
                        self.launch(now, delay);
                    }
                }
                Fired::Op(_, id) if id == BATCH_PREFILL => {
                    // The admission-prefill window closed: every
                    // joining member's prompt is resident, the delayed
                    // batch step starts.
                    for &id in &self.batch.active {
                        if self.requests.phase[id] == Phase::Prefilling {
                            self.requests.phase[id] = Phase::Decoding;
                        }
                    }
                    self.start(now);
                }
                Fired::Op(_, id) if id == SPAN_BOUNDARY => {
                    // A coalesced span closed: its final step's token
                    // boundary retires exactly like a per-step one.
                    self.token_boundary(now);
                }
                Fired::Op(..) => {
                    self.batch.pos += 1;
                    if self.batch.pos < self.table.classes.len() {
                        self.dispatch(now);
                    } else {
                        self.token_boundary(now);
                    }
                }
            }
        }
        self.finish()
    }

    /// One token retired for every batch member: samples latencies,
    /// completes finished requests (releasing their KV reservation),
    /// folds due arrivals in, admits, and starts the next step.
    fn token_boundary(&mut self, now: SimTime) {
        let active = std::mem::take(&mut self.batch.active);
        let mut survivors = Vec::with_capacity(active.len());
        for id in active {
            retire_token(&mut self.requests, id, now, &mut self.token_latencies);
            let shed = match &mut self.faults {
                Some(f) => deadline_shed(f, &self.requests, id, now),
                None => false,
            };
            if shed {
                // Deadline missed: the request is shed (not completed,
                // not reported), its KV reservation is released so the
                // freed capacity admits waiting work, and its client
                // re-issues immediately.
                self.requests.phase[id] = Phase::Done;
                let shape = self.requests.cold[id].shape;
                self.kv.release(shape.prompt_len + shape.new_tokens);
                let client = self.requests.cold[id].client;
                respawn_client(
                    &mut self.requests,
                    &mut self.ev,
                    &mut self.client_remaining,
                    self.closed_shape,
                    client,
                    now,
                );
            } else if self.requests.remaining[id] > 0 {
                self.requests.cursor[id].next_token();
                survivors.push(id);
            } else {
                self.requests.phase[id] = Phase::Done;
                let report = self.requests.completion_report(id, now);
                if let Some(f) = &mut self.faults {
                    f.note_completion(&report);
                }
                let shape = self.requests.cold[id].shape;
                let context = shape.prompt_len + shape.new_tokens;
                let client = self.requests.cold[id].client;
                self.queueing.push(report.queueing_delay().as_secs_f64());
                self.done.push(report);
                self.kv.release(context);
                respawn_client(
                    &mut self.requests,
                    &mut self.ev,
                    &mut self.client_remaining,
                    self.closed_shape,
                    client,
                    now,
                );
            }
        }
        self.batch.active = survivors;
        // Closed-loop respawns and open-trace arrivals landing exactly
        // on this boundary join it instead of waiting out a full step.
        while let Some(id) = self.ev.pop_due_arrival(now) {
            self.pending.push_back(id);
        }
        let delay = self.admit(now);
        self.launch(now, delay);
    }

    /// Starts the device after an admission pass: either immediately
    /// (no prefill owed) or after the serialized prefill window of the
    /// members that just joined — during which the whole device is
    /// held, so prefill of a joining request delays the shared batch
    /// step for everyone already in the batch.
    fn launch(&mut self, now: SimTime, prefill_delay: SimTime) {
        if prefill_delay > SimTime::ZERO {
            debug_assert!(!self.stepping(), "prefill window overlaps a step");
            self.busy_track[0].add_interval(now, now + prefill_delay);
            self.busy_track[1].add_interval(now, now + prefill_delay);
            self.ev
                .schedule_op(slot(OpClass::Flash), now + prefill_delay, BATCH_PREFILL);
        } else {
            self.start(now);
        }
    }

    /// Starts the device on the current batch: a coalesced span when
    /// fast-forwarding is on, the per-position stepping loop otherwise.
    fn start(&mut self, now: SimTime) {
        if self.span_cap > 0 {
            self.start_span(now);
        } else {
            self.start_step(now);
        }
    }

    /// FIFO admission at a token boundary: reserve KV for the whole
    /// context or wait. A context that can never fit (it exceeds the
    /// empty-cache capacity) is rejected and counted. Returns the
    /// serialized prefill time the newly admitted members owe before
    /// the next step may start (zero with prefill off).
    fn admit(&mut self, now: SimTime) -> SimTime {
        let mut delay = SimTime::ZERO;
        while self.batch.active.len() < self.batch.max_batch {
            let Some(&id) = self.pending.front() else {
                break;
            };
            let shape = self.requests.cold[id].shape;
            let context = shape.prompt_len + shape.new_tokens;
            if context > self.kv_max_context {
                self.pending.pop_front();
                self.kv_rejections += 1;
                let client = self.requests.cold[id].client;
                respawn_client(
                    &mut self.requests,
                    &mut self.ev,
                    &mut self.client_remaining,
                    self.closed_shape,
                    client,
                    now,
                );
                continue;
            }
            // Capacity gate: the head waits for in-flight requests to
            // release their reservations; later arrivals do not jump
            // the queue (starvation-free FIFO).
            if !self.kv.fits(context) {
                break;
            }
            self.kv
                .prefill(context)
                .expect("fits() is prefill's admissibility criterion");
            self.pending.pop_front();
            if self.first_arrival.is_none() {
                self.first_arrival = Some(self.requests.cold[id].arrived);
            }
            self.batch.active.push(id);
            self.batch.peak = self.batch.peak.max(self.batch.active.len());
            // The step including this request starts at `now`. Its
            // first-token clock keeps running from *arrival* (set at
            // request construction), exactly like the per-op policies,
            // so token-latency percentiles are comparable across
            // policies: time spent pending for a batch slot or KV
            // capacity is in the first token's latency, not hidden.
            if self.requests.cold[id].started.is_none() {
                self.requests.cold[id].started = Some(now);
            }
            // Admission puts the member straight into decode; the
            // prefill branch below overrides to `Prefilling` when the
            // member owes a prefill stage first.
            self.requests.phase[id] = Phase::Decoding;
            // The joining member's prompt must be made resident first:
            // its prefill runs in the admission window (serialized
            // after any other joiner's), pushing the next shared step
            // out by its full overlapped latency. `started` is the
            // member's actual prefill start — after the joiners ahead
            // of it — so the serialized wait lands in queueing delay,
            // not in an inflated prefill_time.
            if shape.prompt_len > 0 {
                if let Some(ps) = &mut self.prefill {
                    let cost = prefill_cost_bucketed(
                        &mut self.system,
                        ps.plan,
                        &mut ps.buckets,
                        shape.prompt_len,
                    );
                    // The prompt's NAND read volume is one fault
                    // window; rereads stretch the admission window.
                    let mut total = cost.total;
                    if let Some(f) = &mut self.faults {
                        let extra = f.window_extra(
                            cost.traffic.nand_array_bytes,
                            cost.total.as_picos(),
                            &mut self.requests.fault_rng[id],
                        );
                        if extra > 0 {
                            total += SimTime::from_picos(extra);
                        }
                    }
                    ps.busy += total;
                    self.traffic.absorb(&cost.traffic);
                    self.requests.cold[id].started = Some(now + delay);
                    delay += total;
                    self.requests.phase[id] = Phase::Prefilling;
                    self.requests.cold[id].prefill_end = Some(now + delay);
                }
            }
        }
        delay
    }

    /// Prices and launches one batch step: the invariant table is
    /// shared, each member's attention slots are re-priced at its own
    /// sequence position, and the step's traffic books the weight
    /// stream once plus per-request work × batch.
    fn start_step(&mut self, now: SimTime) {
        if self.batch.active.is_empty() {
            return;
        }
        debug_assert!(!self.stepping(), "batch step already in flight");
        price_invariant(&mut self.system, self.plan, &mut self.table);
        self.traffic.absorb_batch_step(
            &self.table.inv_stream_traffic,
            &self.table.inv_request_traffic,
            self.batch.active.len() as u64,
        );
        for i in 0..self.batch.active.len() {
            let id = self.batch.active[i];
            let seq = self.requests.cursor[id].seq_len();
            let (dep_lat, dep_traffic) = attn_at(&mut self.system, self.plan, &mut self.table, seq);
            self.requests.dep_lat[id] = dep_lat;
            self.traffic.absorb(&dep_traffic);
        }
        // One fault window per batch step: the shared weight stream is
        // read once for the whole batch, so its page faults are drawn
        // once — from the head member's stream, which is stable in
        // admission order. The extra time rides on the step's first
        // weight dispatch.
        if let Some(f) = &mut self.faults {
            let owner = self.batch.active[0];
            self.step_fault_extra = f.window_extra(
                self.table.inv_stream_traffic.nand_array_bytes,
                self.table.solo_flash_lat.as_picos(),
                &mut self.requests.fault_rng[owner],
            );
        }
        self.batch.pos = 0;
        self.dispatch(now);
    }

    /// Prices and launches a **span**: a run of up to `span_cap` batch
    /// steps executed as one event-core round instead of one round per
    /// plan position. Between scheduling boundaries the batch is fixed,
    /// so each step's latency decomposes into
    ///
    /// * a flash term — every weight slot at the table price floored by
    ///   both compute rooflines on `batch ×` the per-request MAC shares
    ///   (identical to [`BatchedSimulation::dispatch`]'s per-position
    ///   arithmetic, hoisted out of the loop because the batch cannot
    ///   change mid-span);
    /// * an NPU term — invariant slots at `table price × batch` plus
    ///   the attention slots summed over each member's own growing
    ///   sequence position, priced step by step in the exact per-token
    ///   order so the op-cost cache sees the same lookup sequence.
    ///
    /// The span ends at the earliest scheduling boundary: the next
    /// completion (minimum remaining tokens in flight), the first token
    /// boundary at or after the next arrival (an admission
    /// opportunity — the arrival itself fires mid-span and queues, like
    /// it would mid-step), or a forced span cap. Admission blocked on
    /// KV capacity or a full batch can only unblock at a completion, so
    /// no opportunity is skipped. Interior token boundaries retire
    /// inline; the final one is the scheduled span-end event, handled
    /// by the ordinary [`BatchedSimulation::token_boundary`].
    ///
    /// Every quantity is integer picoseconds/bytes/ops, so the
    /// regrouped sums are bit-identical to per-position stepping.
    fn start_span(&mut self, now: SimTime) {
        if self.batch.active.is_empty() {
            return;
        }
        debug_assert!(!self.stepping(), "span overlaps a step");
        price_invariant(&mut self.system, self.plan, &mut self.table);
        let batch = self.batch.active.len() as u64;
        let n_ops = self.table.classes.len();
        // Per-step invariant latencies at this batch size.
        let mut flash_step = SimTime::ZERO;
        let mut npu_inv_step = SimTime::ZERO;
        for s in 0..self.table.n_inv {
            let count = self.table.inv_counts[s];
            if self.table.inv_is_weight[s] {
                let lat = self.table.inv_lat[s]
                    .max(
                        self.system
                            .npu_compute_time(self.table.inv_npu_ops[s] * batch),
                    )
                    .max(
                        self.system
                            .flash_compute_time(self.table.inv_flash_ops[s] * batch),
                    );
                flash_step += lat * count;
            } else {
                npu_inv_step += (self.table.inv_lat[s] * batch) * count;
            }
        }
        let k_max = self
            .batch
            .active
            .iter()
            .map(|&id| self.requests.remaining[id])
            .min()
            .expect("batch is non-empty")
            .min(self.span_cap);
        // A request already waiting for admission (it arrived during a
        // prefill window or mid-step) may act at the *very next* token
        // boundary, so the span may not run past it — but only when the
        // boundary would actually change state: with batch room, an
        // admissible head joins there and a never-fits head is rejected
        // (and its closed-loop client respawned) there. A head blocked
        // on KV capacity can only unblock at a completion — KV releases
        // happen in the boundary's completion branch, which is always a
        // span end — and a full batch admits nothing, so neither bounds
        // the span.
        let k_max = match self.pending.front() {
            Some(&head) if self.batch.active.len() < self.batch.max_batch => {
                let shape = self.requests.cold[head].shape;
                let context = shape.prompt_len + shape.new_tokens;
                if context > self.kv_max_context || self.kv.fits(context) {
                    1
                } else {
                    k_max
                }
            }
            _ => k_max,
        };
        debug_assert!(k_max >= 1, "an active member always owes a token");
        // Deadlines bound the span: the first token boundary at or
        // after the earliest member deadline must be a real boundary so
        // `token_boundary`'s shed check sees it. Interior boundaries
        // all land strictly before every deadline, where the (strict)
        // check could never fire anyway.
        let min_deadline_ps: Option<u64> = match &self.faults {
            Some(f) => self
                .batch
                .active
                .iter()
                .filter_map(|&id| {
                    let arrived = self.requests.cold[id].arrived;
                    let total = f.total_deadline().map(|d| (arrived + d).as_picos());
                    let ttft = if self.requests.cold[id].first_token.is_none() {
                        f.ttft_deadline().map(|d| (arrived + d).as_picos())
                    } else {
                        None
                    };
                    match (total, ttft) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (Some(a), None) => Some(a),
                        (None, Some(b)) => Some(b),
                        (None, None) => None,
                    }
                })
                .min(),
            None => None,
        };
        // An arrival landing mid-span only matters if the boundary after
        // it could admit (or reject) it. With a full batch, `admit`'s
        // loop never runs until a completion frees a slot — and every
        // completion is a span end. With a non-empty pending queue, the
        // newcomer parks *behind* the head (starvation-free FIFO), so it
        // can only act when the head does — and the head's own bound was
        // already decided above. In both cases every intervening token
        // boundary is a no-op for the arrival: the span runs through it,
        // and the span-end `token_boundary` pops the (time-ordered) due
        // arrivals into `pending` exactly as per-step mode would have.
        let consider_arrivals =
            self.batch.active.len() < self.batch.max_batch && self.pending.is_empty();
        let next_arrival = if consider_arrivals {
            self.ev.next_arrival_ps()
        } else {
            None
        };
        let mut lats: Vec<SimTime> = Vec::with_capacity(k_max.min(4096));
        let mut t = now;
        let mut npu_busy = SimTime::ZERO;
        let mut span_fault_extra: u64 = 0;
        let mut k = 0usize;
        // Attention traffic accumulates span-locally and lands in the
        // shared ledger once at span end: the integer per-step sums
        // regroup exactly, and the hot loop stops round-tripping
        // through the full-width ledger every step.
        let mut dep_traffic = TrafficBreakdown::default();
        loop {
            // This step's attention slots, at each member's position
            // `k` tokens ahead of its cursor (cursors advance at the
            // boundary pass below). Consecutive members at the same
            // sequence position — the common case, lockstep admission
            // parks whole cohorts together — share one pricing and
            // scale by the run length; the scaled integer sums equal
            // per-member accumulation exactly.
            let mut dep_step = SimTime::ZERO;
            let mut i = 0;
            while i < self.batch.active.len() {
                let seq = self.requests.cursor[self.batch.active[i]].seq_len() + k;
                let mut run = 1usize;
                while i + run < self.batch.active.len()
                    && self.requests.cursor[self.batch.active[i + run]].seq_len() + k == seq
                {
                    run += 1;
                }
                let (lat, tr) = attn_at(&mut self.system, self.plan, &mut self.table, seq);
                let mut pos_dep = SimTime::ZERO;
                for (d, &l) in lat.iter().enumerate().take(self.table.n_dep) {
                    pos_dep += l * self.table.dep_counts[d];
                }
                dep_step += pos_dep * run as u64;
                dep_traffic.absorb_scaled(&tr, run as u64);
                i += run;
            }
            let mut lat = flash_step + npu_inv_step + dep_step;
            // One fault window per step, same stream and window as
            // per-step mode — every priced step is committed, so the
            // draws are never speculative.
            if let Some(f) = &mut self.faults {
                let owner = self.batch.active[0];
                let extra = f.window_extra(
                    self.table.inv_stream_traffic.nand_array_bytes,
                    self.table.solo_flash_lat.as_picos(),
                    &mut self.requests.fault_rng[owner],
                );
                if extra > 0 {
                    lat += SimTime::from_picos(extra);
                    span_fault_extra += extra;
                }
            }
            npu_busy += npu_inv_step + dep_step;
            t += lat;
            lats.push(lat);
            k += 1;
            if k == k_max {
                // The earliest completion (or the forced cap): a real
                // scheduling boundary, handled by the span-end event.
                break;
            }
            if next_arrival.is_some_and(|ta| t.as_picos() >= ta) {
                // First boundary at or after the next arrival: stop so
                // the admission pass sees it (the arrival itself fires
                // mid-span and queues, exactly as it would mid-step).
                break;
            }
            if min_deadline_ps.is_some_and(|dl| t.as_picos() >= dl) {
                // First boundary at or after a member deadline: stop so
                // the boundary's shed check runs.
                break;
            }
        }
        self.traffic.absorb(&dep_traffic);
        // The span's invariant traffic in one bulk booking: `k ×` the
        // shared stream plus `k × batch ×` the per-request share.
        self.traffic.absorb_batch_span(
            &self.table.inv_stream_traffic,
            &self.table.inv_request_traffic,
            batch,
            k as u64,
        );
        let weights = self.table.gemvs_per_token;
        self.gemv_dispatched += k as u64 * weights;
        self.ops_dispatched += k as u64 * (weights + (n_ops as u64 - weights) * batch);
        // One busy interval per resource for the whole span; per-class
        // totals are identical to per-position interval accounting.
        // Fault time is flash time: rereads occupy the flash device.
        self.busy_track[0].add_interval(
            now,
            now + flash_step * k as u64 + SimTime::from_picos(span_fault_extra),
        );
        self.busy_track[1].add_interval(now, now + npu_busy);
        // Interior token boundaries (all steps but the last) retire
        // inline: samples and first tokens in the same member order as
        // `token_boundary`. No member completes here — `k` never
        // exceeds the minimum remaining tokens.
        let mut tb = now;
        for &lat in &lats[..k - 1] {
            tb += lat;
            for i in 0..self.batch.active.len() {
                let id = self.batch.active[i];
                retire_token(&mut self.requests, id, tb, &mut self.token_latencies);
            }
        }
        // Every member's cursor jumps the retired tokens in one shot.
        for i in 0..self.batch.active.len() {
            let id = self.batch.active[i];
            self.requests.cursor[id].advance_by(k - 1);
        }
        // The final step's boundary is the span-end event. Elided
        // per-position events are accounted into the schedule stamp so
        // FIFO tie-breaking stays identical to per-step mode.
        self.ev.schedule_op(slot(OpClass::Flash), t, SPAN_BOUNDARY);
        self.ev.bump_stamp((k * n_ops - 1) as u64);
    }

    /// Launches the batched op at the current plan position: one shared
    /// fetch for a weight GeMV, the batch's summed latency for NPU
    /// work.
    fn dispatch(&mut self, now: SimTime) {
        let idx = self.batch.pos;
        let s = slot(self.table.classes[idx]);
        let cost_slot = self.table.slots[idx] as usize;
        let batch = self.batch.active.len() as u64;
        let latency = if s == slot(OpClass::Flash) {
            // One weight stream serves every cursor parked here — but
            // every member still multiplies the streamed weights by its
            // own activations, so the shared window is floored by both
            // compute rooflines on `batch ×` the per-request MAC shares
            // — the in-flash cores (sized to just match the read rate
            // at batch 1, so they throttle first) and the NPU. This is
            // the compute ceiling that ends batching's free lunch; at
            // batch 1 both floors are already inside the table price.
            debug_assert!(cost_slot < self.table.n_inv, "weight slots are invariant");
            self.gemv_dispatched += 1;
            self.ops_dispatched += 1;
            let npu_floor = self
                .system
                .npu_compute_time(self.table.inv_npu_ops[cost_slot] * batch);
            let flash_floor = self
                .system
                .flash_compute_time(self.table.inv_flash_ops[cost_slot] * batch);
            let base = self.table.inv_lat[cost_slot]
                .max(npu_floor)
                .max(flash_floor);
            // The step's sampled fault time rides on its first weight
            // window (always 0 with faults off).
            if self.step_fault_extra > 0 {
                base + SimTime::from_picos(std::mem::take(&mut self.step_fault_extra))
            } else {
                base
            }
        } else if cost_slot < self.table.n_inv {
            // Per-request NPU work at the shared table price.
            self.ops_dispatched += batch;
            self.table.inv_lat[cost_slot] * batch
        } else {
            // Attention: summed over each member's sequence position.
            self.ops_dispatched += batch;
            let d = cost_slot - self.table.n_inv;
            self.batch
                .active
                .iter()
                .map(|&id| self.requests.dep_lat[id][d])
                .sum()
        };
        self.busy_track[s].add_interval(now, now + latency);
        self.ev.schedule_op(s, now + latency, BATCH_EVENT);
    }

    fn finish(mut self) -> (ServeReport, System) {
        assert!(
            self.pending.is_empty() && self.batch.active.is_empty(),
            "event core drained with work outstanding"
        );
        debug_assert_eq!(self.kv.tokens(), 0, "kv reservations leaked");
        self.batch.note_occupancy(self.ev.now);
        let (prefill_priced, prefill_busy) = self
            .prefill
            .as_ref()
            .map_or((0, SimTime::ZERO), |p| (p.priced(), p.busy));
        self.ops_dispatched += prefill_priced * PrefillCost::COMPONENT_OPS;

        let report = build_report(ReportInputs {
            policy: SchedulePolicy::ContinuousBatch {
                max_batch: self.batch.max_batch,
            },
            prefill: if self.prefill.is_some() {
                PrefillMode::Modeled
            } else {
                PrefillMode::Off
            },
            prefill_busy,
            first_arrival: self.first_arrival,
            token_latencies: self.token_latencies,
            queueing: self.queueing,
            busy_track: self.busy_track,
            system: &self.system,
            ops_dispatched: self.ops_dispatched,
            gemv_dispatched: self.gemv_dispatched,
            occ_weighted_ps: self.batch.occ_weighted_ps,
            peak_batch_occupancy: self.batch.peak,
            kv_rejections: self.kv_rejections,
            traffic: self.traffic,
            reliability: self
                .faults
                .as_ref()
                .map(FaultRun::summary)
                .unwrap_or_default(),
            done: self.done,
        });
        (report, self.system)
    }
}
