//! Monte Carlo serving harness: one scenario, many seeded arrival
//! traces, distribution estimates with confidence intervals.
//!
//! A single [`ServeReport`](crate::serve::ServeReport) answers "what
//! happened on *this* trace"; architecture questions ("is continuous
//! batching's p99 TTFT actually better, or did one lucky arrival
//! pattern make it look that way?") need the distribution across
//! arrival randomness. [`MonteCarlo`] fans one scenario across `n`
//! seeds and reports each metric as an [`Estimate`] — mean, sample
//! stddev, and a 95% confidence half-width — so two designs can be
//! compared with error bars instead of single draws.
//!
//! ## Seed hygiene
//!
//! Per-seed traces derive from **one** root seed via
//! [`SplitMix64::split_seeds`]: each stream seed is a successive output
//! of a root-seeded generator, never `root + i` (adjacent SplitMix64
//! states walk the same sequence one step apart — maximally correlated
//! "independent" replicas). The whole batch reproduces exactly from
//! the root seed.
//!
//! ## Determinism across thread counts
//!
//! Seeds fan out through [`sim_core::parallel_map`] (the same
//! atomic-claim, pre-assigned-slot pool the design-space sweeps use),
//! so per-seed reports land in seed order regardless of scheduling.
//! The only cross-seed state is the pre-warmed pricing [`System`], and
//! it is **frozen before the fan-out**: one warm-up run on the first
//! seed's trace populates the GeMV and op-cost memos, its counters are
//! zeroed, and every seed then runs on a private clone. No thread ever
//! observes another's cache fills, so each per-seed
//! [`ServeReport`](crate::serve::ServeReport) — cache counters
//! included — is bit-identical whether the batch runs on 1 thread or
//! 64.
//!
//! The warm-up also carries the harness's throughput: pricing a
//! scenario (flash discrete-event runs per GeMV shape, op-cost
//! derivations per attention position) costs ~ms while replaying a
//! priced trace costs ~0.1 µs/token, so paying the fixed cost once —
//! instead of once per seed — is what lets an `n`-seed batch simulate
//! tens of millions of tokens per wall-second.

use crate::serve::{PrefillMode, SchedulePolicy, ServeEngine, ServeReport};
use crate::system::System;
use llm_workload::ArrivalTrace;
use sim_core::{parallel_map_workers, Estimate, SplitMix64};

/// Configuration for a Monte Carlo serving batch: how many seeds, from
/// which root, on how many threads.
///
/// # Examples
///
/// ```
/// use cambricon_llm::montecarlo::MonteCarlo;
/// use cambricon_llm::serve::{SchedulePolicy, ServeEngine};
/// use cambricon_llm::SystemConfig;
/// use llm_workload::{zoo, ArrivalTrace, RequestShape};
///
/// let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
/// let shape = RequestShape { prompt_len: 64, new_tokens: 8 };
/// let mc = MonteCarlo::new(4, 0xC0FFEE);
/// let report = mc.run(&engine, SchedulePolicy::Fcfs, |seed| {
///     ArrivalTrace::poisson(200.0, 6, shape, seed)
/// });
/// assert_eq!(report.per_seed.len(), 4);
/// assert!(report.throughput.mean > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    seeds: usize,
    root_seed: u64,
    /// Worker override; `None` = `available_parallelism()`.
    threads: Option<usize>,
}

impl MonteCarlo {
    /// A batch of `seeds` runs derived from `root_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seeds == 0` — an empty batch estimates nothing.
    pub fn new(seeds: usize, root_seed: u64) -> Self {
        assert!(seeds >= 1, "a Monte Carlo batch needs at least one seed");
        MonteCarlo {
            seeds,
            root_seed,
            threads: None,
        }
    }

    /// Pins the worker-thread count (default: all available cores).
    /// Results are bit-identical for every choice; this exists for the
    /// determinism tests and for sharing a machine.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// The derived per-seed stream seeds, in run order.
    pub fn seed_vec(&self) -> Vec<u64> {
        SplitMix64::split_seeds(self.root_seed, self.seeds)
    }

    /// Runs the scenario once per seed and aggregates.
    ///
    /// `trace_fn` maps a stream seed to that replica's arrival trace
    /// (typically [`ArrivalTrace::poisson`] with the seed passed
    /// through). It must be deterministic in the seed; it is called
    /// once per seed plus once for the warm-up.
    pub fn run<F>(
        &self,
        engine: &ServeEngine,
        policy: SchedulePolicy,
        trace_fn: F,
    ) -> MonteCarloReport
    where
        F: Fn(u64) -> ArrivalTrace + Sync,
    {
        let seeds = self.seed_vec();
        // Warm the pricing memos once, before any thread exists: run
        // the first seed's trace on a fresh system, discard the report,
        // zero the counters. Every seed below starts from a clone of
        // this exact state, so per-seed reports cannot depend on
        // thread count (and the warm-up's fixed pricing cost is paid
        // once, not once per seed).
        let (_, mut warm) = engine.run_with_system(&trace_fn(seeds[0]), policy, {
            System::new(engine.config())
        });
        warm.reset_cache_stats();
        let warm = &warm;
        let workers = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let trace_fn = &trace_fn;
        let per_seed: Vec<ServeReport> = parallel_map_workers(&seeds, workers, |_, &seed| {
            engine
                .run_with_system(&trace_fn(seed), policy, warm.clone())
                .0
        });
        MonteCarloReport::aggregate(
            policy,
            engine.prefill_mode(),
            self.root_seed,
            seeds,
            per_seed,
        )
    }
}

/// Distribution estimates across a Monte Carlo batch.
///
/// Each [`Estimate`] summarizes one per-seed scalar (the corresponding
/// [`ServeReport`](crate::serve::ServeReport) field) over the batch.
/// `PartialEq` compares everything, `per_seed` included, so the
/// determinism tests can pin whole batches bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloReport {
    /// Scheduling policy the batch ran under.
    pub policy: SchedulePolicy,
    /// Prefill mode the batch ran under.
    pub prefill: PrefillMode,
    /// Root seed the per-seed streams derive from.
    pub root_seed: u64,
    /// Derived stream seeds, in run order ([`SplitMix64::split_seeds`]).
    pub seeds: Vec<u64>,
    /// Requests completed, summed across seeds.
    pub requests_served: usize,
    /// Tokens generated, summed across seeds.
    pub tokens_served: u64,
    /// Per-seed decode throughput (tokens/s of virtual time).
    pub throughput: Estimate,
    /// Per-seed median arrival-relative TTFT, seconds.
    pub ttft_p50_s: Estimate,
    /// Per-seed p99 arrival-relative TTFT, seconds.
    pub ttft_p99_s: Estimate,
    /// Per-seed median token latency, seconds.
    pub token_latency_p50_s: Estimate,
    /// Per-seed p99 token latency, seconds.
    pub token_latency_p99_s: Estimate,
    /// Per-seed mean token latency, seconds.
    pub token_latency_mean_s: Estimate,
    /// Per-seed time-weighted mean batch occupancy (zero under the
    /// non-batched policies).
    pub batch_occupancy: Estimate,
    /// Per-seed KV-capacity admission rejections.
    pub kv_rejections: Estimate,
    /// Per-seed ECC reread count (zero with faults off).
    pub page_rereads: Estimate,
    /// Per-seed uncorrectable-read events (zero with faults off).
    pub uncorrectable_events: Estimate,
    /// Per-seed deadline sheds, TTFT and total combined (zero with
    /// faults off or no deadlines configured).
    pub deadline_sheds: Estimate,
    /// Per-seed deadline-goodput (tokens/s from requests that met
    /// their deadlines; zero with faults off).
    pub goodput_tps: Estimate,
    /// The full per-seed reports, in seed order.
    pub per_seed: Vec<ServeReport>,
}

impl MonteCarloReport {
    fn aggregate(
        policy: SchedulePolicy,
        prefill: PrefillMode,
        root_seed: u64,
        seeds: Vec<u64>,
        per_seed: Vec<ServeReport>,
    ) -> Self {
        // Left-to-right over seed order: deterministic f64 summation.
        let est = |f: &dyn Fn(&ServeReport) -> f64| {
            let samples: Vec<f64> = per_seed.iter().map(f).collect();
            Estimate::from_samples(&samples)
        };
        MonteCarloReport {
            policy,
            prefill,
            root_seed,
            requests_served: per_seed.iter().map(|r| r.requests_served).sum(),
            tokens_served: per_seed.iter().map(|r| r.tokens_served).sum(),
            throughput: est(&|r| r.tokens_per_sec),
            ttft_p50_s: est(&|r| r.ttft_p50_s),
            ttft_p99_s: est(&|r| r.ttft_p99_s),
            token_latency_p50_s: est(&|r| r.p50_token_latency_s),
            token_latency_p99_s: est(&|r| r.p99_token_latency_s),
            token_latency_mean_s: est(&|r| r.mean_token_latency_s),
            batch_occupancy: est(&|r| r.mean_batch_occupancy),
            kv_rejections: est(&|r| r.kv_rejections as f64),
            page_rereads: est(&|r| r.reliability.page_rereads as f64),
            uncorrectable_events: est(&|r| r.reliability.uncorrectable_events as f64),
            deadline_sheds: est(&|r| r.reliability.total_sheds() as f64),
            goodput_tps: est(&|r| r.reliability.deadline_goodput_tps),
            seeds,
            per_seed,
        }
    }

    /// Renders the headline estimates as `mean ± ci95` lines.
    pub fn summary(&self) -> String {
        let pm =
            |e: &Estimate, scale: f64| format!("{:.2} ± {:.2}", e.mean * scale, e.ci95 * scale);
        let mut out = format!(
            "{} seeds (root {:#x}) under {:?} / {:?}: {} requests, {} tokens\n\
             throughput: {} tok/s\n\
             ttft: p50 {} ms, p99 {} ms\n\
             token latency: p50 {} ms, p99 {} ms, mean {} ms\n\
             batch occupancy: {} | kv rejections: {}",
            self.seeds.len(),
            self.root_seed,
            self.policy,
            self.prefill,
            self.requests_served,
            self.tokens_served,
            pm(&self.throughput, 1.0),
            pm(&self.ttft_p50_s, 1e3),
            pm(&self.ttft_p99_s, 1e3),
            pm(&self.token_latency_p50_s, 1e3),
            pm(&self.token_latency_p99_s, 1e3),
            pm(&self.token_latency_mean_s, 1e3),
            pm(&self.batch_occupancy, 1.0),
            pm(&self.kv_rejections, 1.0),
        );
        // Reliability estimates only when faults actually ran: a batch
        // with faults off has identically-zero estimates here.
        if self.page_rereads.mean > 0.0
            || self.uncorrectable_events.mean > 0.0
            || self.deadline_sheds.mean > 0.0
            || self.goodput_tps.mean > 0.0
        {
            out.push_str(&format!(
                "\nreliability: rereads {} | uncorrectable {} | sheds {} | goodput {} tok/s",
                pm(&self.page_rereads, 1.0),
                pm(&self.uncorrectable_events, 1.0),
                pm(&self.deadline_sheds, 1.0),
                pm(&self.goodput_tps, 1.0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use llm_workload::{zoo, RequestShape};

    fn engine() -> ServeEngine {
        ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
    }

    fn shape() -> RequestShape {
        RequestShape {
            prompt_len: 64,
            new_tokens: 8,
        }
    }

    #[test]
    fn batch_runs_every_seed() {
        let mc = MonteCarlo::new(5, 11);
        let rep = mc.run(&engine(), SchedulePolicy::Fcfs, |s| {
            ArrivalTrace::poisson(100.0, 4, shape(), s)
        });
        assert_eq!(rep.per_seed.len(), 5);
        assert_eq!(rep.seeds, SplitMix64::split_seeds(11, 5));
        assert_eq!(rep.throughput.n, 5);
        assert_eq!(
            rep.tokens_served,
            rep.per_seed.iter().map(|r| r.tokens_served).sum::<u64>()
        );
        assert!(rep.throughput.mean > 0.0);
    }

    #[test]
    fn distinct_seeds_give_distinct_reports() {
        // The poisson traces genuinely differ per stream seed, so the
        // makespans (integer picoseconds) differ too.
        let mc = MonteCarlo::new(4, 0xFEED);
        let rep = mc.run(&engine(), SchedulePolicy::Fcfs, |s| {
            ArrivalTrace::poisson(100.0, 4, shape(), s)
        });
        let mut spans: Vec<_> = rep.per_seed.iter().map(|r| r.makespan).collect();
        spans.sort_unstable();
        spans.dedup();
        assert!(spans.len() > 1, "all seeds produced the same trace");
    }

    #[test]
    fn same_root_reproduces_exactly() {
        let run = || {
            MonteCarlo::new(3, 77).run(&engine(), SchedulePolicy::RoundRobin, |s| {
                ArrivalTrace::poisson(150.0, 4, shape(), s)
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warm_cache_matches_cold_run_modulo_counters() {
        // A seeded run inside the batch must report identical serving
        // metrics to the same trace run cold through `ServeEngine::run`
        // — the warm system changes pricing *work*, never results.
        // Only the cache hit/miss split may differ.
        let eng = engine();
        let mc = MonteCarlo::new(2, 5);
        let rep = mc.run(&eng, SchedulePolicy::Fcfs, |s| {
            ArrivalTrace::poisson(100.0, 4, shape(), s)
        });
        let seeds = mc.seed_vec();
        for (seed, warm_rep) in seeds.iter().zip(&rep.per_seed) {
            let cold = eng.run(
                &ArrivalTrace::poisson(100.0, 4, shape(), *seed),
                SchedulePolicy::Fcfs,
            );
            assert_eq!(cold.makespan, warm_rep.makespan);
            assert_eq!(cold.tokens_served, warm_rep.tokens_served);
            assert_eq!(cold.tokens_per_sec, warm_rep.tokens_per_sec);
            assert_eq!(cold.ttft_p99_s, warm_rep.ttft_p99_s);
            assert_eq!(cold.traffic, warm_rep.traffic);
            assert_eq!(cold.requests, warm_rep.requests);
            // The warm run dispatched the same ops...
            assert_eq!(
                cold.op_cost_cache_hits + cold.op_cost_cache_misses,
                warm_rep.op_cost_cache_hits + warm_rep.op_cost_cache_misses
            );
            // ...but priced no more of them from scratch than cold.
            assert!(warm_rep.op_cost_cache_misses <= cold.op_cost_cache_misses);
        }
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn zero_seeds_rejected() {
        MonteCarlo::new(0, 1);
    }
}
