//! Multi-request serving engine: many concurrent decode requests on one
//! Cambricon-LLM device.
//!
//! # Scheduler model
//!
//! The single-request simulator ([`crate::system`]) prices a token as
//! the *serial* sum of its op latencies, because at batch 1 every op
//! consumes the previous op's output. Across **different requests**
//! there is no such dependency, and the paper's Figure 4 pipeline
//! exposes two serially-exclusive resources that can serve different
//! requests at the same time:
//!
//! * the **flash device** (NAND channels + in-flash compute cores,
//!   together with the NPU share that consumes pages as they stream) —
//!   occupied by weight GeMVs ([`OpClass::Flash`]);
//! * the **NPU/DRAM side** (systolic array, SFU, LPDDR KV traffic) —
//!   occupied by KV matrix work, special functions and cache appends
//!   ([`OpClass::Npu`]).
//!
//! The engine is a discrete-event simulation: each in-flight request is
//! an [`OpCursor`] over the model's shared [`TokenPlan`], each resource
//! serves one op at a time, and when a resource frees it picks the next
//! waiting request according to the [`SchedulePolicy`]. While request
//! A's GeMV holds the flash device, request B can run its attention/KV
//! phase on the NPU — that overlap is why per-token latency degrades
//! *sub-linearly* in the number of in-flight requests, exactly as in a
//! real serving stack that pipelines prefill/attention against weight
//! streaming.
//!
//! # Hot-path structure
//!
//! The engine retires one simulated op per event, so op dispatch is the
//! hottest code in the repo and is built around reuse instead of
//! re-materialization:
//!
//! * the per-token op sequence is never materialized — every request
//!   walks the engine's one [`TokenPlan`] with a cursor, and only the
//!   few seq-dependent attention ops are re-priced, once per token;
//! * op latencies come from a per-plan **slot table**: each distinct
//!   cost slot is priced once through [`System::op_cost`] (which itself
//!   memoizes by canonical shape in the system-wide
//!   [`crate::system::OpCostCache`]) and replayed by array index;
//! * the ready lists are per-resource binary heaps keyed by the active
//!   policy's priority at enqueue time (exact, because both policies'
//!   keys are frozen while a request waits), so a dispatch is O(log n)
//!   instead of an O(n) scan;
//! * the event core is specialized to this scheduler's shape: at most
//!   one completion can be pending per resource, so "next event" is a
//!   three-way minimum over two completion slots and an arrival queue
//!   rather than a general priority queue, with the same
//!   `(time, schedule-order)` FIFO tie-breaking as
//!   [`sim_core::EventQueue`].
//!
//! All timing still flows through the same flash discrete-event model
//! and NPU roofline as the single-request path; with one in-flight
//! request the engine reproduces [`System::decode_token`] exactly, and
//! golden tests pin the reports bit-for-bit to the pre-optimization
//! engine. Identical shapes across requests hit the shared caches, so a
//! fleet of same-model requests costs one flash simulation per distinct
//! shape, not per request.
//!
//! Prefill is not modelled here: requests enter with their prompt
//! already in the KV cache (`RequestShape::prompt_len`), and decode —
//! the phase that dominates interactive traffic — is simulated token
//! by token with the context growing as tokens are emitted.
//!
//! # Example
//!
//! ```
//! use cambricon_llm::serve::{ServeEngine, SchedulePolicy};
//! use cambricon_llm::SystemConfig;
//! use llm_workload::{zoo, ArrivalTrace, RequestShape};
//!
//! let trace = ArrivalTrace::closed_loop(2, 1, RequestShape::new(256, 4));
//! let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
//! let report = engine.run(&trace, SchedulePolicy::RoundRobin);
//! assert_eq!(report.requests_served, 2);
//! assert_eq!(report.tokens_served, 8);
//! assert!(report.tokens_per_sec > 0.0);
//! ```

use crate::config::SystemConfig;
use crate::system::{OpClass, System, TrafficBreakdown};
use llm_workload::{ArrivalTrace, ModelSpec, OpCursor, RequestShape, TokenPlan};
use sim_core::{Aggregate, BusyTracker, Samples, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How a freed resource picks the next waiting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// First come, first served: the earliest-arrived waiting request
    /// wins. Minimizes queueing delay variance across requests but lets
    /// an early long request starve later short ones.
    Fcfs,
    /// Round-robin: the least-recently-scheduled waiting request wins,
    /// interleaving per-token progress fairly across in-flight requests.
    RoundRobin,
}

/// Summary of one served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestReport {
    /// Request id (issue order).
    pub id: usize,
    /// Arrival time.
    pub arrived: SimTime,
    /// When the first op of the request started executing.
    pub started: SimTime,
    /// When the first token completed (decode-only TTFT).
    pub first_token: SimTime,
    /// When the last token completed.
    pub finished: SimTime,
    /// Tokens generated.
    pub tokens: usize,
}

impl RequestReport {
    /// Time spent queued before any op ran.
    pub fn queueing_delay(&self) -> SimTime {
        self.started.saturating_sub(self.arrived)
    }

    /// Mean time per generated token once running.
    pub fn mean_token_latency(&self) -> SimTime {
        let span = self.finished.saturating_sub(self.started);
        SimTime::from_picos(span.as_picos() / self.tokens.max(1) as u64)
    }
}

/// Fleet-level results of a serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scheduling policy that produced this report.
    pub policy: SchedulePolicy,
    /// Requests completed.
    pub requests_served: usize,
    /// Tokens generated across all requests.
    pub tokens_served: u64,
    /// Virtual time from first arrival to last completion.
    pub makespan: SimTime,
    /// Aggregate decode throughput over the makespan.
    pub tokens_per_sec: f64,
    /// Median per-token latency in seconds.
    pub p50_token_latency_s: f64,
    /// 99th-percentile per-token latency in seconds.
    pub p99_token_latency_s: f64,
    /// Mean per-token latency in seconds.
    pub mean_token_latency_s: f64,
    /// Queueing delay (arrival → first op) statistics, in seconds.
    pub queueing_delay_s: Aggregate,
    /// Busy fraction of the flash device over the makespan.
    pub flash_utilization: f64,
    /// Busy fraction of the NPU/DRAM side over the makespan.
    pub npu_utilization: f64,
    /// GeMV-cache hits across the fleet: weight-GeMV dispatches served
    /// without re-running the flash discrete-event simulation.
    pub gemv_cache_hits: u64,
    /// GeMV-cache misses (distinct shapes actually simulated).
    pub gemv_cache_misses: u64,
    /// Dispatched ops priced from the memo ([`crate::system::OpCostCache`]
    /// plus the per-plan slot table derived from it): every dispatch
    /// after the first of its canonical shape. Together with the misses
    /// this partitions the dispatched ops exactly:
    /// `hits + misses == tokens_served × ops_per_token`.
    pub op_cost_cache_hits: u64,
    /// Dispatched ops whose cost had to be derived from the hardware
    /// models — the distinct canonical shapes, including one per
    /// sequence position reached for the attention ops.
    pub op_cost_cache_misses: u64,
    /// Total traffic across all requests.
    pub traffic: TrafficBreakdown,
    /// Per-request summaries, in completion order.
    pub requests: Vec<RequestReport>,
}

impl ServeReport {
    /// Renders the headline numbers as a short multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "served {} requests / {} tokens in {:.2} s ({:.2} tok/s)\n\
             token latency: p50 {:.0} ms, p99 {:.0} ms, mean {:.0} ms\n\
             queueing delay: mean {:.0} ms, max {:.0} ms\n\
             utilization: flash {:.0}%, npu {:.0}% | gemv cache: {} hits / {} misses\n\
             op-cost cache: {} hits / {} misses",
            self.requests_served,
            self.tokens_served,
            self.makespan.as_secs_f64(),
            self.tokens_per_sec,
            self.p50_token_latency_s * 1e3,
            self.p99_token_latency_s * 1e3,
            self.mean_token_latency_s * 1e3,
            self.queueing_delay_s.mean().unwrap_or(0.0) * 1e3,
            self.queueing_delay_s.max().unwrap_or(0.0) * 1e3,
            self.flash_utilization * 100.0,
            self.npu_utilization * 100.0,
            self.gemv_cache_hits,
            self.gemv_cache_misses,
            self.op_cost_cache_hits,
            self.op_cost_cache_misses,
        )
    }
}

/// The scheduler's ready queues: per resource, a priority heap of the
/// requests whose next op is waiting for that resource.
///
/// Every arrival is admitted immediately and enqueued here (no
/// admission cap yet — continuous batching and KV-capacity admission
/// control are the next layer, see `ROADMAP.md`). Entries carry the
/// active policy's priority key, computed **at enqueue time** — exact
/// because both policies' keys (FCFS arrival time, round-robin
/// last-scheduled stamp) cannot change while a request waits — so a
/// freed resource pops its winner in O(log n) instead of scanning.
#[derive(Debug, Default)]
pub struct RequestQueue {
    ready: [BinaryHeap<Reverse<(u64, u64)>>; 2],
}

impl RequestQueue {
    #[inline]
    fn enqueue(&mut self, class_slot: usize, key: u64, id: usize) {
        self.ready[class_slot].push(Reverse((key, id as u64)));
    }

    /// Removes and returns the waiting request minimizing `(key, id)`.
    #[inline]
    fn pop_min(&mut self, class_slot: usize) -> Option<usize> {
        let Reverse((_, id)) = self.ready[class_slot].pop()?;
        Some(id as usize)
    }

    /// Requests currently waiting for `class`.
    pub fn waiting(&self, class: OpClass) -> usize {
        self.ready[slot(class)].len()
    }

    /// Total requests waiting across both resources.
    pub fn len(&self) -> usize {
        self.ready.iter().map(BinaryHeap::len).sum()
    }

    /// Whether no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.ready.iter().all(BinaryHeap::is_empty)
    }
}

/// A multi-request serving engine over one simulated device.
#[derive(Debug)]
pub struct ServeEngine {
    cfg: SystemConfig,
    model: ModelSpec,
    /// Shared decode plan: one per engine, reused by every request of
    /// every run.
    plan: TokenPlan,
}

impl ServeEngine {
    /// An engine serving `model` on a device configured as `cfg`.
    pub fn new(cfg: SystemConfig, model: ModelSpec) -> Self {
        let plan = TokenPlan::new(&model, cfg.quant);
        ServeEngine { cfg, model, plan }
    }

    /// The model this engine serves.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The shared decode plan every request of every run walks.
    pub fn plan(&self) -> &TokenPlan {
        &self.plan
    }

    /// Runs `trace` to completion under `policy` and reports fleet
    /// statistics. Deterministic: the same trace and policy always
    /// produce an identical report.
    pub fn run(&self, trace: &ArrivalTrace, policy: SchedulePolicy) -> ServeReport {
        Simulation::new(self, trace, policy).run()
    }
}

/// Upper bound on seq-dependent cost slots per plan (both model
/// families have exactly three: scores, softmax, context). Sized with
/// one spare so a new attention template doesn't immediately overflow.
const MAX_DEP_SLOTS: usize = 4;

/// Per-plan pricing table: latencies and traffic by cost slot, so the
/// per-op dispatch path is an array index instead of an op
/// materialization plus cost derivation.
#[derive(Debug)]
struct PlanTable {
    /// Resource class of each plan position.
    classes: Vec<OpClass>,
    /// Cost slot of each plan position.
    slots: Vec<u32>,
    /// Latency per seq-invariant slot (indices `0..n_inv`).
    inv_lat: Vec<SimTime>,
    n_inv: usize,
    n_dep: usize,
    /// Traffic of one token's seq-invariant ops.
    inv_traffic: TrafficBreakdown,
    /// Weight GeMVs per token (for GeMV-cache recall accounting).
    gemvs_per_token: u64,
    /// Whether the invariant slots have been priced yet (done lazily so
    /// an empty trace prices nothing, like the engine it replaced).
    priced: bool,
}

impl PlanTable {
    fn new(plan: &TokenPlan) -> Self {
        let classes: Vec<OpClass> = (0..plan.len())
            .map(|idx| OpClass::of(&plan.op_at(idx, 0)))
            .collect();
        let gemvs_per_token = classes.iter().filter(|c| **c == OpClass::Flash).count() as u64;
        let n_inv = plan.invariant_slots();
        let n_dep = plan.cost_slots() - n_inv;
        assert!(
            n_dep <= MAX_DEP_SLOTS,
            "plan has {n_dep} seq-dependent slots; raise MAX_DEP_SLOTS"
        );
        PlanTable {
            classes,
            slots: (0..plan.len())
                .map(|idx| plan.cost_slot(idx) as u32)
                .collect(),
            inv_lat: vec![SimTime::ZERO; n_inv],
            n_inv,
            n_dep,
            inv_traffic: TrafficBreakdown::default(),
            gemvs_per_token,
            priced: false,
        }
    }
}

/// Per-request execution state.
#[derive(Debug)]
struct RequestState {
    shape: RequestShape,
    arrived: SimTime,
    started: Option<SimTime>,
    first_token: Option<SimTime>,
    token_started: SimTime,
    /// Position in the shared [`TokenPlan`] (replaces a per-token
    /// materialized op vector).
    cursor: OpCursor,
    /// Latencies of this token's seq-dependent slots, refreshed at each
    /// token start.
    dep_lat: [SimTime; MAX_DEP_SLOTS],
    tokens_done: usize,
    /// Closed-loop client this request belongs to, if any.
    client: Option<usize>,
    /// Monotone stamp of the last time a resource scheduled this
    /// request (round-robin recency key).
    last_scheduled: u64,
}

/// The serving scheduler's event core.
///
/// A general priority queue is overkill here: each resource serves one
/// op at a time, so at most one completion is pending per resource, and
/// the only other event source is the arrival sequence. "Next event" is
/// therefore a three-way minimum over two slots and the arrival heap.
/// Ordering matches [`sim_core::EventQueue`] exactly: earliest
/// `(time, schedule_stamp)` wins, so simultaneous events fire in the
/// order they were scheduled (FIFO) and every run is deterministic.
#[derive(Debug, Default)]
struct EventCore {
    /// Pending op completion per resource: `(fires_at_ps, stamp, req)`.
    op_done: [Option<(u64, u64, u32)>; 2],
    /// Pending arrivals as `(time_ps, stamp, req)`, earliest first.
    arrivals: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Global schedule stamp (FIFO tie-break).
    stamp: u64,
    /// Timestamp of the most recently fired event.
    now: SimTime,
}

/// Which event source fired; see [`EventCore::pop`].
#[derive(Debug, Clone, Copy)]
enum Fired {
    /// Op completion on a resource slot, for a request.
    Op(usize, usize),
    /// Arrival of a request.
    Arrive(usize),
}

impl EventCore {
    fn schedule_arrival(&mut self, at: SimTime, id: usize) {
        let stamp = self.stamp;
        self.stamp += 1;
        self.arrivals
            .push(Reverse((at.as_picos(), stamp, id as u32)));
    }

    #[inline]
    fn schedule_op(&mut self, class_slot: usize, at: SimTime, id: usize) {
        debug_assert!(self.op_done[class_slot].is_none(), "resource already busy");
        let stamp = self.stamp;
        self.stamp += 1;
        self.op_done[class_slot] = Some((at.as_picos(), stamp, id as u32));
    }

    /// Whether resource `class_slot` is serving an op.
    #[inline]
    fn busy(&self, class_slot: usize) -> bool {
        self.op_done[class_slot].is_some()
    }

    /// Fires the earliest pending event, advancing the clock.
    #[inline]
    fn pop(&mut self) -> Option<Fired> {
        let mut best: Option<(u64, u64, Fired)> = None;
        for s in 0..2 {
            if let Some((at, stamp, req)) = self.op_done[s] {
                if best.map_or(true, |(bt, bs, _)| (at, stamp) < (bt, bs)) {
                    best = Some((at, stamp, Fired::Op(s, req as usize)));
                }
            }
        }
        if let Some(&Reverse((at, stamp, req))) = self.arrivals.peek() {
            if best.map_or(true, |(bt, bs, _)| (at, stamp) < (bt, bs)) {
                best = Some((at, stamp, Fired::Arrive(req as usize)));
            }
        }
        let (at, _, fired) = best?;
        debug_assert!(at >= self.now.as_picos(), "event core went back in time");
        self.now = SimTime::from_picos(at);
        match fired {
            Fired::Op(s, _) => self.op_done[s] = None,
            Fired::Arrive(_) => {
                self.arrivals.pop();
            }
        }
        Some(fired)
    }
}

struct Simulation<'a> {
    system: System,
    plan: &'a TokenPlan,
    table: PlanTable,
    policy: SchedulePolicy,
    ev: EventCore,
    ready: RequestQueue,
    requests: Vec<RequestState>,
    busy_track: [BusyTracker; 2],
    stamp: u64,
    /// Remaining requests per closed-loop client.
    client_remaining: Vec<usize>,
    closed_shape: Option<RequestShape>,
    traffic: TrafficBreakdown,
    token_latencies: Samples,
    queueing: Aggregate,
    done: Vec<RequestReport>,
    first_arrival: SimTime,
}

fn slot(class: OpClass) -> usize {
    match class {
        OpClass::Flash => 0,
        OpClass::Npu => 1,
    }
}

/// Appends a fresh request and returns its id. The single construction
/// site for [`RequestState`] — shared by trace admission and the
/// closed-loop respawn path inside the event loop (a free function so
/// the loop can call it while holding disjoint borrows of the
/// simulation's fields).
fn push_request(
    requests: &mut Vec<RequestState>,
    shape: RequestShape,
    arrived: SimTime,
    client: Option<usize>,
) -> usize {
    let id = requests.len();
    requests.push(RequestState {
        shape,
        arrived,
        started: None,
        first_token: None,
        token_started: arrived,
        cursor: OpCursor::new(shape.prompt_len),
        dep_lat: [SimTime::ZERO; MAX_DEP_SLOTS],
        tokens_done: 0,
        client,
        last_scheduled: 0,
    });
    id
}

/// Starts a token for request `r`: prices this token's seq-dependent
/// slots (through the memoizing [`System::op_cost`]) and books the
/// whole token's traffic up front — totals at completion are identical
/// to per-dispatch accounting because every admitted token runs all its
/// ops. The cursor must already sit at the token's first op. Free
/// function so the hot loop can call it while holding disjoint borrows
/// of the simulation's fields.
fn begin_token(
    system: &mut System,
    plan: &TokenPlan,
    table: &mut PlanTable,
    traffic: &mut TrafficBreakdown,
    r: &mut RequestState,
) {
    if !table.priced {
        for s in 0..table.n_inv {
            let cost = system.op_cost(&plan.slot_op(s, 0));
            table.inv_lat[s] = cost.latency;
            table
                .inv_traffic
                .absorb_scaled(&cost.traffic, plan.slot_count(s) as u64);
        }
        table.priced = true;
    }
    traffic.absorb(&table.inv_traffic);
    let seq = r.cursor.seq_len();
    for d in 0..table.n_dep {
        let op_slot = table.n_inv + d;
        let cost = system.op_cost(&plan.slot_op(op_slot, seq));
        r.dep_lat[d] = cost.latency;
        traffic.absorb_scaled(&cost.traffic, plan.slot_count(op_slot) as u64);
    }
}

impl<'a> Simulation<'a> {
    fn new(engine: &'a ServeEngine, trace: &ArrivalTrace, policy: SchedulePolicy) -> Self {
        let mut sim = Simulation {
            system: System::new(engine.cfg),
            plan: &engine.plan,
            table: PlanTable::new(&engine.plan),
            policy,
            ev: EventCore::default(),
            ready: RequestQueue::default(),
            requests: Vec::new(),
            busy_track: [BusyTracker::new(), BusyTracker::new()],
            stamp: 0,
            client_remaining: Vec::new(),
            closed_shape: None,
            traffic: TrafficBreakdown::default(),
            token_latencies: Samples::new(),
            queueing: Aggregate::new(),
            done: Vec::new(),
            first_arrival: SimTime::ZERO,
        };
        match trace {
            ArrivalTrace::Open(arrivals) => {
                sim.first_arrival = arrivals.iter().map(|a| a.at).min().unwrap_or(SimTime::ZERO);
                for a in arrivals {
                    let id = sim.new_request(a.shape, a.at, None);
                    sim.ev.schedule_arrival(a.at, id);
                }
            }
            ArrivalTrace::ClosedLoop {
                clients,
                requests_per_client,
                shape,
            } => {
                // The variant's fields are public, so a hand-built trace
                // can bypass `ArrivalTrace::closed_loop`'s asserts.
                assert!(
                    *clients >= 1 && *requests_per_client >= 1,
                    "closed loop needs at least one client and one request per client"
                );
                sim.closed_shape = Some(*shape);
                sim.client_remaining = vec![requests_per_client - 1; *clients];
                for client in 0..*clients {
                    let id = sim.new_request(*shape, SimTime::ZERO, Some(client));
                    sim.ev.schedule_arrival(SimTime::ZERO, id);
                }
            }
        }
        sim
    }

    fn new_request(
        &mut self,
        shape: RequestShape,
        arrived: SimTime,
        client: Option<usize>,
    ) -> usize {
        push_request(&mut self.requests, shape, arrived, client)
    }

    /// The event loop. One deliberately monolithic block: this is the
    /// hottest code in the repo (one iteration per simulated op), and
    /// destructuring `self` keeps the table/queue/request base pointers
    /// in registers across iterations instead of re-loading them
    /// through `self` in every helper call.
    fn run(mut self) -> ServeReport {
        let policy = self.policy;
        {
            let Simulation {
                system,
                plan,
                table,
                ev,
                ready,
                requests,
                busy_track,
                stamp,
                client_remaining,
                closed_shape,
                traffic,
                token_latencies,
                queueing,
                done,
                ..
            } = &mut self;
            let plan: &TokenPlan = plan;
            let n_ops = table.classes.len();
            let ready_key = |policy: SchedulePolicy, r: &RequestState| match policy {
                // Earliest arrival wins; id breaks ties
                // deterministically (heap entries are `(key, id)`).
                SchedulePolicy::Fcfs => r.arrived.as_picos(),
                // Least-recently-scheduled wins: fair rotation.
                SchedulePolicy::RoundRobin => r.last_scheduled,
            };

            while let Some(fired) = ev.pop() {
                let now = ev.now;
                match fired {
                    Fired::Arrive(id) => {
                        // Admitted immediately; admission control is a
                        // future layer. The request prices its first
                        // token and enters the ready queue of its first
                        // op's resource.
                        let r = &mut requests[id];
                        r.token_started = now;
                        begin_token(system, plan, table, traffic, r);
                        let r = &requests[id];
                        ready.enqueue(
                            slot(table.classes[r.cursor.index()]),
                            ready_key(policy, r),
                            id,
                        );
                    }
                    Fired::Op(_, id) => {
                        // The resource freed (`pop` vacated its slot);
                        // step the request's cursor.
                        let r = &mut requests[id];
                        r.cursor.advance();
                        let idx = r.cursor.index();
                        if idx < n_ops {
                            ready.enqueue(slot(table.classes[idx]), ready_key(policy, r), id);
                        } else {
                            // Token complete.
                            r.tokens_done += 1;
                            token_latencies.push(now.saturating_sub(r.token_started).as_secs_f64());
                            r.token_started = now;
                            if r.first_token.is_none() {
                                r.first_token = Some(now);
                            }
                            if r.tokens_done < r.shape.new_tokens {
                                // Next token: context has grown by the
                                // token just emitted.
                                r.cursor.next_token();
                                begin_token(system, plan, table, traffic, r);
                                let r = &requests[id];
                                ready.enqueue(slot(table.classes[0]), ready_key(policy, r), id);
                            } else {
                                // Request complete.
                                let r = &requests[id];
                                let report = RequestReport {
                                    id,
                                    arrived: r.arrived,
                                    started: r.started.expect("completed request never started"),
                                    first_token: r
                                        .first_token
                                        .expect("completed request has tokens"),
                                    finished: now,
                                    tokens: r.tokens_done,
                                };
                                queueing.push(report.queueing_delay().as_secs_f64());
                                done.push(report);

                                // Closed loop: the client immediately
                                // issues its next request.
                                if let Some(client) = r.client {
                                    if client_remaining[client] > 0 {
                                        client_remaining[client] -= 1;
                                        let shape = closed_shape.expect("closed loop has a shape");
                                        let next = push_request(requests, shape, now, Some(client));
                                        ev.schedule_arrival(now, next);
                                    }
                                }
                            }
                        }
                    }
                }

                // Dispatch: start an op on every idle resource that has
                // waiting requests (flash first, as before). The index
                // addresses four parallel structures, not one slice.
                #[allow(clippy::needless_range_loop)]
                for s in 0..2 {
                    if ev.busy(s) {
                        continue;
                    }
                    let Some(id) = ready.pop_min(s) else {
                        continue;
                    };
                    *stamp += 1;
                    let r = &mut requests[id];
                    r.last_scheduled = *stamp;
                    if r.started.is_none() {
                        r.started = Some(now);
                    }
                    let idx = r.cursor.index();
                    debug_assert_eq!(
                        slot(table.classes[idx]),
                        s,
                        "ready list / op class mismatch"
                    );
                    let cost_slot = table.slots[idx] as usize;
                    let latency = if cost_slot < table.n_inv {
                        table.inv_lat[cost_slot]
                    } else {
                        r.dep_lat[cost_slot - table.n_inv]
                    };
                    busy_track[s].add_interval(now, now + latency);
                    ev.schedule_op(s, now + latency, id);
                }
            }
        }

        self.finish()
    }

    fn finish(mut self) -> ServeReport {
        assert!(
            self.ready.is_empty(),
            "event core drained with work outstanding"
        );
        let end = self.ev.now;
        let makespan = end.saturating_sub(self.first_arrival);
        let tokens_served: u64 = self.done.iter().map(|r| r.tokens as u64).sum();
        let horizon = makespan.as_secs_f64();

        // Op-pricing accounting, in dispatched-op terms: each distinct
        // canonical shape was derived once (a cache miss — the slot
        // fills in `begin_token` are exactly those derivations), and
        // every other dispatch replayed a memoized cost through the
        // slot table. Internal table bookkeeping (e.g. a slot re-read
        // at token start) is not counted, so hits + misses partition
        // the dispatched ops exactly.
        let ops_dispatched = tokens_served * self.plan.len() as u64;
        let op_misses = self.system.op_cost_cache().misses();

        // GeMV recall accounting: every weight-GeMV dispatch beyond the
        // first per distinct shape reused a memoized flash simulation
        // (whether through the GeMV cache itself or the tables above).
        let gemv_dispatched = tokens_served * self.table.gemvs_per_token;
        let gemv_misses = self.system.gemv_cache().misses();

        ServeReport {
            policy: self.policy,
            requests_served: self.done.len(),
            tokens_served,
            makespan,
            tokens_per_sec: if horizon > 0.0 {
                tokens_served as f64 / horizon
            } else {
                0.0
            },
            p50_token_latency_s: self.token_latencies.percentile(50.0).unwrap_or(0.0),
            p99_token_latency_s: self.token_latencies.percentile(99.0).unwrap_or(0.0),
            mean_token_latency_s: self.token_latencies.mean().unwrap_or(0.0),
            queueing_delay_s: self.queueing,
            flash_utilization: self.busy_track[0].utilization(makespan),
            npu_utilization: self.busy_track[1].utilization(makespan),
            gemv_cache_hits: gemv_dispatched.saturating_sub(gemv_misses),
            gemv_cache_misses: gemv_misses,
            op_cost_cache_hits: ops_dispatched.saturating_sub(op_misses),
            op_cost_cache_misses: op_misses,
            traffic: self.traffic,
            requests: self.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    fn engine() -> ServeEngine {
        ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
    }

    #[test]
    fn single_request_matches_decode_token_exactly() {
        // One in-flight request serializes every op, so the serving
        // engine must reproduce the single-request simulator tick for
        // tick — same flash model, same roofline, same cache.
        let shape = RequestShape::new(500, 3);
        let rep = engine().run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::Fcfs,
        );
        let mut sys = System::new(SystemConfig::cambricon_s());
        let expected: SimTime = (0..3)
            .map(|i| sys.decode_token(&zoo::opt_6_7b(), 500 + i).total)
            .fold(SimTime::ZERO, |a, b| a + b);
        assert_eq!(rep.makespan, expected);
        assert_eq!(rep.tokens_served, 3);
        assert_eq!(rep.requests_served, 1);
        assert_eq!(rep.queueing_delay_s.max(), Some(0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let shape = RequestShape::new(300, 4);
        let trace = ArrivalTrace::poisson(5.0, 6, shape, 42);
        for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
            let a = engine().run(&trace, policy);
            let b = engine().run(&trace, policy);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.p99_token_latency_s, b.p99_token_latency_s);
        }
    }

    #[test]
    fn concurrent_requests_degrade_sublinearly() {
        // Two in-flight requests share the device; NPU phases of one
        // overlap flash phases of the other, so the makespan is less
        // than 2x the single-request makespan.
        let shape = RequestShape::new(400, 3);
        let one = engine().run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::RoundRobin,
        );
        let two = engine().run(
            &ArrivalTrace::closed_loop(2, 1, shape),
            SchedulePolicy::RoundRobin,
        );
        assert!(
            two.makespan < one.makespan + one.makespan,
            "2-request makespan {} not sublinear vs {}",
            two.makespan,
            one.makespan
        );
        assert!(
            two.makespan > one.makespan,
            "device is still serial per resource"
        );
        assert_eq!(two.tokens_served, 2 * one.tokens_served);
    }

    #[test]
    fn shared_gemv_cache_simulates_each_shape_once() {
        let shape = RequestShape::new(200, 2);
        let rep = engine().run(&ArrivalTrace::burst(4, shape), SchedulePolicy::RoundRobin);
        // OPT decode has 5 distinct weight shapes regardless of fleet size.
        assert!(rep.gemv_cache_misses <= 5, "{}", rep.gemv_cache_misses);
        assert!(rep.gemv_cache_hits > rep.gemv_cache_misses);
    }

    #[test]
    fn op_cost_cache_amortizes_across_fleet() {
        let shape = RequestShape::new(200, 2);
        let rep = engine().run(&ArrivalTrace::burst(4, shape), SchedulePolicy::RoundRobin);
        // Hits + misses partition the dispatched ops exactly.
        let ops_per_token = 32 * 13 + 2; // OPT-6.7B: 32 layers × 13 ops + norm + head
        assert_eq!(
            rep.op_cost_cache_hits + rep.op_cost_cache_misses,
            rep.tokens_served * ops_per_token
        );
        // Distinct shapes: a dozen invariant ones plus a couple per
        // sequence position reached (2 tokens → 2 positions).
        assert!(
            rep.op_cost_cache_misses < 30,
            "{}",
            rep.op_cost_cache_misses
        );
        assert!(rep.op_cost_cache_hits > 100 * rep.op_cost_cache_misses);
    }

    #[test]
    fn fcfs_favors_early_arrivals_round_robin_shares() {
        // A burst of equal requests: FCFS finishes them in arrival order
        // with spread-out finish times; round-robin finishes them close
        // together (fair progress). Queueing delay mean is lower for RR
        // first tokens... at minimum, both serve everything and FCFS
        // keeps arrival order.
        let shape = RequestShape::new(300, 4);
        let trace = ArrivalTrace::burst(3, shape);
        let fcfs = engine().run(&trace, SchedulePolicy::Fcfs);
        let rr = engine().run(&trace, SchedulePolicy::RoundRobin);
        assert_eq!(fcfs.requests_served, 3);
        assert_eq!(rr.requests_served, 3);
        // FCFS: completion order == arrival (id) order.
        let order: Vec<usize> = fcfs.requests.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![0, 1, 2]);
        // RR spreads first tokens across requests; its spread between
        // first and last completion is no larger than FCFS's.
        let spread = |rep: &ServeReport| {
            let first = rep
                .requests
                .iter()
                .map(|r| r.finished)
                .fold(rep.makespan, SimTime::min);
            rep.makespan.saturating_sub(first)
        };
        assert!(spread(&rr) <= spread(&fcfs));
        // Total work is identical either way.
        assert_eq!(fcfs.tokens_served, rr.tokens_served);
    }

    #[test]
    fn open_trace_queueing_delay_reported() {
        // Simultaneous arrivals contend for the NPU's first op: every
        // request but the first must queue before starting.
        let shape = RequestShape::new(300, 2);
        let rep = engine().run(&ArrivalTrace::burst(5, shape), SchedulePolicy::Fcfs);
        assert_eq!(rep.requests_served, 5);
        assert!(rep.queueing_delay_s.max().unwrap() > 0.0);
        assert_eq!(rep.queueing_delay_s.min(), Some(0.0));
        assert!(rep.p99_token_latency_s >= rep.p50_token_latency_s);
        assert!(rep.flash_utilization > 0.5);
    }

    #[test]
    fn poisson_open_trace_serves_all_requests() {
        let shape = RequestShape::new(300, 2);
        let trace = ArrivalTrace::poisson(50.0, 5, shape, 9);
        let rep = engine().run(&trace, SchedulePolicy::Fcfs);
        assert_eq!(rep.requests_served, 5);
        assert_eq!(rep.tokens_served, 10);
        assert!(rep.flash_utilization > 0.5);
    }
}
