//! Multi-request serving engine: many concurrent decode requests on one
//! Cambricon-LLM device.
//!
//! # Scheduler model
//!
//! The single-request simulator ([`crate::system`]) prices a token as
//! the *serial* sum of its op latencies, because at batch 1 every op
//! consumes the previous op's output. Across **different requests**
//! there is no such dependency, and the paper's Figure 4 pipeline
//! exposes two serially-exclusive resources that can serve different
//! requests at the same time:
//!
//! * the **flash device** (NAND channels + in-flash compute cores,
//!   together with the NPU share that consumes pages as they stream) —
//!   occupied by weight GeMVs ([`OpClass::Flash`]);
//! * the **NPU/DRAM side** (systolic array, SFU, LPDDR KV traffic) —
//!   occupied by KV matrix work, special functions and cache appends
//!   ([`OpClass::Npu`]).
//!
//! The engine is a discrete-event simulation on [`sim_core::EventQueue`]:
//! each in-flight request is a cursor over its per-token op stream
//! (from [`llm_workload::decode_step`]), each resource serves one op at
//! a time, and when a resource frees it picks the next waiting request
//! according to the [`SchedulePolicy`]. While request A's GeMV holds
//! the flash device, request B can run its attention/KV phase on the
//! NPU — that overlap is why per-token latency degrades *sub-linearly*
//! in the number of in-flight requests, exactly as in a real serving
//! stack that pipelines prefill/attention against weight streaming.
//!
//! Op latencies come from [`System::op_cost`], so all timing flows
//! through the same flash discrete-event model and NPU roofline as the
//! single-request path; with one in-flight request the engine
//! reproduces [`System::decode_token`] exactly (a property the test
//! suite pins down). Identical GeMV shapes across requests hit the
//! system's shared [`GemvCache`], so a fleet of same-model requests
//! costs one flash simulation per distinct shape, not per request.
//!
//! Prefill is not modelled here: requests enter with their prompt
//! already in the KV cache (`RequestShape::prompt_len`), and decode —
//! the phase that dominates interactive traffic — is simulated token
//! by token with the context growing as tokens are emitted.
//!
//! # Example
//!
//! ```
//! use cambricon_llm::serve::{ServeEngine, SchedulePolicy};
//! use cambricon_llm::SystemConfig;
//! use llm_workload::{zoo, ArrivalTrace, RequestShape};
//!
//! let trace = ArrivalTrace::closed_loop(2, 1, RequestShape::new(256, 4));
//! let engine = ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
//! let report = engine.run(&trace, SchedulePolicy::RoundRobin);
//! assert_eq!(report.requests_served, 2);
//! assert_eq!(report.tokens_served, 8);
//! assert!(report.tokens_per_sec > 0.0);
//! ```

use crate::config::SystemConfig;
use crate::system::{OpClass, System, TrafficBreakdown};
use llm_workload::{decode_step, ArrivalTrace, DecodeOp, ModelSpec, RequestShape};
use sim_core::{Aggregate, BusyTracker, EventQueue, Samples, SimTime};

/// How a freed resource picks the next waiting request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulePolicy {
    /// First come, first served: the earliest-arrived waiting request
    /// wins. Minimizes queueing delay variance across requests but lets
    /// an early long request starve later short ones.
    Fcfs,
    /// Round-robin: the least-recently-scheduled waiting request wins,
    /// interleaving per-token progress fairly across in-flight requests.
    RoundRobin,
}

/// Summary of one served request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestReport {
    /// Request id (issue order).
    pub id: usize,
    /// Arrival time.
    pub arrived: SimTime,
    /// When the first op of the request started executing.
    pub started: SimTime,
    /// When the first token completed (decode-only TTFT).
    pub first_token: SimTime,
    /// When the last token completed.
    pub finished: SimTime,
    /// Tokens generated.
    pub tokens: usize,
}

impl RequestReport {
    /// Time spent queued before any op ran.
    pub fn queueing_delay(&self) -> SimTime {
        self.started.saturating_sub(self.arrived)
    }

    /// Mean time per generated token once running.
    pub fn mean_token_latency(&self) -> SimTime {
        let span = self.finished.saturating_sub(self.started);
        SimTime::from_picos(span.as_picos() / self.tokens.max(1) as u64)
    }
}

/// Fleet-level results of a serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Scheduling policy that produced this report.
    pub policy: SchedulePolicy,
    /// Requests completed.
    pub requests_served: usize,
    /// Tokens generated across all requests.
    pub tokens_served: u64,
    /// Virtual time from first arrival to last completion.
    pub makespan: SimTime,
    /// Aggregate decode throughput over the makespan.
    pub tokens_per_sec: f64,
    /// Median per-token latency in seconds.
    pub p50_token_latency_s: f64,
    /// 99th-percentile per-token latency in seconds.
    pub p99_token_latency_s: f64,
    /// Mean per-token latency in seconds.
    pub mean_token_latency_s: f64,
    /// Queueing delay (arrival → first op) statistics, in seconds.
    pub queueing_delay_s: Aggregate,
    /// Busy fraction of the flash device over the makespan.
    pub flash_utilization: f64,
    /// Busy fraction of the NPU/DRAM side over the makespan.
    pub npu_utilization: f64,
    /// GeMV-cache hits across the fleet (shape recalls).
    pub gemv_cache_hits: u64,
    /// GeMV-cache misses (distinct shapes actually simulated).
    pub gemv_cache_misses: u64,
    /// Total traffic across all requests.
    pub traffic: TrafficBreakdown,
    /// Per-request summaries, in completion order.
    pub requests: Vec<RequestReport>,
}

impl ServeReport {
    /// Renders the headline numbers as a short multi-line summary.
    pub fn summary(&self) -> String {
        format!(
            "served {} requests / {} tokens in {:.2} s ({:.2} tok/s)\n\
             token latency: p50 {:.0} ms, p99 {:.0} ms, mean {:.0} ms\n\
             queueing delay: mean {:.0} ms, max {:.0} ms\n\
             utilization: flash {:.0}%, npu {:.0}% | gemv cache: {} hits / {} misses",
            self.requests_served,
            self.tokens_served,
            self.makespan.as_secs_f64(),
            self.tokens_per_sec,
            self.p50_token_latency_s * 1e3,
            self.p99_token_latency_s * 1e3,
            self.mean_token_latency_s * 1e3,
            self.queueing_delay_s.mean().unwrap_or(0.0) * 1e3,
            self.queueing_delay_s.max().unwrap_or(0.0) * 1e3,
            self.flash_utilization * 100.0,
            self.npu_utilization * 100.0,
            self.gemv_cache_hits,
            self.gemv_cache_misses,
        )
    }
}

/// The scheduler's ready queues: per resource, the requests whose next
/// op is waiting for that resource.
///
/// Every arrival is admitted immediately and enqueued here (no
/// admission cap yet — continuous batching and KV-capacity admission
/// control are the next layer, see `ROADMAP.md`); a freed resource
/// asks the queue for the next request under the active policy's
/// ordering key.
#[derive(Debug, Default)]
pub struct RequestQueue {
    ready: [Vec<usize>; 2],
}

impl RequestQueue {
    fn enqueue(&mut self, class: OpClass, id: usize) {
        self.ready[slot(class)].push(id);
    }

    /// Removes and returns the waiting request minimizing `key`, if any.
    fn pick_min_by_key(
        &mut self,
        class: OpClass,
        key: impl Fn(usize) -> (u64, u64),
    ) -> Option<usize> {
        let list = &mut self.ready[slot(class)];
        let (idx, _) = list.iter().enumerate().min_by_key(|(_, &id)| key(id))?;
        Some(list.swap_remove(idx))
    }

    /// Requests currently waiting for `class`.
    pub fn waiting(&self, class: OpClass) -> usize {
        self.ready[slot(class)].len()
    }

    /// Total requests waiting across both resources.
    pub fn len(&self) -> usize {
        self.ready.iter().map(Vec::len).sum()
    }

    /// Whether no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.ready.iter().all(Vec::is_empty)
    }
}

/// A multi-request serving engine over one simulated device.
#[derive(Debug)]
pub struct ServeEngine {
    cfg: SystemConfig,
    model: ModelSpec,
}

impl ServeEngine {
    /// An engine serving `model` on a device configured as `cfg`.
    pub fn new(cfg: SystemConfig, model: ModelSpec) -> Self {
        ServeEngine { cfg, model }
    }

    /// Runs `trace` to completion under `policy` and reports fleet
    /// statistics. Deterministic: the same trace and policy always
    /// produce an identical report.
    pub fn run(&self, trace: &ArrivalTrace, policy: SchedulePolicy) -> ServeReport {
        Simulation::new(self, trace, policy).run()
    }
}

/// Per-request execution state.
#[derive(Debug)]
struct RequestState {
    shape: RequestShape,
    arrived: SimTime,
    started: Option<SimTime>,
    first_token: Option<SimTime>,
    token_started: SimTime,
    /// Ops of the token currently being generated, replayed in order.
    ops: Vec<DecodeOp>,
    op_idx: usize,
    tokens_done: usize,
    /// Closed-loop client this request belongs to, if any.
    client: Option<usize>,
    /// Monotone stamp of the last time a resource scheduled this
    /// request (round-robin recency key).
    last_scheduled: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Arrive(usize),
    OpDone { req: usize, class: OpClass },
}

struct Simulation<'a> {
    system: System,
    model: &'a ModelSpec,
    policy: SchedulePolicy,
    queue: EventQueue<Event>,
    ready: RequestQueue,
    requests: Vec<RequestState>,
    busy: [bool; 2],
    busy_track: [BusyTracker; 2],
    stamp: u64,
    /// Remaining requests per closed-loop client.
    client_remaining: Vec<usize>,
    closed_shape: Option<RequestShape>,
    traffic: TrafficBreakdown,
    token_latencies: Samples,
    queueing: Aggregate,
    done: Vec<RequestReport>,
    first_arrival: SimTime,
}

fn slot(class: OpClass) -> usize {
    match class {
        OpClass::Flash => 0,
        OpClass::Npu => 1,
    }
}

impl<'a> Simulation<'a> {
    fn new(engine: &'a ServeEngine, trace: &ArrivalTrace, policy: SchedulePolicy) -> Self {
        let mut sim = Simulation {
            system: System::new(engine.cfg),
            model: &engine.model,
            policy,
            queue: EventQueue::new(),
            ready: RequestQueue::default(),
            requests: Vec::new(),
            busy: [false, false],
            busy_track: [BusyTracker::new(), BusyTracker::new()],
            stamp: 0,
            client_remaining: Vec::new(),
            closed_shape: None,
            traffic: TrafficBreakdown::default(),
            token_latencies: Samples::new(),
            queueing: Aggregate::new(),
            done: Vec::new(),
            first_arrival: SimTime::ZERO,
        };
        match trace {
            ArrivalTrace::Open(arrivals) => {
                sim.first_arrival = arrivals.iter().map(|a| a.at).min().unwrap_or(SimTime::ZERO);
                for a in arrivals {
                    let id = sim.new_request(a.shape, a.at, None);
                    sim.queue.schedule(a.at, Event::Arrive(id));
                }
            }
            ArrivalTrace::ClosedLoop {
                clients,
                requests_per_client,
                shape,
            } => {
                // The variant's fields are public, so a hand-built trace
                // can bypass `ArrivalTrace::closed_loop`'s asserts.
                assert!(
                    *clients >= 1 && *requests_per_client >= 1,
                    "closed loop needs at least one client and one request per client"
                );
                sim.closed_shape = Some(*shape);
                sim.client_remaining = vec![requests_per_client - 1; *clients];
                for client in 0..*clients {
                    let id = sim.new_request(*shape, SimTime::ZERO, Some(client));
                    sim.queue.schedule(SimTime::ZERO, Event::Arrive(id));
                }
            }
        }
        sim
    }

    fn new_request(
        &mut self,
        shape: RequestShape,
        arrived: SimTime,
        client: Option<usize>,
    ) -> usize {
        let id = self.requests.len();
        let ops = decode_step(self.model, self.system.config().quant, shape.prompt_len).ops;
        self.requests.push(RequestState {
            shape,
            arrived,
            started: None,
            first_token: None,
            token_started: arrived,
            ops,
            op_idx: 0,
            tokens_done: 0,
            client,
            last_scheduled: 0,
        });
        id
    }

    fn run(mut self) -> ServeReport {
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Event::Arrive(id) => {
                    // Admitted immediately; admission control is a
                    // future layer. The request enters the ready queue
                    // of its first op's resource.
                    self.requests[id].token_started = now;
                    let class = self.next_op_class(id);
                    self.ready.enqueue(class, id);
                }
                Event::OpDone { req, class } => {
                    self.busy[slot(class)] = false;
                    self.advance(req, now);
                }
            }
            self.dispatch(now);
        }

        self.finish()
    }

    /// Resource class of the request's next op.
    fn next_op_class(&self, id: usize) -> OpClass {
        OpClass::of(&self.requests[id].ops[self.requests[id].op_idx])
    }

    /// A request finished an op: step its cursor, retire tokens, and
    /// requeue it (or retire it).
    fn advance(&mut self, id: usize, now: SimTime) {
        let r = &mut self.requests[id];
        r.op_idx += 1;
        if r.op_idx < r.ops.len() {
            let class = self.next_op_class(id);
            self.ready.enqueue(class, id);
            return;
        }

        // Token complete.
        let r = &mut self.requests[id];
        r.tokens_done += 1;
        self.token_latencies
            .push(now.saturating_sub(r.token_started).as_secs_f64());
        r.token_started = now;
        if r.first_token.is_none() {
            r.first_token = Some(now);
        }

        if r.tokens_done < r.shape.new_tokens {
            // Next token: context has grown by the tokens emitted.
            let seq = r.shape.prompt_len + r.tokens_done;
            r.ops = decode_step(self.model, self.system.config().quant, seq).ops;
            r.op_idx = 0;
            let class = self.next_op_class(id);
            self.ready.enqueue(class, id);
            return;
        }

        // Request complete.
        let r = &self.requests[id];
        let client = r.client;
        let report = RequestReport {
            id,
            arrived: r.arrived,
            started: r.started.expect("completed request never started"),
            first_token: r.first_token.expect("completed request has tokens"),
            finished: now,
            tokens: r.tokens_done,
        };
        self.queueing.push(report.queueing_delay().as_secs_f64());
        self.done.push(report);

        // Closed loop: the client immediately issues its next request.
        if let Some(client) = client {
            if self.client_remaining[client] > 0 {
                self.client_remaining[client] -= 1;
                let shape = self.closed_shape.expect("closed loop has a shape");
                let next = self.new_request(shape, now, Some(client));
                self.queue.schedule(now, Event::Arrive(next));
            }
        }
    }

    /// Starts ops on every idle resource that has waiting requests.
    fn dispatch(&mut self, now: SimTime) {
        for class in [OpClass::Flash, OpClass::Npu] {
            let s = slot(class);
            if self.busy[s] {
                continue;
            }
            let policy = self.policy;
            let requests = &self.requests;
            let Some(id) = self.ready.pick_min_by_key(class, |id| {
                let r = &requests[id];
                match policy {
                    // Earliest arrival wins; id breaks ties
                    // deterministically.
                    SchedulePolicy::Fcfs => (r.arrived.as_picos(), id as u64),
                    // Least-recently-scheduled wins: fair rotation.
                    SchedulePolicy::RoundRobin => (r.last_scheduled, id as u64),
                }
            }) else {
                continue;
            };

            self.stamp += 1;
            let r = &mut self.requests[id];
            r.last_scheduled = self.stamp;
            if r.started.is_none() {
                r.started = Some(now);
            }
            let op = r.ops[r.op_idx].clone();
            let cost = self.system.op_cost(&op);
            debug_assert_eq!(cost.class, class, "ready list / op class mismatch");
            self.traffic.absorb(&cost.traffic);
            self.busy[s] = true;
            self.busy_track[s].add_interval(now, now + cost.latency);
            self.queue
                .schedule(now + cost.latency, Event::OpDone { req: id, class });
        }
    }

    fn finish(mut self) -> ServeReport {
        assert!(
            self.ready.is_empty(),
            "event queue drained with work outstanding"
        );
        let end = self.queue.now();
        let makespan = end.saturating_sub(self.first_arrival);
        let tokens_served: u64 = self.done.iter().map(|r| r.tokens as u64).sum();
        let horizon = makespan.as_secs_f64();
        let cache = self.system.gemv_cache();
        ServeReport {
            policy: self.policy,
            requests_served: self.done.len(),
            tokens_served,
            makespan,
            tokens_per_sec: if horizon > 0.0 {
                tokens_served as f64 / horizon
            } else {
                0.0
            },
            p50_token_latency_s: self.token_latencies.percentile(50.0).unwrap_or(0.0),
            p99_token_latency_s: self.token_latencies.percentile(99.0).unwrap_or(0.0),
            mean_token_latency_s: self.token_latencies.mean().unwrap_or(0.0),
            queueing_delay_s: self.queueing,
            flash_utilization: self.busy_track[0].utilization(makespan),
            npu_utilization: self.busy_track[1].utilization(makespan),
            gemv_cache_hits: cache.hits(),
            gemv_cache_misses: cache.misses(),
            traffic: self.traffic,
            requests: self.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    fn engine() -> ServeEngine {
        ServeEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
    }

    #[test]
    fn single_request_matches_decode_token_exactly() {
        // One in-flight request serializes every op, so the serving
        // engine must reproduce the single-request simulator tick for
        // tick — same flash model, same roofline, same cache.
        let shape = RequestShape::new(500, 3);
        let rep = engine().run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::Fcfs,
        );
        let mut sys = System::new(SystemConfig::cambricon_s());
        let expected: SimTime = (0..3)
            .map(|i| sys.decode_token(&zoo::opt_6_7b(), 500 + i).total)
            .fold(SimTime::ZERO, |a, b| a + b);
        assert_eq!(rep.makespan, expected);
        assert_eq!(rep.tokens_served, 3);
        assert_eq!(rep.requests_served, 1);
        assert_eq!(rep.queueing_delay_s.max(), Some(0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let shape = RequestShape::new(300, 4);
        let trace = ArrivalTrace::poisson(5.0, 6, shape, 42);
        for policy in [SchedulePolicy::Fcfs, SchedulePolicy::RoundRobin] {
            let a = engine().run(&trace, policy);
            let b = engine().run(&trace, policy);
            assert_eq!(a.makespan, b.makespan);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.p99_token_latency_s, b.p99_token_latency_s);
        }
    }

    #[test]
    fn concurrent_requests_degrade_sublinearly() {
        // Two in-flight requests share the device; NPU phases of one
        // overlap flash phases of the other, so the makespan is less
        // than 2x the single-request makespan.
        let shape = RequestShape::new(400, 3);
        let one = engine().run(
            &ArrivalTrace::closed_loop(1, 1, shape),
            SchedulePolicy::RoundRobin,
        );
        let two = engine().run(
            &ArrivalTrace::closed_loop(2, 1, shape),
            SchedulePolicy::RoundRobin,
        );
        assert!(
            two.makespan < one.makespan + one.makespan,
            "2-request makespan {} not sublinear vs {}",
            two.makespan,
            one.makespan
        );
        assert!(
            two.makespan > one.makespan,
            "device is still serial per resource"
        );
        assert_eq!(two.tokens_served, 2 * one.tokens_served);
    }

    #[test]
    fn shared_gemv_cache_simulates_each_shape_once() {
        let shape = RequestShape::new(200, 2);
        let rep = engine().run(&ArrivalTrace::burst(4, shape), SchedulePolicy::RoundRobin);
        // OPT decode has 5 distinct weight shapes regardless of fleet size.
        assert!(rep.gemv_cache_misses <= 5, "{}", rep.gemv_cache_misses);
        assert!(rep.gemv_cache_hits > rep.gemv_cache_misses);
    }

    #[test]
    fn fcfs_favors_early_arrivals_round_robin_shares() {
        // A burst of equal requests: FCFS finishes them in arrival order
        // with spread-out finish times; round-robin finishes them close
        // together (fair progress). Queueing delay mean is lower for RR
        // first tokens... at minimum, both serve everything and FCFS
        // keeps arrival order.
        let shape = RequestShape::new(300, 4);
        let trace = ArrivalTrace::burst(3, shape);
        let fcfs = engine().run(&trace, SchedulePolicy::Fcfs);
        let rr = engine().run(&trace, SchedulePolicy::RoundRobin);
        assert_eq!(fcfs.requests_served, 3);
        assert_eq!(rr.requests_served, 3);
        // FCFS: completion order == arrival (id) order.
        let order: Vec<usize> = fcfs.requests.iter().map(|r| r.id).collect();
        assert_eq!(order, vec![0, 1, 2]);
        // RR spreads first tokens across requests; its spread between
        // first and last completion is no larger than FCFS's.
        let spread = |rep: &ServeReport| {
            let first = rep
                .requests
                .iter()
                .map(|r| r.finished)
                .fold(rep.makespan, SimTime::min);
            rep.makespan.saturating_sub(first)
        };
        assert!(spread(&rr) <= spread(&fcfs));
        // Total work is identical either way.
        assert_eq!(fcfs.tokens_served, rr.tokens_served);
    }

    #[test]
    fn open_trace_queueing_delay_reported() {
        // Simultaneous arrivals contend for the NPU's first op: every
        // request but the first must queue before starting.
        let shape = RequestShape::new(300, 2);
        let rep = engine().run(&ArrivalTrace::burst(5, shape), SchedulePolicy::Fcfs);
        assert_eq!(rep.requests_served, 5);
        assert!(rep.queueing_delay_s.max().unwrap() > 0.0);
        assert_eq!(rep.queueing_delay_s.min(), Some(0.0));
        assert!(rep.p99_token_latency_s >= rep.p50_token_latency_s);
        assert!(rep.flash_utilization > 0.5);
    }

    #[test]
    fn poisson_open_trace_serves_all_requests() {
        let shape = RequestShape::new(300, 2);
        let trace = ArrivalTrace::poisson(50.0, 5, shape, 9);
        let rep = engine().run(&trace, SchedulePolicy::Fcfs);
        assert_eq!(rep.requests_served, 5);
        assert_eq!(rep.tokens_served, 10);
        assert!(rep.flash_utilization > 0.5);
    }
}
