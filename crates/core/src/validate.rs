//! Cross-validation of the discrete-event simulator against the
//! paper's closed-form §V-B model.
//!
//! The DES and the analytic rate model are implemented independently
//! (crates `flash-sim` and `tiling`); agreement between them is a
//! strong internal-consistency check and the ground for trusting the
//! figure reproductions. [`cross_check`] runs a steady-state workload
//! through both and reports the relative disagreement.

use crate::config::SystemConfig;
use flash_sim::{ChannelWorkload, FlashDevice};
use tiling::{effective_rates, optimal_tile};

/// Disagreement report between the DES and the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossCheck {
    /// Analytic prediction of the per-channel weight consumption rate
    /// (bytes/s).
    pub analytic_bytes_per_sec: f64,
    /// Rate measured by the discrete-event simulator.
    pub simulated_bytes_per_sec: f64,
    /// `|analytic − simulated| / analytic`.
    pub relative_error: f64,
    /// Rounds simulated.
    pub rounds: usize,
}

/// Runs `rounds` of balanced steady-state work through the DES and
/// compares against the closed-form rate.
///
/// # Panics
///
/// Panics if the configuration is invalid or `rounds == 0`.
pub fn cross_check(cfg: &SystemConfig, rounds: usize) -> CrossCheck {
    assert!(rounds > 0, "need at least one round");
    let inp = cfg.alpha_inputs();
    let tile = cfg
        .tile_override
        .unwrap_or_else(|| optimal_tile(&inp.topology, inp.weight_bits));
    let rates = effective_rates(&inp, tile);

    // Build the balanced workload the analytic model assumes.
    let reads = (rates.reads_per_round * rounds as f64).round() as usize;
    let wl = ChannelWorkload {
        rc_rounds: rounds,
        rc_input_bytes: (tile.w_req / inp.topology.channels * inp.act_bytes) as u64,
        rc_result_bytes_per_core: (tile.h_req / inp.topology.compute_cores_per_channel()
            * inp.act_bytes) as u64,
        ops_per_page: 2 * tiling::page_params(&inp.topology, inp.weight_bits),
        read_pages: reads,
    };
    let rep = FlashDevice::new(cfg.engine).run_uniform(wl);

    let cores = inp.topology.compute_cores_per_channel() as f64;
    let page = inp.topology.page_bytes as f64;
    let pages = rounds as f64 * cores + reads as f64;
    let simulated = pages * page / (rep.finish.as_secs_f64() / 1.0);
    let analytic = rates.channel_bytes_per_sec;
    CrossCheck {
        analytic_bytes_per_sec: analytic,
        simulated_bytes_per_sec: simulated,
        relative_error: (analytic - simulated).abs() / analytic,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_matches_analytic_within_10_percent() {
        for cfg in SystemConfig::paper_variants() {
            let c = cross_check(&cfg, 400);
            assert!(
                c.relative_error < 0.10,
                "{}: analytic {:.2} GB/s vs DES {:.2} GB/s ({:.1}%)",
                cfg.name,
                c.analytic_bytes_per_sec / 1e9,
                c.simulated_bytes_per_sec / 1e9,
                c.relative_error * 100.0
            );
        }
    }

    #[test]
    fn agreement_improves_with_longer_runs() {
        // Pipeline fill/drain amortizes away: long runs must agree at
        // least as well as short ones (allowing small noise).
        let cfg = SystemConfig::cambricon_s();
        let short = cross_check(&cfg, 20);
        let long = cross_check(&cfg, 800);
        assert!(
            long.relative_error <= short.relative_error + 0.02,
            "short {} long {}",
            short.relative_error,
            long.relative_error
        );
    }

    #[test]
    fn w4_configs_also_agree() {
        let cfg = SystemConfig::cambricon_s().with_quant(llm_workload::Quant::W4A16);
        let c = cross_check(&cfg, 300);
        assert!(c.relative_error < 0.12, "{}", c.relative_error);
    }
}
