//! Fleet-scale serving: N device replicas behind a cluster router.
//!
//! One [`DeviceEngine`] models one flash/NPU device. This module
//! composes **N replicas** of that device under a cluster-level
//! router, fed by a single heavy arrival trace — the "millions of
//! users" direction of the roadmap. The composition runs in two
//! phases, joined at the router boundary:
//!
//! 1. **Routing** — a [`sim_core::Scheduler`] drives two uniform
//!    [`sim_core::Component`]s over the cluster timeline: an arrival
//!    feed that pops the trace in `(time, arrival-order)` FIFO order
//!    and asks the [`RouterPolicy`] for a replica, and an interconnect
//!    link that delays every dispatch by the configured hop before
//!    delivering it into the chosen replica's inbox. Admission and
//!    trace-feeding thus live *above* the device: a replica only ever
//!    sees its own routed sub-trace, with arrival timestamps already
//!    shifted by the dispatch hop.
//! 2. **Execution** — between router boundaries the replicas share
//!    nothing, so each replica's [`DeviceEngine`] runs its sub-trace
//!    to completion on its own scoped thread
//!    ([`sim_core::parallel_map`] machinery), every replica starting
//!    from a clone of one pre-warmed pricing [`System`] exactly the
//!    way the Monte Carlo harness shares one warm system across seeds.
//!    Results merge deterministically in replica order into a
//!    [`FleetReport`].
//!
//! # Determinism
//!
//! The report is a pure function of `(engine, trace, policies)`:
//! routing is single-threaded under the scheduler's `(time, seq)`
//! order, replica runs are independent, and the merge reads the
//! positional results in replica order — so the fleet is **bit-identical
//! at any worker count** ([`FleetEngine::with_threads`]), the same
//! contract `MonteCarlo` pins per seed. Per-replica fault streams are
//! derived with [`SplitMix64::split_seeds`] — never `seed + replica`
//! arithmetic, which would hand adjacent replicas overlapping
//! sequences (the D1 seed-hygiene rule, machine-checked by simlint).
//!
//! # Example
//!
//! ```
//! use cambricon_llm::fleet::{FleetEngine, RouterPolicy};
//! use cambricon_llm::serve::{DeviceEngine, SchedulePolicy};
//! use cambricon_llm::SystemConfig;
//! use llm_workload::{zoo, ArrivalTrace, RequestShape};
//!
//! let device = DeviceEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b());
//! let fleet = FleetEngine::new(device, 2).with_router(RouterPolicy::RoundRobin);
//! let trace = ArrivalTrace::poisson(50.0, 8, RequestShape::new(128, 4), 7);
//! let report = fleet.run(&trace, SchedulePolicy::Fcfs);
//! assert_eq!(report.requests_served, 8);
//! assert_eq!(report.per_replica.len(), 2);
//! ```

use crate::reliability::FaultMode;
use crate::serve::{DeviceEngine, SchedulePolicy, ServeReport};
use crate::system::System;
use llm_workload::{ArrivalTrace, RequestArrival, RequestShape};
use sim_core::{parallel_map_workers, Component, Samples, Scheduler, SimTime, SplitMix64};
use std::collections::VecDeque;

/// How the cluster router picks a replica for each arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Dispatch arrivals to replicas in rotation, ignoring shape.
    RoundRobin,
    /// Dispatch to the replica with the least *booked* work: the
    /// router tracks the total tokens (prompt + decode) it has
    /// assigned to each replica and picks the minimum, lowest index on
    /// ties. The router sits across the interconnect from the devices,
    /// so it balances what it booked, not device-internal telemetry —
    /// a join-least-work approximation of least-loaded that, unlike
    /// round-robin, sees heterogeneous request shapes.
    LeastLoaded,
    /// Pin conversational sessions to replicas (KV/prefix locality).
    /// Open traces carry no session ids, so arrivals are striped into
    /// `sessions` sessions in arrival order (`i % sessions`), and each
    /// session is pinned to replica `session % replicas`. When
    /// `sessions` is not a multiple of the replica count this is
    /// deliberately imbalanced — affinity trades balance for locality.
    SessionAffinity {
        /// Number of distinct sessions striped across the trace.
        sessions: usize,
    },
}

impl RouterPolicy {
    /// Short stable label for benches and tables.
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::SessionAffinity { .. } => "session-affinity",
        }
    }
}

/// Explicit cluster interconnect cost between router and replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interconnect {
    /// Wire time for a dispatched request (router → replica): every
    /// routed arrival reaches its replica this much later than it hit
    /// the cluster.
    pub dispatch_hop: SimTime,
    /// Wire time for a response (replica → router): added on top of
    /// device completion times for every cluster-visible latency.
    pub response_hop: SimTime,
}

impl Interconnect {
    /// A free interconnect (both hops zero) — the fleet timeline
    /// degenerates to the device timeline, which is what the
    /// single-replica golden pins against [`crate::ServeEngine`].
    pub const ZERO: Interconnect = Interconnect {
        dispatch_hop: SimTime::ZERO,
        response_hop: SimTime::ZERO,
    };

    /// Equal cost in both directions.
    pub fn symmetric(hop: SimTime) -> Self {
        Interconnect {
            dispatch_hop: hop,
            response_hop: hop,
        }
    }
}

/// N replica [`DeviceEngine`]s behind a [`RouterPolicy`], joined by an
/// explicit [`Interconnect`]. See the [module docs](self) for the
/// two-phase composition and its determinism contract.
#[derive(Debug)]
pub struct FleetEngine {
    device: DeviceEngine,
    replicas: usize,
    router: RouterPolicy,
    interconnect: Interconnect,
    threads: Option<usize>,
    warm_sharing: bool,
}

impl FleetEngine {
    /// A fleet of `replicas` copies of `device` behind a round-robin
    /// router with a free interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn new(device: DeviceEngine, replicas: usize) -> Self {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        FleetEngine {
            device,
            replicas,
            router: RouterPolicy::RoundRobin,
            interconnect: Interconnect::ZERO,
            threads: None,
            warm_sharing: true,
        }
    }

    /// Sets the routing policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is [`RouterPolicy::SessionAffinity`] with
    /// `sessions == 0` (there must be at least one session to pin).
    pub fn with_router(mut self, policy: RouterPolicy) -> Self {
        if let RouterPolicy::SessionAffinity { sessions } = policy {
            assert!(sessions >= 1, "session affinity needs at least one session");
        }
        self.router = policy;
        self
    }

    /// Sets the interconnect hop costs.
    pub fn with_interconnect(mut self, interconnect: Interconnect) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Pins the replica worker-thread count (default: one per
    /// available core, capped at the replica count). Reports are
    /// bit-identical at any value; this only trades wall-clock.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Disables warm-system sharing: every replica prices from a cold
    /// [`System`], so a single-replica fleet reproduces
    /// [`crate::ServeEngine::run`] bit for bit, cache counters
    /// included (the golden-test configuration). The default shares
    /// one pre-warmed system clone per replica, which changes only the
    /// cache hit/miss counters — exactly the Monte Carlo trade.
    pub fn with_cold_systems(mut self) -> Self {
        self.warm_sharing = false;
        self
    }

    /// The replica count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The routing policy.
    pub fn router(&self) -> RouterPolicy {
        self.router
    }

    /// The interconnect hop costs.
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    /// The template device every replica copies.
    pub fn device(&self) -> &DeviceEngine {
        &self.device
    }

    /// Runs one open arrival trace across the fleet under `policy` on
    /// every replica, and merges the per-replica reports.
    ///
    /// # Panics
    ///
    /// Panics on a closed-loop trace: closed-loop clients couple their
    /// next arrival to a completion on one device, so they cannot be
    /// pre-routed across independent replicas. Feed the fleet an open
    /// trace (Poisson, burst, or hand-built).
    pub fn run(&self, trace: &ArrivalTrace, policy: SchedulePolicy) -> FleetReport {
        let arrivals: Vec<RequestArrival> = match trace {
            ArrivalTrace::Open(v) => {
                let mut a = v.clone();
                // Stable by time: simultaneous arrivals keep their
                // trace order, matching the device event core's
                // (time, schedule-order) FIFO.
                a.sort_by_key(|r| r.at);
                a
            }
            ArrivalTrace::ClosedLoop { .. } => panic!(
                "closed-loop traces are client-coupled to one device; \
                 fleet routing requires an open trace"
            ),
        };

        let inboxes = self.route(&arrivals);
        let subtraces: Vec<ArrivalTrace> = inboxes.into_iter().map(ArrivalTrace::Open).collect();
        let engines = self.replica_engines();
        let engine_for = |i: usize| engines.as_ref().map_or(&self.device, |v| &v[i]);

        let workers = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        let per_replica: Vec<ServeReport> = if self.warm_sharing {
            let warm = self.warm_system(&arrivals, engine_for(0), policy);
            parallel_map_workers(&subtraces, workers, |i, sub| {
                engine_for(i).run_with_system(sub, policy, warm.clone()).0
            })
        } else {
            parallel_map_workers(&subtraces, workers, |i, sub| {
                engine_for(i)
                    .run_with_system(sub, policy, System::new(self.device.config()))
                    .0
            })
        };

        self.merge(policy, per_replica)
    }

    /// Routes `arrivals` (already in `(time, order)` sequence) through
    /// the scheduler-driven feed + interconnect components, producing
    /// one delivered sub-trace per replica.
    fn route(&self, arrivals: &[RequestArrival]) -> Vec<Vec<RequestArrival>> {
        let mut fabric = Fabric {
            wire: vec![VecDeque::new(); self.replicas],
            inboxes: vec![Vec::new(); self.replicas],
        };
        let mut feed = ArrivalFeed {
            arrivals,
            next: 0,
            hop: self.interconnect.dispatch_hop,
            router: RouterState::new(self.router, self.replicas),
        };
        let mut link = InterconnectLink;
        Scheduler::new().run(&mut [&mut feed, &mut link], &mut fabric);
        fabric.inboxes
    }

    /// Per-replica engines, or `None` when every replica can share the
    /// template. Only fault injection needs distinct replicas: each
    /// gets its own stream seed via [`SplitMix64::split_seeds`] so no
    /// two replicas replay correlated fault draws.
    fn replica_engines(&self) -> Option<Vec<DeviceEngine>> {
        let FaultMode::Injected(base) = self.device.fault_mode() else {
            return None;
        };
        let seeds = SplitMix64::split_seeds(base.seed, self.replicas);
        Some(
            seeds
                .into_iter()
                .map(|replica_seed| {
                    let mut cfg = base;
                    cfg.seed = replica_seed;
                    DeviceEngine::new(self.device.config(), self.device.model().clone())
                        .with_prefill(self.device.prefill_mode())
                        .with_span_mode(self.device.span_mode())
                        .with_faults(FaultMode::Injected(cfg))
                })
                .collect(),
        )
    }

    /// One pre-warmed pricing system for every replica to clone: a
    /// single-request probe walks one decode token (plus prefill, when
    /// modeled) so the seq-invariant weight GeMVs — the expensive
    /// flash discrete-event simulations, shared by every replica — are
    /// priced once, then the counters are zeroed so replica reports
    /// stay comparable. The same warm-clone pattern as `MonteCarlo`.
    fn warm_system(
        &self,
        arrivals: &[RequestArrival],
        engine: &DeviceEngine,
        policy: SchedulePolicy,
    ) -> System {
        let mut system = System::new(self.device.config());
        if let Some(first) = arrivals.first() {
            let probe =
                ArrivalTrace::closed_loop(1, 1, RequestShape::new(first.shape.prompt_len, 1));
            system = engine.run_with_system(&probe, policy, system).1;
        }
        system.reset_cache_stats();
        system
    }

    /// Deterministic merge: reads the positional per-replica reports
    /// in replica order and derives every cluster aggregate.
    fn merge(&self, policy: SchedulePolicy, per_replica: Vec<ServeReport>) -> FleetReport {
        let round_trip = self.interconnect.dispatch_hop + self.interconnect.response_hop;
        let mut ttft = Samples::new();
        let mut token_latency = Samples::new();
        let mut first_arrival: Option<SimTime> = None;
        let mut last_response = SimTime::ZERO;
        for rep in &per_replica {
            for r in &rep.requests {
                ttft.push((r.ttft() + round_trip).as_secs_f64());
                token_latency.push(r.mean_token_latency().as_secs_f64());
                // The replica saw the arrival one dispatch hop after
                // the cluster did; responses pay the return hop.
                let at_cluster = r.arrived.saturating_sub(self.interconnect.dispatch_hop);
                first_arrival = Some(first_arrival.map_or(at_cluster, |f| f.min(at_cluster)));
                last_response = last_response.max(r.finished + self.interconnect.response_hop);
            }
        }
        let makespan = match first_arrival {
            Some(first) => last_response.saturating_sub(first),
            None => SimTime::ZERO,
        };
        let horizon = makespan.as_secs_f64();

        let requests_served: usize = per_replica.iter().map(|r| r.requests_served).sum();
        let tokens_served: u64 = per_replica.iter().map(|r| r.tokens_served).sum();
        let kv_rejections: u64 = per_replica.iter().map(|r| r.kv_rejections).sum();
        let goodput_requests: u64 = per_replica
            .iter()
            .map(|r| r.reliability.goodput_requests)
            .sum();
        let goodput_tokens: u64 = per_replica
            .iter()
            .map(|r| r.reliability.goodput_tokens)
            .sum();

        let peak = per_replica
            .iter()
            .map(|r| r.tokens_served)
            .max()
            .unwrap_or(0);
        let mean = tokens_served as f64 / self.replicas as f64;
        let load_imbalance = if mean > 0.0 { peak as f64 / mean } else { 1.0 };

        FleetReport {
            router: self.router,
            policy,
            replicas: self.replicas,
            interconnect: self.interconnect,
            requests_served,
            tokens_served,
            kv_rejections,
            makespan,
            tokens_per_sec: if horizon > 0.0 {
                tokens_served as f64 / horizon
            } else {
                0.0
            },
            ttft_p50_s: ttft.percentile(50.0).unwrap_or(0.0),
            ttft_p99_s: ttft.percentile(99.0).unwrap_or(0.0),
            ttft_mean_s: ttft.mean().unwrap_or(0.0),
            token_latency_p50_s: token_latency.percentile(50.0).unwrap_or(0.0),
            token_latency_p99_s: token_latency.percentile(99.0).unwrap_or(0.0),
            goodput_requests,
            goodput_tokens,
            goodput_tps: if horizon > 0.0 {
                goodput_tokens as f64 / horizon
            } else {
                0.0
            },
            load_imbalance,
            per_replica,
        }
    }
}

/// Cluster-level results of a fleet run: the per-replica
/// [`ServeReport`]s plus aggregates derived from them by the
/// deterministic merge (pinned by a proptest — recomputing any
/// aggregate from `per_replica` must reproduce it exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Routing policy that distributed the trace.
    pub router: RouterPolicy,
    /// Device scheduling policy every replica ran.
    pub policy: SchedulePolicy,
    /// Number of replicas.
    pub replicas: usize,
    /// Interconnect hop costs the timeline was charged.
    pub interconnect: Interconnect,
    /// Requests completed across the fleet.
    pub requests_served: usize,
    /// Tokens generated across the fleet.
    pub tokens_served: u64,
    /// KV-capacity rejections across the fleet.
    pub kv_rejections: u64,
    /// Cluster-visible window: first arrival at the router to last
    /// response back at the router (both hops included).
    pub makespan: SimTime,
    /// Fleet decode throughput over the cluster makespan.
    pub tokens_per_sec: f64,
    /// Median cluster-visible TTFT: queue + prefill + first token,
    /// plus both interconnect hops.
    pub ttft_p50_s: f64,
    /// 99th-percentile cluster-visible TTFT.
    pub ttft_p99_s: f64,
    /// Mean cluster-visible TTFT.
    pub ttft_mean_s: f64,
    /// Median of per-request mean token latency (steady-state decode
    /// cadence; interconnect hops shift delivery, not cadence).
    pub token_latency_p50_s: f64,
    /// 99th percentile of per-request mean token latency.
    pub token_latency_p99_s: f64,
    /// Requests that met their deadlines, across the fleet (equal to
    /// `requests_served` when no deadlines are configured).
    pub goodput_requests: u64,
    /// Tokens from deadline-meeting requests, across the fleet.
    pub goodput_tokens: u64,
    /// Goodput tokens over the cluster makespan.
    pub goodput_tps: f64,
    /// Peak-to-mean ratio of per-replica `tokens_served`: 1.0 is a
    /// perfectly balanced fleet, `replicas` is one replica serving
    /// everything. 1.0 when the fleet served nothing.
    pub load_imbalance: f64,
    /// Every replica's full report, in replica order.
    pub per_replica: Vec<ServeReport>,
}

impl FleetReport {
    /// Renders the headline cluster numbers as a short summary.
    pub fn summary(&self) -> String {
        format!(
            "fleet of {} ({}): served {} requests / {} tokens in {:.2} s ({:.2} tok/s)\n\
             cluster ttft: p50 {:.0} ms, p99 {:.0} ms, mean {:.0} ms\n\
             token latency: p50 {:.0} ms, p99 {:.0} ms | load imbalance {:.2}\n\
             goodput: {} reqs / {} tokens ({:.2} tok/s) | kv rejections: {}",
            self.replicas,
            self.router.label(),
            self.requests_served,
            self.tokens_served,
            self.makespan.as_secs_f64(),
            self.tokens_per_sec,
            self.ttft_p50_s * 1e3,
            self.ttft_p99_s * 1e3,
            self.ttft_mean_s * 1e3,
            self.token_latency_p50_s * 1e3,
            self.token_latency_p99_s * 1e3,
            self.load_imbalance,
            self.goodput_requests,
            self.goodput_tokens,
            self.goodput_tps,
            self.kv_rejections,
        )
    }
}

/// Shared fabric of the routing phase: the wire between router and
/// replicas, and each replica's delivered inbox.
struct Fabric {
    /// In-flight dispatches per replica: `(delivery time, shape)`,
    /// FIFO (the hop is constant, so delivery order is dispatch
    /// order).
    wire: Vec<VecDeque<(SimTime, RequestShape)>>,
    /// Delivered sub-traces, arrival timestamps in replica clock
    /// (cluster arrival + dispatch hop).
    inboxes: Vec<Vec<RequestArrival>>,
}

/// Component popping the cluster trace in FIFO order and routing each
/// arrival onto the wire.
struct ArrivalFeed<'a> {
    arrivals: &'a [RequestArrival],
    next: usize,
    hop: SimTime,
    router: RouterState,
}

impl Component<Fabric> for ArrivalFeed<'_> {
    fn next_tick(&self, _: &Fabric) -> Option<SimTime> {
        self.arrivals.get(self.next).map(|a| a.at)
    }

    fn tick(&mut self, now: SimTime, fabric: &mut Fabric) {
        let a = self.arrivals[self.next];
        self.next += 1;
        let replica = self.router.route(a.shape);
        fabric.wire[replica].push_back((now + self.hop, a.shape));
    }
}

/// Component delivering due wire entries into replica inboxes, one per
/// firing (lowest replica index first among simultaneous deliveries).
struct InterconnectLink;

impl Component<Fabric> for InterconnectLink {
    fn next_tick(&self, fabric: &Fabric) -> Option<SimTime> {
        fabric
            .wire
            .iter()
            .filter_map(|q| q.front().map(|&(t, _)| t))
            .min()
    }

    fn tick(&mut self, now: SimTime, fabric: &mut Fabric) {
        for (replica, queue) in fabric.wire.iter_mut().enumerate() {
            if queue.front().is_some_and(|&(t, _)| t == now) {
                let (_, shape) = queue.pop_front().expect("checked front");
                fabric.inboxes[replica].push(RequestArrival { at: now, shape });
                return;
            }
        }
        unreachable!("interconnect ticked with no due delivery");
    }
}

/// The router's dispatch-time state.
struct RouterState {
    policy: RouterPolicy,
    replicas: usize,
    /// Arrivals dispatched so far (round-robin / session striping).
    dispatched: u64,
    /// Tokens booked per replica (least-loaded).
    booked: Vec<u64>,
}

impl RouterState {
    fn new(policy: RouterPolicy, replicas: usize) -> Self {
        RouterState {
            policy,
            replicas,
            dispatched: 0,
            booked: vec![0; replicas],
        }
    }

    fn route(&mut self, shape: RequestShape) -> usize {
        let i = self.dispatched;
        self.dispatched += 1;
        let replica = match self.policy {
            RouterPolicy::RoundRobin => (i % self.replicas as u64) as usize,
            RouterPolicy::LeastLoaded => self
                .booked
                .iter()
                .enumerate()
                .min_by_key(|&(r, &b)| (b, r))
                .map(|(r, _)| r)
                .expect("a fleet has at least one replica"),
            RouterPolicy::SessionAffinity { sessions } => {
                let session = (i % sessions as u64) as usize;
                session % self.replicas
            }
        };
        self.booked[replica] += (shape.prompt_len + shape.new_tokens) as u64;
        replica
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use llm_workload::zoo;

    fn device() -> DeviceEngine {
        DeviceEngine::new(SystemConfig::cambricon_s(), zoo::opt_6_7b())
    }

    fn trace(n: usize, seed: u64) -> ArrivalTrace {
        ArrivalTrace::poisson(40.0, n, RequestShape::new(96, 3), seed)
    }

    #[test]
    fn round_robin_rotates() {
        let mut r = RouterState::new(RouterPolicy::RoundRobin, 3);
        let s = RequestShape::new(10, 2);
        let picks: Vec<usize> = (0..6).map(|_| r.route(s)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_loaded_balances_heterogeneous_shapes() {
        let mut r = RouterState::new(RouterPolicy::LeastLoaded, 2);
        // A heavy request books replica 0; the next two light ones
        // both go to replica 1 until it catches up.
        assert_eq!(r.route(RequestShape::new(1000, 100)), 0);
        assert_eq!(r.route(RequestShape::new(10, 1)), 1);
        assert_eq!(r.route(RequestShape::new(10, 1)), 1);
        assert_eq!(r.booked, vec![1100, 22]);
    }

    #[test]
    fn session_affinity_pins_sessions() {
        let mut r = RouterState::new(RouterPolicy::SessionAffinity { sessions: 3 }, 2);
        let s = RequestShape::new(10, 2);
        // Sessions 0,1,2 pin to replicas 0,1,0: the stripe repeats.
        let picks: Vec<usize> = (0..6).map(|_| r.route(s)).collect();
        assert_eq!(picks, vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn routing_preserves_timestamps_and_order_at_zero_hop() {
        let fleet = FleetEngine::new(device(), 2);
        let ArrivalTrace::Open(arrivals) = trace(8, 11) else {
            unreachable!()
        };
        let inboxes = fleet.route(&arrivals);
        let mut merged: Vec<RequestArrival> = inboxes.concat();
        merged.sort_by_key(|a| a.at);
        let mut expected = arrivals.clone();
        expected.sort_by_key(|a| a.at);
        assert_eq!(merged, expected);
        // Round-robin: even indices to replica 0, odd to replica 1.
        assert_eq!(inboxes[0].len(), 4);
        assert_eq!(inboxes[1].len(), 4);
    }

    #[test]
    fn dispatch_hop_shifts_replica_arrivals() {
        let hop = SimTime::from_micros(5);
        let fleet = FleetEngine::new(device(), 2).with_interconnect(Interconnect::symmetric(hop));
        let ArrivalTrace::Open(arrivals) = trace(4, 3) else {
            unreachable!()
        };
        let inboxes = fleet.route(&arrivals);
        let delivered: Vec<SimTime> = inboxes.concat().iter().map(|a| a.at).collect();
        let mut expected: Vec<SimTime> = arrivals.iter().map(|a| a.at + hop).collect();
        expected.sort();
        let mut got = delivered.clone();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn replica_fault_seeds_are_split_not_sequential() {
        use crate::reliability::FaultConfig;
        let base = FaultConfig::default();
        let faulted = device().with_faults(FaultMode::Injected(base));
        let fleet = FleetEngine::new(faulted, 4);
        let engines = fleet.replica_engines().expect("faults are on");
        let seeds: Vec<u64> = engines
            .iter()
            .map(|e| match e.fault_mode() {
                FaultMode::Injected(c) => c.seed,
                FaultMode::Off => unreachable!(),
            })
            .collect();
        assert_eq!(seeds, SplitMix64::split_seeds(base.seed, 4));
        for (r, &s) in seeds.iter().enumerate() {
            assert_ne!(s, base.seed.wrapping_add(r as u64), "sequential seeding");
        }
    }

    #[test]
    fn closed_loop_trace_is_rejected() {
        let fleet = FleetEngine::new(device(), 2);
        let trace = ArrivalTrace::closed_loop(2, 1, RequestShape::new(64, 2));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            fleet.run(&trace, SchedulePolicy::Fcfs)
        }));
        assert!(err.is_err());
    }
}
