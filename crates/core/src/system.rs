//! The full Cambricon-LLM system simulator.
//!
//! Replays the decode-phase op stream of an LLM (crate `llm-workload`)
//! against the hardware models:
//!
//! * weight GeMVs → `tiling` plans → the discrete-event flash device
//!   (`flash-sim`), with the NPU consuming its share as pages stream in;
//! * KV-cache matrix work, KV appends → the NPU/DRAM roofline model
//!   (`npu-sim`);
//! * softmax/activations/norms → the NPU's SFU.
//!
//! Decode is strictly sequential (each op consumes the previous op's
//! output at batch size 1), so per-token latency is the sum of op
//! latencies. Layers share identical GeMV shapes, so each distinct shape
//! is simulated once and its measured latency reused — exact for the
//! steady state and what makes full-model sweeps fast.

use crate::config::SystemConfig;
use flash_sim::{DeviceReport, FlashDevice};
use llm_workload::{
    decode_step, DecodeOp, ModelSpec, OpShape, PrefillPlan, SpecialKind, TokenPlan,
};
use npu_sim::NpuModel;
use sim_core::{CacheStats, SimTime};
use std::hash::{BuildHasherDefault, Hasher};
use tiling::{plan_gemv, GemvPlan};

/// Timing and traffic of one **prefill** phase, as priced by
/// [`System::prefill_cost`].
///
/// Prefill overlaps a one-shot weight stream from flash (plain reads —
/// the in-flash cores are GeMV-only, so they sit the phase out) with
/// the NPU running the prompt-wide GeMMs, attention, special functions
/// and KV writes; the phase lasts as long as the slower side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillCost {
    /// Phase latency: `max(stream, compute)`.
    pub total: SimTime,
    /// One-shot weight stream at the effective (tiling-derived) read
    /// bandwidth — the flash-channel occupancy of the phase.
    pub stream: SimTime,
    /// NPU-side time: GeMMs + attention + SFU + KV writes.
    pub compute: SimTime,
    /// The attention (KV) share of `compute` — the term the legacy
    /// integer division truncated to zero for 1-token prompts.
    pub kv_compute: SimTime,
    /// Whether the NPU side outlasted the weight stream.
    pub compute_bound: bool,
    /// Traffic of the phase: the full weight stream crosses NAND and
    /// the D2D link to the NPU; attention and KV writes hit DRAM.
    pub traffic: TrafficBreakdown,
}

impl PrefillCost {
    /// The all-zero cost of an empty prompt: nothing streams, nothing
    /// computes, the phase is skipped.
    pub const ZERO: PrefillCost = PrefillCost {
        total: SimTime::ZERO,
        stream: SimTime::ZERO,
        compute: SimTime::ZERO,
        kv_compute: SimTime::ZERO,
        compute_bound: false,
        traffic: TrafficBreakdown {
            nand_array_bytes: 0,
            in_flash_bytes: 0,
            d2d_bytes: 0,
            dram_bytes: 0,
            npu_ops: 0,
            flash_ops: 0,
        },
    };

    /// Number of [`System::op_cost`] lookups one cost derivation makes
    /// (GeMM, attention, SFU, KV write) — lets serving reports keep
    /// `hits + misses` an exact partition of priced work.
    pub const COMPONENT_OPS: u64 = 4;
}

/// Byte/operation traffic of one generated token, for the energy model
/// and Figure 16.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TrafficBreakdown {
    /// Bytes read from NAND arrays (all weights, wherever consumed).
    pub nand_array_bytes: u64,
    /// Weight bytes consumed by the in-flash compute cores.
    pub in_flash_bytes: u64,
    /// Bytes crossing the chiplet D2D link (both directions).
    pub d2d_bytes: u64,
    /// DRAM traffic (KV reads + writes).
    pub dram_bytes: u64,
    /// Arithmetic ops executed on the NPU.
    pub npu_ops: u64,
    /// Arithmetic ops executed by the flash compute cores.
    pub flash_ops: u64,
}

impl TrafficBreakdown {
    /// Total bytes moved over external interfaces (D2D + DRAM) — the
    /// quantity Figure 16(a) reports as "Data Trans Size".
    pub fn transferred_bytes(&self) -> u64 {
        self.d2d_bytes + self.dram_bytes
    }

    /// Accumulates another breakdown into this one.
    pub fn absorb(&mut self, other: &TrafficBreakdown) {
        self.absorb_scaled(other, 1);
    }

    /// Accumulates one **batched step**: `shared` once plus
    /// `per_request × batch`.
    ///
    /// This is the traffic law of continuous batching
    /// ([`crate::serve::SchedulePolicy::ContinuousBatch`]): the weight
    /// *stream* — NAND reads, in-flash consumption, the D2D weight
    /// share — is fetched **once** per plan slot for all requests
    /// parked at that position, while everything a request does for
    /// itself (its share of the GeMV arithmetic on both sides, KV
    /// reads/writes, special functions) repeats per batch member.
    pub fn absorb_batch_step(
        &mut self,
        shared: &TrafficBreakdown,
        per_request: &TrafficBreakdown,
        batch: u64,
    ) {
        self.absorb(shared);
        self.absorb_scaled(per_request, batch);
    }

    /// Accumulates a **span** of `steps` batched steps at once:
    /// `shared × steps` plus `per_request × batch × steps`.
    ///
    /// This is the bulk form of
    /// [`absorb_batch_step`](TrafficBreakdown::absorb_batch_step) for
    /// span fast-forwarding: a run of decode steps between two
    /// scheduling boundaries has a fixed batch, so its invariant
    /// traffic is one multiplication instead of one call per step.
    /// Because every field is an exact integer, the result is
    /// bit-identical to `steps` repeated `absorb_batch_step` calls.
    pub fn absorb_batch_span(
        &mut self,
        shared: &TrafficBreakdown,
        per_request: &TrafficBreakdown,
        batch: u64,
        steps: u64,
    ) {
        self.absorb_scaled(shared, steps);
        self.absorb_scaled(per_request, batch * steps);
    }

    /// Field-wise difference `self − earlier`, for differencing two
    /// cumulative snapshots of the same fold (attention prefix tables):
    /// every field is an exact integer counter, so the difference of a
    /// later prefix sum against an earlier one reproduces the summed
    /// in-between contributions bit for bit.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `earlier` exceeds `self` in any field — the
    /// operands were not snapshots of one monotone accumulation.
    pub fn difference(&self, earlier: &TrafficBreakdown) -> TrafficBreakdown {
        TrafficBreakdown {
            nand_array_bytes: self.nand_array_bytes - earlier.nand_array_bytes,
            in_flash_bytes: self.in_flash_bytes - earlier.in_flash_bytes,
            d2d_bytes: self.d2d_bytes - earlier.d2d_bytes,
            dram_bytes: self.dram_bytes - earlier.dram_bytes,
            npu_ops: self.npu_ops - earlier.npu_ops,
            flash_ops: self.flash_ops - earlier.flash_ops,
        }
    }

    /// Accumulates `n` occurrences of another breakdown at once (an op
    /// repeated `n` times per token contributes `n ×` its traffic).
    pub fn absorb_scaled(&mut self, other: &TrafficBreakdown, n: u64) {
        self.nand_array_bytes += n * other.nand_array_bytes;
        self.in_flash_bytes += n * other.in_flash_bytes;
        self.d2d_bytes += n * other.d2d_bytes;
        self.dram_bytes += n * other.dram_bytes;
        self.npu_ops += n * other.npu_ops;
        self.flash_ops += n * other.flash_ops;
    }
}

/// Timing and traffic of one generated token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenReport {
    /// Total latency of the token.
    pub total: SimTime,
    /// Decode speed implied by this token's latency.
    pub tokens_per_sec: f64,
    /// Time in weight GeMVs (flash + NPU co-execution).
    pub gemv: SimTime,
    /// Time in KV-cache matrix work on the NPU.
    pub kv: SimTime,
    /// Time in SFU special functions.
    pub sfu: SimTime,
    /// Mean flash-channel utilization during GeMV phases (time-weighted).
    pub channel_utilization: f64,
    /// Byte/op traffic for the energy model.
    pub traffic: TrafficBreakdown,
}

/// Memoized GeMV simulations: shape → (plan, device report).
///
/// Layers share identical GeMV shapes within a token, tokens share them
/// across a request, and concurrent requests of the same model share
/// them across the fleet — so each distinct shape is simulated through
/// the discrete-event flash device exactly once per [`System`]. The
/// hit/miss counters surface that sharing in serving reports.
#[derive(Debug, Clone, Default)]
pub struct GemvCache {
    entries: Vec<((usize, usize), GemvPlan, DeviceReport)>,
    stats: CacheStats,
}

impl GemvCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct shapes simulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no shapes have been simulated yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from memory (shape already simulated).
    pub fn hits(&self) -> u64 {
        self.stats.hits()
    }

    /// Lookups that ran the flash discrete-event simulation.
    pub fn misses(&self) -> u64 {
        self.stats.misses()
    }

    /// Both counters as one summary.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn lookup(&mut self, rows: usize, cols: usize) -> Option<(GemvPlan, DeviceReport)> {
        match self
            .entries
            .iter()
            .find(|((r, c), _, _)| *r == rows && *c == cols)
        {
            Some((_, plan, rep)) => {
                self.stats.hit();
                Some((*plan, *rep))
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    fn insert(&mut self, rows: usize, cols: usize, plan: GemvPlan, rep: DeviceReport) {
        self.entries.push(((rows, cols), plan, rep));
    }
}

/// Which serially-exclusive hardware resource a [`DecodeOp`] occupies.
///
/// Weight GeMVs occupy the flash device (plus the NPU share consuming
/// pages as they stream — the co-execution of Figure 5); everything
/// else runs on the NPU/DRAM side alone. Ops of *different* classes
/// from *different* requests can overlap, which is what the serving
/// engine ([`crate::serve`]) exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Flash device + streaming NPU share (weight GeMVs).
    Flash,
    /// NPU compute / SFU / DRAM (KV work, special functions, appends).
    Npu,
}

impl OpClass {
    /// The resource `op` occupies. Pure classification — use
    /// [`System::op_cost`] when the latency is also needed.
    pub fn of(op: &DecodeOp) -> OpClass {
        match op {
            DecodeOp::WeightGemv { .. } => OpClass::Flash,
            _ => OpClass::Npu,
        }
    }
}

/// Latency and accounting of one decode op, as priced by [`System::op_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Time the op occupies its resource.
    pub latency: SimTime,
    /// Resource the op occupies.
    pub class: OpClass,
    /// Byte/op traffic contributed by the op.
    pub traffic: TrafficBreakdown,
    /// Mean flash-channel utilization while the op runs (GeMVs only,
    /// zero otherwise).
    pub channel_utilization: f64,
}

/// Multiply-rotate hasher (fx-hash style) for the op-cost map.
///
/// `OpShape` keys are three machine words; SipHash (std's default)
/// costs more than recomputing most op costs, which would defeat the
/// cache. This hasher is a handful of ALU ops per word — not DoS
/// resistant, which is fine for keys the simulator itself generates.
#[derive(Debug, Default, Clone, Copy)]
struct ShapeHasher {
    hash: u64,
}

impl ShapeHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for ShapeHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// Memoized op pricing: canonical shape ([`llm_workload::OpShape`],
/// the single definition of the "cost depends only on shape" contract)
/// → [`OpCost`].
///
/// Sibling of [`GemvCache`], one level up: where the GeMV cache
/// memoizes the expensive flash discrete-event simulation, this cache
/// memoizes the *entire* [`System::op_cost`] derivation (roofline
/// arithmetic, traffic accounting, the GeMV-cache consultation itself),
/// so a repeated op costs one hash lookup. Decode streams repeat a
/// dozen distinct shapes hundreds of times per token, and concurrent
/// same-model requests repeat each other's shapes across the fleet —
/// serving reports surface the hit/miss split to show that sharing.
#[derive(Debug, Clone, Default)]
pub struct OpCostCache {
    #[allow(clippy::disallowed_types)]
    // simlint: allow(D2) — lookup-only hot-path memo (get/insert/len); never iterated, so hash order cannot reach a report
    map: std::collections::HashMap<OpShape, OpCost, BuildHasherDefault<ShapeHasher>>,
    stats: CacheStats,
}

impl OpCostCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct shapes priced so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no shape has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from memory.
    pub fn hits(&self) -> u64 {
        self.stats.hits()
    }

    /// Lookups that derived the cost from the hardware models.
    pub fn misses(&self) -> u64 {
        self.stats.misses()
    }

    /// Both counters as one summary.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn lookup(&mut self, shape: OpShape) -> Option<OpCost> {
        match self.map.get(&shape) {
            Some(cost) => {
                self.stats.hit();
                Some(*cost)
            }
            None => {
                self.stats.miss();
                None
            }
        }
    }

    fn insert(&mut self, shape: OpShape, cost: OpCost) {
        self.map.insert(shape, cost);
    }
}

/// The system: configuration plus lazily simulated GeMV latencies.
///
/// `Clone` duplicates the whole memoization state — the Monte Carlo
/// harness warms one system and hands each seeded run its own copy, so
/// per-seed cache counters stay independent and deterministic.
#[derive(Debug, Clone)]
pub struct System {
    cfg: SystemConfig,
    npu: NpuModel,
    gemv_cache: GemvCache,
    op_cache: OpCostCache,
    /// Memoized [`System::effective_read_bandwidth`].
    eff_read_bw: Option<f64>,
}

impl System {
    /// Builds a system from a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        System {
            npu: NpuModel::new(cfg.npu),
            cfg,
            gemv_cache: GemvCache::new(),
            op_cache: OpCostCache::new(),
            eff_read_bw: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The memoized GeMV simulations accumulated so far.
    pub fn gemv_cache(&self) -> &GemvCache {
        &self.gemv_cache
    }

    /// The memoized op costs accumulated so far.
    pub fn op_cost_cache(&self) -> &OpCostCache {
        &self.op_cache
    }

    /// Zeroes both caches' hit/miss counters while keeping their
    /// memoized entries. A warmed system handed to a measurement run
    /// starts counting from zero, so the run's reported hit/miss split
    /// reflects its own lookups only.
    pub fn reset_cache_stats(&mut self) {
        self.gemv_cache.stats.reset();
        self.op_cache.stats.reset();
    }

    /// Simulates (or recalls) one weight GeMV of shape `rows × cols`.
    fn gemv(&mut self, rows: usize, cols: usize) -> (GemvPlan, DeviceReport) {
        if let Some(hit) = self.gemv_cache.lookup(rows, cols) {
            return hit;
        }
        // With very many compute cores a single full-device tile can
        // exceed the whole matrix (Figure 15: "many [chips] remained
        // idle, yielding no performance gains"). Model the paper's
        // behaviour by shrinking the *active* per-channel die count
        // until one tile fits; the surplus dies simply idle.
        let mut engine = self.cfg.engine;
        let mut inp = self.cfg.alpha_inputs();
        if self.cfg.tile_override.is_none() && self.cfg.strategy != tiling::Strategy::NpuOnly {
            while tiling::fit_tile(&inp.topology, inp.weight_bits, rows, cols).is_none()
                && (engine.topology.chips_per_channel > 1 || engine.topology.dies_per_chip > 1)
            {
                if engine.topology.chips_per_channel > 1 {
                    engine.topology.chips_per_channel =
                        (engine.topology.chips_per_channel / 2).max(1);
                } else {
                    engine.topology.dies_per_chip = (engine.topology.dies_per_chip / 2).max(1);
                }
                inp.topology = engine.topology;
            }
        }
        let plan = plan_gemv(&inp, rows, cols, self.cfg.strategy, self.cfg.tile_override);
        let device = FlashDevice::new(engine);
        let rep = device.run_per_channel(&plan.channel_workloads(&inp));
        self.gemv_cache.insert(rows, cols, plan, rep);
        (plan, rep)
    }

    /// Prices one decode op: its latency, the resource it occupies, and
    /// its traffic contribution. This is the per-op stepping API the
    /// serving engine ([`crate::serve`]) schedules with; [`decode_token`]
    /// is the strictly-sequential sum of these costs.
    ///
    /// Costs are memoized by canonical shape ([`OpCostCache`]): the
    /// first op of each shape runs the full derivation, repeats are a
    /// hash lookup.
    ///
    /// [`decode_token`]: System::decode_token
    pub fn op_cost(&mut self, op: &DecodeOp) -> OpCost {
        let shape = OpShape::of(op);
        if let Some(cost) = self.op_cache.lookup(shape) {
            return cost;
        }
        let cost = self.derive_op_cost(op);
        self.op_cache.insert(shape, cost);
        cost
    }

    /// Runs the full cost derivation, bypassing the memo (the cache
    /// guarantees one call per distinct shape).
    fn derive_op_cost(&mut self, op: &DecodeOp) -> OpCost {
        let quant = self.cfg.quant;
        let mut traffic = TrafficBreakdown::default();
        match op {
            DecodeOp::WeightGemv { rows, cols, .. } => {
                let (plan, rep) = self.gemv(*rows, *cols);
                // The NPU consumes its share as pages stream in; its
                // compute time only matters if it exceeds the
                // transfer window (it never does at 2 TOPS, but the
                // roofline keeps the model honest).
                let npu_ops = 2 * plan.npu_params;
                let latency = rep.finish.max(self.npu.compute_time(npu_ops));
                traffic.nand_array_bytes += quant.weight_bytes(plan.total_params());
                traffic.in_flash_bytes += quant.weight_bytes(plan.flash_params);
                traffic.d2d_bytes += rep.bytes_to_npu + rep.bytes_from_npu;
                traffic.npu_ops += npu_ops;
                traffic.flash_ops += 2 * plan.flash_params;
                OpCost {
                    latency,
                    class: OpClass::Flash,
                    traffic,
                    channel_utilization: rep.mean_utilization,
                }
            }
            DecodeOp::KvMatVec {
                dram_bytes, ops, ..
            } => {
                traffic.dram_bytes += dram_bytes;
                traffic.npu_ops += ops;
                OpCost {
                    latency: self.npu.kv_op_time(*ops, *dram_bytes),
                    class: OpClass::Npu,
                    traffic,
                    channel_utilization: 0.0,
                }
            }
            DecodeOp::Special { elems, .. } => OpCost {
                latency: self.npu.sfu_time(*elems),
                class: OpClass::Npu,
                traffic,
                channel_utilization: 0.0,
            },
            DecodeOp::KvAppend { bytes } => {
                traffic.dram_bytes += bytes;
                OpCost {
                    latency: self.npu.dram_write_time(*bytes),
                    class: OpClass::Npu,
                    traffic,
                    channel_utilization: 0.0,
                }
            }
        }
    }

    /// Simulates one decode step (token generation) at context length
    /// `seq_len`.
    ///
    /// Enumerates the ops eagerly via [`decode_step`]; when stepping
    /// many tokens of one model, build a [`TokenPlan`] once and use
    /// [`decode_token_planned`](System::decode_token_planned) instead.
    pub fn decode_token(&mut self, model: &ModelSpec, seq_len: usize) -> TokenReport {
        let step = decode_step(model, self.cfg.quant, seq_len);
        self.sum_op_costs(step.ops.iter().copied())
    }

    /// [`decode_token`](System::decode_token) over a prebuilt
    /// [`TokenPlan`]: identical result, no per-token enumeration or
    /// allocation. The plan's quantization must match the system's.
    ///
    /// # Panics
    ///
    /// Panics if `plan.quant()` differs from the system configuration.
    pub fn decode_token_planned(&mut self, plan: &TokenPlan, seq_len: usize) -> TokenReport {
        assert_eq!(
            plan.quant(),
            self.cfg.quant,
            "token plan quantization does not match the system"
        );
        self.sum_op_costs(plan.stream(seq_len))
    }

    fn sum_op_costs(&mut self, ops: impl Iterator<Item = DecodeOp>) -> TokenReport {
        let mut total = SimTime::ZERO;
        let mut gemv_t = SimTime::ZERO;
        let mut kv_t = SimTime::ZERO;
        let mut sfu_t = SimTime::ZERO;
        let mut traffic = TrafficBreakdown::default();
        let mut util_weighted = 0.0f64;

        for op in ops {
            let cost = self.op_cost(&op);
            total += cost.latency;
            match op {
                DecodeOp::WeightGemv { .. } => {
                    gemv_t += cost.latency;
                    util_weighted += cost.channel_utilization * cost.latency.as_secs_f64();
                }
                DecodeOp::KvMatVec { .. } | DecodeOp::KvAppend { .. } => kv_t += cost.latency,
                DecodeOp::Special { .. } => sfu_t += cost.latency,
            }
            traffic.absorb(&cost.traffic);
        }

        TokenReport {
            total,
            tokens_per_sec: 1.0 / total.as_secs_f64(),
            gemv: gemv_t,
            kv: kv_t,
            sfu: sfu_t,
            channel_utilization: if gemv_t == SimTime::ZERO {
                0.0
            } else {
                util_weighted / gemv_t.as_secs_f64()
            },
            traffic,
        }
    }

    /// Decode speed in tokens/second at a fixed context length (the
    /// paper evaluates at sequence length ≈ 1000).
    pub fn decode_speed(&mut self, model: &ModelSpec, seq_len: usize) -> f64 {
        self.decode_token(model, seq_len).tokens_per_sec
    }

    /// NPU roofline time for `ops` arithmetic operations — the compute
    /// floor under a shared weight stream. A batched weight GeMV
    /// ([`crate::serve`]'s continuous batching) occupies the flash
    /// device for the single-stream window *unless* `batch ×` the
    /// per-request NPU share of the MACs exceeds it; this is how the
    /// scheduler prices that ceiling, ending batching's free lunch at
    /// large batch exactly as §III-A's intensity cliff predicts.
    pub fn npu_compute_time(&self, ops: u64) -> SimTime {
        self.npu.compute_time(ops)
    }

    /// Aggregate in-flash compute time for `ops` arithmetic operations
    /// spread across every die's core — the other compute floor under a
    /// shared weight stream. The paper sizes each core to exactly match
    /// the NAND read rate at batch 1 ("computing power must match the
    /// read speed"), so the in-flash share of a batched GeMV throttles
    /// the stream once `batch ×` its MACs outrun the cores, well before
    /// the NPU does.
    pub fn flash_compute_time(&self, ops: u64) -> SimTime {
        let cores = self.cfg.engine.topology.total_compute_cores() as u64;
        sim_core::transfer_time(ops, cores.max(1) * self.cfg.engine.core.ops_per_sec())
    }

    /// Effective plain-read bandwidth of the whole flash device in
    /// bytes/second — what a one-shot weight stream (prefill) actually
    /// sustains.
    ///
    /// Derived from the same [`tiling::effective_rates`] the GeMV
    /// planner uses: each page read pays its per-chunk command cycles
    /// on the channel bus (`t_page`), so the sustained rate is
    /// `channels × page_bytes / t_page` — strictly below the raw bus
    /// rate `channels × channel_bytes_per_sec`, which ignores command
    /// overhead and slice chunking. Memoized per system.
    pub fn effective_read_bandwidth(&mut self) -> f64 {
        if let Some(bw) = self.eff_read_bw {
            return bw;
        }
        let inp = self.cfg.alpha_inputs();
        let tile = self
            .cfg
            .tile_override
            .unwrap_or_else(|| tiling::optimal_tile(&inp.topology, inp.weight_bits));
        let rates = tiling::effective_rates(&inp, tile);
        // simlint: allow(D5) — bandwidth model boundary: exact integer geometry enters the analytic f64 rate model here
        let bw = inp.topology.channels as f64 * inp.topology.page_bytes as f64 / rates.t_page_s;
        self.eff_read_bw = Some(bw);
        bw
    }

    /// Prices the prefill phase of an `m`-token prompt: a one-shot
    /// weight stream at [`System::effective_read_bandwidth`] overlapped
    /// with the NPU-side compute, the phase lasting as long as the
    /// slower side ([`PrefillCost`]).
    ///
    /// The NPU components are priced through [`System::op_cost`] as
    /// canonical shapes ([`OpCostCache`] entries like any decode op —
    /// exactly [`PrefillCost::COMPONENT_OPS`] lookups per call), so a
    /// serving fleet re-pricing the same `(model, quant, prompt_len)`
    /// bucket is pure recall. An empty prompt is a legal no-op:
    /// [`PrefillCost::ZERO`], nothing priced.
    pub fn prefill_cost(&mut self, plan: &PrefillPlan, prompt_tokens: usize) -> PrefillCost {
        assert_eq!(
            plan.quant(),
            self.cfg.quant,
            "prefill plan quantization does not match the system"
        );
        if prompt_tokens == 0 {
            return PrefillCost::ZERO;
        }
        let m = prompt_tokens;
        let mut traffic = TrafficBreakdown::default();

        // The whole weight set streams from NAND once, all of it to the
        // NPU over the D2D link (no in-flash compute during prefill).
        let weight_bytes = plan.weight_bytes();
        // simlint: allow(D5) — same boundary: byte count is exact in f64 far below 2^53; result re-enters integer ps via from_secs_f64
        let stream = SimTime::from_secs_f64(weight_bytes as f64 / self.effective_read_bandwidth());
        traffic.nand_array_bytes += weight_bytes;
        traffic.d2d_bytes += weight_bytes;

        // NPU side, one canonical shape per component (GeMMs as pure
        // compute, attention as KV-stream work, SFU, KV writes).
        let gemm = self.op_cost(&DecodeOp::KvMatVec {
            label: "prefill_gemm",
            dram_bytes: 0,
            ops: plan.gemm_ops(m),
        });
        let (attn_ops, attn_dram) = plan.attention(m);
        let attn = self.op_cost(&DecodeOp::KvMatVec {
            label: "prefill_attn",
            dram_bytes: attn_dram,
            ops: attn_ops,
        });
        let sfu = self.op_cost(&DecodeOp::Special {
            kind: SpecialKind::Softmax,
            elems: plan.sfu_elems(m),
        });
        let append = self.op_cost(&DecodeOp::KvAppend {
            bytes: plan.kv_write_bytes(m),
        });
        for cost in [&gemm, &attn, &sfu, &append] {
            traffic.absorb(&cost.traffic);
        }
        let compute = gemm.latency + attn.latency + sfu.latency + append.latency;

        PrefillCost {
            total: stream.max(compute),
            stream,
            compute,
            kv_compute: attn.latency,
            compute_bound: compute > stream,
            traffic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use llm_workload::{zoo, Quant};
    use tiling::Strategy;

    /// Paper Figure 9(a) numbers for Cambricon-LLM-S/M/L on OPT-6.7B.
    #[test]
    fn fig9_opt_6_7b_decode_speeds_in_band() {
        let model = zoo::opt_6_7b();
        let cases = [
            (SystemConfig::cambricon_s(), 3.56, 0.35),
            (SystemConfig::cambricon_m(), 10.96, 0.35),
            (SystemConfig::cambricon_l(), 36.34, 0.40),
        ];
        for (cfg, paper, tol) in cases {
            let mut sys = System::new(cfg);
            let speed = sys.decode_speed(&model, 1000);
            let rel = (speed - paper).abs() / paper;
            assert!(
                rel < tol,
                "{}: {speed:.2} tok/s vs paper {paper} (rel {rel:.2})",
                cfg.name
            );
        }
    }

    #[test]
    fn seventy_b_on_l_hits_paper_band() {
        // Headline claim: 70B at ~3.4 tokens/s on Cambricon-LLM-L.
        let mut sys = System::new(SystemConfig::cambricon_l());
        let speed = sys.decode_speed(&zoo::llama2_70b(), 1000);
        assert!(
            (2.4..4.6).contains(&speed),
            "Llama2-70B on L: {speed:.2} tok/s"
        );
    }

    #[test]
    fn speed_decreases_with_model_size() {
        let mut sys = System::new(SystemConfig::cambricon_m());
        let speeds: Vec<f64> = zoo::opt_family()
            .iter()
            .map(|m| sys.decode_speed(m, 1000))
            .collect();
        for w in speeds.windows(2) {
            assert!(w[0] > w[1], "{speeds:?}");
        }
    }

    #[test]
    fn w4a16_speeds_up_inference() {
        // Figure 11: W4A16 improves Cam-S by ~85% on average.
        let model = zoo::opt_6_7b();
        let mut w8 = System::new(SystemConfig::cambricon_s());
        let mut w4 = System::new(SystemConfig::cambricon_s().with_quant(Quant::W4A16));
        let s8 = w8.decode_speed(&model, 1000);
        let s4 = w4.decode_speed(&model, 1000);
        let gain = s4 / s8;
        assert!((1.3..2.2).contains(&gain), "gain {gain:.2}");
    }

    #[test]
    fn tiling_beats_flash_only() {
        // Figure 14: hardware-aware tiling is 1.3–1.4× faster than
        // flash-only execution.
        let model = zoo::opt_6_7b();
        let mut ours = System::new(SystemConfig::cambricon_s());
        let mut flash_only =
            System::new(SystemConfig::cambricon_s().with_strategy(Strategy::FlashOnly));
        let a = ours.decode_speed(&model, 1000);
        let b = flash_only.decode_speed(&model, 1000);
        let gain = a / b;
        assert!((1.15..1.8).contains(&gain), "gain {gain:.2}");
    }

    #[test]
    fn slicing_beats_unsliced() {
        // Figure 12: read-request slicing is 1.6–1.8× faster.
        let model = zoo::opt_6_7b();
        let mut ours = System::new(SystemConfig::cambricon_s());
        let mut unsliced = System::new(SystemConfig::cambricon_s().without_read_slice());
        let a = ours.decode_speed(&model, 1000);
        let b = unsliced.decode_speed(&model, 1000);
        let gain = a / b;
        assert!(gain > 1.25, "gain {gain:.2}");
    }

    #[test]
    fn channel_utilization_in_paper_band() {
        // Figure 12(b): "our method" runs at ~79–91% channel usage.
        let model = zoo::opt_6_7b();
        let mut sys = System::new(SystemConfig::cambricon_s());
        let rep = sys.decode_token(&model, 1000);
        assert!(
            (0.6..1.0).contains(&rep.channel_utilization),
            "{}",
            rep.channel_utilization
        );
    }

    #[test]
    fn flash_only_has_tiny_utilization() {
        // Figure 14(b): without tiling, channel usage collapses to ~3%.
        let model = zoo::opt_6_7b();
        let mut sys = System::new(SystemConfig::cambricon_s().with_strategy(Strategy::FlashOnly));
        let rep = sys.decode_token(&model, 1000);
        assert!(
            rep.channel_utilization < 0.10,
            "{}",
            rep.channel_utilization
        );
    }

    #[test]
    fn traffic_accounting_is_consistent() {
        let model = zoo::opt_6_7b();
        let mut sys = System::new(SystemConfig::cambricon_s());
        let rep = sys.decode_token(&model, 1000);
        let t = rep.traffic;
        // All weights are read from NAND exactly once per token.
        let expect_weights: u64 = decode_step(&model, Quant::W8A8, 1000).total_weight_bytes();
        assert_eq!(t.nand_array_bytes, expect_weights);
        // In-flash share is large but below total.
        assert!(t.in_flash_bytes > expect_weights / 3);
        assert!(t.in_flash_bytes < expect_weights);
        // D2D carries roughly the NPU share (1-α) of weights.
        let npu_share = expect_weights - t.in_flash_bytes;
        assert!(t.d2d_bytes as f64 > npu_share as f64 * 0.9);
        assert!((t.d2d_bytes as f64) < npu_share as f64 * 1.3);
        // Figure 16(a): Cam-S moves ~1.9 GB/token on OPT-6.7B.
        let gb = t.transferred_bytes() as f64 / 1e9;
        assert!((1.2..3.0).contains(&gb), "{gb} GB/token");
    }

    #[test]
    fn time_breakdown_sums_to_total() {
        let model = zoo::opt_13b();
        let mut sys = System::new(SystemConfig::cambricon_s());
        let rep = sys.decode_token(&model, 500);
        let sum = rep.gemv + rep.kv + rep.sfu;
        assert_eq!(sum, rep.total);
        assert!(rep.gemv > rep.kv); // weights dominate at seq 500
    }

    #[test]
    fn batch_step_traffic_shares_weights_and_repeats_kv() {
        let shared = TrafficBreakdown {
            nand_array_bytes: 1000,
            in_flash_bytes: 600,
            d2d_bytes: 400,
            dram_bytes: 0,
            npu_ops: 50,
            flash_ops: 70,
        };
        let per_request = TrafficBreakdown {
            dram_bytes: 8,
            npu_ops: 16,
            ..TrafficBreakdown::default()
        };
        let mut t = TrafficBreakdown::default();
        t.absorb_batch_step(&shared, &per_request, 4);
        assert_eq!(t.nand_array_bytes, 1000); // weights streamed once
        assert_eq!(t.in_flash_bytes, 600);
        assert_eq!(t.d2d_bytes, 400);
        assert_eq!(t.dram_bytes, 4 * 8); // KV repeats per request
        assert_eq!(t.npu_ops, 50 + 4 * 16);
        assert_eq!(t.flash_ops, 70);
        // batch == 1 degenerates to absorbing both once.
        let mut one = TrafficBreakdown::default();
        one.absorb_batch_step(&shared, &per_request, 1);
        let mut serial = TrafficBreakdown::default();
        serial.absorb(&shared);
        serial.absorb(&per_request);
        assert_eq!(one, serial);
    }

    #[test]
    fn batch_span_equals_repeated_batch_steps() {
        let shared = TrafficBreakdown {
            nand_array_bytes: 999,
            in_flash_bytes: 501,
            d2d_bytes: 333,
            dram_bytes: 1,
            npu_ops: 47,
            flash_ops: 83,
        };
        let per_request = TrafficBreakdown {
            dram_bytes: 13,
            npu_ops: 29,
            d2d_bytes: 7,
            ..TrafficBreakdown::default()
        };
        for (batch, steps) in [(1u64, 1u64), (4, 1), (1, 9), (7, 512)] {
            let mut bulk = TrafficBreakdown::default();
            bulk.absorb_batch_span(&shared, &per_request, batch, steps);
            let mut stepped = TrafficBreakdown::default();
            for _ in 0..steps {
                stepped.absorb_batch_step(&shared, &per_request, batch);
            }
            assert_eq!(bulk, stepped, "batch {batch} steps {steps}");
        }
        // Zero steps is a no-op.
        let mut none = TrafficBreakdown::default();
        none.absorb_batch_span(&shared, &per_request, 5, 0);
        assert_eq!(none, TrafficBreakdown::default());
    }

    #[test]
    fn gemv_cache_dedupes_shapes() {
        let model = zoo::opt_6_7b();
        let mut sys = System::new(SystemConfig::cambricon_s());
        sys.decode_token(&model, 100);
        // OPT layers have 4 distinct shapes (h×h, 4h×h, h×4h) + lm_head.
        assert!(sys.gemv_cache.len() <= 5, "{}", sys.gemv_cache.len());
    }

    #[test]
    fn op_shape_collapses_labels_and_kinds() {
        // Wq and Wo share a matrix shape; a softmax and a norm over the
        // same element count share SFU time. Both collapse.
        let a = DecodeOp::WeightGemv {
            label: "Wq",
            rows: 4096,
            cols: 4096,
        };
        let b = DecodeOp::WeightGemv {
            label: "Wo",
            rows: 4096,
            cols: 4096,
        };
        assert_eq!(OpShape::of(&a), OpShape::of(&b));
        let c = DecodeOp::Special {
            kind: llm_workload::SpecialKind::Softmax,
            elems: 77,
        };
        let d = DecodeOp::Special {
            kind: llm_workload::SpecialKind::Norm,
            elems: 77,
        };
        assert_eq!(OpShape::of(&c), OpShape::of(&d));
        assert_ne!(OpShape::of(&a), OpShape::of(&c));
    }

    #[test]
    fn op_cost_cache_memoizes_decode_stream() {
        let model = zoo::opt_6_7b();
        let mut sys = System::new(SystemConfig::cambricon_s());
        sys.decode_token(&model, 100);
        let ops_per_token = 32 * 13 + 2; // OPT-6.7B: 32 layers x 13 ops + norm + head
        let cache = sys.op_cost_cache();
        assert_eq!(cache.stats().lookups(), ops_per_token);
        // A dozen distinct shapes price the whole token.
        assert!(cache.misses() <= 12, "{}", cache.misses());
        assert_eq!(cache.len() as u64, cache.misses());
        assert!(cache.hits() > 300);
        // Replaying the token is pure recall.
        let misses_before = cache.misses();
        sys.decode_token(&model, 100);
        assert_eq!(sys.op_cost_cache().misses(), misses_before);
    }

    #[test]
    fn cached_op_cost_is_identical_to_derived() {
        let model = zoo::opt_13b();
        let step = decode_step(&model, Quant::W8A8, 500);
        let mut cold = System::new(SystemConfig::cambricon_s());
        let mut warm = System::new(SystemConfig::cambricon_s());
        for op in &step.ops {
            warm.op_cost(op);
        }
        for op in &step.ops {
            assert_eq!(cold.op_cost(op), warm.op_cost(op));
        }
    }

    #[test]
    fn planned_decode_matches_eager_decode() {
        use llm_workload::TokenPlan;
        let model = zoo::llama2_7b();
        let plan = TokenPlan::new(&model, Quant::W8A8);
        let mut a = System::new(SystemConfig::cambricon_s());
        let mut b = System::new(SystemConfig::cambricon_s());
        let eager = a.decode_token(&model, 777);
        let planned = b.decode_token_planned(&plan, 777);
        assert_eq!(eager, planned);
    }

    #[test]
    #[should_panic(expected = "quantization")]
    fn planned_decode_rejects_quant_mismatch() {
        use llm_workload::TokenPlan;
        let model = zoo::llama2_7b();
        let plan = TokenPlan::new(&model, Quant::W4A16);
        let mut sys = System::new(SystemConfig::cambricon_s());
        sys.decode_token_planned(&plan, 100);
    }
}
