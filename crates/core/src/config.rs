//! System configurations (Table II).

use flash_sim::{EngineConfig, SlicePolicy, Topology};
use llm_workload::Quant;
use npu_sim::NpuConfig;
use tiling::{Strategy, TileShape};

/// A complete Cambricon-LLM system configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Display name ("Cambricon-LLM-S", ...).
    pub name: &'static str,
    /// Flash engine configuration (topology, timing, core, slicing).
    pub engine: EngineConfig,
    /// NPU configuration.
    pub npu: NpuConfig,
    /// Quantization scheme.
    pub quant: Quant,
    /// GeMV distribution strategy.
    pub strategy: Strategy,
    /// Optional tile-shape override (Figure 13 ablation).
    pub tile_override: Option<TileShape>,
}

impl SystemConfig {
    /// Cambricon-LLM-S (Table II: 8 channels × 2 chips).
    pub fn cambricon_s() -> Self {
        Self::named("Cambricon-LLM-S", Topology::cambricon_s())
    }

    /// Cambricon-LLM-M (Table II: 16 channels × 4 chips).
    pub fn cambricon_m() -> Self {
        Self::named("Cambricon-LLM-M", Topology::cambricon_m())
    }

    /// Cambricon-LLM-L (Table II: 32 channels × 8 chips).
    pub fn cambricon_l() -> Self {
        Self::named("Cambricon-LLM-L", Topology::cambricon_l())
    }

    /// All three Table II variants.
    pub fn paper_variants() -> [SystemConfig; 3] {
        [
            Self::cambricon_s(),
            Self::cambricon_m(),
            Self::cambricon_l(),
        ]
    }

    /// A custom topology with paper-default everything else
    /// (Figure 15 sweeps).
    pub fn custom(channels: usize, chips_per_channel: usize) -> Self {
        Self::named("custom", Topology::custom(channels, chips_per_channel))
    }

    fn named(name: &'static str, topology: Topology) -> Self {
        SystemConfig {
            name,
            engine: EngineConfig::paper(topology),
            npu: NpuConfig::paper(),
            quant: Quant::W8A8,
            strategy: Strategy::HardwareAware,
            tile_override: None,
        }
    }

    /// Returns this config with a different quantization.
    pub fn with_quant(mut self, quant: Quant) -> Self {
        self.quant = quant;
        self
    }

    /// Returns this config with a different distribution strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns this config with slicing disabled (Figure 12 ablation).
    pub fn without_read_slice(mut self) -> Self {
        self.engine.slice = SlicePolicy::Unsliced;
        self
    }

    /// Returns this config with a fixed tile shape (Figure 13 ablation).
    pub fn with_tile(mut self, tile: TileShape) -> Self {
        self.tile_override = Some(tile);
        self
    }

    /// The tiling-model inputs implied by this configuration.
    pub fn alpha_inputs(&self) -> tiling::AlphaInputs {
        tiling::AlphaInputs {
            topology: self.engine.topology,
            timing: self.engine.timing,
            core: self.engine.core,
            slice: self.engine.slice,
            act_bytes: (self.quant.act_bits() / 8) as usize,
            weight_bits: self.quant.weight_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variants_match_table_ii() {
        let [s, m, l] = SystemConfig::paper_variants();
        assert_eq!(s.engine.topology.channels, 8);
        assert_eq!(m.engine.topology.channels, 16);
        assert_eq!(l.engine.topology.channels, 32);
        for c in [s, m, l] {
            assert_eq!(c.quant, Quant::W8A8);
            assert_eq!(c.strategy, Strategy::HardwareAware);
            assert!(c.engine.slice.is_sliced());
            assert!(c.tile_override.is_none());
        }
    }

    #[test]
    fn builders_apply() {
        let c = SystemConfig::cambricon_s()
            .with_quant(Quant::W4A16)
            .without_read_slice()
            .with_strategy(Strategy::FlashOnly)
            .with_tile(TileShape {
                h_req: 128,
                w_req: 4096,
            });
        assert_eq!(c.quant, Quant::W4A16);
        assert!(!c.engine.slice.is_sliced());
        assert_eq!(c.strategy, Strategy::FlashOnly);
        assert!(c.tile_override.is_some());
    }

    #[test]
    fn alpha_inputs_reflect_quant() {
        let c = SystemConfig::cambricon_s().with_quant(Quant::W4A16);
        let inp = c.alpha_inputs();
        assert_eq!(inp.weight_bits, 4);
        assert_eq!(inp.act_bytes, 2);
    }
}
