//! Compute-core area/power model (Table IV).
//!
//! The paper synthesized the core in Verilog at TSMC 65 nm; we expose a
//! component-level analytic model whose per-unit constants are fitted to
//! Table IV, so the 1.2% area and 4.5% power overheads are *recomputed*
//! from the configuration rather than hard-coded. (Table IV's printed
//! buffer area of 58755.1 µm² is inconsistent with its own 39813.5 µm²
//! total; the component sum identifies it as a typo for ≈38755 µm²,
//! which the model reproduces.)

use flash_sim::CoreParams;

/// Area/power of one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Area in µm² (TSMC 65 nm).
    pub area_um2: f64,
    /// Power in µW.
    pub power_uw: f64,
}

/// Per-unit constants at TSMC 65 nm, fitted to Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// SRAM buffer area per byte (µm²/B).
    pub sram_um2_per_byte: f64,
    /// SRAM buffer power per byte (µW/B).
    pub sram_uw_per_byte: f64,
    /// Area per INT8 MAC unit incl. accumulator (µm²).
    pub mac_um2: f64,
    /// Power per MAC at the paper's clock (µW).
    pub mac_uw: f64,
    /// Error Correction Unit area (µm²): comparators, vote logic,
    /// Hamming decoder, threshold registers.
    pub ecu_um2: f64,
    /// ECU power (µW).
    pub ecu_uw: f64,
    /// Reference flash-die peripheral-logic area (µm²) against which the
    /// paper's 1.2% overhead is measured (inferred from Table IV).
    pub die_logic_area_um2: f64,
    /// Reference die power budget (µW) for the 4.5% figure.
    pub die_power_uw: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            sram_um2_per_byte: 38755.1 / 2048.0, // fitted to Table IV buffers
            sram_uw_per_byte: 1591.7 / 2048.0,
            mac_um2: 281.0,
            mac_uw: 171.8,
            ecu_um2: 496.4,
            ecu_uw: 0.4,
            die_logic_area_um2: 39813.5 / 0.012,
            die_power_uw: 1935.6 / 0.045,
        }
    }
}

/// The Table IV breakdown for a compute-core configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreAreaReport {
    /// Per-component rows (ECU, PEs, buffers).
    pub components: Vec<Component>,
    /// Total core area (µm²).
    pub total_area_um2: f64,
    /// Total core power (µW).
    pub total_power_uw: f64,
    /// Area overhead fraction vs. the die logic budget.
    pub area_overhead: f64,
    /// Power overhead fraction vs. the die power budget.
    pub power_overhead: f64,
}

impl AreaModel {
    /// Evaluates the model for a core configuration.
    pub fn report(&self, core: &CoreParams) -> CoreAreaReport {
        let buffer_bytes = (core.input_buf_bytes + core.output_buf_bytes) as f64;
        let components = vec![
            Component {
                name: "Error Correction Unit",
                area_um2: self.ecu_um2,
                power_uw: self.ecu_uw,
            },
            Component {
                name: "PEs",
                area_um2: self.mac_um2 * core.macs as f64,
                power_uw: self.mac_uw * core.macs as f64,
            },
            Component {
                name: "Input/Output Buffers",
                area_um2: self.sram_um2_per_byte * buffer_bytes,
                power_uw: self.sram_uw_per_byte * buffer_bytes,
            },
        ];
        let total_area_um2: f64 = components.iter().map(|c| c.area_um2).sum();
        let total_power_uw: f64 = components.iter().map(|c| c.power_uw).sum();
        CoreAreaReport {
            area_overhead: total_area_um2 / self.die_logic_area_um2,
            power_overhead: total_power_uw / self.die_power_uw,
            components,
            total_area_um2,
            total_power_uw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_table_iv() {
        let rep = AreaModel::default().report(&CoreParams::paper());
        // Totals within 2% of the paper's 39813.5 µm² / 1935.6 µW.
        assert!(
            (rep.total_area_um2 - 39813.5).abs() / 39813.5 < 0.02,
            "{}",
            rep.total_area_um2
        );
        assert!(
            (rep.total_power_uw - 1935.6).abs() / 1935.6 < 0.02,
            "{}",
            rep.total_power_uw
        );
        // Overheads match the paper's 1.2% / 4.5%.
        assert!(
            (rep.area_overhead - 0.012).abs() < 0.002,
            "{}",
            rep.area_overhead
        );
        assert!(
            (rep.power_overhead - 0.045).abs() < 0.005,
            "{}",
            rep.power_overhead
        );
    }

    #[test]
    fn buffers_dominate_area() {
        // The paper: "the primary contributors to overhead are input
        // buffer and output buffer".
        let rep = AreaModel::default().report(&CoreParams::paper());
        let buffers = rep
            .components
            .iter()
            .find(|c| c.name.contains("Buffers"))
            .unwrap();
        assert!(buffers.area_um2 > 0.9 * (rep.total_area_um2 - buffers.area_um2) * 9.0);
    }

    #[test]
    fn ecu_is_tiny() {
        let rep = AreaModel::default().report(&CoreParams::paper());
        let ecu = rep
            .components
            .iter()
            .find(|c| c.name.contains("Error"))
            .unwrap();
        assert!(ecu.area_um2 / rep.total_area_um2 < 0.02);
        assert!(ecu.power_uw < 1.0);
    }

    #[test]
    fn bigger_buffers_cost_area() {
        let model = AreaModel::default();
        let small = model.report(&CoreParams::paper());
        let big_core = CoreParams {
            input_buf_bytes: 4096,
            output_buf_bytes: 4096,
            ..CoreParams::paper()
        };
        let big = model.report(&big_core);
        assert!(big.total_area_um2 > 3.0 * small.total_area_um2);
    }
}
