//! Prefill-phase model (extension beyond the paper's decode focus).
//!
//! §II-A: prefill processes all `m` prompt tokens in parallel, reusing
//! each weight tile across the whole batch — intensity rises to ~2·m and
//! the workload turns compute-bound on the NPU. Cambricon-LLM handles
//! prefill by streaming weights once while the NPU applies them to the
//! full token block (the flash cores' GeMV path is vector-only, so
//! prefill GeMM runs on the NPU).
//!
//! The weight stream runs at the device's **effective** plain-read
//! bandwidth ([`System::effective_read_bandwidth`]): each page read
//! pays its per-chunk command cycles on the channel bus, so the
//! sustained rate sits below the raw bus rate. An earlier revision
//! derived those rates and then discarded them, streaming at the raw
//! rate — the pinned tests below keep the effective rate wired in.
//!
//! This module is the standalone entry point; the serving engine
//! ([`crate::serve`]) prices the same phase through the same
//! [`System::prefill_cost`], so a request's in-engine prefill and this
//! report always agree.

use crate::config::SystemConfig;
use crate::reliability::{page_fail_prob, FaultConfig};
use crate::system::{PrefillCost, System};
use llm_workload::{ModelSpec, PrefillPlan};
use sim_core::SimTime;

/// Why a prefill request could not be priced.
///
/// The serving path must not be panickable from a trace, so malformed
/// prompts surface as typed errors instead of asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillError {
    /// The prompt holds no tokens: there is nothing to prefill. (The
    /// serving engine treats such requests as decode-only and skips the
    /// phase; see the pinned empty-prompt admission tests.)
    EmptyPrompt,
}

impl std::fmt::Display for PrefillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefillError::EmptyPrompt => write!(f, "empty prompt: nothing to prefill"),
        }
    }
}

impl std::error::Error for PrefillError {}

/// Prefill timing for an `m`-token prompt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillReport {
    /// Prompt length.
    pub prompt_tokens: usize,
    /// Total prefill latency.
    pub total: SimTime,
    /// Time to first token implied (= prefill latency).
    pub ttft_s: f64,
    /// Weight-stream time at the effective read bandwidth.
    pub stream_s: f64,
    /// NPU-side compute time (GeMMs + attention + SFU + KV writes).
    pub compute_s: f64,
    /// The attention (KV) share of `compute_s` — nonzero even for a
    /// 1-token prompt (regression-pinned).
    pub kv_compute_s: f64,
    /// Whether the phase was compute-bound (vs. weight-stream-bound).
    pub compute_bound: bool,
}

impl PrefillReport {
    fn from_cost(prompt_tokens: usize, cost: PrefillCost) -> Self {
        PrefillReport {
            prompt_tokens,
            total: cost.total,
            ttft_s: cost.total.as_secs_f64(),
            stream_s: cost.stream.as_secs_f64(),
            compute_s: cost.compute.as_secs_f64(),
            kv_compute_s: cost.kv_compute.as_secs_f64(),
            compute_bound: cost.compute_bound,
        }
    }
}

/// Estimates prefill latency: weights stream from flash once at the
/// effective plain-read bandwidth (no read-compute — the on-die cores
/// only do GeMV) while the NPU runs the `m`-wide GeMMs.
///
/// # Errors
///
/// [`PrefillError::EmptyPrompt`] if `prompt_tokens == 0`.
pub fn prefill(
    cfg: &SystemConfig,
    model: &ModelSpec,
    prompt_tokens: usize,
) -> Result<PrefillReport, PrefillError> {
    if prompt_tokens == 0 {
        return Err(PrefillError::EmptyPrompt);
    }
    let plan = PrefillPlan::new(model, cfg.quant);
    let mut system = System::new(*cfg);
    let cost = system.prefill_cost(&plan, prompt_tokens);
    Ok(PrefillReport::from_cost(prompt_tokens, cost))
}

/// Expected multiplicative stretch of flash read time under `faults`:
/// `1 + Σ_j mult^(j-1) · Π_{i<j} p_fail(rber / 2^i)` over the
/// escalation ladder — each reread attempt's cost weighted by the
/// probability of reaching it. This is the closed-form counterpart of
/// the serving engine's sampled injection
/// ([`ServeEngine::with_faults`](crate::serve::ServeEngine::with_faults));
/// for large read volumes the sampled stretch converges to this value.
pub fn expected_read_inflation(cfg: &SystemConfig, faults: &FaultConfig) -> f64 {
    let page_bits = (cfg.engine.topology.page_bytes as u64) * 8;
    let rber = faults.ber.rber(&faults.age);
    let mut inflation = 1.0;
    let mut reach = 1.0; // probability a page reaches attempt j
    for j in 1..=faults.max_rereads {
        let prior = rber / (1u64 << (j - 1)) as f64;
        reach *= page_fail_prob(prior, page_bits, faults.correctable_rber);
        if reach <= 0.0 {
            break;
        }
        inflation += reach * faults.escalate_latency_mult.powi(j as i32 - 1);
    }
    inflation
}

/// Analytic fault-aware prefill: the same pricing as [`prefill`], with
/// the weight stream stretched by [`expected_read_inflation`] (NPU
/// compute is unaffected — faults cost flash time only). No sampling:
/// use this for closed-form TTFT-vs-wear curves; use the serving
/// engine's [`FaultMode`](crate::reliability::FaultMode) when the
/// variance matters.
///
/// # Errors
///
/// [`PrefillError::EmptyPrompt`] if `prompt_tokens == 0`.
pub fn prefill_with_faults(
    cfg: &SystemConfig,
    model: &ModelSpec,
    prompt_tokens: usize,
    faults: &FaultConfig,
) -> Result<PrefillReport, PrefillError> {
    let base = prefill(cfg, model, prompt_tokens)?;
    let stream_s = base.stream_s * expected_read_inflation(cfg, faults);
    let total_s = stream_s.max(base.compute_s);
    Ok(PrefillReport {
        stream_s,
        ttft_s: total_s,
        total: SimTime::from_secs_f64(total_s),
        compute_bound: base.compute_s > stream_s,
        ..base
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn short_prompts_are_stream_bound() {
        let r = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 8).unwrap();
        assert!(!r.compute_bound);
        // Streaming 6.7 GB over ~7.5 GB/s effective ≈ 0.9 s.
        assert!((0.5..1.5).contains(&r.ttft_s), "{}", r.ttft_s);
    }

    #[test]
    fn long_prompts_become_compute_bound() {
        let short = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 8).unwrap();
        let long = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 2000).unwrap();
        assert!(long.compute_bound);
        assert!(long.ttft_s > short.ttft_s);
    }

    #[test]
    fn prefill_beats_decoding_token_by_token() {
        // The whole point of the phase split: m tokens via prefill must
        // be far cheaper than m sequential decode steps.
        let cfg = SystemConfig::cambricon_s();
        let model = zoo::opt_6_7b();
        let m = 256;
        let pre = prefill(&cfg, &model, m).unwrap();
        let mut sys = crate::system::System::new(cfg);
        let per_token = sys.decode_token(&model, m).total.as_secs_f64();
        assert!(pre.ttft_s < 0.3 * per_token * m as f64);
    }

    #[test]
    fn zero_prompt_is_a_typed_error_not_a_panic() {
        // The serving path prices prefill from trace-supplied shapes,
        // so an empty prompt must be a value, not an assert.
        assert_eq!(
            prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 0),
            Err(PrefillError::EmptyPrompt)
        );
        assert!(!PrefillError::EmptyPrompt.to_string().is_empty());
    }

    #[test]
    fn one_token_prompt_has_nonzero_attention_cost() {
        // Regression: `ops * m / 2` truncated to zero at m = 1, erasing
        // the KV term from the shortest prompts.
        let r = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 1).unwrap();
        assert!(r.kv_compute_s > 0.0, "m=1 attention cost truncated away");
        assert!(r.compute_s > r.kv_compute_s);
    }

    #[test]
    fn fresh_chip_prefill_is_fault_free() {
        // At fresh wear the page-fail probability is ~1e-44: the
        // expected inflation is 1.0 to machine precision, and the
        // fault-aware report matches the plain one bit for bit.
        let cfg = SystemConfig::cambricon_s();
        let fc = FaultConfig::default();
        assert_eq!(expected_read_inflation(&cfg, &fc), 1.0);
        assert_eq!(
            prefill_with_faults(&cfg, &zoo::opt_6_7b(), 64, &fc).unwrap(),
            prefill(&cfg, &zoo::opt_6_7b(), 64).unwrap()
        );
    }

    #[test]
    fn worn_chip_stretches_the_stream_not_the_compute() {
        use flash_sim::FlashAge;
        let cfg = SystemConfig::cambricon_s();
        let model = zoo::opt_6_7b();
        let fc = FaultConfig::aged(FlashAge::worn_out());
        let infl = expected_read_inflation(&cfg, &fc);
        assert!(infl > 1.0, "worn chip must inflate reads, got {infl}");
        // Bounded: the ladder sums at most Σ mult^(j-1) extra reads.
        let cap = 1.0
            + (0..fc.max_rereads)
                .map(|j| fc.escalate_latency_mult.powi(j as i32))
                .sum::<f64>();
        assert!(infl <= cap, "{infl} > {cap}");
        let plain = prefill(&cfg, &model, 8).unwrap();
        let worn = prefill_with_faults(&cfg, &model, 8, &fc).unwrap();
        assert!(worn.stream_s > plain.stream_s);
        assert_eq!(worn.compute_s, plain.compute_s);
        assert!(worn.ttft_s >= plain.ttft_s);
    }

    #[test]
    fn stream_runs_at_the_effective_read_bandwidth() {
        // Pins the bandwidth-satellite fix: the weight stream uses the
        // tiling-derived effective rate (per-page command + slice
        // overhead included), which sits strictly below the raw bus
        // rate the old code used — so the stream is strictly slower
        // than raw division would predict, and exactly as fast as the
        // effective rate predicts.
        let cfg = SystemConfig::cambricon_s();
        let model = zoo::opt_6_7b();
        let r = prefill(&cfg, &model, 8).unwrap();
        let plan = PrefillPlan::new(&model, cfg.quant);
        let mut sys = System::new(cfg);
        let eff = sys.effective_read_bandwidth();
        let raw = cfg.alpha_inputs().timing.channel_bytes_per_sec as f64
            * cfg.alpha_inputs().topology.channels as f64;
        assert!(eff < raw, "effective {eff} not below raw {raw}");
        let expect = plan.weight_bytes() as f64 / eff;
        assert!(
            (r.stream_s - expect).abs() < 1e-9,
            "{} vs {expect}",
            r.stream_s
        );
        assert!(r.stream_s > plan.weight_bytes() as f64 / raw);
    }
}
