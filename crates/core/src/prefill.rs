//! Prefill-phase model (extension beyond the paper's decode focus).
//!
//! §II-A: prefill processes all `m` prompt tokens in parallel, reusing
//! each weight tile across the whole batch — intensity rises to ~2·m and
//! the workload turns compute-bound on the NPU. Cambricon-LLM handles
//! prefill by streaming weights once while the NPU applies them to the
//! full token block (the flash cores' GeMV path is vector-only, so
//! prefill GeMM runs on the NPU).

use crate::config::SystemConfig;
use llm_workload::{decode_step, DecodeOp, ModelSpec};
use npu_sim::NpuModel;
use sim_core::SimTime;
use tiling::effective_rates;

/// Prefill timing for an `m`-token prompt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillReport {
    /// Prompt length.
    pub prompt_tokens: usize,
    /// Total prefill latency.
    pub total: SimTime,
    /// Time to first token implied (= prefill latency).
    pub ttft_s: f64,
    /// Whether the phase was compute-bound (vs. weight-stream-bound).
    pub compute_bound: bool,
}

/// Estimates prefill latency: weights stream from flash once (plain
/// reads at full channel bandwidth; no read-compute, since the on-die
/// cores only do GeMV) while the NPU runs the `m`-wide GeMMs.
pub fn prefill(cfg: &SystemConfig, model: &ModelSpec, prompt_tokens: usize) -> PrefillReport {
    assert!(prompt_tokens > 0, "empty prompt");
    let npu = NpuModel::new(cfg.npu);
    let inp = cfg.alpha_inputs();
    let tile = cfg
        .tile_override
        .unwrap_or_else(|| tiling::optimal_tile(&inp.topology, inp.weight_bits));
    let rates = effective_rates(&inp, tile);
    // Full channel bandwidth is available to plain reads during prefill.
    let stream_bw = inp.timing.channel_bytes_per_sec as f64 * inp.topology.channels as f64;
    let _ = rates;

    let step = decode_step(model, cfg.quant, prompt_tokens.saturating_sub(1));
    let weight_bytes = step.total_weight_bytes();
    let stream_s = weight_bytes as f64 / stream_bw;

    // NPU compute: every op of the step × m tokens (GeMVs become GeMMs).
    let mut compute = SimTime::ZERO;
    let m = prompt_tokens as u64;
    for op in &step.ops {
        match op {
            DecodeOp::WeightGemv { rows, cols, .. } => {
                compute += npu.compute_time(2 * *rows as u64 * *cols as u64 * m);
            }
            DecodeOp::KvMatVec {
                ops, dram_bytes, ..
            } => {
                // Attention over the growing prefix ≈ half the full-length
                // cost per token on average.
                compute += npu.kv_op_time(ops * m / 2, dram_bytes * m / 2);
            }
            DecodeOp::Special { elems, .. } => {
                compute += npu.sfu_time(elems * m);
            }
            DecodeOp::KvAppend { bytes } => {
                compute += npu.dram_write_time(bytes * m);
            }
        }
    }
    let compute_s = compute.as_secs_f64();
    let total_s = stream_s.max(compute_s);
    PrefillReport {
        prompt_tokens,
        total: SimTime::from_secs_f64(total_s),
        ttft_s: total_s,
        compute_bound: compute_s > stream_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn short_prompts_are_stream_bound() {
        let r = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 8);
        assert!(!r.compute_bound);
        // Streaming 6.7 GB over 8 GB/s ≈ 0.86 s.
        assert!((0.5..1.5).contains(&r.ttft_s), "{}", r.ttft_s);
    }

    #[test]
    fn long_prompts_become_compute_bound() {
        let short = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 8);
        let long = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 2000);
        assert!(long.compute_bound);
        assert!(long.ttft_s > short.ttft_s);
    }

    #[test]
    fn prefill_beats_decoding_token_by_token() {
        // The whole point of the phase split: m tokens via prefill must
        // be far cheaper than m sequential decode steps.
        let cfg = SystemConfig::cambricon_s();
        let model = zoo::opt_6_7b();
        let m = 256;
        let pre = prefill(&cfg, &model, m);
        let mut sys = crate::system::System::new(cfg);
        let per_token = sys.decode_token(&model, m).total.as_secs_f64();
        assert!(pre.ttft_s < 0.3 * per_token * m as f64);
    }

    #[test]
    #[should_panic(expected = "empty prompt")]
    fn zero_prompt_panics() {
        prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 0);
    }
}
