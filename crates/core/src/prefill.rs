//! Prefill-phase model (extension beyond the paper's decode focus).
//!
//! §II-A: prefill processes all `m` prompt tokens in parallel, reusing
//! each weight tile across the whole batch — intensity rises to ~2·m and
//! the workload turns compute-bound on the NPU. Cambricon-LLM handles
//! prefill by streaming weights once while the NPU applies them to the
//! full token block (the flash cores' GeMV path is vector-only, so
//! prefill GeMM runs on the NPU).
//!
//! The weight stream runs at the device's **effective** plain-read
//! bandwidth ([`System::effective_read_bandwidth`]): each page read
//! pays its per-chunk command cycles on the channel bus, so the
//! sustained rate sits below the raw bus rate. An earlier revision
//! derived those rates and then discarded them, streaming at the raw
//! rate — the pinned tests below keep the effective rate wired in.
//!
//! This module is the standalone entry point; the serving engine
//! ([`crate::serve`]) prices the same phase through the same
//! [`System::prefill_cost`], so a request's in-engine prefill and this
//! report always agree.

use crate::config::SystemConfig;
use crate::system::{PrefillCost, System};
use llm_workload::{ModelSpec, PrefillPlan};
use sim_core::SimTime;

/// Why a prefill request could not be priced.
///
/// The serving path must not be panickable from a trace, so malformed
/// prompts surface as typed errors instead of asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillError {
    /// The prompt holds no tokens: there is nothing to prefill. (The
    /// serving engine treats such requests as decode-only and skips the
    /// phase; see the pinned empty-prompt admission tests.)
    EmptyPrompt,
}

impl std::fmt::Display for PrefillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrefillError::EmptyPrompt => write!(f, "empty prompt: nothing to prefill"),
        }
    }
}

impl std::error::Error for PrefillError {}

/// Prefill timing for an `m`-token prompt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefillReport {
    /// Prompt length.
    pub prompt_tokens: usize,
    /// Total prefill latency.
    pub total: SimTime,
    /// Time to first token implied (= prefill latency).
    pub ttft_s: f64,
    /// Weight-stream time at the effective read bandwidth.
    pub stream_s: f64,
    /// NPU-side compute time (GeMMs + attention + SFU + KV writes).
    pub compute_s: f64,
    /// The attention (KV) share of `compute_s` — nonzero even for a
    /// 1-token prompt (regression-pinned).
    pub kv_compute_s: f64,
    /// Whether the phase was compute-bound (vs. weight-stream-bound).
    pub compute_bound: bool,
}

impl PrefillReport {
    fn from_cost(prompt_tokens: usize, cost: PrefillCost) -> Self {
        PrefillReport {
            prompt_tokens,
            total: cost.total,
            ttft_s: cost.total.as_secs_f64(),
            stream_s: cost.stream.as_secs_f64(),
            compute_s: cost.compute.as_secs_f64(),
            kv_compute_s: cost.kv_compute.as_secs_f64(),
            compute_bound: cost.compute_bound,
        }
    }
}

/// Estimates prefill latency: weights stream from flash once at the
/// effective plain-read bandwidth (no read-compute — the on-die cores
/// only do GeMV) while the NPU runs the `m`-wide GeMMs.
///
/// # Errors
///
/// [`PrefillError::EmptyPrompt`] if `prompt_tokens == 0`.
pub fn prefill(
    cfg: &SystemConfig,
    model: &ModelSpec,
    prompt_tokens: usize,
) -> Result<PrefillReport, PrefillError> {
    if prompt_tokens == 0 {
        return Err(PrefillError::EmptyPrompt);
    }
    let plan = PrefillPlan::new(model, cfg.quant);
    let mut system = System::new(*cfg);
    let cost = system.prefill_cost(&plan, prompt_tokens);
    Ok(PrefillReport::from_cost(prompt_tokens, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn short_prompts_are_stream_bound() {
        let r = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 8).unwrap();
        assert!(!r.compute_bound);
        // Streaming 6.7 GB over ~7.5 GB/s effective ≈ 0.9 s.
        assert!((0.5..1.5).contains(&r.ttft_s), "{}", r.ttft_s);
    }

    #[test]
    fn long_prompts_become_compute_bound() {
        let short = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 8).unwrap();
        let long = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 2000).unwrap();
        assert!(long.compute_bound);
        assert!(long.ttft_s > short.ttft_s);
    }

    #[test]
    fn prefill_beats_decoding_token_by_token() {
        // The whole point of the phase split: m tokens via prefill must
        // be far cheaper than m sequential decode steps.
        let cfg = SystemConfig::cambricon_s();
        let model = zoo::opt_6_7b();
        let m = 256;
        let pre = prefill(&cfg, &model, m).unwrap();
        let mut sys = crate::system::System::new(cfg);
        let per_token = sys.decode_token(&model, m).total.as_secs_f64();
        assert!(pre.ttft_s < 0.3 * per_token * m as f64);
    }

    #[test]
    fn zero_prompt_is_a_typed_error_not_a_panic() {
        // The serving path prices prefill from trace-supplied shapes,
        // so an empty prompt must be a value, not an assert.
        assert_eq!(
            prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 0),
            Err(PrefillError::EmptyPrompt)
        );
        assert!(!PrefillError::EmptyPrompt.to_string().is_empty());
    }

    #[test]
    fn one_token_prompt_has_nonzero_attention_cost() {
        // Regression: `ops * m / 2` truncated to zero at m = 1, erasing
        // the KV term from the shortest prompts.
        let r = prefill(&SystemConfig::cambricon_s(), &zoo::opt_6_7b(), 1).unwrap();
        assert!(r.kv_compute_s > 0.0, "m=1 attention cost truncated away");
        assert!(r.compute_s > r.kv_compute_s);
    }

    #[test]
    fn stream_runs_at_the_effective_read_bandwidth() {
        // Pins the bandwidth-satellite fix: the weight stream uses the
        // tiling-derived effective rate (per-page command + slice
        // overhead included), which sits strictly below the raw bus
        // rate the old code used — so the stream is strictly slower
        // than raw division would predict, and exactly as fast as the
        // effective rate predicts.
        let cfg = SystemConfig::cambricon_s();
        let model = zoo::opt_6_7b();
        let r = prefill(&cfg, &model, 8).unwrap();
        let plan = PrefillPlan::new(&model, cfg.quant);
        let mut sys = System::new(cfg);
        let eff = sys.effective_read_bandwidth();
        let raw = cfg.alpha_inputs().timing.channel_bytes_per_sec as f64
            * cfg.alpha_inputs().topology.channels as f64;
        assert!(eff < raw, "effective {eff} not below raw {raw}");
        let expect = plan.weight_bytes() as f64 / eff;
        assert!(
            (r.stream_s - expect).abs() < 1e-9,
            "{} vs {expect}",
            r.stream_s
        );
        assert!(r.stream_s > plan.weight_bytes() as f64 / raw);
    }
}
