//! # cambricon-llm — the paper's primary contribution, end to end
//!
//! A chiplet-based hybrid architecture: an edge NPU plus a NAND flash
//! chip with on-die compute cores, cooperating on single-batch LLM
//! decode (Yu et al., *Cambricon-LLM*, MICRO 2024). This crate composes
//! the substrate crates into the full system:
//!
//! * [`config`] — Table II system configurations (S/M/L + ablations);
//! * [`system`] — the per-token decode simulator (weight GeMVs on
//!   flash+NPU via hardware-aware tiling, KV work on NPU/DRAM, SFU ops);
//! * [`serve`] — the multi-request serving engine (request queue,
//!   FCFS/round-robin scheduling, fleet-shared GeMV memoization);
//! * [`fleet`] — N device replicas behind a cluster router with an
//!   explicit interconnect, merged into cluster-level percentiles;
//! * [`energy`] — the Figure 16 data-movement energy model;
//! * [`cost`] / [`area`] — Tables I/IV/V (BOM cost, compute-core area);
//! * [`roofline`] — Figures 1(a)/3(a);
//! * [`prefill`] — prefill/TTFT model (extension);
//! * [`reliability`] — fault-injected serving, deadlines, and wear
//!   trajectories (extension).
//!
//! ## Quickstart
//!
//! ```
//! use cambricon_llm::{System, SystemConfig};
//! use llm_workload::zoo;
//!
//! let mut sys = System::new(SystemConfig::cambricon_l());
//! let speed = sys.decode_speed(&zoo::llama2_70b(), 1000);
//! // The headline result: ~3.4 tokens/s for a 70B model on device.
//! assert!(speed > 2.0, "{speed}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod config;
pub mod cost;
pub mod energy;
pub mod fleet;
pub mod functional;
pub mod montecarlo;
pub mod prefill;
pub mod reliability;
pub mod roofline;
pub mod serve;
pub mod sweep;
pub mod system;
pub mod validate;

pub use area::{AreaModel, CoreAreaReport};
pub use config::SystemConfig;
pub use cost::{cambricon_bom, table_i, traditional_bom, Bom, Prices};
pub use energy::EnergyModel;
pub use fleet::{FleetEngine, FleetReport, Interconnect, RouterPolicy};
pub use functional::{gemv_through_flash, reference_gemv, FunctionalResult};
pub use montecarlo::{MonteCarlo, MonteCarloReport};
pub use prefill::{
    expected_read_inflation, prefill, prefill_with_faults, PrefillError, PrefillReport,
};
pub use reliability::{
    page_fail_prob, FaultConfig, FaultMode, ReliabilitySummary, WearPoint, WearReport,
    WearTrajectory,
};
pub use roofline::{attainable_gops, cambricon_point, smartphone_npu_point, RooflinePoint};
pub use serve::{
    DeviceEngine, PrefillMode, RequestQueue, RequestReport, SchedulePolicy, ServeEngine,
    ServeReport, SpanMode,
};
pub use sweep::{smallest_config_reaching, sweep_channels, sweep_chips, SweepPoint};
pub use system::{GemvCache, OpClass, OpCost, PrefillCost, System, TokenReport, TrafficBreakdown};
pub use validate::{cross_check, CrossCheck};
