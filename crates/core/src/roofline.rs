//! Roofline analysis (Figures 1(a) and 3(a)).
//!
//! The roofline bounds attainable performance at
//! `min(peak_compute, intensity × bandwidth)`. For a 70B-class model the
//! weights cannot live in phone DRAM, so a smartphone NPU's *real*
//! weight path is UFS flash (~4 GB/s) — point A of Figure 3(a) sits at
//! intensity ≈ 2 on that roofline. Cambricon-LLM's in-flash compute
//! shrinks the data that must cross to the NPU, simultaneously raising
//! the effective intensity *at the chiplet boundary* and the aggregate
//! weight-consumption rate — moving the system to point B.

use crate::config::SystemConfig;
use tiling::{effective_rates, optimal_tile};

/// A labelled roofline point.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label ("Smartphone NPU", "Cambricon-LLM-S", ...).
    pub name: String,
    /// Arithmetic intensity in ops/byte (at the bottleneck boundary).
    pub intensity: f64,
    /// Attainable performance in GOPS.
    pub gops: f64,
}

/// Attainable performance under a roofline.
pub fn attainable_gops(peak_gops: f64, bw_gb_per_s: f64, intensity: f64) -> f64 {
    (intensity * bw_gb_per_s).min(peak_gops)
}

/// Point A of Figure 3(a): a smartphone NPU (~17 TOPS peak) whose
/// weights stream over UFS 4.0 (~4 GB/s) because a 70B model cannot fit
/// in DRAM. (§I: UFS offloading caps decode at ~0.06 tok/s.)
pub fn smartphone_npu_point(intensity: f64) -> RooflinePoint {
    RooflinePoint {
        name: "Smartphone NPU (weights via UFS 4.0)".into(),
        intensity,
        gops: attainable_gops(17_000.0, 4.0, intensity),
    }
}

/// A smartphone NPU with the model fully DRAM-resident (only possible
/// below ~7B at 4-bit): LPDDR5 at ~51 GB/s.
pub fn smartphone_dram_point(intensity: f64) -> RooflinePoint {
    RooflinePoint {
        name: "Smartphone NPU (weights in DRAM)".into(),
        intensity,
        gops: attainable_gops(17_000.0, 51.0, intensity),
    }
}

/// Point B of Figure 3(a): a Cambricon-LLM configuration. In-flash
/// compute consumes most weight bytes on-die, so the D2D boundary sees
/// `algorithmic intensity × (weights consumed / bytes crossing)` —
/// a much higher effective intensity — while the attainable rate is the
/// aggregate flash consumption rate times the algorithmic intensity.
pub fn cambricon_point(cfg: &SystemConfig, intensity: f64) -> RooflinePoint {
    let inp = cfg.alpha_inputs();
    let tile = cfg
        .tile_override
        .unwrap_or_else(|| optimal_tile(&inp.topology, inp.weight_bits));
    let rates = effective_rates(&inp, tile);
    let topo = &inp.topology;
    let cc = topo.compute_cores_per_channel() as f64;
    let page = topo.page_bytes as f64;

    // Per round and channel: (cc + reads) pages of weights consumed;
    // crossing the boundary: read pages + input + results.
    let weights_per_round = (cc + rates.reads_per_round) * page;
    let input_bytes = (tile.w_req / topo.channels * inp.act_bytes) as f64;
    let result_bytes = tile.h_req as f64 * inp.act_bytes as f64; // all cores
    let crossing_per_round = rates.reads_per_round * page + input_bytes + result_bytes;
    let eff_intensity = intensity * weights_per_round / crossing_per_round;

    let device_bw_gb = rates.channel_bytes_per_sec * topo.channels as f64 / 1e9;
    RooflinePoint {
        name: cfg.name.to_string(),
        intensity: eff_intensity,
        gops: attainable_gops(
            cfg.npu.peak_ops_per_sec() as f64 / 1e9,
            device_bw_gb,
            intensity,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_is_min_of_two_bounds() {
        assert_eq!(attainable_gops(100.0, 10.0, 2.0), 20.0); // bandwidth-bound
        assert_eq!(attainable_gops(100.0, 10.0, 50.0), 100.0); // compute-bound
    }

    #[test]
    fn cambricon_moves_the_point_up_and_right() {
        // Figure 3(a): B sits far above A in both intensity and GOPS.
        let a = smartphone_npu_point(2.0);
        let b = cambricon_point(&SystemConfig::cambricon_l(), 2.0);
        assert!(b.gops > 10.0 * a.gops, "A {} vs B {}", a.gops, b.gops);
        assert!(b.intensity > 2.0 * a.intensity, "{}", b.intensity);
    }

    #[test]
    fn even_cam_s_beats_dram_resident_npu_at_scale() {
        // For models that fit DRAM the phone NPU manages ~102 GOPS; all
        // Cambricon variants past S exceed it, and S approaches it while
        // holding 10× larger models.
        let dram = smartphone_dram_point(2.0);
        let m = cambricon_point(&SystemConfig::cambricon_m(), 2.0);
        assert!(m.gops > dram.gops, "{} vs {}", m.gops, dram.gops);
    }

    #[test]
    fn decode_is_bandwidth_bound_everywhere() {
        for cfg in SystemConfig::paper_variants() {
            let p = cambricon_point(&cfg, 2.0);
            assert!(p.gops < cfg.npu.peak_ops_per_sec() as f64 / 1e9);
        }
    }

    #[test]
    fn larger_configs_have_higher_points() {
        let s = cambricon_point(&SystemConfig::cambricon_s(), 2.0);
        let m = cambricon_point(&SystemConfig::cambricon_m(), 2.0);
        let l = cambricon_point(&SystemConfig::cambricon_l(), 2.0);
        assert!(s.gops < m.gops && m.gops < l.gops);
    }

    #[test]
    fn prefill_reaches_compute_bound() {
        // At prefill intensity (~hundreds), the NPU peak is the limit.
        let p = cambricon_point(&SystemConfig::cambricon_l(), 500.0);
        let peak = SystemConfig::cambricon_l().npu.peak_ops_per_sec() as f64 / 1e9;
        assert_eq!(p.gops, peak);
    }
}
