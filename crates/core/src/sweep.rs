//! Structured design-space sweeps (Figure 15 and §VIII-E).
//!
//! Design points are independent, so sweeps evaluate them in parallel
//! through [`sim_core::parallel_map`] — results come back in grid
//! order, identical to sequential evaluation, regardless of thread
//! scheduling. (The atomic-claim worker pool used to live here; it was
//! hoisted into `sim_core::parallel` so the Monte Carlo serving
//! harness shares the same deterministic fan-out.)

use crate::config::SystemConfig;
use crate::system::System;
use llm_workload::{ModelSpec, TokenPlan};
use sim_core::parallel_map;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Channels in the configuration.
    pub channels: usize,
    /// Chips per channel.
    pub chips_per_channel: usize,
    /// Decode speed in tokens/s.
    pub tokens_per_sec: f64,
    /// Mean channel utilization.
    pub channel_utilization: f64,
}

/// Sweeps chips-per-channel at a fixed channel count (Figure 15(a)/(c)).
pub fn sweep_chips(
    model: &ModelSpec,
    channels: usize,
    chips: &[usize],
    seq_len: usize,
) -> Vec<SweepPoint> {
    let grid: Vec<(usize, usize)> = chips.iter().map(|&c| (channels, c)).collect();
    evaluate_grid(model, &grid, seq_len)
}

/// Sweeps channel count at fixed chips per channel (Figure 15(b)/(d)).
pub fn sweep_channels(
    model: &ModelSpec,
    channel_counts: &[usize],
    chips_per_channel: usize,
    seq_len: usize,
) -> Vec<SweepPoint> {
    let grid: Vec<(usize, usize)> = channel_counts
        .iter()
        .map(|&ch| (ch, chips_per_channel))
        .collect();
    evaluate_grid(model, &grid, seq_len)
}

fn evaluate(model: &ModelSpec, channels: usize, chips: usize, seq_len: usize) -> SweepPoint {
    let cfg = SystemConfig::custom(channels, chips);
    evaluate_planned(&TokenPlan::new(model, cfg.quant), cfg, seq_len)
}

fn evaluate_planned(plan: &TokenPlan, cfg: SystemConfig, seq_len: usize) -> SweepPoint {
    let channels = cfg.engine.topology.channels;
    let chips = cfg.engine.topology.chips_per_channel;
    let mut sys = System::new(cfg);
    let rep = sys.decode_token_planned(plan, seq_len);
    SweepPoint {
        channels,
        chips_per_channel: chips,
        tokens_per_sec: rep.tokens_per_sec,
        channel_utilization: rep.channel_utilization,
    }
}

/// Evaluates every `(channels, chips)` point of `grid` in parallel,
/// returning results in grid order. The decode plan is built once and
/// shared (read-only) by every worker — design points vary the
/// hardware, not the workload.
fn evaluate_grid(model: &ModelSpec, grid: &[(usize, usize)], seq_len: usize) -> Vec<SweepPoint> {
    if grid.len() <= 1 {
        return grid
            .iter()
            .map(|&(ch, c)| evaluate(model, ch, c, seq_len))
            .collect();
    }
    let plan = TokenPlan::new(model, SystemConfig::custom(grid[0].0, grid[0].1).quant);
    parallel_map(grid, |_, &(ch, chips)| {
        evaluate_planned(&plan, SystemConfig::custom(ch, chips), seq_len)
    })
}

/// Finds the smallest configuration (by total compute cores) in a grid
/// that reaches `min_tokens_per_sec` — the sizing question an architect
/// actually asks ("what do I need for interactive 70B?").
pub fn smallest_config_reaching(
    model: &ModelSpec,
    min_tokens_per_sec: f64,
    seq_len: usize,
) -> Option<SweepPoint> {
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for ch in [4usize, 8, 16, 32, 64] {
        for chips in [1usize, 2, 4, 8] {
            candidates.push((ch, chips));
        }
    }
    // Ascending by core count so the first hit is the smallest.
    // Evaluate in parallel waves of one grid-worth of threads each,
    // stopping at the first wave containing a hit — an easy target
    // costs one wave, not the full 20-point grid.
    candidates.sort_by_key(|&(ch, chips)| ch * chips);
    let wave = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for chunk in candidates.chunks(wave) {
        let hit = evaluate_grid(model, chunk, seq_len)
            .into_iter()
            .find(|p| p.tokens_per_sec >= min_tokens_per_sec);
        if hit.is_some() {
            return hit;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn chip_sweep_is_monotone_per_figure_15() {
        let pts = sweep_chips(&zoo::opt_6_7b(), 8, &[1, 2, 4, 8], 500);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].tokens_per_sec >= w[0].tokens_per_sec * 0.95);
        }
    }

    #[test]
    fn channel_sweep_scales_steadily() {
        let pts = sweep_channels(&zoo::opt_6_7b(), &[2, 4, 8, 16], 4, 500);
        for w in pts.windows(2) {
            assert!(w[1].tokens_per_sec > w[0].tokens_per_sec * 1.3);
        }
    }

    #[test]
    fn sizing_for_interactive_70b() {
        // 3 tok/s for Llama2-70B needs a Cam-L-class device, not Cam-S.
        let p = smallest_config_reaching(&zoo::llama2_70b(), 3.0, 1000).unwrap();
        let cores = p.channels * p.chips_per_channel * 2;
        assert!(
            cores > 64,
            "found {}ch x {}chips",
            p.channels,
            p.chips_per_channel
        );
        assert!(p.tokens_per_sec >= 3.0);
    }

    #[test]
    fn impossible_target_returns_none() {
        assert!(smallest_config_reaching(&zoo::llama2_70b(), 1e9, 100).is_none());
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        // The scoped-thread sweep must return the same points in the
        // same order as one-at-a-time evaluation.
        let model = zoo::opt_6_7b();
        let grid: Vec<(usize, usize)> = vec![(4, 2), (8, 1), (8, 4), (16, 2), (2, 8)];
        let par = evaluate_grid(&model, &grid, 300);
        let seq: Vec<SweepPoint> = grid
            .iter()
            .map(|&(ch, c)| evaluate(&model, ch, c, 300))
            .collect();
        assert_eq!(par, seq);
    }
}
