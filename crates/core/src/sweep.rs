//! Structured design-space sweeps (Figure 15 and §VIII-E).

use crate::config::SystemConfig;
use crate::system::System;
use llm_workload::ModelSpec;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Channels in the configuration.
    pub channels: usize,
    /// Chips per channel.
    pub chips_per_channel: usize,
    /// Decode speed in tokens/s.
    pub tokens_per_sec: f64,
    /// Mean channel utilization.
    pub channel_utilization: f64,
}

/// Sweeps chips-per-channel at a fixed channel count (Figure 15(a)/(c)).
pub fn sweep_chips(
    model: &ModelSpec,
    channels: usize,
    chips: &[usize],
    seq_len: usize,
) -> Vec<SweepPoint> {
    chips
        .iter()
        .map(|&c| evaluate(model, channels, c, seq_len))
        .collect()
}

/// Sweeps channel count at fixed chips per channel (Figure 15(b)/(d)).
pub fn sweep_channels(
    model: &ModelSpec,
    channel_counts: &[usize],
    chips_per_channel: usize,
    seq_len: usize,
) -> Vec<SweepPoint> {
    channel_counts
        .iter()
        .map(|&ch| evaluate(model, ch, chips_per_channel, seq_len))
        .collect()
}

fn evaluate(model: &ModelSpec, channels: usize, chips: usize, seq_len: usize) -> SweepPoint {
    let mut sys = System::new(SystemConfig::custom(channels, chips));
    let rep = sys.decode_token(model, seq_len);
    SweepPoint {
        channels,
        chips_per_channel: chips,
        tokens_per_sec: rep.tokens_per_sec,
        channel_utilization: rep.channel_utilization,
    }
}

/// Finds the smallest configuration (by total compute cores) in a grid
/// that reaches `min_tokens_per_sec` — the sizing question an architect
/// actually asks ("what do I need for interactive 70B?").
pub fn smallest_config_reaching(
    model: &ModelSpec,
    min_tokens_per_sec: f64,
    seq_len: usize,
) -> Option<SweepPoint> {
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for ch in [4usize, 8, 16, 32, 64] {
        for chips in [1usize, 2, 4, 8] {
            candidates.push((ch, chips));
        }
    }
    // Ascending by core count so the first hit is the smallest.
    candidates.sort_by_key(|&(ch, chips)| ch * chips);
    candidates
        .into_iter()
        .map(|(ch, chips)| evaluate(model, ch, chips, seq_len))
        .find(|p| p.tokens_per_sec >= min_tokens_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm_workload::zoo;

    #[test]
    fn chip_sweep_is_monotone_per_figure_15() {
        let pts = sweep_chips(&zoo::opt_6_7b(), 8, &[1, 2, 4, 8], 500);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].tokens_per_sec >= w[0].tokens_per_sec * 0.95);
        }
    }

    #[test]
    fn channel_sweep_scales_steadily() {
        let pts = sweep_channels(&zoo::opt_6_7b(), &[2, 4, 8, 16], 4, 500);
        for w in pts.windows(2) {
            assert!(w[1].tokens_per_sec > w[0].tokens_per_sec * 1.3);
        }
    }

    #[test]
    fn sizing_for_interactive_70b() {
        // 3 tok/s for Llama2-70B needs a Cam-L-class device, not Cam-S.
        let p = smallest_config_reaching(&zoo::llama2_70b(), 3.0, 1000).unwrap();
        let cores = p.channels * p.chips_per_channel * 2;
        assert!(cores > 64, "found {}ch x {}chips", p.channels, p.chips_per_channel);
        assert!(p.tokens_per_sec >= 3.0);
    }

    #[test]
    fn impossible_target_returns_none() {
        assert!(smallest_config_reaching(&zoo::llama2_70b(), 1e9, 100).is_none());
    }
}
