//! Functional (numeric) execution of tiled GeMV through the flash
//! datapath.
//!
//! The timing simulator never touches values; this module does, proving
//! the dataflow *correct*, not just fast: a real INT8 weight matrix is
//! laid out into flash pages exactly as the tiling plan prescribes,
//! the flash share is (optionally) encoded with the on-die outlier ECC
//! and subjected to bit-flip injection, each page's partial products
//! are computed independently (one page = one atomic tile = one compute
//! core's work), and the NPU reduces the partial sums with its own
//! share. At zero error rate the result equals a reference matmul
//! **exactly**.
//!
//! NPU-bound pages cross the channel through the *controller-side* ECC
//! (Figure 2: every channel has a conventional ECC block), which
//! corrects them fully; the on-die outlier ECC exists precisely because
//! that path is unavailable to the in-flash compute cores. We therefore
//! model NPU-share pages as error-free and flash-share pages through
//! the real codec.

use outlier_ecc::{BitFlipModel, PageCodec};
use sim_core::SplitMix64;
use tiling::{plan_gemv, AlphaInputs, Strategy};

/// Result of a functional GeMV run.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalResult {
    /// The output vector (INT32 accumulators).
    pub y: Vec<i32>,
    /// Pages computed in flash.
    pub flash_pages: usize,
    /// Pages streamed to the NPU.
    pub npu_pages: usize,
    /// Weight elements whose stored value differed from the original
    /// after injection + correction (0 at BER 0).
    pub corrupted_weights: usize,
}

/// Executes `y = W x` through the planned flash/NPU split.
///
/// `w` is `rows × cols`, row-major. The INT8 activation vector `x` has
/// length `cols`. `ber` is the flash raw bit error rate; `with_ecc`
/// selects whether the flash share is protected by the on-die codec.
///
/// # Panics
///
/// Panics if dimensions disagree.
#[allow(clippy::too_many_arguments)] // mirrors the paper's full parameter list
pub fn gemv_through_flash(
    inp: &AlphaInputs,
    w: &[i8],
    rows: usize,
    cols: usize,
    x: &[i8],
    ber: f64,
    with_ecc: bool,
    seed: u64,
) -> FunctionalResult {
    assert_eq!(w.len(), rows * cols, "weight matrix shape mismatch");
    assert_eq!(x.len(), cols, "activation length mismatch");
    assert_eq!(
        inp.weight_bits, 8,
        "functional path models INT8 weights (W8A8)"
    );

    let plan = plan_gemv(inp, rows, cols, Strategy::HardwareAware, None);
    let pp = tiling::page_params(&inp.topology, inp.weight_bits) as usize;
    let total_pages = (rows * cols).div_ceil(pp);
    let flash_pages = (plan.flash_params as usize).div_ceil(pp).min(total_pages);

    let codec = PageCodec {
        elems: pp,
        protect_fraction: 0.01,
        value_copies: 2,
        spare_bytes: inp.topology.spare_bytes_per_page,
    };
    // simlint: allow(D1) — offline functional-accuracy study; single stream from the caller's seed, no per-entity derivation
    let mut rng = SplitMix64::new(seed);
    let mut y = vec![0i32; rows];
    let mut corrupted = 0usize;

    for page_idx in 0..total_pages {
        let start = page_idx * pp;
        let end = ((page_idx + 1) * pp).min(rows * cols);
        let original = &w[start..end];

        // Flash-share pages go through storage + (optional) correction;
        // NPU-share pages ride the controller ECC and arrive clean.
        let stored: Vec<i8> = if page_idx < flash_pages {
            let mut padded = original.to_vec();
            padded.resize(pp, 0);
            let decoded = if with_ecc {
                let mut page = codec.encode(&padded);
                // simlint: allow(D4) — per-page fault-model seeds drawn here, outside the serving replay path
                BitFlipModel::new(ber, rng.next_u64()).corrupt_page(&mut page);
                codec.decode(&page)
            } else {
                let mut page = outlier_ecc::EncodedPage {
                    data: padded,
                    spare: Vec::new(),
                };
                // simlint: allow(D4) — same offline study, unprotected arm
                BitFlipModel::new(ber, rng.next_u64()).corrupt_page(&mut page);
                page.data
            };
            decoded[..original.len()].to_vec()
        } else {
            original.to_vec()
        };

        corrupted += stored.iter().zip(original).filter(|(a, b)| a != b).count();

        // One page = one atomic tile = one compute core's partial
        // products, accumulated into the shared output.
        for (off, &wv) in stored.iter().enumerate() {
            let flat = start + off;
            let (r, c) = (flat / cols, flat % cols);
            y[r] += wv as i32 * x[c] as i32;
        }
    }

    FunctionalResult {
        y,
        flash_pages,
        npu_pages: total_pages - flash_pages,
        corrupted_weights: corrupted,
    }
}

/// Reference INT8 GeMV for comparison.
pub fn reference_gemv(w: &[i8], rows: usize, cols: usize, x: &[i8]) -> Vec<i32> {
    assert_eq!(w.len(), rows * cols);
    assert_eq!(x.len(), cols);
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| w[r * cols + c] as i32 * x[c] as i32)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Topology;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> (Vec<i8>, Vec<i8>) {
        let mut rng = SplitMix64::new(seed);
        let w: Vec<i8> = (0..rows * cols)
            .map(|_| {
                if rng.chance(0.005) {
                    110
                } else {
                    (rng.normal() * 8.0).clamp(-70.0, 70.0) as i8
                }
            })
            .collect();
        let x: Vec<i8> = (0..cols).map(|_| (rng.normal() * 20.0) as i8).collect();
        (w, x)
    }

    fn inp() -> AlphaInputs {
        AlphaInputs::paper(Topology::cambricon_s())
    }

    #[test]
    fn exact_at_zero_ber() {
        let (rows, cols) = (1024, 512);
        let (w, x) = random_matrix(rows, cols, 1);
        let got = gemv_through_flash(&inp(), &w, rows, cols, &x, 0.0, true, 9);
        assert_eq!(got.y, reference_gemv(&w, rows, cols, &x));
        assert_eq!(got.corrupted_weights, 0);
        assert!(got.flash_pages > 0, "split should use the flash");
    }

    #[test]
    fn split_matches_plan() {
        let (rows, cols) = (2048, 2048);
        let (w, x) = random_matrix(rows, cols, 2);
        let r = gemv_through_flash(&inp(), &w, rows, cols, &x, 0.0, true, 3);
        let pp = 16 * 1024;
        assert_eq!(r.flash_pages + r.npu_pages, (rows * cols).div_ceil(pp));
        // Cam-S α ≈ 0.7: flash takes most but not all pages.
        assert!(r.flash_pages > r.npu_pages);
        assert!(r.npu_pages > 0);
    }

    #[test]
    fn ecc_bounds_numeric_error_at_retention_ber() {
        let (rows, cols) = (1024, 1024);
        let (w, x) = random_matrix(rows, cols, 4);
        let reference = reference_gemv(&w, rows, cols, &x);
        let with = gemv_through_flash(&inp(), &w, rows, cols, &x, 1e-4, true, 5);
        let without = gemv_through_flash(&inp(), &w, rows, cols, &x, 1e-4, false, 5);
        let err = |y: &[i32]| -> f64 {
            y.iter()
                .zip(&reference)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            err(&with.y) < err(&without.y),
            "ECC {} vs raw {}",
            err(&with.y),
            err(&without.y)
        );
        assert!(with.corrupted_weights < without.corrupted_weights);
    }

    #[test]
    fn ragged_last_page_is_handled() {
        // rows×cols not a multiple of the page: padding must not leak
        // into the result.
        let (rows, cols) = (100, 177); // 17700 params → 2 pages
        let (w, x) = random_matrix(rows, cols, 6);
        let r = gemv_through_flash(&inp(), &w, rows, cols, &x, 0.0, true, 7);
        assert_eq!(r.y, reference_gemv(&w, rows, cols, &x));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let inp = inp();
        gemv_through_flash(&inp, &[0i8; 10], 3, 4, &[0i8; 4], 0.0, true, 1);
    }
}
