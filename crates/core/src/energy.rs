//! Per-token energy model (Figure 16(b)).
//!
//! Energy is dominated by data movement (the paper cites 100–500×
//! compute energy per bit moved). The model charges every byte at the
//! interface it crosses. The per-byte constants are *calibrated* to
//! reproduce the paper's Figure 16 totals (Cam-S ≈ 1 J/token and
//! FlexGen-SSD ≈ 1.6 J/token on OPT-6.7B, with the ~67% ratio) — they
//! are in the right physical ballpark for 2020s hardware but are fitted,
//! not first-principles numbers; see `EXPERIMENTS.md`.

use crate::system::TrafficBreakdown;

/// Per-interface energy constants in joules per byte (and per op).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// NAND array sensing + on-die datapath, per byte read.
    pub nand_read_j_per_byte: f64,
    /// In-flash compute-core datapath + buffers, per weight byte
    /// processed on-die.
    pub flash_core_j_per_byte: f64,
    /// Flash channel + chiplet D2D link, per byte crossing to the NPU.
    pub d2d_j_per_byte: f64,
    /// LPDDR DRAM access, per byte.
    pub dram_j_per_byte: f64,
    /// PCIe/system-interconnect transfer, per byte (baselines).
    pub pcie_j_per_byte: f64,
    /// SSD controller + external ECC overhead, per byte (baselines).
    pub ssd_ctrl_j_per_byte: f64,
    /// Arithmetic, per op (NPU / GPU / flash cores alike — negligible
    /// next to movement, included for completeness).
    pub compute_j_per_op: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl EnergyModel {
    /// The calibrated constants (see module docs).
    pub fn calibrated() -> Self {
        EnergyModel {
            nand_read_j_per_byte: 58e-12,
            flash_core_j_per_byte: 80e-12,
            d2d_j_per_byte: 40e-12,
            dram_j_per_byte: 60e-12,
            pcie_j_per_byte: 30e-12,
            ssd_ctrl_j_per_byte: 30e-12,
            compute_j_per_op: 0.5e-12,
        }
    }

    /// Energy of one Cambricon-LLM token from its traffic breakdown.
    pub fn cambricon_token_j(&self, t: &TrafficBreakdown) -> f64 {
        t.nand_array_bytes as f64 * self.nand_read_j_per_byte
            + t.in_flash_bytes as f64 * self.flash_core_j_per_byte
            + t.d2d_bytes as f64 * self.d2d_j_per_byte
            + t.dram_bytes as f64 * self.dram_j_per_byte
            + (t.npu_ops + t.flash_ops) as f64 * self.compute_j_per_op
    }

    /// Energy of one FlexGen-SSD token: weights travel
    /// SSD → (PCIe) → DRAM → (PCIe) → GPU, touching DRAM twice.
    pub fn flexgen_ssd_token_j(&self, weight_bytes: u64, kv_dram_bytes: u64, ops: u64) -> f64 {
        let w = weight_bytes as f64;
        w * self.nand_read_j_per_byte
            + w * self.ssd_ctrl_j_per_byte
            + 2.0 * w * self.pcie_j_per_byte          // SSD→DRAM, DRAM→GPU
            + 2.0 * w * self.dram_j_per_byte          // DRAM write + read
            + kv_dram_bytes as f64 * self.dram_j_per_byte
            + ops as f64 * self.compute_j_per_op
    }

    /// Energy of one FlexGen-DRAM token: weights already in DRAM, read
    /// once and shipped over PCIe to the GPU.
    pub fn flexgen_dram_token_j(&self, weight_bytes: u64, kv_dram_bytes: u64, ops: u64) -> f64 {
        let w = weight_bytes as f64;
        w * self.dram_j_per_byte
            + w * self.pcie_j_per_byte
            + kv_dram_bytes as f64 * self.dram_j_per_byte
            + ops as f64 * self.compute_j_per_op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::system::System;
    use llm_workload::zoo;

    #[test]
    fn cam_s_opt67_near_1j_per_token() {
        // Figure 16(b): Cambricon-LLM-S spends ~1 J/token on OPT-6.7B.
        let mut sys = System::new(SystemConfig::cambricon_s());
        let rep = sys.decode_token(&zoo::opt_6_7b(), 1000);
        let j = EnergyModel::calibrated().cambricon_token_j(&rep.traffic);
        assert!((0.5..1.6).contains(&j), "{j} J");
    }

    #[test]
    fn flexgen_ssd_costs_more_than_cambricon() {
        // Figure 16(b): Cam-S uses ~67% of FlexGen-SSD's energy.
        let mut sys = System::new(SystemConfig::cambricon_s());
        let model = zoo::opt_6_7b();
        let rep = sys.decode_token(&model, 1000);
        let em = EnergyModel::calibrated();
        let cam = em.cambricon_token_j(&rep.traffic);
        let flex = em.flexgen_ssd_token_j(
            model.weight_bytes(8),
            rep.traffic.dram_bytes,
            2 * model.param_count(),
        );
        let ratio = cam / flex;
        assert!((0.4..0.9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn energy_scales_with_model_size() {
        let em = EnergyModel::calibrated();
        let mut sys = System::new(SystemConfig::cambricon_s());
        let small = em.cambricon_token_j(&sys.decode_token(&zoo::opt_6_7b(), 500).traffic);
        let big = em.cambricon_token_j(&sys.decode_token(&zoo::opt_30b(), 500).traffic);
        assert!(big > 3.0 * small, "{small} vs {big}");
    }

    #[test]
    fn flexgen_dram_cheaper_than_ssd() {
        let em = EnergyModel::calibrated();
        let w = 7_000_000_000u64;
        assert!(
            em.flexgen_dram_token_j(w, 1e8 as u64, 1e10 as u64)
                < em.flexgen_ssd_token_j(w, 1e8 as u64, 1e10 as u64)
        );
    }
}
