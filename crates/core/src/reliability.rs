//! Fault-injected serving: NAND read errors, ECC reread retries,
//! deadlines, and graceful degradation under wear.
//!
//! The serving loops in [`crate::serve`] price flash traffic at nominal
//! latency; a deployed device does not get that luxury. §III-C of the
//! paper: retention and read-disturb errors push raw BER from ~1e-5 on
//! a fresh chip past 1e-2 near end of life, and the outlier-aware ECC
//! of §VI corrects only up to a knee. This module turns that physics
//! into serving-visible behavior:
//!
//! * **Rereads** — every scheduling window's flash page-read volume
//!   (straight from the [`TrafficBreakdown`](crate::traffic) ledger the
//!   loops already keep) is sampled against
//!   [`BerModel::rber`]`(&`[`FlashAge`]`)` pushed through the ECC
//!   correction threshold. Pages that fail the first sense are re-read;
//!   the extra page reads lengthen the window at real flash latency.
//! * **Escalation** — a failed reread escalates to a finer sense at a
//!   latency multiplier (backoff), up to a capped attempt count. Each
//!   escalation step halves the effective RBER, modeling soft-decision
//!   senses recovering more charge resolution per attempt.
//! * **Graceful degradation** — pages still failing after the last
//!   attempt are **uncorrectable**: the affected chip is marked
//!   degraded and drops out of the striped read path, derating
//!   effective read bandwidth for every subsequent window. Serving
//!   slows; it never crashes.
//! * **Deadlines** — per-request TTFT and total-latency deadlines shed
//!   requests at token boundaries (counted separately from
//!   `kv_rejections`), and completions are scored against the same
//!   deadlines to yield *goodput*: tokens per second of requests that
//!   met their SLO.
//! * **Wear trajectory** — [`WearTrajectory`] replays the same scenario
//!   across simulated months, feeding each step's read volume back into
//!   [`FlashAge::absorb_reads`], and reports how many days of traffic a
//!   device survives before goodput degrades past the SLO.
//!
//! ## Determinism
//!
//! Fault sampling draws from per-request [`SplitMix64`] streams forked
//! from one root seed at admission order (the same seed-hygiene rule as
//! [`SplitMix64::split_seeds`]). All fault state lives in the per-run
//! [`FaultRun`], never in the shared pricing [`System`], so a faulted
//! report is bit-identical at any Monte Carlo worker count for free —
//! the same argument that makes the fault-free harness deterministic.

use crate::config::SystemConfig;
use crate::serve::{PrefillMode, SchedulePolicy, ServeEngine};
use crate::system::System;
use flash_sim::{BerModel, FlashAge};
use llm_workload::{ArrivalTrace, ModelSpec};
use sim_core::{SimTime, SplitMix64};

/// Whether a serving run injects flash read faults.
///
/// `Off` is the default and is bit-for-bit inert: no RNG is consumed,
/// no latency is added, and every report field matches a build without
/// this module.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultMode {
    /// No fault injection; nominal flash latency.
    #[default]
    Off,
    /// Seeded fault injection with the given configuration.
    Injected(FaultConfig),
}

/// Configuration for fault-injected serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Wear/retention state of the flash under test.
    pub age: FlashAge,
    /// RBER model mapping age to a raw bit error rate.
    pub ber: BerModel,
    /// Root seed for the per-request fault streams.
    pub seed: u64,
    /// Per-bit error rate the page ECC corrects (paper §VI knee). The
    /// default is [`outlier_ecc::CORRECTABLE_RBER`] — the same constant
    /// the codec crate derives its threshold from, so the two cannot
    /// drift.
    pub correctable_rber: f64,
    /// Maximum reread attempts before a page is uncorrectable.
    pub max_rereads: u32,
    /// Latency multiplier per escalated sense: reread attempt `j`
    /// costs `page_read × mult^(j-1)`.
    pub escalate_latency_mult: f64,
    /// Arrival-relative TTFT deadline; `None` disables TTFT shedding.
    pub ttft_deadline: Option<SimTime>,
    /// Arrival-relative total-latency deadline; `None` disables it.
    pub total_deadline: Option<SimTime>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            age: FlashAge::fresh(),
            ber: BerModel::default(),
            seed: 0xFA117,
            correctable_rber: outlier_ecc::CORRECTABLE_RBER,
            max_rereads: 4,
            escalate_latency_mult: 2.0,
            ttft_deadline: None,
            total_deadline: None,
        }
    }
}

impl FaultConfig {
    /// A config for a chip of the given age, everything else default.
    pub fn aged(age: FlashAge) -> Self {
        FaultConfig {
            age,
            ..FaultConfig::default()
        }
    }

    /// Sets both deadlines.
    pub fn with_deadlines(mut self, ttft: Option<SimTime>, total: Option<SimTime>) -> Self {
        self.ttft_deadline = ttft;
        self.total_deadline = total;
        self
    }
}

/// Reliability counters attached to a [`ServeReport`](crate::serve::ServeReport).
///
/// All-zero (the `Default`) when the run had `FaultMode::Off`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReliabilitySummary {
    /// Raw bit error rate the run sampled against.
    pub rber: f64,
    /// Page reread attempts issued (every escalation level counts).
    pub page_rereads: u64,
    /// Pages that failed the first sense but were eventually corrected.
    pub corrected_pages: u64,
    /// Pages unrecoverable after the full escalation ladder.
    pub uncorrectable_events: u64,
    /// Chips marked degraded by uncorrectable events.
    pub degraded_chips: u32,
    /// Fraction of striped read bandwidth lost to degraded chips.
    pub degraded_bandwidth_fraction: f64,
    /// Virtual seconds of flash time added by faults (rereads,
    /// escalations, and degraded-bandwidth derating).
    pub fault_extra_flash_s: f64,
    /// Requests shed for missing the TTFT deadline.
    pub ttft_timeouts: u64,
    /// Requests shed mid-decode for missing the total deadline.
    pub deadline_sheds: u64,
    /// Tokens generated for requests that were later shed (work wasted).
    pub shed_tokens: u64,
    /// Completed requests that met every configured deadline.
    pub goodput_requests: u64,
    /// Tokens of deadline-meeting completions.
    pub goodput_tokens: u64,
    /// Goodput tokens per second of virtual time.
    pub deadline_goodput_tps: f64,
}

impl ReliabilitySummary {
    /// Requests shed for any deadline reason (distinct from KV
    /// admission rejections).
    pub fn total_sheds(&self) -> u64 {
        self.ttft_timeouts + self.deadline_sheds
    }

    /// Folds the decoder-observed damage of an [`outlier_ecc`] trial
    /// into the serve-side counters, so bit-exact codec experiments and
    /// event-loop fault accounting share one ledger. Repaired outliers
    /// and corrected addresses were saved by a reread-equivalent
    /// recovery; discarded entries are data loss — uncorrectable.
    pub fn absorb_decode_stats(&mut self, stats: &outlier_ecc::DecodeStats) {
        self.corrected_pages += (stats.outliers_repaired + stats.addresses_corrected) as u64;
        self.uncorrectable_events += stats.entries_discarded as u64;
    }
}

/// Probability that a page read fails ECC: more than
/// `page_bits × correctable_rber` bits flip when each flips
/// independently at `rber`.
///
/// Normal approximation to the binomial tail,
/// `Q((t − B·r) / √(B·r·(1−r)))`, which is exact enough everywhere it
/// matters: at the 16 KiB page size `B ≈ 1.3e5`, so the knee region
/// has mean counts in the tens. Well below the knee the result
/// underflows to 0, well above it saturates to 1 — exactly the cliff
/// behavior the paper's Figure 10 shows.
pub fn page_fail_prob(rber: f64, page_bits: u64, correctable_rber: f64) -> f64 {
    if rber <= 0.0 || page_bits == 0 {
        return 0.0;
    }
    let r = rber.min(0.5);
    let bits = page_bits as f64;
    let correctable = (bits * correctable_rber).floor();
    let mean = bits * r;
    let var = bits * r * (1.0 - r);
    if var <= 0.0 {
        return if mean > correctable { 1.0 } else { 0.0 };
    }
    let z = (correctable - mean) / var.sqrt();
    (0.5 * (1.0 - erf(z / std::f64::consts::SQRT_2))).clamp(0.0, 1.0)
}

/// Abramowitz & Stegun 7.1.26 rational approximation (|err| < 1.5e-7);
/// `std` has no `erf` and the crate policy is no new dependencies.
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = ((((1.061_405_429 * t - 1.453_152_027) * t + 1.421_413_741) * t - 0.284_496_736)
        * t
        + 0.254_829_592)
        * t;
    sign * (1.0 - poly * (-x * x).exp())
}

/// Per-run fault state: the sampling ladder, degradation level, and
/// every reliability counter. Lives beside the event loop — never in
/// the shared [`System`] — so Monte Carlo clones stay thread-safe.
#[derive(Debug, Clone)]
pub(crate) struct FaultRun {
    cfg: FaultConfig,
    /// ECC failure probability of the sense at each attempt level:
    /// index 0 is the nominal read, `1..=max_rereads` are escalated
    /// senses, each halving the effective RBER.
    attempt_fail: Vec<f64>,
    /// Latency of one page reread at each attempt level, picoseconds.
    /// Index 0 is unused (the nominal read is already priced).
    attempt_cost_ps: Vec<u64>,
    page_bytes: u64,
    chips_total: u32,
    rber: f64,
    pub(crate) degraded_chips: u32,
    pub(crate) page_rereads: u64,
    pub(crate) corrected_pages: u64,
    pub(crate) uncorrectable_events: u64,
    pub(crate) fault_extra_ps: u128,
    pub(crate) ttft_timeouts: u64,
    pub(crate) deadline_sheds: u64,
    pub(crate) shed_tokens: u64,
    pub(crate) goodput_requests: u64,
    pub(crate) goodput_tokens: u64,
}

impl FaultRun {
    /// Builds the per-run state for an engine's fault mode; `None` when
    /// faults are off. Touches the system only to price one page read
    /// at effective (striped) bandwidth.
    pub(crate) fn for_engine(
        mode: &FaultMode,
        cfg: &SystemConfig,
        system: &mut System,
    ) -> Option<FaultRun> {
        let fc = match mode {
            FaultMode::Off => return None,
            FaultMode::Injected(fc) => *fc,
        };
        let topo = &cfg.engine.topology;
        let page_bytes = topo.page_bytes as u64;
        let chips_total = (topo.channels * topo.chips_per_channel).max(1) as u32;
        let eff_bw = system.effective_read_bandwidth();
        let page_read_ps = if eff_bw > 0.0 {
            (page_bytes as f64 / eff_bw * 1e12) as u64
        } else {
            0
        };
        let rber = fc.ber.rber(&fc.age);
        let page_bits = page_bytes * 8;
        let attempts = fc.max_rereads as usize + 1;
        let attempt_fail: Vec<f64> = (0..attempts)
            .map(|i| page_fail_prob(rber / (1u64 << i) as f64, page_bits, fc.correctable_rber))
            .collect();
        let attempt_cost_ps: Vec<u64> = (0..attempts)
            .map(|j| {
                if j == 0 {
                    0
                } else {
                    (page_read_ps as f64 * fc.escalate_latency_mult.powi(j as i32 - 1)) as u64
                }
            })
            .collect();
        Some(FaultRun {
            cfg: fc,
            attempt_fail,
            attempt_cost_ps,
            page_bytes,
            chips_total,
            rber,
            degraded_chips: 0,
            page_rereads: 0,
            corrected_pages: 0,
            uncorrectable_events: 0,
            fault_extra_ps: 0,
            ttft_timeouts: 0,
            deadline_sheds: 0,
            shed_tokens: 0,
            goodput_requests: 0,
            goodput_tokens: 0,
        })
    }

    /// Root seed for the per-request fault streams.
    pub(crate) fn seed(&self) -> u64 {
        self.cfg.seed
    }

    pub(crate) fn ttft_deadline(&self) -> Option<SimTime> {
        self.cfg.ttft_deadline
    }

    pub(crate) fn total_deadline(&self) -> Option<SimTime> {
        self.cfg.total_deadline
    }

    /// Samples the fault cost of one scheduling window that reads
    /// `nand_bytes` from flash at a nominal latency of
    /// `nominal_flash_ps`. Returns the extra picoseconds the window
    /// takes: degraded-bandwidth derating plus reread escalations.
    /// Updates the counters and possibly the degradation level.
    pub(crate) fn window_extra(
        &mut self,
        nand_bytes: u64,
        nominal_flash_ps: u64,
        rng: &mut SplitMix64,
    ) -> u64 {
        let mut extra: u128 = 0;
        // Graceful degradation: the stripe is `chips_total` wide; each
        // degraded chip's share of the read volume is re-served by the
        // survivors, stretching the window proportionally.
        if self.degraded_chips > 0 {
            let healthy = (self.chips_total - self.degraded_chips) as u128;
            extra += nominal_flash_ps as u128 * self.degraded_chips as u128 / healthy;
        }
        let pages = nand_bytes.div_ceil(self.page_bytes.max(1));
        let mut failing = rng.binomial(pages, self.attempt_fail[0]);
        let initially_failing = failing;
        let mut attempt = 1usize;
        while failing > 0 && attempt < self.attempt_fail.len() {
            self.page_rereads += failing;
            extra += failing as u128 * self.attempt_cost_ps[attempt] as u128;
            failing = rng.binomial(failing, self.attempt_fail[attempt]);
            attempt += 1;
        }
        self.corrected_pages += initially_failing - failing;
        if failing > 0 {
            self.uncorrectable_events += failing;
            // Mark chips degraded, always keeping at least one healthy:
            // the device slows down, it never bricks.
            let cap = self.chips_total.saturating_sub(1);
            self.degraded_chips = self
                .degraded_chips
                .saturating_add(failing.min(u32::MAX as u64) as u32)
                .min(cap);
        }
        self.fault_extra_ps += extra;
        u64::try_from(extra).unwrap_or(u64::MAX)
    }

    /// Scores a completed request against the deadlines for goodput.
    pub(crate) fn note_completion(&mut self, report: &crate::serve::RequestReport) {
        let ttft_ok = !self.cfg.ttft_deadline.is_some_and(|d| report.ttft() > d);
        let total_ok = !self
            .cfg
            .total_deadline
            .is_some_and(|d| report.finished.saturating_sub(report.arrived) > d);
        if ttft_ok && total_ok {
            self.goodput_requests += 1;
            self.goodput_tokens += report.tokens as u64;
        }
    }

    /// Freezes the counters into a report section. The goodput rate is
    /// filled in by `build_report`, which knows the horizon.
    pub(crate) fn summary(&self) -> ReliabilitySummary {
        ReliabilitySummary {
            rber: self.rber,
            page_rereads: self.page_rereads,
            corrected_pages: self.corrected_pages,
            uncorrectable_events: self.uncorrectable_events,
            degraded_chips: self.degraded_chips,
            degraded_bandwidth_fraction: self.degraded_chips as f64 / self.chips_total as f64,
            fault_extra_flash_s: self.fault_extra_ps as f64 * 1e-12,
            ttft_timeouts: self.ttft_timeouts,
            deadline_sheds: self.deadline_sheds,
            shed_tokens: self.shed_tokens,
            goodput_requests: self.goodput_requests,
            goodput_tokens: self.goodput_tokens,
            deadline_goodput_tps: 0.0,
        }
    }
}

/// Replays one serving scenario across simulated months of wear,
/// feeding each step's flash read volume back into the age model, and
/// reports when goodput degrades past the SLO.
///
/// Each step runs the full fault-injected engine at the current
/// [`FlashAge`], then advances the age by `days_per_step` of retention
/// plus the wear-equivalent of `traffic_scale` replays per day of the
/// step's measured NAND read volume ([`FlashAge::absorb_reads`]).
#[derive(Debug, Clone, Copy)]
pub struct WearTrajectory {
    /// Starting wear state (day zero).
    pub start: FlashAge,
    /// Simulated days advanced per step.
    pub days_per_step: f64,
    /// Horizon: stop after this many days even if the SLO holds.
    pub max_days: f64,
    /// How many times per day the measured trace repeats. A trace
    /// covering one virtual minute of traffic served all day is
    /// `~1440.0`.
    pub traffic_scale: f64,
    /// Read-disturb wear: bytes read per equivalent P/E cycle
    /// (0 = reads are wear-free).
    pub bytes_per_pe: u64,
    /// SLO floor: the trajectory is violated when deadline goodput
    /// drops below this many tokens/s.
    pub slo_goodput_tps: f64,
    /// Fault config template; `age` is overridden per step.
    pub base: FaultConfig,
}

impl WearTrajectory {
    /// Runs the trajectory: one fault-injected serve per step until the
    /// SLO breaks or `max_days` elapse.
    ///
    /// # Panics
    ///
    /// Panics if `days_per_step` is not positive.
    pub fn run(
        &self,
        cfg: SystemConfig,
        model: &ModelSpec,
        prefill: PrefillMode,
        trace: &ArrivalTrace,
        policy: SchedulePolicy,
    ) -> WearReport {
        assert!(
            self.days_per_step > 0.0,
            "WearTrajectory needs a positive step"
        );
        let steps = (self.max_days / self.days_per_step).ceil() as usize;
        let mut age = self.start;
        let mut day = 0.0;
        let mut points = Vec::new();
        let mut days_until_slo = None;
        for _ in 0..=steps.min(512) {
            let fc = FaultConfig { age, ..self.base };
            let engine = ServeEngine::new(cfg, model.clone())
                .with_prefill(prefill)
                .with_faults(FaultMode::Injected(fc));
            let rep = engine.run(trace, policy);
            let rel = rep.reliability;
            points.push(WearPoint {
                day,
                age,
                rber: self.base.ber.rber(&age),
                tokens_per_sec: rep.tokens_per_sec,
                goodput_tps: rel.deadline_goodput_tps,
                page_rereads: rel.page_rereads,
                uncorrectable_events: rel.uncorrectable_events,
                sheds: rel.total_sheds(),
            });
            if rel.deadline_goodput_tps < self.slo_goodput_tps {
                days_until_slo = Some(day);
                break;
            }
            let day_reads = (rep.traffic.nand_array_bytes as f64
                * self.traffic_scale
                * self.days_per_step) as u64;
            age.absorb_reads(day_reads, self.bytes_per_pe, self.days_per_step);
            day += self.days_per_step;
        }
        WearReport {
            slo_goodput_tps: self.slo_goodput_tps,
            points,
            days_until_slo,
        }
    }
}

/// One step of a [`WearTrajectory`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearPoint {
    /// Simulated days of traffic endured before this step.
    pub day: f64,
    /// Wear state the step ran at.
    pub age: FlashAge,
    /// RBER at that age.
    pub rber: f64,
    /// Raw decode throughput of the step's run.
    pub tokens_per_sec: f64,
    /// Deadline goodput of the step's run.
    pub goodput_tps: f64,
    /// Reread attempts during the step.
    pub page_rereads: u64,
    /// Uncorrectable pages during the step.
    pub uncorrectable_events: u64,
    /// Deadline sheds (TTFT + total) during the step.
    pub sheds: u64,
}

/// Result of a [`WearTrajectory`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct WearReport {
    /// The goodput floor the trajectory was tested against.
    pub slo_goodput_tps: f64,
    /// Per-step measurements, in day order.
    pub points: Vec<WearPoint>,
    /// First simulated day at which goodput fell below the SLO;
    /// `None` if the device survived the whole horizon.
    pub days_until_slo: Option<f64>,
}

impl WearReport {
    /// Renders the trajectory as one line per step.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!(
                "day {:7.1}: rber {:.2e}, goodput {:8.2} tok/s, rereads {}, uncorrectable {}, sheds {}\n",
                p.day, p.rber, p.goodput_tps, p.page_rereads, p.uncorrectable_events, p.sheds
            ));
        }
        match self.days_until_slo {
            Some(d) => out.push_str(&format!(
                "SLO ({:.2} tok/s goodput) violated after {d:.1} days\n",
                self.slo_goodput_tps
            )),
            None => out.push_str(&format!(
                "SLO ({:.2} tok/s goodput) held for the whole horizon\n",
                self.slo_goodput_tps
            )),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE_BITS: u64 = 16384 * 8;

    #[test]
    fn page_fail_prob_edges() {
        assert_eq!(page_fail_prob(0.0, PAGE_BITS, 2e-4), 0.0);
        assert_eq!(page_fail_prob(-1.0, PAGE_BITS, 2e-4), 0.0);
        assert_eq!(page_fail_prob(1e-3, 0, 2e-4), 0.0);
        // Far above the knee: certain failure.
        assert!(page_fail_prob(0.5, PAGE_BITS, 2e-4) > 0.999);
    }

    #[test]
    fn page_fail_prob_has_a_knee_at_the_correctable_rate() {
        // The ECC threshold corrects up to `correctable_rber` of the
        // page; the failure probability must cliff around that rate
        // (paper Figure 10's shape).
        let t = outlier_ecc::CORRECTABLE_RBER;
        let below = page_fail_prob(t / 4.0, PAGE_BITS, t);
        let at = page_fail_prob(t, PAGE_BITS, t);
        let above = page_fail_prob(t * 4.0, PAGE_BITS, t);
        assert!(below < 1e-9, "{below}");
        assert!((0.1..0.9).contains(&at), "{at}");
        assert!(above > 0.999, "{above}");
    }

    #[test]
    fn page_fail_prob_monotone_in_rber() {
        let mut last = -1.0;
        for exp in -6..0 {
            let p = page_fail_prob(10f64.powi(exp), PAGE_BITS, 2e-4);
            assert!(p >= last, "p({exp}) = {p} < {last}");
            last = p;
        }
    }

    #[test]
    fn fresh_chip_is_effectively_fault_free() {
        let fc = FaultConfig::default();
        let rber = fc.ber.rber(&fc.age);
        let p = page_fail_prob(rber, PAGE_BITS, fc.correctable_rber);
        assert!(p < 1e-20, "fresh chips must not visibly fault: {p}");
    }

    #[test]
    fn worn_chip_faults_constantly() {
        let fc = FaultConfig::aged(FlashAge::worn_out());
        let rber = fc.ber.rber(&fc.age);
        let p = page_fail_prob(rber, PAGE_BITS, fc.correctable_rber);
        assert!(p > 0.999, "worn chips must collapse: {p}");
    }

    #[test]
    fn erf_matches_known_values() {
        // erf(0) = 0, erf(±∞) → ±1, erf(1) ≈ 0.8427007929.
        assert!(erf(0.0).abs() < 2e-7);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(6.0) - 1.0).abs() < 2e-7);
    }

    #[test]
    fn absorb_decode_stats_maps_damage_to_counters() {
        let stats = outlier_ecc::DecodeStats {
            outliers_repaired: 3,
            addresses_corrected: 2,
            entries_discarded: 1,
            values_clamped: 7,
        };
        let mut rel = ReliabilitySummary::default();
        rel.absorb_decode_stats(&stats);
        assert_eq!(rel.corrected_pages, 5);
        assert_eq!(rel.uncorrectable_events, 1);
    }
}
