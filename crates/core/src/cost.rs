//! Cost and storage-density models (Tables I and V).

/// Storage-density entries of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityEntry {
    /// Manufacturer.
    pub manufacturer: &'static str,
    /// Memory type.
    pub mem_type: &'static str,
    /// Layer count (3D NAND) or 1 for DRAM.
    pub layers: u32,
    /// Areal storage density in Gb/mm².
    pub density_gb_per_mm2: f64,
}

/// Table I verbatim.
pub fn table_i() -> [DensityEntry; 4] {
    [
        DensityEntry {
            manufacturer: "SK hynix",
            mem_type: "Flash",
            layers: 300,
            density_gb_per_mm2: 20.00,
        },
        DensityEntry {
            manufacturer: "Samsung",
            mem_type: "Flash",
            layers: 280,
            density_gb_per_mm2: 28.50,
        },
        DensityEntry {
            manufacturer: "SK hynix",
            mem_type: "DDR",
            layers: 1,
            density_gb_per_mm2: 0.30,
        },
        DensityEntry {
            manufacturer: "SK hynix",
            mem_type: "LPDDR",
            layers: 1,
            density_gb_per_mm2: 0.31,
        },
    ]
}

/// Market prices used by Table V ($ per GB), derived from the table's
/// own totals (80 GB DRAM = $194.68, 80 GB flash = $38.80).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prices {
    /// DRAM price in $/GB.
    pub dram_per_gb: f64,
    /// NAND flash price in $/GB.
    pub flash_per_gb: f64,
}

impl Default for Prices {
    fn default() -> Self {
        Prices {
            dram_per_gb: 194.68 / 80.0,
            flash_per_gb: 38.80 / 80.0,
        }
    }
}

/// Bill of materials for serving a model of `weight_gb` of weights with
/// `kv_gb` of KV cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bom {
    /// DRAM capacity in GB.
    pub dram_gb: f64,
    /// Flash capacity in GB.
    pub flash_gb: f64,
    /// Total memory cost in dollars.
    pub total_usd: f64,
}

/// Cambricon-LLM: weights in flash, only the KV cache in DRAM.
pub fn cambricon_bom(weight_gb: f64, kv_gb: f64, prices: &Prices) -> Bom {
    let dram_gb = kv_gb.ceil().max(1.0);
    Bom {
        dram_gb,
        flash_gb: weight_gb,
        total_usd: dram_gb * prices.dram_per_gb + weight_gb * prices.flash_per_gb,
    }
}

/// Traditional architecture: everything in DRAM.
pub fn traditional_bom(weight_gb: f64, kv_gb: f64, prices: &Prices) -> Bom {
    let dram_gb = weight_gb + kv_gb.ceil().max(0.0);
    Bom {
        dram_gb,
        flash_gb: 0.0,
        total_usd: dram_gb * prices.dram_per_gb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_totals_reproduce() {
        // Table V: 70B INT8 → 80 GB storage; Cambricon uses 2 GB DRAM +
        // 80 GB flash = $43.67; traditional uses 80 GB DRAM = $194.68.
        let p = Prices::default();
        let cam = cambricon_bom(80.0, 2.0, &p);
        assert!((cam.total_usd - 43.67).abs() < 0.05, "{}", cam.total_usd);
        assert_eq!(cam.dram_gb, 2.0);
        let trad = traditional_bom(80.0, 0.0, &p);
        assert!((trad.total_usd - 194.68).abs() < 0.05, "{}", trad.total_usd);
    }

    #[test]
    fn cost_advantage_is_about_150_dollars() {
        // The paper's prose says "$150.01 cheaper"; its own Table V
        // figures give 194.68 − 43.67 = 151.01 (prose typo).
        let p = Prices::default();
        let cam = cambricon_bom(80.0, 2.0, &p);
        let trad = traditional_bom(80.0, 0.0, &p);
        let saving = trad.total_usd - cam.total_usd;
        assert!((saving - 151.01).abs() < 0.5, "{saving}");
    }

    #[test]
    fn flash_density_two_orders_above_dram() {
        // §III-B: flash density is two orders of magnitude above DRAM.
        let t = table_i();
        let best_flash = t
            .iter()
            .filter(|e| e.mem_type == "Flash")
            .map(|e| e.density_gb_per_mm2)
            .fold(0.0, f64::max);
        let best_dram = t
            .iter()
            .filter(|e| e.mem_type != "Flash")
            .map(|e| e.density_gb_per_mm2)
            .fold(0.0, f64::max);
        assert!(best_flash / best_dram > 60.0);
    }

    #[test]
    fn a_200gb_chip_is_phone_sized() {
        // §III-B: "a typical 200GB NAND flash chip occupies about 64mm²"
        // — check with the Table I densities (200 GB × 8 bit / density).
        let density = 28.5; // Gb/mm²
        let area_mm2 = 200.0 * 8.0 / density;
        assert!((50.0..70.0).contains(&area_mm2), "{area_mm2}");
    }
}
