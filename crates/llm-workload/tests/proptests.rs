//! Property tests for workload generation, including the contract that
//! pins the lazy [`TokenPlan`] op stream to the eager [`decode_step`]
//! enumeration. `decode_step` is the readable, push-based
//! *specification* of the decode op sequence; `TokenPlan` / `OpStream`
//! / `OpCursor` are the allocation-free representation the serving hot
//! path runs on. The two are written independently on purpose, and
//! these tests keep them observably identical for arbitrary
//! `(model, quant, seq_len)` — the optimization must never change what
//! is simulated, only how fast.

use llm_workload::{decode_step, kv, zoo, AttnPrefix, DecodeOp, OpCursor, Quant, TokenPlan};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = llm_workload::ModelSpec> {
    prop_oneof![
        Just(zoo::opt_6_7b()),
        Just(zoo::opt_13b()),
        Just(zoo::opt_30b()),
        Just(zoo::opt_66b()),
        Just(zoo::llama2_7b()),
        Just(zoo::llama2_13b()),
        Just(zoo::llama2_70b()),
    ]
}

fn arb_quant() -> impl Strategy<Value = Quant> {
    prop_oneof![Just(Quant::W8A8), Just(Quant::W4A16), Just(Quant::W4A8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weight traffic per token is independent of sequence position and
    /// equals the layer weights + LM head under the active quantization.
    #[test]
    fn weight_traffic_invariant(model in arb_model(), quant in arb_quant(), seq in 0usize..3000) {
        let step = decode_step(&model, quant, seq);
        let expect = quant.weight_bytes(
            model.layer_params() * model.layers as u64
                + model.vocab as u64 * model.hidden as u64,
        );
        prop_assert_eq!(step.total_weight_bytes(), expect);
    }

    /// Op counts are quantization-independent (same maths, fewer bytes).
    #[test]
    fn ops_independent_of_quant(model in arb_model(), seq in 0usize..2000) {
        let a = decode_step(&model, Quant::W8A8, seq).total_ops();
        let b = decode_step(&model, Quant::W4A16, seq).total_ops();
        prop_assert_eq!(a, b);
    }

    /// DRAM traffic is affine in sequence length: KV reads grow, the
    /// fixed append cost stays.
    #[test]
    fn dram_traffic_affine(model in arb_model(), seq in 1usize..2000) {
        let d0 = decode_step(&model, Quant::W8A8, seq).total_dram_bytes();
        let d1 = decode_step(&model, Quant::W8A8, seq + 1).total_dram_bytes();
        let d2 = decode_step(&model, Quant::W8A8, seq + 2).total_dram_bytes();
        prop_assert_eq!(d1 - d0, d2 - d1);
        prop_assert!(d1 > d0);
    }

    /// The census exactly partitions the GeMV ops.
    #[test]
    fn census_partitions_gemvs(model in arb_model(), seq in 0usize..500) {
        let step = decode_step(&model, Quant::W8A8, seq);
        let census = step.gemv_shape_census();
        let census_params: u64 = census
            .iter()
            .map(|&(r, c, n)| r as u64 * c as u64 * n as u64)
            .sum();
        let op_params: u64 = step
            .ops
            .iter()
            .filter_map(|o| match o {
                DecodeOp::WeightGemv { rows, cols, .. } =>
                    Some(*rows as u64 * *cols as u64),
                _ => None,
            })
            .sum();
        prop_assert_eq!(census_params, op_params);
    }

    /// KV cache accounting matches the decode stream's append ops.
    #[test]
    fn kv_append_matches_cache_growth(model in arb_model(), quant in arb_quant()) {
        let step = decode_step(&model, quant, 10);
        let appended: u64 = step
            .ops
            .iter()
            .filter_map(|o| match o {
                DecodeOp::KvAppend { bytes } => Some(*bytes),
                _ => None,
            })
            .sum();
        prop_assert_eq!(appended, kv::kv_bytes_per_token(&model, quant));
    }

    /// Decode intensity stays near 2 for W8A8 across the whole zoo and
    /// all context lengths (the paper's central premise).
    #[test]
    fn intensity_near_two(model in arb_model(), seq in 1usize..3000) {
        let step = decode_step(&model, Quant::W8A8, seq);
        let i = step.total_ops() as f64
            / (step.total_weight_bytes() + step.total_dram_bytes()) as f64;
        prop_assert!((1.4..2.6).contains(&i), "{}: {i}", model.name);
    }

    /// The lazy stream yields exactly the eager op sequence: same
    /// length, same ops, same order.
    #[test]
    fn op_stream_equals_eager_decode_step(
        model in arb_model(),
        quant in arb_quant(),
        seq_len in 0usize..4096,
    ) {
        let plan = TokenPlan::new(&model, quant);
        let eager = decode_step(&model, quant, seq_len).ops;
        prop_assert_eq!(plan.len(), eager.len());
        let lazy: Vec<DecodeOp> = plan.stream(seq_len).collect();
        prop_assert_eq!(lazy, eager, "{} {} seq {}", model.name, quant, seq_len);
    }

    /// Random access (`op_at`), cursor iteration, and the stream
    /// iterator all agree — the cursor the serving engine drives is
    /// just another view of the same sequence.
    #[test]
    fn cursor_and_random_access_agree(
        model in arb_model(),
        quant in arb_quant(),
        seq_len in 0usize..2048,
    ) {
        let plan = TokenPlan::new(&model, quant);
        let mut cursor = OpCursor::new(seq_len);
        let mut stream = plan.stream(seq_len);
        for idx in 0..plan.len() {
            let direct = plan.op_at(idx, seq_len);
            prop_assert_eq!(cursor.index(), idx);
            prop_assert_eq!(cursor.next_op(&plan), Some(direct));
            prop_assert_eq!(stream.next(), Some(direct));
        }
        prop_assert!(cursor.exhausted(&plan));
        prop_assert_eq!(stream.next(), None);
    }

    /// Stepping the cursor to the next token equals rebuilding the
    /// stream at `seq_len + 1` — the serving engine's per-token reuse
    /// is sound.
    #[test]
    fn next_token_matches_fresh_stream(
        model in arb_model(),
        quant in arb_quant(),
        seq_len in 0usize..2048,
        tokens in 1usize..4,
    ) {
        let plan = TokenPlan::new(&model, quant);
        let mut cursor = OpCursor::new(seq_len);
        for t in 0..tokens {
            let eager = decode_step(&model, quant, seq_len + t).ops;
            for op in eager {
                prop_assert_eq!(cursor.next_op(&plan), Some(op));
            }
            cursor.next_token();
        }
        prop_assert_eq!(cursor.seq_len(), seq_len + tokens);
        prop_assert_eq!(cursor.index(), 0);
    }

    /// Slot pricing is sound: every op position's cost accounting
    /// (weight bytes, op count, DRAM bytes — the inputs of every cost
    /// formula) matches its slot representative at the same position,
    /// and slot occurrence counts cover the whole token, so a per-slot
    /// cost table prices a token exactly.
    #[test]
    fn slot_representatives_cover_the_token(
        model in arb_model(),
        quant in arb_quant(),
        seq_len in 0usize..2048,
    ) {
        let plan = TokenPlan::new(&model, quant);
        let total: u32 = (0..plan.cost_slots()).map(|s| plan.slot_count(s)).sum();
        prop_assert_eq!(total as usize, plan.len());
        let account = |op: &DecodeOp| (op.weight_bytes(quant), op.ops(), op.dram_bytes());
        for idx in 0..plan.len() {
            let op = plan.op_at(idx, seq_len);
            let rep = plan.slot_op(plan.cost_slot(idx), seq_len);
            prop_assert_eq!(account(&op), account(&rep), "idx {}", idx);
        }
        // Per-token totals reconstructed from slots match the eager step.
        let step = decode_step(&model, quant, seq_len);
        let from_slots: u64 = (0..plan.cost_slots())
            .map(|s| plan.slot_count(s) as u64 * plan.slot_op(s, seq_len).ops())
            .sum();
        prop_assert_eq!(from_slots, step.total_ops());
    }

    /// [`AttnPrefix`] differencing reproduces per-position `OpCursor`
    /// attention pricing op-for-op: each adjacent-entry difference
    /// equals the position's own price as computed by walking the
    /// actual op sequence, and the whole-range difference equals their
    /// left-to-right sum. Covers the 1-token-prompt edge (positions 0
    /// and 1) alongside arbitrary ranges.
    #[test]
    fn attn_prefix_differencing_equals_cursor_pricing(
        model in arb_model(),
        quant in arb_quant(),
        lo in prop_oneof![Just(0usize), Just(1usize), 2usize..1500],
        k in 1usize..32,
    ) {
        let plan = TokenPlan::new(&model, quant);
        let n_inv = plan.invariant_slots();
        let n_dep = plan.dependent_slots();
        // Reference: price position `pos` by walking its ops with an
        // OpCursor and accumulating every cost-formula input (compute
        // ops, weight bytes, DRAM bytes) of the seq-dependent slots.
        let walk = |pos: usize| -> Vec<u64> {
            let mut e = vec![0u64; n_dep * 3];
            let mut cursor = OpCursor::new(pos);
            while let Some(op) = cursor.next_op(&plan) {
                let slot = plan.cost_slot(cursor.index() - 1);
                if slot >= n_inv {
                    let d = slot - n_inv;
                    e[d * 3] += op.ops();
                    e[d * 3 + 1] += op.weight_bytes(quant);
                    e[d * 3 + 2] += op.dram_bytes();
                }
            }
            e
        };
        // Table entries price through the slot representatives, the way
        // the serving engine does.
        let mut price = |pos: usize| -> Vec<u64> {
            let mut e = vec![0u64; n_dep * 3];
            for d in 0..n_dep {
                let rep = plan.slot_op(n_inv + d, pos);
                let count = plan.slot_count(n_inv + d) as u64;
                e[d * 3] = rep.ops() * count;
                e[d * 3 + 1] = rep.weight_bytes(quant) * count;
                e[d * 3 + 2] = rep.dram_bytes() * count;
            }
            e
        };
        let mut add = |a: &mut Vec<u64>, b: &Vec<u64>| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        };
        let mut table: AttnPrefix<Vec<u64>> = AttnPrefix::new();
        table.ensure(lo, lo + k, vec![0; n_dep * 3], &mut price, &mut add);
        let diff = |lo: usize, hi: usize| -> Vec<u64> {
            let (a, b) = table.range(lo, hi);
            a.iter().zip(b).map(|(x, y)| y - x).collect::<Vec<u64>>()
        };
        let mut total = vec![0u64; n_dep * 3];
        for j in 0..k {
            let w = walk(lo + j);
            prop_assert_eq!(&diff(lo + j, lo + j + 1), &w, "position {}", lo + j);
            for (t, x) in total.iter_mut().zip(&w) {
                *t += x;
            }
        }
        prop_assert_eq!(diff(lo, lo + k), total);
    }
}
