//! Decode-phase operation streams.
//!
//! §IV-A of the paper maps every LLM operation onto one of three hardware
//! groups (Figure 5):
//!
//! 1. **NPU + flash co-computation** — every GeMV whose operand is a
//!    *model weight* matrix ([`DecodeOp::WeightGemv`]);
//! 2. **NPU only** — matrix work against the KV cache
//!    ([`DecodeOp::KvMatVec`]) and special functions
//!    ([`DecodeOp::Special`]);
//! 3. **NPU + DRAM** — KV-cache loads/stores ([`DecodeOp::KvAppend`]
//!    and the byte counts inside `KvMatVec`).
//!
//! [`decode_step`] enumerates the full per-token op stream for a model,
//! which the system simulator replays against the hardware models.

use crate::quant::Quant;
use crate::spec::{Family, ModelSpec};

/// Special-function kinds executed by the NPU's SFU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecialKind {
    /// Row softmax over attention scores.
    Softmax,
    /// ReLU (OPT FFN).
    Relu,
    /// SiLU + elementwise gate multiply (Llama SwiGLU).
    Silu,
    /// Rotary position embedding applied to Q and K (Llama).
    Rope,
    /// LayerNorm / RMSNorm.
    Norm,
}

/// One operation of a decode step.
///
/// `Copy`: an op is three words of shape description; simulators pass
/// them by value instead of borrowing or cloning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeOp {
    /// `y = W x` against a weight matrix resident in flash.
    /// `rows × cols` is the matrix shape; executed cooperatively by the
    /// flash compute cores and the NPU (hardware-aware tiling).
    WeightGemv {
        /// Static label for reporting ("Wq", "W2", "lm_head", ...).
        label: &'static str,
        /// Output length.
        rows: usize,
        /// Input length.
        cols: usize,
    },
    /// Matrix-vector work against the KV cache (attention scores `q·Kᵀ`
    /// and context `S·V`), executed on the NPU with operands streamed
    /// from DRAM.
    KvMatVec {
        /// Static label ("scores", "context").
        label: &'static str,
        /// Bytes read from DRAM (the K or V cache slice).
        dram_bytes: u64,
        /// Multiply-accumulate operation count (2 ops per MAC).
        ops: u64,
    },
    /// Special function on the SFU over `elems` elements.
    Special {
        /// Function kind.
        kind: SpecialKind,
        /// Number of elements processed.
        elems: u64,
    },
    /// Appending this token's K and V vectors to the cache in DRAM.
    KvAppend {
        /// Bytes written to DRAM.
        bytes: u64,
    },
}

impl DecodeOp {
    /// Weight bytes this op streams (only `WeightGemv` moves weights).
    pub fn weight_bytes(&self, quant: Quant) -> u64 {
        match self {
            DecodeOp::WeightGemv { rows, cols, .. } => {
                quant.weight_bytes(*rows as u64 * *cols as u64)
            }
            _ => 0,
        }
    }

    /// Arithmetic operations (1 MAC = 2 ops) this op performs.
    pub fn ops(&self) -> u64 {
        match self {
            DecodeOp::WeightGemv { rows, cols, .. } => 2 * *rows as u64 * *cols as u64,
            DecodeOp::KvMatVec { ops, .. } => *ops,
            DecodeOp::Special { elems, .. } => *elems * 4, // exp/div etc. ≈ 4 ops/elem
            DecodeOp::KvAppend { .. } => 0,
        }
    }

    /// DRAM traffic (bytes) this op generates.
    pub fn dram_bytes(&self) -> u64 {
        match self {
            DecodeOp::KvMatVec { dram_bytes, .. } => *dram_bytes,
            DecodeOp::KvAppend { bytes } => *bytes,
            _ => 0,
        }
    }
}

/// Canonical cost shape of a [`DecodeOp`]: everything a shape-driven
/// cost model reads, nothing it ignores.
///
/// Labels and special-function kinds don't enter any latency or
/// traffic formula, so `Wq` and `Wo` (same matrix shape) — or a
/// softmax and a norm over the same element count — collapse to one
/// shape. Two ops with equal `OpShape` are guaranteed the same cost,
/// which makes it a sound memoization key (the system simulator's
/// op-cost cache) and a sound dedup key (a
/// [`TokenPlan`](crate::plan::TokenPlan)'s cost slots). This is the
/// single definition of that contract: a cost model that starts
/// reading a field not captured here must extend this enum first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpShape {
    /// Weight GeMV of `rows × cols` (flash + NPU co-execution).
    Gemv {
        /// Output length.
        rows: usize,
        /// Input length.
        cols: usize,
    },
    /// KV-cache matrix work: `ops` MACs over `dram_bytes` streamed.
    KvStream {
        /// Bytes read from DRAM.
        dram_bytes: u64,
        /// Arithmetic operation count.
        ops: u64,
    },
    /// SFU special function over `elems` elements.
    Sfu {
        /// Elements processed.
        elems: u64,
    },
    /// DRAM write of `bytes` (KV append).
    DramWrite {
        /// Bytes written.
        bytes: u64,
    },
}

impl OpShape {
    /// The canonical shape of `op`.
    pub fn of(op: &DecodeOp) -> OpShape {
        match *op {
            DecodeOp::WeightGemv { rows, cols, .. } => OpShape::Gemv { rows, cols },
            DecodeOp::KvMatVec {
                dram_bytes, ops, ..
            } => OpShape::KvStream { dram_bytes, ops },
            DecodeOp::Special { elems, .. } => OpShape::Sfu { elems },
            DecodeOp::KvAppend { bytes } => OpShape::DramWrite { bytes },
        }
    }
}

/// The complete op stream of one decode step (one generated token).
#[derive(Debug, Clone)]
pub struct DecodeStep {
    /// Model this stream was generated for.
    pub model: ModelSpec,
    /// Quantization scheme.
    pub quant: Quant,
    /// Sequence position (number of tokens already in the KV cache).
    pub seq_len: usize,
    /// Ops in execution order.
    pub ops: Vec<DecodeOp>,
}

impl DecodeStep {
    /// Total weight bytes streamed per token.
    pub fn total_weight_bytes(&self) -> u64 {
        self.ops.iter().map(|o| o.weight_bytes(self.quant)).sum()
    }

    /// Total arithmetic operations per token.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().map(DecodeOp::ops).sum()
    }

    /// Total DRAM traffic per token.
    pub fn total_dram_bytes(&self) -> u64 {
        self.ops.iter().map(DecodeOp::dram_bytes).sum()
    }

    /// The distinct weight-GeMV shapes and how many times each occurs —
    /// layers repeat identical shapes, so simulating one instance of each
    /// shape and scaling is exact for steady-state timing.
    pub fn gemv_shape_census(&self) -> Vec<(usize, usize, usize)> {
        let mut census: Vec<(usize, usize, usize)> = Vec::new();
        for op in &self.ops {
            if let DecodeOp::WeightGemv { rows, cols, .. } = op {
                match census.iter_mut().find(|(r, c, _)| r == rows && c == cols) {
                    Some((_, _, n)) => *n += 1,
                    None => census.push((*rows, *cols, 1)),
                }
            }
        }
        census
    }
}

/// Enumerates the op stream for generating one token at position
/// `seq_len` (so the KV cache currently holds `seq_len` entries).
///
/// This eager push-based enumeration is the readable *specification* of
/// the decode op sequence. Hot paths use [`crate::plan::TokenPlan`],
/// which yields the same stream lazily with no per-token allocation; a
/// property test pins the two implementations to each other, so any
/// edit here must be mirrored there (and vice versa) or the suite
/// fails.
///
/// # Panics
///
/// Panics if the spec fails [`ModelSpec::validate`].
pub fn decode_step(model: &ModelSpec, quant: Quant, seq_len: usize) -> DecodeStep {
    model.validate().expect("invalid model spec");
    let h = model.hidden as u64;
    let kv_dim = model.kv_dim() as u64;
    let heads = model.heads as u64;
    let head_dim = model.head_dim() as u64;
    let s = seq_len as u64 + 1; // including the current token
    let kvb = quant.kv_bytes_per_elem();

    let mut ops = Vec::new();
    for _layer in 0..model.layers {
        ops.push(DecodeOp::Special {
            kind: SpecialKind::Norm,
            elems: h,
        });
        // QKV projections (weights in flash).
        ops.push(DecodeOp::WeightGemv {
            label: "Wq",
            rows: model.hidden,
            cols: model.hidden,
        });
        ops.push(DecodeOp::WeightGemv {
            label: "Wk",
            rows: model.kv_dim(),
            cols: model.hidden,
        });
        ops.push(DecodeOp::WeightGemv {
            label: "Wv",
            rows: model.kv_dim(),
            cols: model.hidden,
        });
        if model.family == Family::Llama2 {
            ops.push(DecodeOp::Special {
                kind: SpecialKind::Rope,
                elems: h + kv_dim,
            });
        }
        // Append K,V of the current token to DRAM.
        ops.push(DecodeOp::KvAppend {
            bytes: 2 * kv_dim * kvb,
        });
        // Attention scores: per head, q·Kᵀ over s positions.
        // DRAM reads the K cache (s × kv_dim); each K element feeds
        // heads/kv_heads score MACs under GQA.
        ops.push(DecodeOp::KvMatVec {
            label: "scores",
            dram_bytes: s * kv_dim * kvb,
            ops: 2 * heads * s * head_dim,
        });
        ops.push(DecodeOp::Special {
            kind: SpecialKind::Softmax,
            elems: heads * s,
        });
        // Context: S·V, reading the V cache.
        ops.push(DecodeOp::KvMatVec {
            label: "context",
            dram_bytes: s * kv_dim * kvb,
            ops: 2 * heads * s * head_dim,
        });
        // Output projection.
        ops.push(DecodeOp::WeightGemv {
            label: "Wo",
            rows: model.hidden,
            cols: model.hidden,
        });
        ops.push(DecodeOp::Special {
            kind: SpecialKind::Norm,
            elems: h,
        });
        // FFN.
        match model.family {
            Family::Opt => {
                ops.push(DecodeOp::WeightGemv {
                    label: "W1",
                    rows: model.ffn,
                    cols: model.hidden,
                });
                ops.push(DecodeOp::Special {
                    kind: SpecialKind::Relu,
                    elems: model.ffn as u64,
                });
                ops.push(DecodeOp::WeightGemv {
                    label: "W2",
                    rows: model.hidden,
                    cols: model.ffn,
                });
            }
            Family::Llama2 => {
                ops.push(DecodeOp::WeightGemv {
                    label: "Wgate",
                    rows: model.ffn,
                    cols: model.hidden,
                });
                ops.push(DecodeOp::WeightGemv {
                    label: "Wup",
                    rows: model.ffn,
                    cols: model.hidden,
                });
                ops.push(DecodeOp::Special {
                    kind: SpecialKind::Silu,
                    elems: 2 * model.ffn as u64,
                });
                ops.push(DecodeOp::WeightGemv {
                    label: "Wdown",
                    rows: model.hidden,
                    cols: model.ffn,
                });
            }
        }
    }
    // Final norm + LM head over the vocabulary.
    ops.push(DecodeOp::Special {
        kind: SpecialKind::Norm,
        elems: h,
    });
    ops.push(DecodeOp::WeightGemv {
        label: "lm_head",
        rows: model.vocab,
        cols: model.hidden,
    });

    DecodeStep {
        model: model.clone(),
        quant,
        seq_len,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn weight_bytes_close_to_full_model() {
        // Per token, every weight is streamed exactly once; the decode
        // stream's weight traffic should match the model weight footprint
        // (embedding table excluded — it is an index lookup, not a GeMV —
        // so allow a few percent slack).
        let m = zoo::opt_6_7b();
        let step = decode_step(&m, Quant::W8A8, 512);
        let streamed = step.total_weight_bytes() as f64;
        let full = m.weight_bytes(8) as f64;
        assert!(
            streamed / full > 0.93 && streamed / full <= 1.0,
            "streamed {streamed} vs full {full}"
        );
    }

    #[test]
    fn ops_per_token_near_paper_claim() {
        // Paper §II-A: Llama-70B generates a token with ~0.14 Tera ops.
        let m = zoo::llama2_70b();
        let step = decode_step(&m, Quant::W8A8, 1000);
        let tera = step.total_ops() as f64 / 1e12;
        assert!((0.1..0.2).contains(&tera), "{tera} TOPs");
    }

    #[test]
    fn arithmetic_intensity_is_about_two() {
        // Paper: decode under INT8 has arithmetic intensity ≈ 2.
        let m = zoo::opt_6_7b();
        let step = decode_step(&m, Quant::W8A8, 128);
        let intensity =
            step.total_ops() as f64 / (step.total_weight_bytes() + step.total_dram_bytes()) as f64;
        assert!((1.8..2.3).contains(&intensity), "{intensity}");
    }

    #[test]
    fn dram_traffic_grows_with_seq_len() {
        let m = zoo::opt_6_7b();
        let short = decode_step(&m, Quant::W8A8, 10);
        let long = decode_step(&m, Quant::W8A8, 1000);
        assert!(long.total_dram_bytes() > 50 * short.total_dram_bytes() / 2);
        assert_eq!(short.total_weight_bytes(), long.total_weight_bytes());
    }

    #[test]
    fn census_covers_all_gemvs() {
        let m = zoo::llama2_70b();
        let step = decode_step(&m, Quant::W8A8, 100);
        let census = step.gemv_shape_census();
        let total: usize = census.iter().map(|&(_, _, n)| n).sum();
        let gemvs = step
            .ops
            .iter()
            .filter(|o| matches!(o, DecodeOp::WeightGemv { .. }))
            .count();
        assert_eq!(total, gemvs);
        // 7 matrices/layer, but Wq/Wo, Wk/Wv and Wgate/Wup each share a
        // shape → 4 distinct per-layer shapes + lm_head.
        assert_eq!(census.len(), 5);
    }

    #[test]
    fn w4_halves_weight_traffic() {
        let m = zoo::opt_13b();
        let w8 = decode_step(&m, Quant::W8A8, 64).total_weight_bytes();
        let w4 = decode_step(&m, Quant::W4A16, 64).total_weight_bytes();
        assert_eq!(w4 * 2, w8);
    }

    #[test]
    fn gqa_shrinks_kv_projections() {
        let m70 = zoo::llama2_70b();
        let step = decode_step(&m70, Quant::W8A8, 1);
        let wk = step
            .ops
            .iter()
            .find_map(|o| match o {
                DecodeOp::WeightGemv {
                    label: "Wk", rows, ..
                } => Some(*rows),
                _ => None,
            })
            .unwrap();
        assert_eq!(wk, 1024); // 8 kv heads × 128 head dim
    }

    #[test]
    fn opt_and_llama_streams_differ_in_ffn() {
        let o = decode_step(&zoo::opt_6_7b(), Quant::W8A8, 10);
        let l = decode_step(&zoo::llama2_7b(), Quant::W8A8, 10);
        let has = |s: &DecodeStep, lbl: &str| {
            s.ops.iter().any(|op| {
                matches!(op,
                DecodeOp::WeightGemv { label, .. } if *label == lbl)
            })
        };
        assert!(has(&o, "W1") && !has(&o, "Wgate"));
        assert!(has(&l, "Wgate") && !has(&l, "W1"));
    }
}
