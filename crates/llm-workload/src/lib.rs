//! # llm-workload — LLM inference workload models
//!
//! Shape-level descriptions of the LLMs the Cambricon-LLM paper evaluates
//! (OPT-6.7B/13B/30B/66B, Llama2-7B/13B/70B), the per-token operation
//! streams of single-batch decode, quantization byte-accounting, KV-cache
//! sizing, and the arithmetic-intensity / reduction-ratio analytics behind
//! Figures 1 and 3(a).
//!
//! No real weights are involved: the simulator needs only matrix shapes
//! and op orderings.
//!
//! ## Example
//!
//! ```
//! use llm_workload::{zoo, Quant, ops::decode_step};
//!
//! let model = zoo::llama2_70b();
//! let step = decode_step(&model, Quant::W8A8, 1000);
//! // One token streams the full ~69 GB of INT8 weights...
//! assert!(step.total_weight_bytes() > 60_000_000_000);
//! // ...for only ~0.14 Tera-ops of compute: intensity ≈ 2 ops/byte.
//! let intensity = step.total_ops() as f64
//!     / (step.total_weight_bytes() + step.total_dram_bytes()) as f64;
//! assert!(intensity > 1.5 && intensity < 2.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod intensity;
pub mod kv;
pub mod ops;
pub mod plan;
pub mod quant;
pub mod spec;
pub mod trace;
pub mod zoo;

pub use batch::{
    batch_to_saturate, batched_decode_intensity, ArrivalTrace, RequestArrival, RequestShape,
};
pub use ops::{decode_step, DecodeOp, DecodeStep, OpShape, SpecialKind};
pub use plan::{AttnPrefix, OpCursor, OpStream, PrefillPlan, TokenPlan};
pub use quant::Quant;
pub use spec::{Family, ModelSpec};
pub use trace::{GenerationTrace, TraceTotals};
