//! Transformer model architecture descriptions.
//!
//! The simulator never touches real weights: everything the timing model
//! needs is the *shape* of each weight matrix and the op sequence of a
//! decode step. [`ModelSpec`] captures exactly that for the decoder-only
//! models the paper evaluates (OPT and Llama-2 families).

use std::fmt;

/// Which family a model belongss to; families differ in FFN structure and
/// attention layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// OPT: ReLU FFN with two projections (`W1: 4h×h`, `W2: h×4h`),
    /// learned positional embeddings, multi-head attention.
    Opt,
    /// Llama-2: SwiGLU FFN with three projections (gate/up/down), RoPE,
    /// grouped-query attention on the 70B variant.
    Llama2,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Opt => write!(f, "OPT"),
            Family::Llama2 => write!(f, "Llama2"),
        }
    }
}

/// Architecture of a decoder-only transformer, sufficient to enumerate
/// every weight matrix and every decode-phase operation.
///
/// # Examples
///
/// ```
/// use llm_workload::zoo;
///
/// let m = zoo::opt_6_7b();
/// // Parameter count derived from shapes lands within 3% of the nominal 6.7B.
/// let p = m.param_count() as f64;
/// assert!((p - 6.7e9).abs() / 6.7e9 < 0.05, "{p}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelSpec {
    /// Human-readable name, e.g. `"OPT-6.7B"`.
    pub name: &'static str,
    /// Model family.
    pub family: Family,
    /// Number of decoder layers.
    pub layers: usize,
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Number of key/value heads (< `heads` under grouped-query attention).
    pub kv_heads: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Maximum sequence length the model supports.
    pub max_seq: usize,
}

impl ModelSpec {
    /// Dimension of one attention head.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads` (invalid spec).
    pub fn head_dim(&self) -> usize {
        assert!(
            self.hidden % self.heads == 0,
            "hidden {} not divisible by heads {}",
            self.hidden,
            self.heads
        );
        self.hidden / self.heads
    }

    /// Total dimension of the K (or V) projection output:
    /// `kv_heads * head_dim`. Equals `hidden` without GQA.
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// Shapes `(rows, cols)` of every distinct weight matrix in one layer,
    /// in execution order. `y = W x` convention: `W` is `rows × cols`,
    /// the input activation has length `cols`.
    pub fn layer_matrices(&self) -> Vec<(&'static str, usize, usize)> {
        let h = self.hidden;
        let kv = self.kv_dim();
        match self.family {
            Family::Opt => vec![
                ("Wq", h, h),
                ("Wk", kv, h),
                ("Wv", kv, h),
                ("Wo", h, h),
                ("W1", self.ffn, h),
                ("W2", h, self.ffn),
            ],
            Family::Llama2 => vec![
                ("Wq", h, h),
                ("Wk", kv, h),
                ("Wv", kv, h),
                ("Wo", h, h),
                ("Wgate", self.ffn, h),
                ("Wup", self.ffn, h),
                ("Wdown", h, self.ffn),
            ],
        }
    }

    /// Parameters in one decoder layer (weight matrices only; norms and
    /// biases are < 0.1% and ignored, as the paper does).
    pub fn layer_params(&self) -> u64 {
        self.layer_matrices()
            .iter()
            .map(|&(_, r, c)| r as u64 * c as u64)
            .sum()
    }

    /// Total parameter count: all layers plus the embedding table and the
    /// output (LM-head) projection.
    pub fn param_count(&self) -> u64 {
        let embed = self.vocab as u64 * self.hidden as u64;
        // OPT additionally learns positional embeddings.
        let pos = match self.family {
            Family::Opt => self.max_seq as u64 * self.hidden as u64,
            Family::Llama2 => 0,
        };
        self.layer_params() * self.layers as u64 + 2 * embed + pos
    }

    /// Bytes of weight storage under `bits`-bit weight quantization.
    pub fn weight_bytes(&self, bits: u32) -> u64 {
        self.param_count() * bits as u64 / 8
    }

    /// The smallest weight matrix in a layer, in parameters. The paper
    /// notes the smallest Llama2-7B matrix is 16 MB under INT8, so page
    /// granularity (16 KB) fragmentation is negligible.
    pub fn smallest_matrix_params(&self) -> u64 {
        self.layer_matrices()
            .iter()
            .map(|&(_, r, c)| r as u64 * c as u64)
            .min()
            .expect("layer has matrices")
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (divisibility, nonzero dims, GQA head counts).
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 || self.hidden == 0 || self.heads == 0 || self.ffn == 0 {
            return Err(format!("{}: zero-sized dimension", self.name));
        }
        if self.hidden % self.heads != 0 {
            return Err(format!(
                "{}: hidden {} not divisible by heads {}",
                self.name, self.hidden, self.heads
            ));
        }
        if self.kv_heads == 0 || self.heads % self.kv_heads != 0 {
            return Err(format!(
                "{}: heads {} not a multiple of kv_heads {}",
                self.name, self.heads, self.kv_heads
            ));
        }
        Ok(())
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, hidden {}, {} heads, ffn {})",
            self.name, self.layers, self.hidden, self.heads, self.ffn
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::zoo;

    #[test]
    fn head_dim_and_kv_dim() {
        let m = zoo::llama2_70b();
        assert_eq!(m.head_dim(), 128);
        assert_eq!(m.kv_dim(), 1024); // 8 kv heads × 128 (GQA)
        let o = zoo::opt_6_7b();
        assert_eq!(o.kv_dim(), o.hidden); // no GQA
    }

    #[test]
    fn opt_layer_has_six_matrices_llama_seven() {
        assert_eq!(zoo::opt_6_7b().layer_matrices().len(), 6);
        assert_eq!(zoo::llama2_7b().layer_matrices().len(), 7);
    }

    #[test]
    fn all_zoo_models_validate() {
        for m in zoo::all() {
            m.validate().unwrap();
        }
    }

    #[test]
    fn param_counts_match_nominal_sizes() {
        // Within 6% of the marketing number (which excludes/includes
        // embeddings inconsistently across papers).
        let cases = [
            (zoo::opt_6_7b(), 6.7e9),
            (zoo::opt_13b(), 13.0e9),
            (zoo::opt_30b(), 30.0e9),
            (zoo::opt_66b(), 66.0e9),
            (zoo::llama2_7b(), 6.7e9),
            (zoo::llama2_13b(), 13.0e9),
            (zoo::llama2_70b(), 69.0e9),
        ];
        for (m, nominal) in cases {
            let p = m.param_count() as f64;
            assert!(
                (p - nominal).abs() / nominal < 0.06,
                "{}: {p} vs nominal {nominal}",
                m.name
            );
        }
    }

    #[test]
    fn weight_bytes_scale_with_bits() {
        let m = zoo::opt_6_7b();
        assert_eq!(m.weight_bytes(8), m.param_count());
        assert_eq!(m.weight_bytes(4), m.param_count() / 2);
    }

    #[test]
    fn smallest_llama7b_matrix_is_16mb_claim() {
        // Paper §III-B: "even the smallest weight matrix of the llama2-7B
        // model is 16MB" under INT8.
        let m = zoo::llama2_7b();
        assert_eq!(m.smallest_matrix_params(), 4096 * 4096);
        assert!(m.smallest_matrix_params() >= 16 * 1024 * 1024);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut m = zoo::opt_6_7b();
        m.heads = 33;
        assert!(m.validate().is_err());
        let mut m2 = zoo::llama2_70b();
        m2.kv_heads = 7;
        assert!(m2.validate().is_err());
        let mut m3 = zoo::opt_6_7b();
        m3.layers = 0;
        assert!(m3.validate().is_err());
    }
}
