//! Quantization schemes.
//!
//! The paper's default is W8A8 (SmoothQuant offline INT8); §VIII-B also
//! evaluates W4A16 (4-bit weights, 16-bit activations). Quantization in
//! this reproduction is purely a *byte-accounting* concern for the timing
//! and energy models — numerical fidelity of quantized weights is
//! exercised separately by `accuracy-lab`.

use std::fmt;

/// Weight/activation quantization of an inference run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Quant {
    /// 8-bit weights, 8-bit activations (paper default, via SmoothQuant).
    #[default]
    W8A8,
    /// 4-bit weights, 16-bit activations (paper §VIII-B).
    W4A16,
    /// 4-bit weights, 8-bit activations (extension: the paper argues its
    /// architecture benefits proportionally from more aggressive schemes).
    W4A8,
}

impl Quant {
    /// Weight width in bits.
    pub const fn weight_bits(self) -> u32 {
        match self {
            Quant::W8A8 => 8,
            Quant::W4A16 | Quant::W4A8 => 4,
        }
    }

    /// Activation width in bits.
    pub const fn act_bits(self) -> u32 {
        match self {
            Quant::W8A8 | Quant::W4A8 => 8,
            Quant::W4A16 => 16,
        }
    }

    /// Bytes occupied by `params` weights.
    pub const fn weight_bytes(self, params: u64) -> u64 {
        params * self.weight_bits() as u64 / 8
    }

    /// Bytes occupied by `elems` activations.
    pub const fn act_bytes(self, elems: u64) -> u64 {
        elems * self.act_bits() as u64 / 8
    }

    /// Bytes per KV-cache element. KV entries are stored at activation
    /// precision (they are activations).
    pub const fn kv_bytes_per_elem(self) -> u64 {
        self.act_bits() as u64 / 8
    }

    /// All schemes, for sweeps.
    pub const fn all() -> [Quant; 3] {
        [Quant::W8A8, Quant::W4A16, Quant::W4A8]
    }
}

impl fmt::Display for Quant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quant::W8A8 => write!(f, "W8A8"),
            Quant::W4A16 => write!(f, "W4A16"),
            Quant::W4A8 => write!(f, "W4A8"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        assert_eq!(Quant::W8A8.weight_bytes(1000), 1000);
        assert_eq!(Quant::W4A16.weight_bytes(1000), 500);
        assert_eq!(Quant::W8A8.act_bytes(1000), 1000);
        assert_eq!(Quant::W4A16.act_bytes(1000), 2000);
        assert_eq!(Quant::W4A8.weight_bytes(1000), 500);
        assert_eq!(Quant::W4A8.act_bytes(1000), 1000);
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(Quant::default(), Quant::W8A8);
    }

    #[test]
    fn kv_precision_follows_activations() {
        assert_eq!(Quant::W8A8.kv_bytes_per_elem(), 1);
        assert_eq!(Quant::W4A16.kv_bytes_per_elem(), 2);
    }

    #[test]
    fn display_names() {
        assert_eq!(Quant::W8A8.to_string(), "W8A8");
        assert_eq!(Quant::W4A16.to_string(), "W4A16");
    }
}
