//! The model zoo: every model the paper evaluates.
//!
//! Architecture numbers are the published configurations of the OPT
//! (Zhang et al., 2022) and Llama-2 (Touvron et al., 2023) releases.

use crate::spec::{Family, ModelSpec};

/// OPT-6.7B: 32 layers × 4096 hidden.
pub fn opt_6_7b() -> ModelSpec {
    ModelSpec {
        name: "OPT-6.7B",
        family: Family::Opt,
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 32,
        ffn: 16384,
        vocab: 50272,
        max_seq: 2048,
    }
}

/// OPT-13B: 40 layers × 5120 hidden.
pub fn opt_13b() -> ModelSpec {
    ModelSpec {
        name: "OPT-13B",
        family: Family::Opt,
        layers: 40,
        hidden: 5120,
        heads: 40,
        kv_heads: 40,
        ffn: 20480,
        vocab: 50272,
        max_seq: 2048,
    }
}

/// OPT-30B: 48 layers × 7168 hidden.
pub fn opt_30b() -> ModelSpec {
    ModelSpec {
        name: "OPT-30B",
        family: Family::Opt,
        layers: 48,
        hidden: 7168,
        heads: 56,
        kv_heads: 56,
        ffn: 28672,
        vocab: 50272,
        max_seq: 2048,
    }
}

/// OPT-66B: 64 layers × 9216 hidden.
pub fn opt_66b() -> ModelSpec {
    ModelSpec {
        name: "OPT-66B",
        family: Family::Opt,
        layers: 64,
        hidden: 9216,
        heads: 72,
        kv_heads: 72,
        ffn: 36864,
        vocab: 50272,
        max_seq: 2048,
    }
}

/// Llama2-7B: 32 layers × 4096 hidden, SwiGLU FFN 11008.
pub fn llama2_7b() -> ModelSpec {
    ModelSpec {
        name: "Llama2-7B",
        family: Family::Llama2,
        layers: 32,
        hidden: 4096,
        heads: 32,
        kv_heads: 32,
        ffn: 11008,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama2-13B: 40 layers × 5120 hidden, SwiGLU FFN 13824.
pub fn llama2_13b() -> ModelSpec {
    ModelSpec {
        name: "Llama2-13B",
        family: Family::Llama2,
        layers: 40,
        hidden: 5120,
        heads: 40,
        kv_heads: 40,
        ffn: 13824,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama2-70B: 80 layers × 8192 hidden, GQA with 8 KV heads, FFN 28672.
pub fn llama2_70b() -> ModelSpec {
    ModelSpec {
        name: "Llama2-70B",
        family: Family::Llama2,
        layers: 80,
        hidden: 8192,
        heads: 64,
        kv_heads: 8,
        ffn: 28672,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Every model in the zoo, in the order the paper's figures list them.
pub fn all() -> Vec<ModelSpec> {
    vec![
        opt_6_7b(),
        opt_13b(),
        opt_30b(),
        opt_66b(),
        llama2_7b(),
        llama2_13b(),
        llama2_70b(),
    ]
}

/// The OPT models (Figure 9(a), 12–16 x-axes).
pub fn opt_family() -> Vec<ModelSpec> {
    vec![opt_6_7b(), opt_13b(), opt_30b(), opt_66b()]
}

/// The Llama-2 models (Figure 9(b)).
pub fn llama_family() -> Vec<ModelSpec> {
    vec![llama2_7b(), llama2_13b(), llama2_70b()]
}

/// Looks a model up by its display name (case-insensitive).
///
/// # Examples
///
/// ```
/// use llm_workload::zoo;
/// assert_eq!(zoo::by_name("opt-6.7b").unwrap().layers, 32);
/// assert!(zoo::by_name("gpt-5").is_none());
/// ```
pub fn by_name(name: &str) -> Option<ModelSpec> {
    all()
        .into_iter()
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_seven_models() {
        assert_eq!(all().len(), 7);
        assert_eq!(opt_family().len(), 4);
        assert_eq!(llama_family().len(), 3);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|m| m.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("LLAMA2-70B").is_some());
        assert!(by_name("Llama2-70b").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn gqa_only_on_70b() {
        for m in all() {
            if m.name == "Llama2-70B" {
                assert!(m.kv_heads < m.heads);
            } else {
                assert_eq!(m.kv_heads, m.heads);
            }
        }
    }

    #[test]
    fn param_counts_ascend_within_families() {
        let opt = opt_family();
        for w in opt.windows(2) {
            assert!(w[0].param_count() < w[1].param_count());
        }
        let llama = llama_family();
        for w in llama.windows(2) {
            assert!(w[0].param_count() < w[1].param_count());
        }
    }
}
