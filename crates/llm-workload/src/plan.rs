//! Precomputed per-model decode plans and lazy op streams.
//!
//! [`decode_step`](crate::ops::decode_step) enumerates the full op
//! stream of one token into a fresh `Vec` — fine for one-shot analysis,
//! but a serving engine replays that stream for *every token of every
//! request*, and almost none of it changes between tokens: the weight
//! GeMVs, norms, activations and KV appends are fixed by the
//! `(model, quant)` pair, and only the attention ops (`scores`,
//! `softmax`, `context`) grow with the sequence position.
//!
//! [`TokenPlan`] captures that split once: a layer template of
//! seq-invariant ops plus the three seq-dependent attention templates,
//! each position tagged with a **cost slot** — an index that is equal
//! for ops guaranteed to have identical execution cost (same canonical
//! shape), which is what lets a simulator price each slot once and
//! replay tokens with array lookups instead of re-deriving every op.
//!
//! [`OpStream`] / [`OpCursor`] walk a plan lazily, materializing each
//! [`DecodeOp`] on the fly (a few integer multiplies) with **no
//! per-token allocation**. The stream is observably identical to the
//! eager enumeration — `decode_step` keeps its original push-based body
//! as the readable specification, and a property test pins
//! `TokenPlan::stream` to it op for op.
//!
//! # Example
//!
//! ```
//! use llm_workload::{decode_step, zoo, Quant, TokenPlan};
//!
//! let model = zoo::llama2_70b();
//! let plan = TokenPlan::new(&model, Quant::W8A8);
//! // Lazy stream == eager enumeration, with zero per-token allocation.
//! let eager = decode_step(&model, Quant::W8A8, 1000).ops;
//! assert!(plan.stream(1000).eq(eager.into_iter()));
//! // Far fewer cost slots than ops: layers repeat the same shapes.
//! assert!(plan.cost_slots() < plan.len() / 50);
//! ```

use crate::ops::{DecodeOp, OpShape, SpecialKind};
use crate::quant::Quant;
use crate::spec::{Family, ModelSpec};

/// One position of a [`TokenPlan`]: either an op fixed by the model
/// shape, or a template for an attention op that depends on the
/// sequence position `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanOp {
    /// Seq-invariant op, stored fully materialized.
    Fixed(DecodeOp),
    /// Attention scores `q·Kᵀ`: DRAM bytes and MACs grow with `s`.
    Scores,
    /// Row softmax over `heads × s` attention scores.
    Softmax,
    /// Attention context `S·V`: DRAM bytes and MACs grow with `s`.
    Context,
}

/// The precomputed decode plan of one `(model, quant)` pair: the full
/// per-token op sequence with the seq-invariant ops materialized once
/// and the seq-dependent attention ops kept as templates.
///
/// Build it once per model, then [`stream`](TokenPlan::stream) (or an
/// [`OpCursor`]) yields the op sequence of any token without allocating.
#[derive(Debug, Clone)]
pub struct TokenPlan {
    quant: Quant,
    /// Per-token op sequence (templates in execution order).
    ops: Vec<PlanOp>,
    /// Cost slot of each op position; see [`TokenPlan::cost_slot`].
    slots: Vec<u32>,
    /// Representative template per slot, invariant slots first.
    slot_reps: Vec<PlanOp>,
    /// Ops per token mapping to each slot.
    slot_counts: Vec<u32>,
    /// Slots below this index are seq-invariant.
    invariant_slots: usize,
    // Scalars for materializing the attention templates.
    kv_dim: u64,
    heads: u64,
    head_dim: u64,
    kv_bytes: u64,
}

impl TokenPlan {
    /// Builds the plan for `model` under `quant`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ModelSpec::validate`].
    pub fn new(model: &ModelSpec, quant: Quant) -> Self {
        model.validate().expect("invalid model spec");
        let h = model.hidden as u64;
        let kv_dim = model.kv_dim() as u64;

        let mut ops = Vec::new();
        for _layer in 0..model.layers {
            ops.push(PlanOp::Fixed(DecodeOp::Special {
                kind: SpecialKind::Norm,
                elems: h,
            }));
            ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                label: "Wq",
                rows: model.hidden,
                cols: model.hidden,
            }));
            ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                label: "Wk",
                rows: model.kv_dim(),
                cols: model.hidden,
            }));
            ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                label: "Wv",
                rows: model.kv_dim(),
                cols: model.hidden,
            }));
            if model.family == Family::Llama2 {
                ops.push(PlanOp::Fixed(DecodeOp::Special {
                    kind: SpecialKind::Rope,
                    elems: h + kv_dim,
                }));
            }
            ops.push(PlanOp::Fixed(DecodeOp::KvAppend {
                bytes: 2 * kv_dim * quant.kv_bytes_per_elem(),
            }));
            ops.push(PlanOp::Scores);
            ops.push(PlanOp::Softmax);
            ops.push(PlanOp::Context);
            ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                label: "Wo",
                rows: model.hidden,
                cols: model.hidden,
            }));
            ops.push(PlanOp::Fixed(DecodeOp::Special {
                kind: SpecialKind::Norm,
                elems: h,
            }));
            match model.family {
                Family::Opt => {
                    ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                        label: "W1",
                        rows: model.ffn,
                        cols: model.hidden,
                    }));
                    ops.push(PlanOp::Fixed(DecodeOp::Special {
                        kind: SpecialKind::Relu,
                        elems: model.ffn as u64,
                    }));
                    ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                        label: "W2",
                        rows: model.hidden,
                        cols: model.ffn,
                    }));
                }
                Family::Llama2 => {
                    ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                        label: "Wgate",
                        rows: model.ffn,
                        cols: model.hidden,
                    }));
                    ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                        label: "Wup",
                        rows: model.ffn,
                        cols: model.hidden,
                    }));
                    ops.push(PlanOp::Fixed(DecodeOp::Special {
                        kind: SpecialKind::Silu,
                        elems: 2 * model.ffn as u64,
                    }));
                    ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
                        label: "Wdown",
                        rows: model.hidden,
                        cols: model.ffn,
                    }));
                }
            }
        }
        ops.push(PlanOp::Fixed(DecodeOp::Special {
            kind: SpecialKind::Norm,
            elems: h,
        }));
        ops.push(PlanOp::Fixed(DecodeOp::WeightGemv {
            label: "lm_head",
            rows: model.vocab,
            cols: model.hidden,
        }));

        // Assign cost slots: invariant ops dedup by canonical shape
        // (seq_len = 0 is representative — invariant ops don't read it),
        // then one slot per distinct seq-dependent template.
        let mut slot_reps: Vec<PlanOp> = Vec::new();
        let mut slot_counts: Vec<u32> = Vec::new();
        let mut slots = Vec::with_capacity(ops.len());
        let assign = |templates: &mut Vec<PlanOp>, counts: &mut Vec<u32>, op: &PlanOp| -> u32 {
            let key = |p: &PlanOp| match p {
                PlanOp::Fixed(op) => Some(OpShape::of(op)),
                _ => None,
            };
            let pos = templates.iter().position(|t| match (key(t), key(op)) {
                (Some(a), Some(b)) => a == b,
                (None, None) => t == op,
                _ => false,
            });
            match pos {
                Some(i) => {
                    counts[i] += 1;
                    i as u32
                }
                None => {
                    templates.push(*op);
                    counts.push(1);
                    (templates.len() - 1) as u32
                }
            }
        };
        // Two passes keep all invariant slots in front of the
        // seq-dependent ones, so `slot < invariant_slots()` is the
        // "price once, reuse forever" test.
        let mut dep_reps: Vec<PlanOp> = Vec::new();
        let mut dep_counts: Vec<u32> = Vec::new();
        for op in &ops {
            match op {
                PlanOp::Fixed(_) => {
                    slots.push(assign(&mut slot_reps, &mut slot_counts, op));
                }
                _ => {
                    // placeholder, patched below once the invariant
                    // region size is known
                    slots.push(u32::MAX - assign(&mut dep_reps, &mut dep_counts, op));
                }
            }
        }
        let invariant_slots = slot_reps.len();
        for s in &mut slots {
            if *s > invariant_slots as u32 {
                *s = invariant_slots as u32 + (u32::MAX - *s);
            }
        }
        slot_reps.extend(dep_reps);
        slot_counts.extend(dep_counts);

        TokenPlan {
            quant,
            ops,
            slots,
            slot_reps,
            slot_counts,
            invariant_slots,
            kv_dim,
            heads: model.heads as u64,
            head_dim: model.head_dim() as u64,
            kv_bytes: quant.kv_bytes_per_elem(),
        }
    }

    /// Quantization scheme the plan was built for.
    pub fn quant(&self) -> Quant {
        self.quant
    }

    /// Ops per token (identical for every token of the model).
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the plan is empty (never true for a valid model).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Materializes one template at a sequence position.
    fn materialize(&self, op: PlanOp, seq_len: usize) -> DecodeOp {
        let s = seq_len as u64 + 1; // including the current token
        match op {
            PlanOp::Fixed(op) => op,
            PlanOp::Scores => DecodeOp::KvMatVec {
                label: "scores",
                dram_bytes: s * self.kv_dim * self.kv_bytes,
                ops: 2 * self.heads * s * self.head_dim,
            },
            PlanOp::Softmax => DecodeOp::Special {
                kind: SpecialKind::Softmax,
                elems: self.heads * s,
            },
            PlanOp::Context => DecodeOp::KvMatVec {
                label: "context",
                dram_bytes: s * self.kv_dim * self.kv_bytes,
                ops: 2 * self.heads * s * self.head_dim,
            },
        }
    }

    /// The `idx`-th op of a token generated at position `seq_len`
    /// (the KV cache holds `seq_len` entries). O(1), no allocation.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn op_at(&self, idx: usize, seq_len: usize) -> DecodeOp {
        self.materialize(self.ops[idx], seq_len)
    }

    /// Cost slot of the `idx`-th op. Two positions share a slot exactly
    /// when their ops have identical execution cost at every sequence
    /// position (same canonical shape for invariant ops, same template
    /// for attention ops), so a per-slot cost table replaces per-op
    /// pricing.
    #[inline]
    pub fn cost_slot(&self, idx: usize) -> usize {
        self.slots[idx] as usize
    }

    /// Number of distinct cost slots (a few per model, vs hundreds of
    /// ops per token).
    pub fn cost_slots(&self) -> usize {
        self.slot_reps.len()
    }

    /// Slots `0..invariant_slots()` are seq-invariant: price once per
    /// system, reuse for every token. The remaining slots must be
    /// re-priced per sequence position.
    pub fn invariant_slots(&self) -> usize {
        self.invariant_slots
    }

    /// A representative op of `slot` at `seq_len` (invariant slots
    /// ignore `seq_len`). Pricing this op prices every op in the slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= cost_slots()`.
    pub fn slot_op(&self, slot: usize, seq_len: usize) -> DecodeOp {
        self.materialize(self.slot_reps[slot], seq_len)
    }

    /// How many ops of one token map to `slot`.
    pub fn slot_count(&self, slot: usize) -> u32 {
        self.slot_counts[slot]
    }

    /// Whether `slot`'s ops are weight GeMVs — the ops whose NAND
    /// weight stream a batched scheduler fetches **once** per batch
    /// step and shares across every request parked at the same plan
    /// position (cloud-style weight amortization). Weight slots are
    /// always seq-invariant, so a batched step prices them from the
    /// invariant table regardless of batch composition.
    pub fn slot_is_weight(&self, slot: usize) -> bool {
        matches!(
            self.slot_reps[slot],
            PlanOp::Fixed(DecodeOp::WeightGemv { .. })
        )
    }

    /// Ops per token whose weight fetch a batch shares (the plan
    /// positions mapping to weight slots). The remaining
    /// `len() - weight_ops_per_token()` positions are per-request work
    /// that scales with batch size.
    pub fn weight_ops_per_token(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PlanOp::Fixed(DecodeOp::WeightGemv { .. })))
            .count()
    }

    /// Number of seq-dependent cost slots (`cost_slots() -
    /// invariant_slots()`): the attention templates a scheduler must
    /// re-price per request from its sequence position when composing
    /// a batch.
    pub fn dependent_slots(&self) -> usize {
        self.slot_reps.len() - self.invariant_slots
    }

    /// A lazy iterator over the ops of one token at position `seq_len`.
    /// Equivalent to `decode_step(model, quant, seq_len).ops` without
    /// the allocation.
    pub fn stream(&self, seq_len: usize) -> OpStream<'_> {
        OpStream {
            plan: self,
            cursor: OpCursor::new(seq_len),
        }
    }
}

/// Aggregate workload of the **prefill** phase of one `(model, quant)`
/// pair, precomputed once like a [`TokenPlan`] and evaluated at any
/// prompt length without re-enumerating ops.
///
/// §II-A: prefill processes all `m` prompt tokens in parallel, reusing
/// each weight tile across the whole block — the weights stream from
/// flash **once** (plain reads; the in-flash cores are GeMV-only, so
/// the `m`-wide GeMMs run on the NPU) while the NPU applies them to
/// every token. The plan therefore splits into:
///
/// * a prompt-length-invariant weight stream (`weight_bytes`), and
/// * NPU-side compute that scales with `m`: the GeMM MACs (linear),
///   attention over the growing prefix (quadratic, averaged to `m²/2`),
///   special functions and KV writes (linear, plus the softmax term
///   that grows with the prefix).
///
/// All totals are exact integer aggregates of the per-token decode op
/// stream evaluated at the prompt's final position, with the
/// triangular prefix average computed by ceiling division so even a
/// 1-token prompt books its (tiny but nonzero) attention cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefillPlan {
    quant: Quant,
    /// Weight bytes of one token's ops — streamed once for the phase.
    weight_bytes: u64,
    /// GeMM MAC-ops (2·rows·cols summed over weight ops) per token.
    gemm_ops_per_token: u64,
    /// Attention MAC-ops of one token at sequence position 1, summed
    /// over the attention ops (scores + context × layers). Position `s`
    /// costs `s ×` this.
    attn_ops_coeff: u64,
    /// Attention DRAM bytes at sequence position 1 (same scaling).
    attn_dram_coeff: u64,
    /// Softmax SFU elements at sequence position 1 (`heads × layers`).
    softmax_elems_coeff: u64,
    /// Sequence-invariant SFU elements per token (norms, activations,
    /// RoPE).
    sfu_fixed_elems: u64,
    /// KV bytes appended to DRAM per token.
    kv_append_bytes: u64,
}

impl PrefillPlan {
    /// Builds the prefill plan for `model` under `quant`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`ModelSpec::validate`].
    pub fn new(model: &ModelSpec, quant: Quant) -> Self {
        // The per-token op stream at sequence position 1 (seq_len 0)
        // exposes every coefficient: seq-dependent ops scale linearly
        // with the position, everything else is invariant.
        let step = crate::ops::decode_step(model, quant, 0);
        let mut plan = PrefillPlan {
            quant,
            weight_bytes: 0,
            gemm_ops_per_token: 0,
            attn_ops_coeff: 0,
            attn_dram_coeff: 0,
            softmax_elems_coeff: 0,
            sfu_fixed_elems: 0,
            kv_append_bytes: 0,
        };
        for op in &step.ops {
            match op {
                DecodeOp::WeightGemv { rows, cols, .. } => {
                    plan.weight_bytes += quant.weight_bytes(*rows as u64 * *cols as u64);
                    plan.gemm_ops_per_token += 2 * *rows as u64 * *cols as u64;
                }
                DecodeOp::KvMatVec {
                    ops, dram_bytes, ..
                } => {
                    plan.attn_ops_coeff += ops;
                    plan.attn_dram_coeff += dram_bytes;
                }
                DecodeOp::Special {
                    kind: SpecialKind::Softmax,
                    elems,
                } => plan.softmax_elems_coeff += elems,
                DecodeOp::Special { elems, .. } => plan.sfu_fixed_elems += elems,
                DecodeOp::KvAppend { bytes } => plan.kv_append_bytes += bytes,
            }
        }
        plan
    }

    /// Quantization scheme the plan was built for.
    pub fn quant(&self) -> Quant {
        self.quant
    }

    /// Weight bytes the phase streams from flash — **once**, regardless
    /// of prompt length (the whole point of prefill).
    pub fn weight_bytes(&self) -> u64 {
        self.weight_bytes
    }

    /// NPU GeMM MAC-ops for an `m`-token prompt: every weight matrix
    /// multiplies all `m` token activations.
    pub fn gemm_ops(&self, m: usize) -> u64 {
        self.gemm_ops_per_token * m as u64
    }

    /// Attention `(mac_ops, dram_bytes)` for an `m`-token prompt.
    ///
    /// Token `t` attends to a `t`-long prefix, so the total over the
    /// block is the triangular sum `≈ m²/2 ×` the position-1
    /// coefficient. Computed with ceiling division so `m = 1` books a
    /// nonzero cost (plain `/ 2` on the integer product truncated it
    /// to zero).
    pub fn attention(&self, m: usize) -> (u64, u64) {
        let m = m as u64;
        (
            (self.attn_ops_coeff * m * m).div_ceil(2),
            (self.attn_dram_coeff * m * m).div_ceil(2),
        )
    }

    /// SFU elements for an `m`-token prompt: the invariant per-token
    /// work × `m`, plus the softmax rows over each token's growing
    /// prefix — the same triangular `≈ m²/2` average (ceiling
    /// division) as [`PrefillPlan::attention`], since token `t` only
    /// softmaxes a `t`-long score row.
    pub fn sfu_elems(&self, m: usize) -> u64 {
        let m = m as u64;
        self.sfu_fixed_elems * m + (self.softmax_elems_coeff * m * m).div_ceil(2)
    }

    /// KV-cache bytes written to DRAM for an `m`-token prompt.
    pub fn kv_write_bytes(&self, m: usize) -> u64 {
        self.kv_append_bytes * m as u64
    }
}

/// A detached position in a [`TokenPlan`]'s op sequence.
///
/// The cursor does not borrow the plan, so long-lived schedulers (one
/// cursor per in-flight request, one shared plan) can store it inline;
/// pass the plan to each method. For simple iteration use
/// [`TokenPlan::stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCursor {
    seq_len: usize,
    idx: usize,
}

impl OpCursor {
    /// A cursor at the first op of a token generated at `seq_len`.
    pub fn new(seq_len: usize) -> Self {
        OpCursor { seq_len, idx: 0 }
    }

    /// Sequence position this cursor's token is generated at.
    #[inline]
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Index of the current op within the token.
    #[inline]
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Whether every op of the token has been yielded.
    #[inline]
    pub fn exhausted(&self, plan: &TokenPlan) -> bool {
        self.idx >= plan.len()
    }

    /// The current op, or `None` when exhausted. O(1), no allocation.
    pub fn peek(&self, plan: &TokenPlan) -> Option<DecodeOp> {
        (self.idx < plan.len()).then(|| plan.op_at(self.idx, self.seq_len))
    }

    /// Steps past the current op.
    #[inline]
    pub fn advance(&mut self) {
        self.idx += 1;
    }

    /// Yields the current op and steps past it.
    pub fn next_op(&mut self, plan: &TokenPlan) -> Option<DecodeOp> {
        let op = self.peek(plan)?;
        self.idx += 1;
        Some(op)
    }

    /// Resets to the first op of the *next* token (one more entry in
    /// the KV cache).
    pub fn next_token(&mut self) {
        self.seq_len += 1;
        self.idx = 0;
    }

    /// Advances `tokens` whole tokens in one shot: the KV cache grows
    /// by `tokens` entries and the cursor rewinds to the first op of
    /// the new token. `advance_by(1)` is exactly
    /// [`next_token`](OpCursor::next_token); `advance_by(0)` only
    /// rewinds to the token start. This is the cursor side of span
    /// fast-forwarding: a scheduler that bulk-prices a run of tokens
    /// moves every in-flight cursor here instead of stepping each op.
    pub fn advance_by(&mut self, tokens: usize) {
        self.seq_len += tokens;
        self.idx = 0;
    }

    /// Parks the cursor at op `idx` of the current token (without
    /// touching the sequence position). Indices at or past the plan
    /// length mean "exhausted", same as after walking every op.
    pub fn seek(&mut self, idx: usize) {
        self.idx = idx;
    }

    /// Resets to the first op of a token at `seq_len`.
    pub fn reset(&mut self, seq_len: usize) {
        self.seq_len = seq_len;
        self.idx = 0;
    }
}

/// Borrowing iterator over one token's ops; see [`TokenPlan::stream`].
#[derive(Debug, Clone)]
pub struct OpStream<'a> {
    plan: &'a TokenPlan,
    cursor: OpCursor,
}

impl OpStream<'_> {
    /// The next op without advancing.
    pub fn peek(&self) -> Option<DecodeOp> {
        self.cursor.peek(self.plan)
    }
}

impl Iterator for OpStream<'_> {
    type Item = DecodeOp;

    fn next(&mut self) -> Option<DecodeOp> {
        self.cursor.next_op(self.plan)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.plan.len() - self.cursor.index().min(self.plan.len());
        (left, Some(left))
    }
}

impl ExactSizeIterator for OpStream<'_> {}

/// Memoized prefix-sum table of per-sequence-position attention prices.
///
/// The seq-dependent cost slots of a [`TokenPlan`] (scores, softmax,
/// context) must be re-priced at every sequence position a request
/// visits. Schedulers that coalesce runs of tokens end up pricing
/// contiguous position ranges over and over — every span, every batch
/// step, every speculative boundary probe walks `[s, s + k)` one
/// [`OpCursor`] re-pricing at a time. This table stores the *cumulative*
/// fold of per-position prices instead, so the total over `[s, s + k)`
/// is one difference of two entries, and a single position's price is
/// the difference of two adjacent entries — O(1) lookups after the
/// first visit.
///
/// Two properties make the table bit-exact by construction:
///
/// * **Same prices, same order.** A position is priced exactly once, by
///   the caller's `price` callback, the first time an
///   [`AttnPrefix::ensure`] range reaches it — positions within a newly
///   covered chunk are priced in ascending order, which is the same
///   left-to-right order the per-op loop visits them in. Entry folds
///   use the caller's `add`, which must be associative with `zero` as
///   identity (integer sums in practice), so a range difference equals
///   the per-position sum term for term.
/// * **No phantom positions.** Coverage is *segmented*: disjoint
///   position ranges grow independently and merge only when they touch,
///   so a request decoding at positions 1000+ never forces positions a
///   10-token prompt would own to be priced. A pricing side effect
///   (e.g. a memoizing cost cache counting derivations) therefore fires
///   for exactly the positions some request actually visits.
///
/// The table is generic over the entry type `E` (a latency, a traffic
/// ledger, a tuple of both) because pricing lives above this crate.
#[derive(Debug, Clone, Default)]
pub struct AttnPrefix<E> {
    /// Disjoint, non-touching segments, ascending by base.
    segments: Vec<PrefixSegment<E>>,
}

#[derive(Debug, Clone)]
struct PrefixSegment<E> {
    /// First sequence position this segment covers.
    base: usize,
    /// `cum[i]` folds positions `base..base + i`; `cum[0]` is the zero
    /// entry, so the segment covers `cum.len() - 1` positions.
    cum: Vec<E>,
}

impl<E> PrefixSegment<E> {
    /// One past the last covered position.
    fn end(&self) -> usize {
        self.base + self.cum.len() - 1
    }
}

impl<E: Clone> AttnPrefix<E> {
    /// An empty table: nothing priced, nothing covered.
    pub fn new() -> Self {
        AttnPrefix {
            segments: Vec::new(),
        }
    }

    /// Number of disjoint coverage segments (diagnostic; tests pin that
    /// gapped visit patterns do not bridge their gaps).
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Whether `lo..hi` lies inside one covered segment — i.e. whether
    /// [`AttnPrefix::range`] may be asked for it.
    pub fn covers(&self, lo: usize, hi: usize) -> bool {
        self.segment_of(lo)
            .is_some_and(|i| hi <= self.segments[i].end())
    }

    /// Index of the segment whose coverage (including its one-past-end
    /// boundary) contains `pos`.
    fn segment_of(&self, pos: usize) -> Option<usize> {
        let idx = self.segments.partition_point(|s| s.base <= pos);
        let i = idx.checked_sub(1)?;
        (pos <= self.segments[i].end()).then_some(i)
    }

    /// Guarantees positions `lo..hi` are covered by a single segment,
    /// pricing exactly the not-yet-covered positions (each once, in
    /// ascending order) and merging segments that come to touch.
    ///
    /// `add` must be associative with `zero` as its identity — the
    /// merge of two adjacent segments rebases the right one by folding
    /// the left segment's total into each entry.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` (an empty range has no covering segment).
    pub fn ensure(
        &mut self,
        lo: usize,
        hi: usize,
        zero: E,
        price: &mut impl FnMut(usize) -> E,
        add: &mut impl FnMut(&mut E, &E),
    ) {
        assert!(lo < hi, "ensure needs a non-empty position range");
        let i = match self.segment_of(lo) {
            Some(i) => i,
            None => {
                // `lo` sits in a gap (or past every segment): open a
                // fresh zero-length segment there and grow it below.
                let idx = self.segments.partition_point(|s| s.base <= lo);
                self.segments.insert(
                    idx,
                    PrefixSegment {
                        base: lo,
                        cum: vec![zero],
                    },
                );
                idx
            }
        };
        loop {
            let end = self.segments[i].end();
            if end >= hi {
                return;
            }
            // Price up to the target, stopping at the next segment's
            // base — its entries already exist and must not re-price.
            let next_base = self.segments.get(i + 1).map(|s| s.base);
            let target = next_base.map_or(hi, |nb| hi.min(nb));
            let seg = &mut self.segments[i];
            seg.cum.reserve(target - end);
            for pos in end..target {
                let mut c = seg.cum.last().expect("segment holds its zero").clone();
                let p = price(pos);
                add(&mut c, &p);
                seg.cum.push(c);
            }
            // Touched the neighbor: merge it in, rebasing its entries
            // onto this segment's running total.
            if next_base == Some(self.segments[i].end()) {
                let nxt = self.segments.remove(i + 1);
                let seg = &mut self.segments[i];
                let total = seg.cum.last().expect("segment holds its zero").clone();
                seg.cum.reserve(nxt.cum.len() - 1);
                for c in nxt.cum.iter().skip(1) {
                    let mut t = total.clone();
                    add(&mut t, c);
                    seg.cum.push(t);
                }
            }
        }
    }

    /// The cumulative entries bracketing `lo..hi`: the fold through
    /// positions below `lo` and the fold through positions below `hi`,
    /// both relative to the covering segment's base. Their difference
    /// (in the caller's arithmetic) is the fold over `lo..hi`; with
    /// `hi == lo + 1` it is position `lo`'s own price.
    ///
    /// # Panics
    ///
    /// Panics if `lo..hi` is not covered by a single segment — call
    /// [`AttnPrefix::ensure`] first.
    pub fn range(&self, lo: usize, hi: usize) -> (&E, &E) {
        let i = self
            .segment_of(lo)
            .expect("range queried before ensure covered it");
        let seg = &self.segments[i];
        assert!(
            hi <= seg.end() && lo <= hi,
            "range queried before ensure covered it"
        );
        (&seg.cum[lo - seg.base], &seg.cum[hi - seg.base])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::decode_step;
    use crate::zoo;

    #[test]
    fn attn_prefix_prices_each_position_once_in_order() {
        let mut calls: Vec<usize> = Vec::new();
        let mut table: AttnPrefix<u64> = AttnPrefix::new();
        let mut add = |a: &mut u64, b: &u64| *a += *b;
        table.ensure(
            10,
            15,
            0,
            &mut |p| {
                calls.push(p);
                p as u64
            },
            &mut add,
        );
        table.ensure(
            100,
            103,
            0,
            &mut |p| {
                calls.push(p);
                p as u64
            },
            &mut add,
        );
        // Two disjoint visit ranges stay two segments: the gap between
        // them is never priced.
        assert_eq!(table.segments(), 2);
        assert!(table.covers(10, 15));
        assert!(!table.covers(10, 103));
        assert_eq!(calls, vec![10, 11, 12, 13, 14, 100, 101, 102]);
        // Re-ensuring covered ground prices nothing.
        table.ensure(
            11,
            14,
            0,
            &mut |_| panic!("re-priced a covered position"),
            &mut add,
        );
        // Range differencing equals the per-position sum.
        let (a, b) = table.range(11, 14);
        assert_eq!(b - a, 11 + 12 + 13);
        let (a, b) = table.range(12, 13);
        assert_eq!(b - a, 12);
        // Extending into the gap merges the segments and rebases the
        // right one's entries; only the gap itself is priced.
        calls.clear();
        table.ensure(
            13,
            101,
            0,
            &mut |p| {
                calls.push(p);
                p as u64
            },
            &mut add,
        );
        assert_eq!(table.segments(), 1);
        assert_eq!(calls, (15..100).collect::<Vec<_>>());
        let (a, b) = table.range(99, 103);
        assert_eq!(b - a, 99 + 100 + 101 + 102);
        let (a, b) = table.range(10, 103);
        assert_eq!(b - a, (10..103).sum::<usize>() as u64);
    }

    #[test]
    fn attn_prefix_opens_leading_segment_before_existing_coverage() {
        let mut table: AttnPrefix<u64> = AttnPrefix::new();
        let mut add = |a: &mut u64, b: &u64| *a += *b;
        table.ensure(50, 55, 0, &mut |p| p as u64, &mut add);
        // A smaller prompt's positions land strictly before existing
        // coverage and must bridge into it when the ranges touch.
        table.ensure(
            45,
            52,
            0,
            &mut |p| {
                assert!((45..50).contains(&p), "re-priced {p}");
                p as u64
            },
            &mut add,
        );
        assert_eq!(table.segments(), 1);
        let (a, b) = table.range(45, 55);
        assert_eq!(b - a, (45..55).sum::<usize>() as u64);
    }

    #[test]
    fn stream_matches_eager_enumeration() {
        for model in [zoo::opt_6_7b(), zoo::llama2_70b()] {
            for quant in Quant::all() {
                for seq in [0usize, 1, 100, 1000] {
                    let plan = TokenPlan::new(&model, quant);
                    let eager = decode_step(&model, quant, seq).ops;
                    let lazy: Vec<DecodeOp> = plan.stream(seq).collect();
                    assert_eq!(lazy, eager, "{} {quant} seq {seq}", model.name);
                }
            }
        }
    }

    #[test]
    fn slots_partition_ops_by_cost_identity() {
        let plan = TokenPlan::new(&zoo::llama2_70b(), Quant::W8A8);
        // Counts over slots cover every op position.
        let total: u32 = (0..plan.cost_slots()).map(|s| plan.slot_count(s)).sum();
        assert_eq!(total as usize, plan.len());
        // Same slot ⇒ same canonical shape at any seq position.
        for seq in [3usize, 512] {
            for idx in 0..plan.len() {
                let slot = plan.cost_slot(idx);
                let a = plan.op_at(idx, seq);
                let b = plan.slot_op(slot, seq);
                assert_eq!(OpShape::of(&a), OpShape::of(&b), "idx {idx} seq {seq}");
            }
        }
    }

    #[test]
    fn invariant_slots_ignore_seq_len() {
        let plan = TokenPlan::new(&zoo::opt_13b(), Quant::W4A16);
        for slot in 0..plan.invariant_slots() {
            assert_eq!(plan.slot_op(slot, 0), plan.slot_op(slot, 4096));
        }
        for slot in plan.invariant_slots()..plan.cost_slots() {
            assert_ne!(plan.slot_op(slot, 0), plan.slot_op(slot, 4096));
        }
    }

    #[test]
    fn far_fewer_slots_than_ops() {
        let plan = TokenPlan::new(&zoo::llama2_70b(), Quant::W8A8);
        assert_eq!(plan.len(), 1202); // 80 layers × 15 ops + final norm + head
                                      // Gemv shapes collapse (Wq/Wo, Wk/Wv, Wgate/Wup share shapes),
                                      // norms collapse, plus scores/softmax/context.
        assert!(plan.cost_slots() <= 14, "{}", plan.cost_slots());
        assert_eq!(plan.cost_slots() - plan.invariant_slots(), 3);
    }

    #[test]
    fn weight_slots_are_invariant_and_partition_the_plan() {
        for model in [zoo::opt_6_7b(), zoo::llama2_70b()] {
            let plan = TokenPlan::new(&model, Quant::W8A8);
            // Every weight slot sits in the invariant region: a batched
            // step can always price the shared fetch from the table.
            for slot in 0..plan.cost_slots() {
                if plan.slot_is_weight(slot) {
                    assert!(
                        slot < plan.invariant_slots(),
                        "weight slot {slot} seq-dependent"
                    );
                }
            }
            // Position count via slots agrees with the direct count.
            let via_slots: u32 = (0..plan.cost_slots())
                .filter(|&s| plan.slot_is_weight(s))
                .map(|s| plan.slot_count(s))
                .sum();
            assert_eq!(via_slots as usize, plan.weight_ops_per_token());
            assert_eq!(
                plan.dependent_slots(),
                plan.cost_slots() - plan.invariant_slots()
            );
            // Both families: Wq/Wk/Wv/Wo + FFN + lm_head dominate a
            // token but are far fewer than all positions.
            assert!(plan.weight_ops_per_token() > 0);
            assert!(plan.weight_ops_per_token() < plan.len());
        }
    }

    #[test]
    fn cursor_walks_tokens_without_allocation() {
        let model = zoo::opt_6_7b();
        let plan = TokenPlan::new(&model, Quant::W8A8);
        let mut cursor = OpCursor::new(100);
        let mut n = 0;
        while let Some(op) = cursor.next_op(&plan) {
            assert_eq!(op, plan.op_at(n, 100));
            n += 1;
        }
        assert_eq!(n, plan.len());
        assert!(cursor.exhausted(&plan));
        cursor.next_token();
        assert_eq!(cursor.seq_len(), 101);
        assert_eq!(cursor.index(), 0);
        assert_eq!(
            cursor.peek(&plan),
            Some(decode_step(&model, Quant::W8A8, 101).ops[0])
        );
    }

    #[test]
    fn advance_by_is_repeated_next_token() {
        let plan = TokenPlan::new(&zoo::opt_6_7b(), Quant::W8A8);
        let mut stepped = OpCursor::new(42);
        let mut jumped = OpCursor::new(42);
        for _ in 0..7 {
            stepped.next_token();
        }
        jumped.advance_by(7);
        assert_eq!(stepped, jumped);
        assert_eq!(jumped.seq_len(), 49);
        assert_eq!(jumped.peek(&plan), stepped.peek(&plan));
        // advance_by(0) only rewinds the op index.
        let mut mid = OpCursor::new(10);
        mid.advance();
        mid.advance();
        mid.advance_by(0);
        assert_eq!(mid, OpCursor::new(10));
    }

    #[test]
    fn seek_parks_the_cursor_mid_token() {
        let plan = TokenPlan::new(&zoo::opt_6_7b(), Quant::W8A8);
        let mut walked = OpCursor::new(100);
        for _ in 0..5 {
            walked.next_op(&plan);
        }
        let mut sought = OpCursor::new(100);
        sought.seek(5);
        assert_eq!(walked, sought);
        // Seeking to the plan length is "exhausted", like a full walk.
        sought.seek(plan.len());
        assert!(sought.exhausted(&plan));
        assert_eq!(sought.peek(&plan), None);
    }

    #[test]
    fn prefill_plan_aggregates_match_the_op_stream() {
        for model in [zoo::opt_6_7b(), zoo::llama2_70b()] {
            let quant = Quant::W8A8;
            let plan = PrefillPlan::new(&model, quant);
            for m in [1usize, 7, 256] {
                // The per-token stream at the prompt's final position.
                let step = decode_step(&model, quant, m - 1);
                let weight_bytes: u64 = step.ops.iter().map(|o| o.weight_bytes(quant)).sum();
                assert_eq!(plan.weight_bytes(), weight_bytes, "m {m}");
                let gemm: u64 = step
                    .ops
                    .iter()
                    .map(|o| match o {
                        DecodeOp::WeightGemv { rows, cols, .. } => {
                            2 * *rows as u64 * *cols as u64 * m as u64
                        }
                        _ => 0,
                    })
                    .sum();
                assert_eq!(plan.gemm_ops(m), gemm, "m {m}");
                let (attn_ops, attn_dram) = plan.attention(m);
                let (step_ops, step_dram) = step.ops.iter().fold((0u64, 0u64), |acc, o| match o {
                    DecodeOp::KvMatVec {
                        ops, dram_bytes, ..
                    } => (acc.0 + ops, acc.1 + dram_bytes),
                    _ => acc,
                });
                assert_eq!(attn_ops, (step_ops * m as u64).div_ceil(2));
                assert_eq!(attn_dram, (step_dram * m as u64).div_ceil(2));
                // Fixed specials scale with the block; softmax rows
                // get the same triangular prefix average as attention.
                let (sfu_fixed, softmax) = step.ops.iter().fold((0u64, 0u64), |acc, o| match o {
                    DecodeOp::Special {
                        kind: SpecialKind::Softmax,
                        elems,
                    } => (acc.0, acc.1 + elems),
                    DecodeOp::Special { elems, .. } => (acc.0 + elems, acc.1),
                    _ => acc,
                });
                assert_eq!(
                    plan.sfu_elems(m),
                    sfu_fixed * m as u64 + (softmax * m as u64).div_ceil(2),
                    "m {m}"
                );
                let appends: u64 = step
                    .ops
                    .iter()
                    .map(|o| match o {
                        DecodeOp::KvAppend { bytes } => bytes * m as u64,
                        _ => 0,
                    })
                    .sum();
                assert_eq!(plan.kv_write_bytes(m), appends, "m {m}");
            }
        }
    }

    #[test]
    fn one_token_prompt_books_nonzero_attention() {
        // Regression for the `ops * m / 2` truncation bug: the integer
        // product at m = 1 divided to zero, erasing attention entirely.
        let plan = PrefillPlan::new(&zoo::opt_6_7b(), Quant::W8A8);
        let (ops, dram) = plan.attention(1);
        assert!(ops > 0, "1-token prompt lost its attention MACs");
        assert!(dram > 0, "1-token prompt lost its KV traffic");
        // And the quadratic growth is intact.
        let (ops_2, _) = plan.attention(2);
        assert!(ops_2 > 2 * ops);
    }

    #[test]
    fn prefill_plan_zero_prompt_is_all_zero() {
        let plan = PrefillPlan::new(&zoo::llama2_7b(), Quant::W4A16);
        assert_eq!(plan.gemm_ops(0), 0);
        assert_eq!(plan.attention(0), (0, 0));
        assert_eq!(plan.sfu_elems(0), 0);
        assert_eq!(plan.kv_write_bytes(0), 0);
        // The weight stream is prompt-invariant, not zero.
        assert!(plan.weight_bytes() > 0);
    }

    #[test]
    fn stream_is_exact_size() {
        let plan = TokenPlan::new(&zoo::llama2_7b(), Quant::W8A8);
        let mut s = plan.stream(10);
        assert_eq!(s.len(), plan.len());
        s.next();
        assert_eq!(s.len(), plan.len() - 1);
    }
}
