//! Batch-size analytics (the §III-A motivation) and request-arrival
//! traces for multi-request serving.
//!
//! Cloud serving amortizes each weight fetch over a large batch;
//! personal-agent inference is batch-1 and cannot. The first half of
//! this module quantifies that cliff: arithmetic intensity of the
//! decode phase as a function of batch size, showing why every prior
//! accelerator point in Figure 1(a) is irrelevant at the edge and why
//! Cambricon-LLM attacks the bandwidth side instead of the compute side.
//!
//! The second half describes *request-level* workloads for the serving
//! engine (`cambricon_llm::serve`): an [`ArrivalTrace`] is either an
//! open-loop trace of timed arrivals (Poisson, the standard telecom
//! model for independent users) or a closed loop of clients that issue
//! a new request as soon as the previous one completes (the model
//! behind fixed-concurrency latency measurements).

use crate::ops::decode_step;
use crate::quant::Quant;
use crate::spec::ModelSpec;
use sim_core::{SimTime, SplitMix64};

/// Decode-phase arithmetic intensity at a given batch size.
///
/// Weights are fetched once per step regardless of batch; compute and
/// KV traffic scale with it.
pub fn batched_decode_intensity(
    model: &ModelSpec,
    quant: Quant,
    seq_len: usize,
    batch: usize,
) -> f64 {
    assert!(batch >= 1, "batch must be at least 1");
    let step = decode_step(model, quant, seq_len);
    let ops = step.total_ops() * batch as u64;
    let bytes = step.total_weight_bytes() + step.total_dram_bytes() * batch as u64;
    ops as f64 / bytes as f64
}

/// The batch size at which decode stops being weight-bound on hardware
/// with the given compute/bandwidth ratio (ops per byte): the smallest
/// batch whose intensity reaches `hw_ops_per_byte`.
pub fn batch_to_saturate(
    model: &ModelSpec,
    quant: Quant,
    seq_len: usize,
    hw_ops_per_byte: f64,
) -> Option<usize> {
    let mut b = 1usize;
    while b <= 1 << 16 {
        if batched_decode_intensity(model, quant, seq_len, b) >= hw_ops_per_byte {
            return Some(b);
        }
        b *= 2;
    }
    None
}

/// Decode shape of one serving request: the context it starts from and
/// how many tokens it generates. (Prefill is modelled separately by
/// `cambricon_llm::prefill`; the serving engine simulates the decode
/// phase, which dominates interactive traffic.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestShape {
    /// Tokens already in the KV cache when decode starts (the prompt).
    pub prompt_len: usize,
    /// Tokens to generate.
    pub new_tokens: usize,
}

impl RequestShape {
    /// A shape generating `new_tokens` from a `prompt_len`-token prompt.
    ///
    /// # Panics
    ///
    /// Panics if `new_tokens` is zero.
    pub fn new(prompt_len: usize, new_tokens: usize) -> Self {
        assert!(
            new_tokens >= 1,
            "a request must generate at least one token"
        );
        RequestShape {
            prompt_len,
            new_tokens,
        }
    }
}

/// One timed arrival in an open-loop trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestArrival {
    /// Virtual time the request enters the queue.
    pub at: SimTime,
    /// Decode shape of the request.
    pub shape: RequestShape,
}

/// A request-level workload description for the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalTrace {
    /// Open loop: requests arrive at fixed times regardless of service
    /// progress (throughput-oriented; queues can grow without bound).
    Open(Vec<RequestArrival>),
    /// Closed loop: `clients` users each keep exactly one request in
    /// flight, issuing the next the instant the previous completes
    /// (latency-oriented; concurrency is pinned at `clients`).
    ClosedLoop {
        /// Concurrent clients.
        clients: usize,
        /// Requests each client issues in total.
        requests_per_client: usize,
        /// Shape of every request.
        shape: RequestShape,
    },
}

impl ArrivalTrace {
    /// An open-loop Poisson trace: `n` requests with exponential
    /// inter-arrival gaps at `rate_per_sec`, deterministic in `seed`.
    ///
    /// `n == 0` yields an empty open trace — a legal workload that the
    /// serving engine reports as all-zero statistics (no NaNs), pinned
    /// by test. A zero, negative, or non-finite rate would make every
    /// inter-arrival gap non-finite, so it panics instead of producing
    /// a trace with `SimTime` garbage in it.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not finite and positive.
    pub fn poisson(rate_per_sec: f64, n: usize, shape: RequestShape, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        let mut rng = SplitMix64::new(seed);
        let mut at = SimTime::ZERO;
        let arrivals = (0..n)
            .map(|_| {
                // Inverse-CDF exponential; next_f64 is in [0,1), so
                // 1-u is in (0,1] and the log is finite.
                let u = rng.next_f64();
                let gap = -(1.0 - u).ln() / rate_per_sec;
                at += SimTime::from_secs_f64(gap);
                RequestArrival { at, shape }
            })
            .collect();
        ArrivalTrace::Open(arrivals)
    }

    /// An open-loop trace of `n` simultaneous arrivals at time zero —
    /// the "burst" pattern used for peak-load and fairness tests.
    pub fn burst(n: usize, shape: RequestShape) -> Self {
        ArrivalTrace::Open(
            (0..n)
                .map(|_| RequestArrival {
                    at: SimTime::ZERO,
                    shape,
                })
                .collect(),
        )
    }

    /// A closed loop of `clients` clients, `requests_per_client` each.
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `requests_per_client` is zero.
    pub fn closed_loop(clients: usize, requests_per_client: usize, shape: RequestShape) -> Self {
        assert!(clients >= 1, "need at least one client");
        assert!(
            requests_per_client >= 1,
            "need at least one request per client"
        );
        ArrivalTrace::ClosedLoop {
            clients,
            requests_per_client,
            shape,
        }
    }

    /// Total number of requests the trace will issue.
    pub fn request_count(&self) -> usize {
        match self {
            ArrivalTrace::Open(arrivals) => arrivals.len(),
            ArrivalTrace::ClosedLoop {
                clients,
                requests_per_client,
                ..
            } => clients * requests_per_client,
        }
    }

    /// Total tokens the trace will generate.
    pub fn total_new_tokens(&self) -> u64 {
        match self {
            ArrivalTrace::Open(arrivals) => {
                arrivals.iter().map(|a| a.shape.new_tokens as u64).sum()
            }
            ArrivalTrace::ClosedLoop {
                clients,
                requests_per_client,
                shape,
            } => (clients * requests_per_client) as u64 * shape.new_tokens as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn poisson_trace_is_deterministic_and_ordered() {
        let shape = RequestShape::new(128, 16);
        let a = ArrivalTrace::poisson(2.0, 50, shape, 7);
        let b = ArrivalTrace::poisson(2.0, 50, shape, 7);
        assert_eq!(a, b);
        let ArrivalTrace::Open(arrivals) = &a else {
            panic!("poisson returns an open trace")
        };
        assert_eq!(arrivals.len(), 50);
        for w in arrivals.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
        // Mean inter-arrival gap within 3x of 1/rate (loose: 50 samples).
        let mean_gap = arrivals.last().unwrap().at.as_secs_f64() / 50.0;
        assert!((0.15..1.5).contains(&mean_gap), "{mean_gap}");
    }

    #[test]
    fn poisson_seed_changes_trace() {
        let shape = RequestShape::new(128, 16);
        assert_ne!(
            ArrivalTrace::poisson(2.0, 20, shape, 1),
            ArrivalTrace::poisson(2.0, 20, shape, 2)
        );
    }

    #[test]
    fn trace_totals() {
        let shape = RequestShape::new(100, 8);
        let t = ArrivalTrace::closed_loop(4, 3, shape);
        assert_eq!(t.request_count(), 12);
        assert_eq!(t.total_new_tokens(), 96);
        let b = ArrivalTrace::burst(5, shape);
        assert_eq!(b.request_count(), 5);
        assert_eq!(b.total_new_tokens(), 40);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_token_request_panics() {
        RequestShape::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_rate_poisson_panics() {
        // rate 0 ⇒ gap = -ln(1-u)/0 = inf; reject at the API instead.
        ArrivalTrace::poisson(0.0, 5, RequestShape::new(10, 1), 1);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn negative_rate_poisson_panics() {
        ArrivalTrace::poisson(-3.0, 5, RequestShape::new(10, 1), 1);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn nan_rate_poisson_panics() {
        ArrivalTrace::poisson(f64::NAN, 5, RequestShape::new(10, 1), 1);
    }

    #[test]
    fn zero_request_poisson_is_an_empty_trace() {
        // n == 0 is legal: an empty open trace with zero totals, which
        // the serving engine turns into an all-zero report.
        let t = ArrivalTrace::poisson(2.0, 0, RequestShape::new(10, 1), 1);
        assert_eq!(t, ArrivalTrace::Open(Vec::new()));
        assert_eq!(t.request_count(), 0);
        assert_eq!(t.total_new_tokens(), 0);
    }

    #[test]
    fn batch_one_is_the_paper_number() {
        let i = batched_decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 128, 1);
        assert!((1.8..2.3).contains(&i), "{i}");
    }

    #[test]
    fn intensity_grows_sublinearly_then_saturates() {
        // KV traffic also scales with batch, so intensity grows with
        // batch but saturates at the weights/KV ratio.
        let m = zoo::opt_6_7b();
        let i1 = batched_decode_intensity(&m, Quant::W8A8, 1000, 1);
        let i32x = batched_decode_intensity(&m, Quant::W8A8, 1000, 32);
        let i1k = batched_decode_intensity(&m, Quant::W8A8, 1000, 1024);
        assert!(i32x > 10.0 * i1, "{i32x} vs {i1}");
        assert!(i1k < 64.0 * i32x); // saturation
    }

    #[test]
    fn cloud_batches_saturate_an_a100_edge_cannot() {
        // A100: ~306 ops/byte. At short context a serving batch of a
        // few hundred gets there; batch-1 is ~150× short. (At long
        // context even infinite batch cannot — KV traffic dominates —
        // which `long_contexts_cap_the_benefit` covers.)
        let m = zoo::opt_13b();
        let need = batch_to_saturate(&m, Quant::W8A8, 128, 306.0).unwrap();
        assert!((64..4096).contains(&need), "{need}");
        let edge = batched_decode_intensity(&m, Quant::W8A8, 128, 1);
        assert!(306.0 / edge > 100.0);
    }

    #[test]
    fn long_contexts_cap_the_benefit() {
        // At long context the KV cache dominates batched traffic and
        // intensity saturates lower.
        let m = zoo::llama2_7b();
        let short = batched_decode_intensity(&m, Quant::W8A8, 64, 512);
        let long = batched_decode_intensity(&m, Quant::W8A8, 4000, 512);
        assert!(long < short);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_panics() {
        batched_decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 10, 0);
    }
}
