//! Batch-size analytics (the §III-A motivation).
//!
//! Cloud serving amortizes each weight fetch over a large batch;
//! personal-agent inference is batch-1 and cannot. This module
//! quantifies that cliff: arithmetic intensity of the decode phase as a
//! function of batch size, showing why every prior accelerator point in
//! Figure 1(a) is irrelevant at the edge and why Cambricon-LLM attacks
//! the bandwidth side instead of the compute side.

use crate::ops::decode_step;
use crate::quant::Quant;
use crate::spec::ModelSpec;

/// Decode-phase arithmetic intensity at a given batch size.
///
/// Weights are fetched once per step regardless of batch; compute and
/// KV traffic scale with it.
pub fn batched_decode_intensity(
    model: &ModelSpec,
    quant: Quant,
    seq_len: usize,
    batch: usize,
) -> f64 {
    assert!(batch >= 1, "batch must be at least 1");
    let step = decode_step(model, quant, seq_len);
    let ops = step.total_ops() * batch as u64;
    let bytes = step.total_weight_bytes() + step.total_dram_bytes() * batch as u64;
    ops as f64 / bytes as f64
}

/// The batch size at which decode stops being weight-bound on hardware
/// with the given compute/bandwidth ratio (ops per byte): the smallest
/// batch whose intensity reaches `hw_ops_per_byte`.
pub fn batch_to_saturate(
    model: &ModelSpec,
    quant: Quant,
    seq_len: usize,
    hw_ops_per_byte: f64,
) -> Option<usize> {
    let mut b = 1usize;
    while b <= 1 << 16 {
        if batched_decode_intensity(model, quant, seq_len, b) >= hw_ops_per_byte {
            return Some(b);
        }
        b *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn batch_one_is_the_paper_number() {
        let i = batched_decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 128, 1);
        assert!((1.8..2.3).contains(&i), "{i}");
    }

    #[test]
    fn intensity_grows_sublinearly_then_saturates() {
        // KV traffic also scales with batch, so intensity grows with
        // batch but saturates at the weights/KV ratio.
        let m = zoo::opt_6_7b();
        let i1 = batched_decode_intensity(&m, Quant::W8A8, 1000, 1);
        let i32x = batched_decode_intensity(&m, Quant::W8A8, 1000, 32);
        let i1k = batched_decode_intensity(&m, Quant::W8A8, 1000, 1024);
        assert!(i32x > 10.0 * i1, "{i32x} vs {i1}");
        assert!(i1k < 64.0 * i32x); // saturation
    }

    #[test]
    fn cloud_batches_saturate_an_a100_edge_cannot() {
        // A100: ~306 ops/byte. At short context a serving batch of a
        // few hundred gets there; batch-1 is ~150× short. (At long
        // context even infinite batch cannot — KV traffic dominates —
        // which `long_contexts_cap_the_benefit` covers.)
        let m = zoo::opt_13b();
        let need = batch_to_saturate(&m, Quant::W8A8, 128, 306.0).unwrap();
        assert!((64..4096).contains(&need), "{need}");
        let edge = batched_decode_intensity(&m, Quant::W8A8, 128, 1);
        assert!(306.0 / edge > 100.0);
    }

    #[test]
    fn long_contexts_cap_the_benefit() {
        // At long context the KV cache dominates batched traffic and
        // intensity saturates lower.
        let m = zoo::llama2_7b();
        let short = batched_decode_intensity(&m, Quant::W8A8, 64, 512);
        let long = batched_decode_intensity(&m, Quant::W8A8, 4000, 512);
        assert!(long < short);
    }

    #[test]
    #[should_panic(expected = "batch must be at least 1")]
    fn zero_batch_panics() {
        batched_decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 10, 0);
    }
}
