//! Whole-generation traces.
//!
//! A [`GenerationTrace`] lazily yields the per-token op streams of a
//! complete interaction (prompt prefill position + autoregressive
//! reply), letting consumers replay realistic multi-token workloads —
//! the KV cache grows every step, so later tokens are slightly more
//! expensive than earlier ones.

use crate::ops::{decode_step, DecodeStep};
use crate::quant::Quant;
use crate::spec::ModelSpec;

/// A lazily-evaluated generation: `reply_tokens` decode steps starting
/// after a `prompt_tokens`-long prefix.
#[derive(Debug, Clone)]
pub struct GenerationTrace {
    model: ModelSpec,
    quant: Quant,
    prompt_tokens: usize,
    reply_tokens: usize,
}

impl GenerationTrace {
    /// Creates a trace.
    ///
    /// # Panics
    ///
    /// Panics if the model is invalid or the total length exceeds the
    /// model's maximum sequence length.
    pub fn new(model: ModelSpec, quant: Quant, prompt_tokens: usize, reply_tokens: usize) -> Self {
        model.validate().expect("invalid model");
        assert!(
            prompt_tokens + reply_tokens <= model.max_seq,
            "{} + {} tokens exceed max_seq {}",
            prompt_tokens,
            reply_tokens,
            model.max_seq
        );
        GenerationTrace {
            model,
            quant,
            prompt_tokens,
            reply_tokens,
        }
    }

    /// Number of decode steps in the trace.
    pub fn len(&self) -> usize {
        self.reply_tokens
    }

    /// Whether the reply is empty.
    pub fn is_empty(&self) -> bool {
        self.reply_tokens == 0
    }

    /// Iterates over the decode steps in generation order.
    pub fn steps(&self) -> impl Iterator<Item = DecodeStep> + '_ {
        (0..self.reply_tokens)
            .map(move |i| decode_step(&self.model, self.quant, self.prompt_tokens + i))
    }

    /// Aggregate statistics of the whole reply.
    pub fn totals(&self) -> TraceTotals {
        let mut t = TraceTotals::default();
        for step in self.steps() {
            t.weight_bytes += step.total_weight_bytes();
            t.dram_bytes += step.total_dram_bytes();
            t.ops += step.total_ops();
            t.tokens += 1;
        }
        t
    }
}

/// Aggregate traffic/compute of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTotals {
    /// Tokens generated.
    pub tokens: usize,
    /// Weight bytes streamed (weights re-stream every token).
    pub weight_bytes: u64,
    /// DRAM traffic (KV reads/writes).
    pub dram_bytes: u64,
    /// Arithmetic operations.
    pub ops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn trace_yields_reply_len_steps() {
        let t = GenerationTrace::new(zoo::opt_6_7b(), Quant::W8A8, 100, 16);
        assert_eq!(t.len(), 16);
        assert_eq!(t.steps().count(), 16);
        assert!(!t.is_empty());
    }

    #[test]
    fn kv_cost_grows_across_steps() {
        let t = GenerationTrace::new(zoo::opt_6_7b(), Quant::W8A8, 10, 8);
        let dram: Vec<u64> = t.steps().map(|s| s.total_dram_bytes()).collect();
        for w in dram.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn totals_match_manual_sum() {
        let t = GenerationTrace::new(zoo::llama2_7b(), Quant::W8A8, 50, 5);
        let totals = t.totals();
        assert_eq!(totals.tokens, 5);
        let manual: u64 = t.steps().map(|s| s.total_weight_bytes()).sum();
        assert_eq!(totals.weight_bytes, manual);
        // Weights re-stream every token.
        assert_eq!(
            totals.weight_bytes,
            5 * decode_step(&zoo::llama2_7b(), Quant::W8A8, 50).total_weight_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "exceed max_seq")]
    fn overlong_generation_panics() {
        GenerationTrace::new(zoo::opt_6_7b(), Quant::W8A8, 2000, 100);
    }
}
