//! KV-cache sizing.
//!
//! §II-A of the paper motivates the hybrid design with the observation
//! that at batch size 1 the KV cache stays small (under ~700 MB for a 70B
//! model at 1000-token context), so it fits in edge DRAM while the
//! weights live in flash.

use crate::quant::Quant;
use crate::spec::ModelSpec;

/// Bytes of KV cache added per generated token.
pub fn kv_bytes_per_token(model: &ModelSpec, quant: Quant) -> u64 {
    2 * model.layers as u64 * model.kv_dim() as u64 * quant.kv_bytes_per_elem()
}

/// Total KV-cache bytes at context length `seq_len` (batch size 1).
pub fn kv_cache_bytes(model: &ModelSpec, quant: Quant, seq_len: usize) -> u64 {
    kv_bytes_per_token(model, quant) * seq_len as u64
}

/// Whether the KV cache at `seq_len` fits within `dram_bytes` of DRAM.
pub fn fits_in_dram(model: &ModelSpec, quant: Quant, seq_len: usize, dram_bytes: u64) -> bool {
    kv_cache_bytes(model, quant, seq_len) <= dram_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn seventy_b_cache_under_700mb_at_1000_tokens() {
        // Paper claim: "a 70B parameter LLM with a sequence length of 1000
        // would require a KV cache of around 700MB" (upper bound; GQA
        // brings the INT8 figure well below it).
        let bytes = kv_cache_bytes(&zoo::llama2_70b(), Quant::W8A8, 1000);
        assert!(bytes <= 700_000_000, "{bytes}");
        assert!(bytes >= 100_000_000, "{bytes}"); // sanity: non-trivial
    }

    #[test]
    fn cache_scales_linearly_with_seq() {
        let m = zoo::opt_13b();
        let one = kv_cache_bytes(&m, Quant::W8A8, 1);
        let thousand = kv_cache_bytes(&m, Quant::W8A8, 1000);
        assert_eq!(thousand, one * 1000);
    }

    #[test]
    fn fits_in_dram_boundary() {
        let m = zoo::llama2_70b();
        let need = kv_cache_bytes(&m, Quant::W8A8, 1000);
        assert!(fits_in_dram(&m, Quant::W8A8, 1000, need));
        assert!(!fits_in_dram(&m, Quant::W8A8, 1000, need - 1));
    }

    #[test]
    fn w4a16_kv_is_twice_int8() {
        let m = zoo::llama2_7b();
        assert_eq!(
            kv_bytes_per_token(&m, Quant::W4A16),
            2 * kv_bytes_per_token(&m, Quant::W8A8)
        );
    }

    #[test]
    fn gqa_shrinks_cache_8x() {
        let m = zoo::llama2_70b();
        let per_tok = kv_bytes_per_token(&m, Quant::W8A8);
        // 2 × 80 layers × 1024 kv_dim × 1 B
        assert_eq!(per_tok, 2 * 80 * 1024);
    }
}
