//! Arithmetic-intensity and reduction-ratio analytics (Figures 1 and 3(a)).
//!
//! Figure 1(a) compares the arithmetic intensity (ops per byte moved
//! between slow and fast memory) of single-batch LLM decode against other
//! AI workloads and against hardware compute/bandwidth ratios. Figure 1(b)
//! compares the *reduction ratio* (input bytes / output bytes of an
//! operator) of LLM GeMV against prior in-storage-computing scenarios.
//!
//! Values for third-party workloads/hardware are documented literature
//! estimates (we cannot run DLRM or an A100 here); the LLM numbers are
//! computed from our own op streams.

use crate::ops::{decode_step, DecodeOp};
use crate::quant::Quant;
use crate::spec::ModelSpec;

/// A named point on the arithmetic-intensity axis.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensityPoint {
    /// Display name.
    pub name: String,
    /// Arithmetic intensity in ops/byte.
    pub ops_per_byte: f64,
    /// Whether this is a workload (true) or a hardware capability (false).
    pub is_workload: bool,
}

/// Computed arithmetic intensity of single-batch decode for `model`.
pub fn decode_intensity(model: &ModelSpec, quant: Quant, seq_len: usize) -> f64 {
    let step = decode_step(model, quant, seq_len);
    step.total_ops() as f64 / (step.total_weight_bytes() + step.total_dram_bytes()) as f64
}

/// Arithmetic intensity of the prefill phase with an `m`-token prompt:
/// weights are reused across all `m` tokens, so intensity scales with
/// `m` until compute saturates.
pub fn prefill_intensity(model: &ModelSpec, quant: Quant, prompt_len: usize) -> f64 {
    let step = decode_step(model, quant, 0);
    // Prefill moves the weights once but performs `m×` the GeMV work.
    let ops = step.total_ops() * prompt_len as u64;
    let bytes = step.total_weight_bytes() + step.total_dram_bytes() * prompt_len as u64;
    ops as f64 / bytes as f64
}

/// Literature-estimate workload intensities for Figure 1(a) context.
/// Sources: DLRM/BERT from the arithmetic-intensity survey the paper
/// cites (Kim et al. 2023); VGG-16 from its FLOPs/weights ratio.
pub fn reference_workloads() -> Vec<IntensityPoint> {
    vec![
        IntensityPoint {
            name: "DLRM".into(),
            ops_per_byte: 60.0,
            is_workload: true,
        },
        IntensityPoint {
            name: "BERT".into(),
            ops_per_byte: 207.0,
            is_workload: true,
        },
        IntensityPoint {
            name: "VGG-16".into(),
            ops_per_byte: 560.0,
            is_workload: true,
        },
    ]
}

/// Hardware compute/bandwidth ratios for Figure 1(a)/3(a): INT8 TOPS
/// divided by memory bandwidth.
pub fn reference_hardware() -> Vec<IntensityPoint> {
    vec![
        // Apple A16: ~17 TOPS NPU, ~51 GB/s LPDDR5.
        IntensityPoint {
            name: "Apple A16".into(),
            ops_per_byte: 17e12 / 51e9,
            is_workload: false,
        },
        // NVIDIA A100 80G: 624 TOPS INT8, 2039 GB/s HBM2e.
        IntensityPoint {
            name: "NVIDIA A100".into(),
            ops_per_byte: 624e12 / 2039e9,
            is_workload: false,
        },
        // NVIDIA Jetson Orin: 275 TOPS INT8, 204.8 GB/s LPDDR5.
        IntensityPoint {
            name: "Jetson Orin".into(),
            ops_per_byte: 275e12 / 204.8e9,
            is_workload: false,
        },
    ]
}

/// A named reduction-ratio point for Figure 1(b).
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionPoint {
    /// Scenario name.
    pub name: String,
    /// Input bytes divided by output bytes.
    pub ratio: f64,
}

/// Reduction ratio of a GeMV `rows × cols` under INT8: the weight matrix
/// (plus input vector) enters the operator, a `rows`-long vector leaves.
pub fn gemv_reduction_ratio(rows: usize, cols: usize) -> f64 {
    (rows as f64 * cols as f64 + cols as f64) / rows as f64
}

/// The smallest (worst-case) GeMV reduction ratio in `model`'s decode
/// stream — the paper quotes 4096 for Llama2-7B's smallest matrix.
pub fn min_decode_reduction_ratio(model: &ModelSpec) -> f64 {
    let step = decode_step(model, Quant::W8A8, 1);
    step.ops
        .iter()
        .filter_map(|op| match op {
            DecodeOp::WeightGemv { rows, cols, .. } => Some(gemv_reduction_ratio(*rows, *cols)),
            _ => None,
        })
        .fold(f64::INFINITY, f64::min)
}

/// Literature-estimate reduction ratios of prior ISC scenarios
/// (Figure 1(b) context): these operators emit output comparable in size
/// to their input, which is why their designs tolerate low channel
/// bandwidth out of the die.
pub fn reference_reduction_ratios() -> Vec<ReductionPoint> {
    vec![
        ReductionPoint {
            name: "OptimStore (DNN optimizer)".into(),
            ratio: 3.0, // reads weight+grad+state, writes weight+state
        },
        ReductionPoint {
            name: "BeaconGNN (GNN gather)".into(),
            ratio: 12.0,
        },
        ReductionPoint {
            name: "Smart-SSD query filter".into(),
            ratio: 40.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn decode_intensity_about_two() {
        for m in zoo::all() {
            let i = decode_intensity(&m, Quant::W8A8, 128);
            assert!((1.5..2.5).contains(&i), "{}: {i}", m.name);
        }
    }

    #[test]
    fn prefill_intensity_much_higher() {
        let m = zoo::opt_6_7b();
        let d = decode_intensity(&m, Quant::W8A8, 512);
        let p = prefill_intensity(&m, Quant::W8A8, 512);
        assert!(p > 100.0 * d, "prefill {p} vs decode {d}");
    }

    #[test]
    fn decode_is_30x_to_1000x_below_other_workloads() {
        // Figure 1(a): LLM decode is 30×–100× below DLRM/BERT/VGG.
        let llm = decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 128);
        for w in reference_workloads() {
            let gap = w.ops_per_byte / llm;
            assert!(gap >= 25.0, "{}: gap {gap}", w.name);
        }
    }

    #[test]
    fn hardware_over_100x_above_decode() {
        let llm = decode_intensity(&zoo::opt_6_7b(), Quant::W8A8, 128);
        for hw in reference_hardware() {
            assert!(hw.ops_per_byte / llm > 50.0, "{}", hw.name);
        }
    }

    #[test]
    fn paper_reduction_ratio_4096() {
        // Paper: "the result vector is reduced in size by a factor of
        // 4096 compared to the original weight matrices" (Llama2-7B,
        // smallest matrix 4096×4096).
        let r = min_decode_reduction_ratio(&zoo::llama2_7b());
        assert!((r - 4097.0).abs() < 2.0, "{r}");
    }

    #[test]
    fn llm_reduction_100x_above_isc_scenarios() {
        let llm = min_decode_reduction_ratio(&zoo::llama2_7b());
        for p in reference_reduction_ratios() {
            assert!(llm / p.ratio >= 100.0, "{}: {}", p.name, llm / p.ratio);
        }
    }

    #[test]
    fn gemv_reduction_formula() {
        let r = gemv_reduction_ratio(4096, 4096);
        assert!((r - 4097.0).abs() < 1e-9);
    }
}
