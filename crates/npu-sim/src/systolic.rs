//! Systolic-array GeMM timing (used by the prefill phase).
//!
//! Decode-phase GeMV is bandwidth-bound, so `NpuModel` treats the array
//! as a peak-rate black box. Prefill runs real GeMMs (`M×K · K×N`), and
//! there the array's *mapping efficiency* matters: a 16×16
//! weight-stationary array processes output tiles of 16×16, each taking
//! `K + fill` cycles, and ragged edges waste lanes. This module models
//! that, giving the prefill estimates honest sub-peak throughput.

use crate::config::NpuConfig;
use sim_core::SimTime;

/// Timing report for one GeMM on the systolic array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmReport {
    /// Total cycles.
    pub cycles: u64,
    /// Wall time at the configured clock.
    pub time: SimTime,
    /// Achieved fraction of peak MAC utilization.
    pub utilization: f64,
}

/// Weight-stationary systolic GeMM: `C[M×N] = A[M×K] × B[K×N]`.
///
/// Output is tiled into `rows × cols` blocks; each block streams `K`
/// operands plus the pipeline fill of `rows + cols` cycles.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn gemm_time(cfg: &NpuConfig, m: u64, k: u64, n: u64) -> GemmReport {
    assert!(m > 0 && k > 0 && n > 0, "empty GeMM");
    let r = cfg.array_rows as u64;
    let c = cfg.array_cols as u64;
    // Each PE retires `ops_per_pe_cycle / 2` MACs per cycle (the paper's
    // 2 TOPS at 16×16 @1 GHz implies a quad-pumped INT8 datapath).
    let pump = (cfg.ops_per_pe_cycle as u64 / 2).max(1);
    let row_tiles = m.div_ceil(r);
    let col_tiles = n.div_ceil(c);
    let fill = r + c;
    let cycles_per_tile = k.div_ceil(pump) + fill;
    let cycles = row_tiles * col_tiles * cycles_per_tile;
    let time = sim_core::transfer_time(cycles, cfg.freq_hz);
    // Useful MACs vs issued MAC slots.
    let useful = m as f64 * k as f64 * n as f64;
    let issued = (row_tiles * r * col_tiles * c * cycles_per_tile * pump) as f64;
    let utilization = (useful / issued).min(1.0);
    GemmReport {
        cycles,
        time,
        utilization,
    }
}

/// GeMV as the degenerate `N = 1` case — on a systolic array this uses
/// one column of PEs, which is why decode must not be compute-mapped
/// this way (the paper's NPU treats decode GeMV as a streaming
/// reduction instead; see `NpuModel::streamed_gemv_time`).
pub fn gemv_systolic_time(cfg: &NpuConfig, m: u64, k: u64) -> GemmReport {
    gemm_time(cfg, m, k, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NpuConfig {
        NpuConfig::paper()
    }

    #[test]
    fn aligned_gemm_is_efficient() {
        // 1024×1024×1024 on 16×16 quad-pumped: (K/4)/(K/4+32) ≈ 89%.
        let r = gemm_time(&cfg(), 1024, 1024, 1024);
        assert!(r.utilization > 0.85, "{}", r.utilization);
    }

    #[test]
    fn ragged_edges_waste_lanes() {
        // 17 rows uses two row-tiles of 16 → ~53% row occupancy.
        let aligned = gemm_time(&cfg(), 16, 512, 16);
        let ragged = gemm_time(&cfg(), 17, 512, 17);
        assert!(ragged.utilization < 0.6 * aligned.utilization);
    }

    #[test]
    fn gemv_on_systolic_is_terrible() {
        // The motivation for streaming decode GeMV instead of mapping
        // it onto the array: N=1 leaves 15/16 columns idle.
        let r = gemv_systolic_time(&cfg(), 4096, 4096);
        assert!(r.utilization < 0.08, "{}", r.utilization);
    }

    #[test]
    fn cycles_scale_linearly_in_k() {
        let a = gemm_time(&cfg(), 256, 512, 256);
        let b = gemm_time(&cfg(), 256, 1024, 256);
        let ratio = b.cycles as f64 / a.cycles as f64;
        assert!((1.8..2.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn prefill_gemm_of_70b_layer_is_milliseconds() {
        // 256-token prompt × Wq of Llama2-70B: 256×8192×8192.
        let r = gemm_time(&cfg(), 256, 8192, 8192);
        let ms = r.time.as_secs_f64() * 1e3;
        assert!((5.0..40.0).contains(&ms), "{ms} ms");
    }

    #[test]
    #[should_panic(expected = "empty GeMM")]
    fn zero_dim_panics() {
        gemm_time(&cfg(), 0, 1, 1);
    }
}
