//! # npu-sim — edge NPU timing model
//!
//! Models the Cambricon-LLM NPU of paper §IV-A/§VII-A: a 16×16 systolic
//! array (2 TOPS INT8 @ 1 GHz), a Special Function Unit for
//! softmax/activations/RoPE, an LPDDR5X DRAM interface (~40 GB/s)
//! dedicated to the KV cache, and the integrated flash controller that
//! lets the NPU consume weight pages directly from the flash chiplet.
//!
//! Decode-phase NPU work is bandwidth-dominated, so each operation's
//! time is the roofline `max(compute, data movement)`.
//!
//! ## Example
//!
//! ```
//! use npu_sim::{NpuConfig, NpuModel};
//!
//! let npu = NpuModel::new(NpuConfig::paper());
//! // A 4096×4096 INT8 GeMV streamed from flash at 8 GB/s aggregate:
//! let t = npu.streamed_gemv_time(2 * 4096 * 4096, 4096 * 4096, 8_000_000_000);
//! // 16.7 MB / 8 GB/s ≈ 2.1 ms — bandwidth-bound, as the paper argues.
//! assert!(t.as_micros() > 2000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compute;
pub mod config;
pub mod kv_cache;
pub mod systolic;

pub use compute::NpuModel;
pub use config::NpuConfig;
pub use kv_cache::{KvCache, KvCapacityError};
pub use systolic::{gemm_time, gemv_systolic_time, GemmReport};
