//! KV-cache residency management in NPU-attached DRAM.
//!
//! The paper allocates DRAM exclusively to the KV cache ("a capacity of
//! 700MB suffices for the needs of a 70B LLM under single batch
//! inference"). This module tracks cache growth across generated tokens
//! and enforces the capacity limit.

use crate::config::NpuConfig;

/// Error returned when the KV cache would exceed DRAM capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCapacityError {
    /// Bytes the cache would need.
    pub needed: u64,
    /// Bytes available.
    pub capacity: u64,
}

impl std::fmt::Display for KvCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kv cache needs {} bytes but dram capacity is {} bytes",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for KvCapacityError {}

/// A growing KV cache in DRAM.
#[derive(Debug, Clone)]
pub struct KvCache {
    bytes_per_token: u64,
    capacity: u64,
    tokens: usize,
}

impl KvCache {
    /// Creates an empty cache for a model writing `bytes_per_token` per
    /// generated token, bounded by the NPU's DRAM KV allocation.
    pub fn new(bytes_per_token: u64, cfg: &NpuConfig) -> Self {
        KvCache {
            bytes_per_token,
            capacity: cfg.dram_kv_bytes,
            tokens: 0,
        }
    }

    /// Appends one token's K/V vectors.
    ///
    /// # Errors
    ///
    /// Returns [`KvCapacityError`] if DRAM is full; the caller decides
    /// whether that is fatal (it is an out-of-memory condition for the
    /// baselines in Figure 9(b)).
    pub fn append(&mut self) -> Result<(), KvCapacityError> {
        self.prefill(1)
    }

    /// Pre-populates the cache with `tokens` prompt tokens (prefill),
    /// or reserves a serving request's whole context ahead of
    /// admission (paired with [`release`](KvCache::release)).
    ///
    /// The growth check is exactly [`fits`](KvCache::fits) — the two
    /// can never disagree on what is admissible.
    ///
    /// # Errors
    ///
    /// Returns [`KvCapacityError`] if the tokens would exceed DRAM.
    pub fn prefill(&mut self, tokens: usize) -> Result<(), KvCapacityError> {
        if !self.fits(tokens) {
            return Err(KvCapacityError {
                needed: self.would_need(tokens),
                capacity: self.capacity,
            });
        }
        self.tokens += tokens;
        Ok(())
    }

    /// Releases `tokens` entries (a request completed and its K/V
    /// region is reclaimed). The admission-control counterpart of
    /// [`prefill`](KvCache::prefill): a serving scheduler reserves a
    /// request's whole context at admission and releases it here, so
    /// queued requests can be admitted as capacity frees.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` exceeds the current residency — releasing
    /// more than was reserved is an accounting bug, not a recoverable
    /// condition.
    pub fn release(&mut self, tokens: usize) {
        assert!(
            tokens <= self.tokens,
            "releasing {tokens} kv tokens but only {} are resident",
            self.tokens
        );
        self.tokens -= tokens;
    }

    /// Whether `tokens` more entries would fit right now. The single
    /// admissibility criterion: [`prefill`](KvCache::prefill) reserves
    /// exactly when this returns true, so schedulers can gate on it
    /// (wait vs. reserve) without duplicating the capacity arithmetic.
    pub fn fits(&self, tokens: usize) -> bool {
        self.would_need(tokens) <= self.capacity
    }

    /// Bytes resident after `tokens` more entries (saturating, so an
    /// absurd request reads as "more than any capacity" instead of
    /// wrapping).
    fn would_need(&self, tokens: usize) -> u64 {
        (self.tokens as u64)
            .saturating_add(tokens as u64)
            .saturating_mul(self.bytes_per_token)
    }

    /// Tokens currently cached.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Bytes currently occupied.
    pub fn bytes(&self) -> u64 {
        self.tokens as u64 * self.bytes_per_token
    }

    /// Occupancy fraction of the DRAM KV allocation.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.bytes() as f64 / self.capacity as f64
    }

    /// Maximum context length that fits.
    pub fn max_tokens(&self) -> usize {
        if self.bytes_per_token == 0 {
            return usize::MAX;
        }
        (self.capacity / self.bytes_per_token) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(bpt: u64) -> KvCache {
        KvCache::new(bpt, &NpuConfig::paper())
    }

    #[test]
    fn grows_by_append() {
        let mut c = cache(1000);
        c.append().unwrap();
        c.append().unwrap();
        assert_eq!(c.tokens(), 2);
        assert_eq!(c.bytes(), 2000);
    }

    #[test]
    fn seventy_b_context_fits_in_2gb() {
        // Llama2-70B W8A8: 2 × 80 × 1024 B/token = 163840 B/token.
        let c = cache(163_840);
        assert!(c.max_tokens() >= 4096, "{}", c.max_tokens());
    }

    #[test]
    fn capacity_error_reports_sizes() {
        let mut c = cache(1_500_000_000);
        c.append().unwrap();
        let err = c.append().unwrap_err();
        assert_eq!(err.needed, 3_000_000_000);
        assert_eq!(err.capacity, 2_000_000_000);
        assert!(err.to_string().contains("kv cache"));
        assert_eq!(c.tokens(), 1); // failed append does not grow
    }

    #[test]
    fn prefill_bulk_loads() {
        let mut c = cache(1000);
        c.prefill(500).unwrap();
        assert_eq!(c.tokens(), 500);
        assert!(c.prefill(usize::MAX / 2000).is_err());
    }

    #[test]
    fn release_reclaims_capacity() {
        // Reservation lifecycle of one admitted request: reserve the
        // whole context, serve, release, and the next request fits.
        let mut c = cache(1_000_000_000); // 2 requests fit at a time
        c.prefill(1).unwrap();
        c.prefill(1).unwrap();
        assert!(!c.fits(1));
        assert!(c.prefill(1).is_err());
        c.release(1);
        assert!(c.fits(1));
        c.prefill(1).unwrap();
        assert_eq!(c.tokens(), 2);
    }

    #[test]
    #[should_panic(expected = "only 2 are resident")]
    fn over_release_panics() {
        let mut c = cache(1000);
        c.prefill(2).unwrap();
        c.release(3);
    }

    #[test]
    fn fits_is_a_dry_run_prefill() {
        let mut c = cache(1000);
        let max = c.max_tokens();
        assert!(c.fits(max));
        assert!(!c.fits(max + 1));
        c.prefill(max).unwrap();
        assert!(c.fits(0));
        assert!(!c.fits(1));
        // fits never mutates.
        assert_eq!(c.tokens(), max);
    }

    #[test]
    fn absurd_requests_saturate_instead_of_wrapping() {
        // 1 + usize::MAX must not wrap the byte arithmetic to zero and
        // sneak past the gate.
        let mut c = cache(1000);
        c.append().unwrap();
        assert!(!c.fits(usize::MAX));
        assert!(c.prefill(usize::MAX).is_err());
        assert_eq!(c.tokens(), 1);
    }

    #[test]
    fn occupancy_fraction() {
        let mut c = cache(200_000_000);
        c.append().unwrap();
        assert!((c.occupancy() - 0.1).abs() < 1e-12);
    }
}
