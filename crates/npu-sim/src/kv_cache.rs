//! KV-cache residency management in NPU-attached DRAM.
//!
//! The paper allocates DRAM exclusively to the KV cache ("a capacity of
//! 700MB suffices for the needs of a 70B LLM under single batch
//! inference"). This module tracks cache growth across generated tokens
//! and enforces the capacity limit.

use crate::config::NpuConfig;

/// Error returned when the KV cache would exceed DRAM capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCapacityError {
    /// Bytes the cache would need.
    pub needed: u64,
    /// Bytes available.
    pub capacity: u64,
}

impl std::fmt::Display for KvCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kv cache needs {} bytes but dram capacity is {} bytes",
            self.needed, self.capacity
        )
    }
}

impl std::error::Error for KvCapacityError {}

/// A growing KV cache in DRAM.
#[derive(Debug, Clone)]
pub struct KvCache {
    bytes_per_token: u64,
    capacity: u64,
    tokens: usize,
}

impl KvCache {
    /// Creates an empty cache for a model writing `bytes_per_token` per
    /// generated token, bounded by the NPU's DRAM KV allocation.
    pub fn new(bytes_per_token: u64, cfg: &NpuConfig) -> Self {
        KvCache {
            bytes_per_token,
            capacity: cfg.dram_kv_bytes,
            tokens: 0,
        }
    }

    /// Appends one token's K/V vectors.
    ///
    /// # Errors
    ///
    /// Returns [`KvCapacityError`] if DRAM is full; the caller decides
    /// whether that is fatal (it is an out-of-memory condition for the
    /// baselines in Figure 9(b)).
    pub fn append(&mut self) -> Result<(), KvCapacityError> {
        let needed = (self.tokens as u64 + 1) * self.bytes_per_token;
        if needed > self.capacity {
            return Err(KvCapacityError {
                needed,
                capacity: self.capacity,
            });
        }
        self.tokens += 1;
        Ok(())
    }

    /// Pre-populates the cache with `tokens` prompt tokens (prefill).
    ///
    /// # Errors
    ///
    /// Returns [`KvCapacityError`] if the prompt alone exceeds DRAM.
    pub fn prefill(&mut self, tokens: usize) -> Result<(), KvCapacityError> {
        let needed = (self.tokens + tokens) as u64 * self.bytes_per_token;
        if needed > self.capacity {
            return Err(KvCapacityError {
                needed,
                capacity: self.capacity,
            });
        }
        self.tokens += tokens;
        Ok(())
    }

    /// Tokens currently cached.
    pub fn tokens(&self) -> usize {
        self.tokens
    }

    /// Bytes currently occupied.
    pub fn bytes(&self) -> u64 {
        self.tokens as u64 * self.bytes_per_token
    }

    /// Occupancy fraction of the DRAM KV allocation.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.bytes() as f64 / self.capacity as f64
    }

    /// Maximum context length that fits.
    pub fn max_tokens(&self) -> usize {
        if self.bytes_per_token == 0 {
            return usize::MAX;
        }
        (self.capacity / self.bytes_per_token) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(bpt: u64) -> KvCache {
        KvCache::new(bpt, &NpuConfig::paper())
    }

    #[test]
    fn grows_by_append() {
        let mut c = cache(1000);
        c.append().unwrap();
        c.append().unwrap();
        assert_eq!(c.tokens(), 2);
        assert_eq!(c.bytes(), 2000);
    }

    #[test]
    fn seventy_b_context_fits_in_2gb() {
        // Llama2-70B W8A8: 2 × 80 × 1024 B/token = 163840 B/token.
        let c = cache(163_840);
        assert!(c.max_tokens() >= 4096, "{}", c.max_tokens());
    }

    #[test]
    fn capacity_error_reports_sizes() {
        let mut c = cache(1_500_000_000);
        c.append().unwrap();
        let err = c.append().unwrap_err();
        assert_eq!(err.needed, 3_000_000_000);
        assert_eq!(err.capacity, 2_000_000_000);
        assert!(err.to_string().contains("kv cache"));
        assert_eq!(c.tokens(), 1); // failed append does not grow
    }

    #[test]
    fn prefill_bulk_loads() {
        let mut c = cache(1000);
        c.prefill(500).unwrap();
        assert_eq!(c.tokens(), 500);
        assert!(c.prefill(usize::MAX / 2000).is_err());
    }

    #[test]
    fn occupancy_fraction() {
        let mut c = cache(200_000_000);
        c.append().unwrap();
        assert!((c.occupancy() - 0.1).abs() < 1e-12);
    }
}
