//! NPU execution-time models.
//!
//! The NPU's decode-phase work is overwhelmingly bandwidth-bound (the
//! paper's whole premise), so the timing model for each operation is
//! `max(compute-bound time, data-bound time)` — the roofline — plus a
//! small launch overhead for SFU ops. These models are driven by the
//! same `SimTime` clock as the flash engine.

use crate::config::NpuConfig;
use sim_core::{transfer_time, SimTime};

/// Timing model for the NPU's PEs, SFU and DRAM interface.
#[derive(Debug, Clone, Copy)]
pub struct NpuModel {
    cfg: NpuConfig,
}

impl NpuModel {
    /// Creates a model from a configuration.
    pub fn new(cfg: NpuConfig) -> Self {
        NpuModel { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &NpuConfig {
        &self.cfg
    }

    /// Time for the systolic array to execute `ops` arithmetic
    /// operations on data that is already on-chip.
    pub fn compute_time(&self, ops: u64) -> SimTime {
        transfer_time(ops, self.cfg.peak_ops_per_sec())
    }

    /// Time for a GeMV whose weights arrive over a link of
    /// `stream_bytes_per_sec`: the maximum of compute and stream time
    /// (the array consumes weights as they arrive).
    pub fn streamed_gemv_time(
        &self,
        ops: u64,
        weight_bytes: u64,
        stream_bytes_per_sec: u64,
    ) -> SimTime {
        self.compute_time(ops)
            .max(transfer_time(weight_bytes, stream_bytes_per_sec))
    }

    /// Time for KV-cache matrix-vector work: `ops` arithmetic against
    /// `dram_bytes` streamed from DRAM (attention scores / context).
    pub fn kv_op_time(&self, ops: u64, dram_bytes: u64) -> SimTime {
        self.compute_time(ops)
            .max(transfer_time(dram_bytes, self.cfg.dram_bytes_per_sec))
    }

    /// Time to write `bytes` to DRAM (KV append).
    pub fn dram_write_time(&self, bytes: u64) -> SimTime {
        transfer_time(bytes, self.cfg.dram_bytes_per_sec)
    }

    /// Time for the SFU to process `elems` elements (softmax, ReLU,
    /// SiLU, RoPE, norms).
    pub fn sfu_time(&self, elems: u64) -> SimTime {
        SimTime::from_secs_f64(self.cfg.sfu_launch_s)
            + transfer_time(elems, self.cfg.sfu_elems_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> NpuModel {
        NpuModel::new(NpuConfig::paper())
    }

    #[test]
    fn compute_time_matches_peak() {
        // 2.048e12 ops/s → 2.048e9 ops in 1 ms.
        let t = model().compute_time(2_048_000_000);
        assert_eq!(t.as_micros(), 1000);
    }

    #[test]
    fn streamed_gemv_is_bandwidth_bound_at_decode() {
        // A 4096×4096 INT8 GeMV streamed at 1 GB/s: 16.7M bytes at
        // 1 GB/s = 16.7 ms stream vs 16 µs compute → stream dominates.
        let m = model();
        let ops = 2 * 4096 * 4096u64;
        let bytes = 4096 * 4096u64;
        let t = m.streamed_gemv_time(ops, bytes, 1_000_000_000);
        assert_eq!(t, transfer_time(bytes, 1_000_000_000));
        assert!(m.compute_time(ops) < t);
    }

    #[test]
    fn kv_op_bound_by_dram() {
        // Scores at seq=1000 for OPT-6.7B: 4 MB from DRAM, 8.4 M ops.
        let m = model();
        let t = m.kv_op_time(8_400_000, 4_100_000);
        assert_eq!(t, transfer_time(4_100_000, 40_000_000_000));
    }

    #[test]
    fn sfu_includes_launch_overhead() {
        let m = model();
        let t0 = m.sfu_time(0);
        assert!(t0 >= SimTime::from_nanos(500));
        assert!(m.sfu_time(1_000_000) > t0);
    }

    #[test]
    fn dram_write_time_scales() {
        let m = model();
        assert_eq!(m.dram_write_time(40_000_000_000).as_micros(), 1_000_000);
    }
}
