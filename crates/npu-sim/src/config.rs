//! NPU hardware parameters.
//!
//! §VII-A of the paper: a 16×16 systolic array at 1 GHz delivering
//! 2 TOPS INT8, interfaced to LPDDR5X DRAM at ~40 GB/s used exclusively
//! for the KV cache, an SFU for softmax/activations, and an integrated
//! flash controller giving the NPU direct access to the flash chiplet
//! over the D2D link.

/// NPU configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpuConfig {
    /// Systolic array height (rows of PEs).
    pub array_rows: usize,
    /// Systolic array width (columns of PEs).
    pub array_cols: usize,
    /// Clock frequency in Hz.
    pub freq_hz: u64,
    /// INT8 ops per PE per cycle (2 = one MAC).
    pub ops_per_pe_cycle: u32,
    /// DRAM (LPDDR5X) bandwidth in bytes/second.
    pub dram_bytes_per_sec: u64,
    /// DRAM capacity in bytes available for the KV cache.
    pub dram_kv_bytes: u64,
    /// SFU throughput in elements/second (vectorized exp/div etc.).
    pub sfu_elems_per_sec: u64,
    /// Fixed per-operation launch overhead of the SFU, in seconds.
    pub sfu_launch_s: f64,
}

impl NpuConfig {
    /// The paper's configuration (Table II text + §VII-A).
    pub fn paper() -> Self {
        NpuConfig {
            array_rows: 16,
            array_cols: 16,
            freq_hz: 1_000_000_000,
            // The paper quotes 2 TOPS for a 16×16 array @1 GHz; that
            // corresponds to ~8 ops per PE-cycle (4 MACs per PE, i.e. a
            // quad-pumped INT8 datapath). We keep the headline 2 TOPS.
            ops_per_pe_cycle: 8,
            dram_bytes_per_sec: 40_000_000_000,
            dram_kv_bytes: 2_000_000_000, // 2 GB reserved for KV cache (Table V)
            sfu_elems_per_sec: 16_000_000_000,
            sfu_launch_s: 0.5e-6,
        }
    }

    /// Peak INT8 throughput in ops/second.
    pub fn peak_ops_per_sec(&self) -> u64 {
        self.array_rows as u64
            * self.array_cols as u64
            * self.ops_per_pe_cycle as u64
            * self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_npu_is_2_tops() {
        let n = NpuConfig::paper();
        assert_eq!(n.peak_ops_per_sec(), 2_048_000_000_000);
    }

    #[test]
    fn paper_dram_is_40_gbs() {
        assert_eq!(NpuConfig::paper().dram_bytes_per_sec, 40_000_000_000);
    }
}
